# Development entry points for the triangle-listing reproduction.

PYTHON ?= python

.PHONY: install test bench bench-full examples clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || \
		$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/orientation_showdown.py 10000
	$(PYTHON) examples/model_vs_simulation.py 1.5 T1 descending
	$(PYTHON) examples/asymptotic_regimes.py
	$(PYTHON) examples/custom_distribution.py
	$(PYTHON) examples/clustering_analysis.py 10000

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis \
		.benchmarks benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
