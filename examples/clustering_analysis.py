"""Application demo: triangle statistics of heavy-tailed networks.

Triangle listing's classic downstream use (the paper's introduction
cites community detection, sybil detection, motif analysis): compare a
network's triangle census against the configuration-model null
expectation. This script builds graphs from three degree laws at the
same mean degree and reports triangles, clustering, degeneracy, and the
null-model expectation -- all through the library's public API, with
the sparse counter doing the heavy lifting.

Run:  python examples/clustering_analysis.py [n]
"""

import sys

import numpy as np

from repro import (
    DiscretePareto,
    degeneracy,
    generate_graph,
    sample_degree_sequence,
)
from repro.distributions import (
    GeometricDegree,
    PoissonDegree,
    root_truncation,
)
from repro.graphs.analysis import (
    expected_triangles_configuration_model,
    global_clustering_coefficient,
    triangle_count_sparse,
    wedge_count,
)


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    rng = np.random.default_rng(13)
    laws = [
        ("Poisson(12)", PoissonDegree(12.0)),
        ("Geometric(1/12)", GeometricDegree(1 / 12)),
        ("Pareto(1.7), E[D]~30", DiscretePareto.paper_parameterization(1.7)),
    ]
    print(f"{'law':>22} {'m':>8} {'triangles':>10} {'CM null':>9} "
          f"{'clustering':>11} {'degeneracy':>10}")
    for name, law in laws:
        dist_n = law.truncate(root_truncation(n))
        degrees = sample_degree_sequence(dist_n, n, rng)
        graph = generate_graph(degrees, rng)
        triangles = triangle_count_sparse(graph)
        null = expected_triangles_configuration_model(degrees)
        clustering = 3.0 * triangles / max(wedge_count(graph), 1)
        print(f"{name:>22} {graph.m:>8} {triangles:>10} {null:>9.0f} "
              f"{clustering:>11.4f} {degeneracy(graph):>10}")

    print("\nHeavy tails manufacture triangles: at equal (or smaller)")
    print("edge counts, the Pareto graph's wedge count explodes with")
    print("E[D^2], dragging the raw triangle count with it -- the")
    print("'more frequent than in classical random graphs' phenomenon")
    print("the paper's introduction opens with. The CM-null column")
    print("shows the generated graphs sit right on the moment formula,")
    print("so the excess is a degree-sequence effect, not hidden")
    print("structure from the generator.")


if __name__ == "__main__":
    main()
