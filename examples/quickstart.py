"""Quickstart: generate a random graph, orient it, list triangles.

Walks the paper's full pipeline in one page:

1. pick a heavy-tailed degree law and truncate it (section 1.2);
2. sample an i.i.d. degree sequence and realize it exactly with the
   residual-degree generator (section 7.2);
3. relabel + orient with the descending-degree permutation (section 2.1);
4. list triangles with each fundamental method and compare their
   measured cost against the discrete model (50).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    DescendingDegree,
    DiscretePareto,
    discrete_cost_model,
    generate_graph,
    list_triangles,
    orient,
    sample_degree_sequence,
)
from repro.distributions import root_truncation


def main():
    rng = np.random.default_rng(7)
    n = 5000

    # 1. Pareto degree law with the paper's parameterization
    # (alpha = 1.7, beta = 30 (alpha - 1), so E[D] ~ 30.5), truncated
    # at t_n = sqrt(n) -- the AMRC regime where the model is accurate
    # even at modest n.
    alpha = 1.7
    base = DiscretePareto.paper_parameterization(alpha)
    dist_n = base.truncate(root_truncation(n))
    print(f"degree law: {base}, truncated at t_n = {dist_n.t}")

    # 2. degree sequence + exact realization
    degrees = sample_degree_sequence(dist_n, n, rng)
    graph = generate_graph(degrees, rng)
    print(f"graph: {graph} (max degree {graph.degrees.max()})")

    # 3. relabel + orient: hubs get the smallest labels, so edges point
    # *into* them and out-degrees stay small
    oriented = orient(graph, DescendingDegree())
    print(f"max out-degree after orientation: "
          f"{oriented.out_degrees.max()} "
          f"(undirected max was {graph.degrees.max()})")

    # 4. list triangles with each fundamental method; all four agree on
    # the triangles and differ only in cost
    print(f"\n{'method':>7} {'triangles':>10} {'ops':>12} "
          f"{'c_n measured':>13} {'c_n model':>10}")
    for method in ("T1", "T2", "E1", "E4"):
        result = list_triangles(oriented, method, collect=False)
        model = discrete_cost_model(dist_n, method, "descending")
        print(f"{method:>7} {result.count:>10} {result.ops:>12} "
              f"{result.per_node_cost:>13.2f} {model:>10.2f}")

    print("\nT1 does the fewest operations under descending order --")
    print("exactly Corollary 1 of the paper.")


if __name__ == "__main__":
    main()
