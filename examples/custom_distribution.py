"""Beyond Pareto: plug any degree law into the paper's machinery.

The theory (Theorems 1-5) holds for arbitrary F(x) on the positive
integers. This example runs the full pipeline on:

* a geometric (light-tailed) law, where every method/permutation has a
  finite limit and the orientation gains are modest;
* a Zipf law with the same tail index as the paper's Pareto;
* an *empirical* law harvested from a generated graph -- the section
  7.5 workflow of predicting per-method cost from a real graph's degree
  histogram.

Run:  python examples/custom_distribution.py
"""

import numpy as np

from repro import (
    DescendingDegree,
    DiscretePareto,
    EmpiricalDegreeDistribution,
    GeometricDegree,
    RoundRobin,
    ZipfDegree,
    discrete_cost_model,
    generate_graph,
    limit_cost,
    orient,
    sample_degree_sequence,
)
from repro.core.costs import method_cost
from repro.distributions import root_truncation


def limits_table(name, base):
    print(f"\n{name}: limiting per-node cost")
    print(f"  {'method':>7} {'descending':>11} {'rr':>9} {'uniform':>9}")
    for method in ("T1", "T2", "E1"):
        row = [limit_cost(base, method, m, eps=1e-4, t_max=1e12)
               for m in ("descending", "rr", "uniform")]
        cells = " ".join(f"{v:>9.1f}" if np.isfinite(v) else f"{'inf':>9}"
                         for v in row)
        print(f"  {method:>7}  {cells}")


def main():
    # 1. light tail: geometric with mean 12
    limits_table("Geometric(p=1/12)", GeometricDegree(1 / 12))

    # 2. Zipf with tail index 1.7 (s = 2.7)
    limits_table("Zipf(s=2.7)", ZipfDegree(2.7))

    # 3. empirical: predict a concrete graph's cost from its own
    # degree histogram -- no Pareto assumption anywhere
    rng = np.random.default_rng(10)
    n = 4000
    source = DiscretePareto.paper_parameterization(1.8)
    degrees = sample_degree_sequence(source.truncate(root_truncation(n)),
                                     n, rng)
    graph = generate_graph(degrees, rng)
    empirical = EmpiricalDegreeDistribution(graph.degrees)

    print("\nempirical-law prediction vs measurement on one graph "
          f"(n={n}):")
    print(f"  {'cell':>12} {'measured':>9} {'predicted':>10}")
    for method, perm, map_name in [("T1", DescendingDegree(),
                                    "descending"),
                                   ("T2", RoundRobin(), "rr")]:
        oriented = orient(graph, perm)
        measured = method_cost(oriented, method)
        predicted = discrete_cost_model(empirical, method, map_name)
        print(f"  {method + '+' + map_name:>12} {measured:>9.2f} "
              f"{predicted:>10.2f}")
    print("\nThe model needs only the degree histogram -- the graph's")
    print("edge structure never enters, which is the whole point of")
    print("the paper's distribution-level analysis.")


if __name__ == "__main__":
    main()
