"""Orientation showdown: the Table 12 study on a synthetic graph.

Reproduces the shape of the paper's Twitter case study (section 7.5):
total CPU operations of the four fundamental methods under all six
orientations -- the five analytical permutations plus the degenerate
(smallest-last) ordering of Matula-Beck. Prints the full matrix, marks
each method's optimum, and reports the paper's headline ratios.

Run:  python examples/orientation_showdown.py [n]
"""

import sys

import numpy as np

from repro.experiments.tables import format_matrix_table
from repro.experiments.twitter import (
    PERMUTATION_ORDER,
    analyze_cost_matrix,
    cost_matrix,
    twitter_like_graph,
)

METHODS = ("T1", "T2", "E1", "E4")


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    rng = np.random.default_rng(2017)
    print(f"generating a Twitter-like heavy-tailed graph with n={n} ...")
    graph = twitter_like_graph(n=n, alpha=1.7, rng=rng)
    print(f"  {graph} (mean degree {2 * graph.m / graph.n:.1f}, "
          f"max degree {graph.degrees.max()})\n")

    matrix = cost_matrix(graph, methods=METHODS, rng=rng)
    print(format_matrix_table(
        "Total CPU operations n * c_n(M, theta)  "
        "(* = optimal permutation per method)",
        list(METHODS), list(PERMUTATION_ORDER), matrix))

    report = analyze_cost_matrix(matrix, methods=METHODS)
    print("\nfindings (compare with the paper's Table 12):")
    for method, info in report["per_method"].items():
        print(f"  {method}: best={info['best']}, worst={info['worst']}, "
              f"worst/best = {info['worst_over_best']:.1f}x")
    print(f"  E1(theta_D) / T2(theta_RR) = "
          f"{report['e1_desc_over_t2_rr']:.2f}  (paper: 2.0)")
    print(f"  E4(best) / E1(theta_D)     = "
          f"{report['e4_best_over_e1_desc']:.1f}  "
          f"(paper: >= 121 at Twitter scale; grows with n)")


if __name__ == "__main__":
    main()
