"""Out-of-core triangle listing: partitions, I/O, and the E1/E2 contrast.

Demonstrates the external-memory substrate (the machinery the paper's
section 8 I/O questions presuppose): plan a partition count from a
memory budget, run the out-of-core E1 and E2, and compare their I/O
profiles while confirming their CPU cost is identical to the in-memory
runs.

Run:  python examples/out_of_core.py [n]
"""

import sys

import numpy as np

from repro import DescendingDegree, list_triangles, orient
from repro.experiments.twitter import twitter_like_graph
from repro.external import external_e1, external_e2, plan_partitions


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    rng = np.random.default_rng(8)
    graph = twitter_like_graph(n=n, alpha=1.7, rng=rng)
    oriented = orient(graph, DescendingDegree())
    print(f"graph: n={graph.n}, m={graph.m}")

    graph_bytes = 16 * graph.m  # both CSR directions at 8B per ID
    budget = graph_bytes // 4   # pretend RAM holds a quarter of it
    k = plan_partitions(oriented, budget)
    print(f"graph payload ~{graph_bytes:,} B; budget {budget:,} B "
          f"-> k = {k} partitions\n")

    reference = list_triangles(oriented, "E1", collect=False)
    print(f"{'run':>14} {'triangles':>10} {'CPU ops':>12} "
          f"{'loads':>6} {'bytes read':>12}")
    print(f"{'in-memory E1':>14} {reference.count:>10} "
          f"{reference.ops:>12} {'--':>6} {'--':>12}")
    for name, runner in [("external E1", external_e1),
                         ("external E2", external_e2)]:
        result, io = runner(oriented, k, collect=False)
        print(f"{name:>14} {result.count:>10} {result.ops:>12} "
              f"{io.loads:>6} {io.bytes_read:>12,}")

    print("\nPartitioning never changes what is compared (CPU ops are")
    print("identical), only what is re-read: E1 re-loads the small-")
    print("label candidates, E2 the large-label ones -- under the")
    print("descending order those ranges carry different edge mass,")
    print("which is exactly the I/O asymmetry the paper defers to its")
    print("external-memory companion [17].")


if __name__ == "__main__":
    main()
