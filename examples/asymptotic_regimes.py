"""Asymptotic regimes: finiteness thresholds and scaling rates.

Maps out the paper's section 6.3 landscape:

* for each (method, permutation), the Pareto tail index alpha at which
  the limiting cost switches from finite to infinite;
* below the threshold, the growth exponent of cost in n (eqs. 47-48),
  fitted from the model via Algorithm 2 and compared to theory;
* the headline: T1 provably beats E1 for all alpha in (4/3, 1.5] --
  "vertex and edge iterators do NOT share asymptotics" there.

Run:  python examples/asymptotic_regimes.py
"""

import math

from repro import (
    DiscretePareto,
    e1_scaling_rate,
    fast_cost_model,
    finiteness_threshold,
    limit_cost,
    t1_scaling_rate,
)
from repro.core.asymptotics import fit_growth_exponent
from repro.distributions import root_truncation

PAIRS = [
    ("T1", "descending"), ("T1", "ascending"),
    ("T2", "descending"), ("T2", "rr"),
    ("E1", "descending"), ("E1", "rr"),
    ("E4", "crr"), ("E4", "descending"),
]


def main():
    print("finiteness thresholds (limit finite iff alpha > threshold):")
    for method, map_name in PAIRS:
        thr = finiteness_threshold(method, map_name)
        print(f"  {method} + {map_name:<11} alpha > {thr:.4g}")

    print("\nlimits straddling the T1 threshold (4/3), descending order:")
    for alpha in (1.30, 1.40, 1.50):
        base = DiscretePareto(alpha, 30.0 * (alpha - 1.0))
        value = limit_cost(base, "T1", "descending", eps=1e-4)
        text = "infinite" if math.isinf(value) else f"{value:.1f}"
        print(f"  alpha = {alpha}: c(T1, xi_D) = {text}")

    print("\nalpha in (4/3, 1.5]: T1 finite, E1 infinite -- the regime")
    print("where the vertex iterator provably wins:")
    alpha = 1.45
    base = DiscretePareto(alpha, 30.0 * (alpha - 1.0))
    t1 = limit_cost(base, "T1", "descending", eps=1e-4)
    e1 = limit_cost(base, "E1", "descending", eps=1e-4)
    print(f"  alpha = {alpha}: c(T1, xi_D) = {t1:.1f}, "
          f"c(E1, xi_D) = {'infinite' if math.isinf(e1) else e1}")

    print("\ngrowth exponents below the thresholds (root truncation,")
    print("model fitted over n = 1e10..1e13 vs eqs. (47)-(48)):")
    ns = [10**10, 10**11, 10**12, 10**13]
    for method, alpha, rate_fn, pred in [
            ("T1", 1.2, t1_scaling_rate, 2 - 1.5 * 1.2),
            ("E1", 1.2, e1_scaling_rate, 1.5 - 1.2)]:
        base = DiscretePareto(alpha, 30.0 * (alpha - 1.0))
        costs = [fast_cost_model(base.truncate(root_truncation(n)),
                                 method, "descending", eps=1e-4)
                 for n in ns]
        slope = fit_growth_exponent(ns, costs)
        print(f"  {method}, alpha={alpha}: fitted n^{slope:.3f}, "
              f"theory n^{pred:.3f}")


if __name__ == "__main__":
    main()
