"""Model vs simulation: regenerate a Table 6-style accuracy study.

For a chosen (method, permutation, alpha, truncation) cell, sweeps the
graph size and prints simulated cost, the discrete model (50), the
relative error, and the n -> inf limit from Algorithm 2 -- the exact
format of the paper's Tables 6-10.

Run:  python examples/model_vs_simulation.py [alpha] [method] [perm]
      perm in {ascending, descending, rr, crr}
e.g.  python examples/model_vs_simulation.py 1.7 T2 rr
"""

import sys

import numpy as np

from repro import (
    AscendingDegree,
    ComplementaryRoundRobin,
    DescendingDegree,
    DiscretePareto,
    RoundRobin,
    limit_cost,
)
from repro.distributions import root_truncation
from repro.experiments.harness import SimulationSpec, simulated_vs_model

PERMS = {
    "ascending": (AscendingDegree(), "ascending"),
    "descending": (DescendingDegree(), "descending"),
    "rr": (RoundRobin(), "rr"),
    "crr": (ComplementaryRoundRobin(), "crr"),
}


def main():
    alpha = float(sys.argv[1]) if len(sys.argv) > 1 else 1.5
    method = sys.argv[2].upper() if len(sys.argv) > 2 else "T1"
    perm_name = sys.argv[3].lower() if len(sys.argv) > 3 else "descending"
    perm, limit_map = PERMS[perm_name]

    base = DiscretePareto.paper_parameterization(alpha)
    rng = np.random.default_rng(6)
    spec = SimulationSpec(
        base_dist=base, truncation=root_truncation, method=method,
        permutation=perm, limit_map=limit_map,
        n_sequences=4, n_graphs=4)

    print(f"{method} + theta_{perm_name}, alpha={alpha}, "
          f"root truncation, 16 instances per cell\n")
    print(f"{'n':>8} {'sim':>10} {'model (50)':>11} {'error':>8}")
    for n in (1000, 3000, 10_000, 30_000):
        sim, model, error = simulated_vs_model(spec, n, rng)
        print(f"{n:>8} {sim:>10.1f} {model:>11.1f} "
              f"{100 * error:>+7.1f}%")

    limit = limit_cost(base, method, limit_map, eps=1e-4)
    print(f"{'inf':>8} {'--':>10} {limit:>11.1f}")
    print("\nErrors shrink as n grows because root truncation keeps the")
    print("graphs AMRC -- exactly the paper's Tables 6-7 behaviour.")


if __name__ == "__main__":
    main()
