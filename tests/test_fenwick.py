"""Unit and property tests for the Fenwick tree sampler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import FenwickTree


class TestFenwickBasics:
    def test_construction_prefix_sums(self):
        weights = [3.0, 0.0, 2.0, 5.0, 1.0]
        tree = FenwickTree(weights)
        cum = np.cumsum(weights)
        for i in range(5):
            assert tree.prefix_sum(i) == pytest.approx(cum[i])
        assert tree.prefix_sum(-1) == 0.0
        assert tree.total == pytest.approx(11.0)

    def test_get_roundtrip(self):
        weights = [1.0, 4.0, 0.0, 2.5]
        tree = FenwickTree(weights)
        for i, w in enumerate(weights):
            assert tree.get(i) == pytest.approx(w)

    def test_add_updates_sums(self):
        tree = FenwickTree([1.0, 1.0, 1.0])
        tree.add(1, 5.0)
        assert tree.get(1) == pytest.approx(6.0)
        assert tree.prefix_sum(2) == pytest.approx(8.0)
        assert tree.total == pytest.approx(8.0)

    def test_add_out_of_range(self):
        tree = FenwickTree([1.0])
        with pytest.raises(IndexError):
            tree.add(1, 1.0)
        with pytest.raises(IndexError):
            tree.add(-1, 1.0)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            FenwickTree([1.0, -0.5])

    def test_sample_boundaries(self):
        tree = FenwickTree([2.0, 3.0])
        assert tree.sample(0.0) == 0
        assert tree.sample(1.999) == 0
        assert tree.sample(2.0) == 1
        assert tree.sample(4.999) == 1
        with pytest.raises(ValueError):
            tree.sample(5.0)
        with pytest.raises(ValueError):
            tree.sample(-0.1)

    def test_sample_skips_zero_weights(self):
        tree = FenwickTree([0.0, 0.0, 1.0, 0.0])
        for target in [0.0, 0.5, 0.999]:
            assert tree.sample(target) == 2

    def test_sample_distribution(self):
        rng = np.random.default_rng(0)
        weights = np.array([1.0, 2.0, 3.0, 4.0])
        tree = FenwickTree(weights)
        draws = np.array([tree.sample(rng.random() * tree.total)
                          for __ in range(20_000)])
        freq = np.bincount(draws, minlength=4) / draws.size
        np.testing.assert_allclose(freq, weights / weights.sum(), atol=0.02)

    def test_to_array(self):
        weights = [0.5, 0.0, 3.0]
        np.testing.assert_allclose(FenwickTree(weights).to_array(), weights)

    def test_len(self):
        assert len(FenwickTree([1, 2, 3])) == 3


class TestFenwickProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=1, max_size=60),
           st.lists(st.tuples(st.integers(min_value=0, max_value=59),
                              st.floats(min_value=0.0, max_value=50.0)),
                    max_size=20))
    @settings(max_examples=80, deadline=None)
    def test_matches_naive_prefix_sums(self, weights, updates):
        arr = np.asarray(weights, dtype=float)
        tree = FenwickTree(arr)
        for idx, delta in updates:
            if idx >= arr.size:
                continue
            tree.add(idx, delta)
            arr[idx] += delta
        cum = np.cumsum(arr)
        for i in range(arr.size):
            assert tree.prefix_sum(i) == pytest.approx(cum[i], abs=1e-6)

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0),
                    min_size=1, max_size=50),
           st.floats(min_value=0.0, max_value=1.0 - 1e-9))
    @settings(max_examples=80, deadline=None)
    def test_sample_invariant(self, weights, frac):
        """sample(t) returns the first index with prefix_sum > t."""
        tree = FenwickTree(weights)
        target = frac * tree.total
        idx = tree.sample(target)
        assert tree.prefix_sum(idx) > target
        assert tree.prefix_sum(idx - 1) <= target + 1e-9
        assert tree.get(idx) > 0
