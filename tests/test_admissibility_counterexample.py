"""The paper's admissibility counterexample (Definition 5).

Section 5.1: "Outside of specially crafted counter-examples (e.g.,
theta_n = theta_A for odd n and theta_D for even), most reasonable
permutation sequences are admissible." This test *builds* that crafted
sequence and shows its windowed kernel (27) genuinely fails to
converge: the odd-n and even-n subsequences settle on two different
kernels, so the full sequence has no limit -- exactly why Definition 5
must exclude it.
"""

import numpy as np
import pytest

from repro.core.kernels import (
    AscendingMap,
    DescendingMap,
    empirical_kernel,
)
from repro.orientations.permutations import (
    AscendingDegree,
    DescendingDegree,
    Permutation,
)


class AlternatingPermutation(Permutation):
    """theta_A for odd n, theta_D for even n -- the paper's example."""

    def rank_to_label(self, n, rng=None):
        if n % 2 == 1:
            return AscendingDegree().rank_to_label(n)
        return DescendingDegree().rank_to_label(n)


class TestCounterexample:
    def test_subsequences_converge_to_different_kernels(self):
        perm = AlternatingPermutation()
        u, v = 0.25, 0.6
        asc_expected = float(AscendingMap().kernel(v, np.float64(u)))
        desc_expected = float(DescendingMap().kernel(v, np.float64(u)))
        assert asc_expected != desc_expected  # a discriminating (u, v)
        odd = [empirical_kernel(perm.rank_to_label(n), u, v)
               for n in (10_001, 40_001)]
        even = [empirical_kernel(perm.rank_to_label(n), u, v)
                for n in (10_000, 40_000)]
        for value in odd:
            assert value == pytest.approx(asc_expected, abs=0.02)
        for value in even:
            assert value == pytest.approx(desc_expected, abs=0.02)

    def test_full_sequence_does_not_converge(self):
        """Consecutive n values keep oscillating at fixed (u, v)."""
        perm = AlternatingPermutation()
        u, v = 0.25, 0.6
        values = [empirical_kernel(perm.rank_to_label(n), u, v)
                  for n in range(20_000, 20_008)]
        spread = max(values) - min(values)
        assert spread > 0.5  # nowhere near Cauchy

    def test_admissible_sequences_do_converge(self):
        """Contrast: theta_D alone is Cauchy in n at the same (u, v)."""
        u, v = 0.25, 0.6
        values = [empirical_kernel(DescendingDegree().rank_to_label(n),
                                   u, v)
                  for n in range(20_000, 20_008)]
        assert max(values) - min(values) < 0.02
