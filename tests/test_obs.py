"""Tests for the observability subsystem (``repro.obs``)."""

import json
import logging
import threading

import numpy as np
import pytest

from repro import obs
from repro.obs import metrics, records, spans
from repro.obs.logging import StructuredFormatter, get_logger, log_event


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends with a pristine, disabled obs layer."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestSpans:
    def test_disabled_is_noop(self):
        with obs.span("outer", key="v") as sp:
            with obs.span("inner"):
                pass
            sp.annotate(more=1)
        assert spans.pop_finished() == []

    def test_noop_span_is_shared(self):
        assert obs.span("a") is obs.span("b")

    def test_nesting_builds_tree(self):
        obs.enable()
        with obs.span("root", seed=7):
            with obs.span("child-a"):
                with obs.span("grandchild"):
                    pass
            with obs.span("child-b"):
                pass
        roots = spans.pop_finished()
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "root"
        assert root.attrs == {"seed": 7}
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert root.children[0].children[0].name == "grandchild"
        # parent duration covers its children
        assert root.duration_ns >= sum(c.duration_ns
                                       for c in root.children)
        assert spans.pop_finished() == []  # drained

    def test_annotate_and_to_dict(self):
        obs.enable()
        with obs.span("phase", n=10) as sp:
            sp.annotate(ops=42)
        (root,) = spans.pop_finished()
        d = root.to_dict()
        assert d["name"] == "phase"
        assert d["attrs"] == {"n": 10, "ops": 42}
        assert d["duration_ns"] >= 0
        assert "children" not in d

    def test_exception_closes_span(self):
        obs.enable()
        with pytest.raises(RuntimeError):
            with obs.span("boom"):
                raise RuntimeError("x")
        (root,) = spans.pop_finished()
        assert root.attrs["error"] == "RuntimeError"
        assert spans.current_span() is None

    def test_phase_totals(self):
        obs.enable()
        with obs.span("root"):
            with obs.span("work"):
                pass
            with obs.span("work"):
                pass
        (root,) = spans.pop_finished()
        totals = root.phase_totals()
        assert set(totals) == {"root", "work"}
        assert totals["work"] >= 0

    def test_thread_safety(self):
        obs.enable()
        barrier = threading.Barrier(2)

        def worker(tag):
            barrier.wait()
            with obs.span(f"root-{tag}"):
                with obs.span("inner"):
                    pass

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = spans.pop_finished()
        assert sorted(r.name for r in roots) == ["root-0", "root-1"]
        assert all(len(r.children) == 1 for r in roots)

    def test_memory_tracing(self):
        obs.enable(memory=True)
        with obs.span("alloc"):
            blob = [0] * 50_000
        del blob
        (root,) = spans.pop_finished()
        assert root.mem_peak_bytes is not None
        assert root.mem_peak_bytes > 0
        assert root.mem_delta_bytes is not None
        obs.disable()
        import tracemalloc
        assert not tracemalloc.is_tracing()

    def test_format_span_tree(self):
        obs.enable()
        with obs.span("root", method="T1"):
            with obs.span("child"):
                pass
        (root,) = spans.pop_finished()
        text = obs.format_span_tree(root)
        assert "root" in text and "child" in text
        assert "ms" in text and "method=T1" in text

    def test_name_attribute_allowed(self):
        obs.enable()
        with obs.span("table", name="table06"):
            pass
        (root,) = spans.pop_finished()
        assert root.attrs == {"name": "table06"}


class TestMetrics:
    def test_disabled_is_noop(self):
        metrics.inc("a")
        metrics.set_gauge("b", 1.0)
        metrics.observe("c", 2.0)
        snap = metrics.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_counters_gauges_histograms(self):
        metrics.enable()
        metrics.inc("lister.ops", 10)
        metrics.inc("lister.ops", 5)
        metrics.set_gauge("graph.n", 100)
        metrics.set_gauge("graph.n", 200)
        for v in (1.0, 3.0, 2.0):
            metrics.observe("cost", v)
        snap = metrics.snapshot()
        assert snap["counters"]["lister.ops"] == 15
        assert snap["gauges"]["graph.n"] == 200.0
        hist = snap["histograms"]["cost"]
        assert hist["count"] == 3
        assert hist["min"] == 1.0 and hist["max"] == 3.0
        assert hist["mean"] == pytest.approx(2.0)

    def test_reset(self):
        metrics.enable()
        metrics.inc("x")
        metrics.reset()
        assert metrics.snapshot()["counters"] == {}

    def test_registry_counter_read(self):
        metrics.enable()
        metrics.inc("y", 3)
        assert metrics.registry().counter("y") == 3
        assert metrics.registry().counter("missing") == 0

    def test_empty_histogram_summary(self):
        assert metrics.Histogram().summary() == {"count": 0}


class TestRecords:
    def test_collect_and_roundtrip(self, tmp_path):
        obs.enable()
        with obs.span("phase", n=np.int64(5)):
            metrics.inc("counter", np.int64(3))
        record = records.collect("unit", config={"seed": np.int64(7),
                                                 "sizes": np.arange(3)})
        sink = tmp_path / "runs.jsonl"
        assert records.write_record(record, sink) == sink
        loaded = records.load_records(sink)
        assert len(loaded) == 1
        got = loaded[0]
        assert got.name == "unit"
        assert got.config["seed"] == 7
        assert got.config["sizes"] == [0, 1, 2]
        assert got.metrics["counters"]["counter"] == 3
        assert got.spans[0]["name"] == "phase"
        assert got.meta["python"]

    def test_load_missing_file(self, tmp_path):
        assert records.load_records(tmp_path / "nope.jsonl") == []

    def test_corrupted_line_skipped_with_warning(self, tmp_path, caplog):
        sink = tmp_path / "runs.jsonl"
        records.write_record(records.RunRecord("one"), sink)
        with open(sink, "a", encoding="utf-8") as fh:
            fh.write('{"name": "torn", "config": {"tru\n')  # torn append
        records.write_record(records.RunRecord("two"), sink)
        with caplog.at_level(logging.WARNING, logger="repro"):
            loaded = records.load_records(sink)
        assert [r.name for r in loaded] == ["one", "two"]
        (warning,) = [r for r in caplog.records
                      if r.levelno == logging.WARNING]
        assert warning.getMessage() == \
            "skipped corrupted run-record lines"
        assert warning.fields["skipped"] == 1
        assert warning.fields["first_bad_line"] == 2

    def test_non_dict_line_skipped(self, tmp_path, caplog):
        sink = tmp_path / "runs.jsonl"
        sink.write_text('[1, 2, 3]\n"scalar"\n')
        with caplog.at_level(logging.WARNING, logger="repro"):
            assert records.load_records(sink) == []
        (warning,) = [r for r in caplog.records
                      if r.levelno == logging.WARNING]
        assert warning.fields["skipped"] == 2
        assert warning.fields["first_bad_line"] == 1

    def test_clean_file_warns_nothing(self, tmp_path, caplog):
        sink = tmp_path / "runs.jsonl"
        records.write_record(records.RunRecord("one"), sink)
        with caplog.at_level(logging.WARNING, logger="repro"):
            records.load_records(sink)
        assert not [r for r in caplog.records
                    if r.levelno >= logging.WARNING]

    def test_append_semantics(self, tmp_path):
        sink = tmp_path / "deep" / "runs.jsonl"  # parents created
        records.write_record(records.RunRecord("one"), sink)
        records.write_record(records.RunRecord("two"), sink)
        assert [r.name for r in records.load_records(sink)] == ["one",
                                                               "two"]

    def test_phase_totals_from_record(self):
        obs.enable()
        with obs.span("run"):
            with obs.span("list"):
                pass
        record = records.collect("r")
        totals = record.phase_totals()
        assert set(totals) == {"run", "list"}

    def test_git_revision(self):
        rev = records.git_revision()
        assert rev is None or (isinstance(rev, str) and len(rev) >= 4)

    def test_runs_path_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RUNS_FILE", str(tmp_path / "r.jsonl"))
        assert records.runs_path() == tmp_path / "r.jsonl"
        assert records.runs_path("explicit.jsonl").name == "explicit.jsonl"

    def test_json_default_numpy(self):
        payload = {"i": np.int64(1), "f": np.float64(2.5),
                   "a": np.array([1, 2]), "s": {3, 1}}
        parsed = json.loads(json.dumps(payload,
                                       default=records.json_default))
        assert parsed == {"i": 1, "f": 2.5, "a": [1, 2], "s": [1, 3]}


class TestEnableDisable:
    def test_enable_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert obs.enable_from_env() is False
        assert not obs.is_enabled()
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert obs.enable_from_env() is True
        assert obs.is_enabled()
        assert spans.is_enabled() and metrics.is_enabled()

    def test_enable_disable_symmetry(self):
        obs.enable()
        assert obs.is_enabled()
        obs.disable()
        assert not obs.is_enabled()


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("experiments.harness").name == \
            "repro.experiments.harness"
        assert get_logger("repro.core").name == "repro.core"

    def test_structured_formatter_renders_fields(self):
        record = logging.LogRecord(
            name="repro.test", level=logging.WARNING, pathname=__file__,
            lineno=1, msg="divergence", args=(), exc_info=None)
        record.fields = {"method": "T1", "relative_error": 0.5,
                         "note": "two words"}
        text = StructuredFormatter().format(record)
        assert "divergence" in text
        assert "method=T1" in text
        assert "relative_error=0.5" in text
        assert "note='two words'" in text

    def test_log_event_attaches_fields(self, caplog):
        logger = get_logger("test-events")
        with caplog.at_level(logging.INFO, logger="repro"):
            log_event(logger, logging.INFO, "hello", n=3)
        (record,) = [r for r in caplog.records if r.message == "hello"]
        assert record.fields == {"n": 3}

    def test_repro_log_env_sets_level(self, monkeypatch):
        from repro.obs import logging as obs_logging
        monkeypatch.setenv("REPRO_LOG", "debug")
        logger = obs_logging.setup(force=True)
        assert logger.level == logging.DEBUG
        monkeypatch.delenv("REPRO_LOG")
        logger = obs_logging.setup(force=True)
        assert logger.level == logging.WARNING


class TestHarnessDivergenceWarning:
    def _spec(self):
        from repro import DescendingDegree, DiscretePareto
        from repro.distributions import root_truncation
        from repro.experiments.harness import SimulationSpec
        return SimulationSpec(
            base_dist=DiscretePareto(1.7, 21.0),
            truncation=root_truncation, method="T1",
            permutation=DescendingDegree(), limit_map="descending",
            n_sequences=1, n_graphs=1)

    def test_warns_above_threshold(self, monkeypatch, caplog):
        from repro.experiments.harness import simulated_vs_model
        monkeypatch.setenv("REPRO_MODEL_ERROR_WARN", "0.0")
        rng = np.random.default_rng(0)
        with caplog.at_level(logging.WARNING, logger="repro"):
            sim, model, error = simulated_vs_model(self._spec(), 300, rng)
        warnings = [r for r in caplog.records
                    if r.message == "model-simulation divergence"]
        assert len(warnings) == 1
        assert warnings[0].fields["method"] == "T1"
        assert warnings[0].fields["n"] == 300
        assert warnings[0].fields["relative_error"] == error

    def test_silent_below_threshold(self, monkeypatch, caplog):
        from repro.experiments.harness import simulated_vs_model
        monkeypatch.setenv("REPRO_MODEL_ERROR_WARN", "1000")
        rng = np.random.default_rng(0)
        with caplog.at_level(logging.WARNING, logger="repro"):
            simulated_vs_model(self._spec(), 300, rng)
        assert not [r for r in caplog.records
                    if r.message == "model-simulation divergence"]

    def test_threshold_parsing(self, monkeypatch):
        from repro.experiments import harness
        monkeypatch.setenv("REPRO_MODEL_ERROR_WARN", "0.5")
        assert harness.model_error_warn_threshold() == 0.5
        monkeypatch.setenv("REPRO_MODEL_ERROR_WARN", "junk")
        assert (harness.model_error_warn_threshold()
                == harness.MODEL_ERROR_WARN_DEFAULT)


class TestPipelineIntegration:
    def test_spans_cover_all_phases(self):
        from repro import (DescendingDegree, DiscretePareto,
                           generate_graph, list_triangles, orient,
                           sample_degree_sequence)
        from repro.distributions import root_truncation
        rng = np.random.default_rng(5)
        dist = DiscretePareto(1.7, 21.0).truncate(root_truncation(300))
        degrees = sample_degree_sequence(dist, 300, rng)
        obs.enable()
        with obs.span("run"):
            graph = generate_graph(degrees, rng)
            oriented = orient(graph, DescendingDegree())
            result = list_triangles(oriented, "T1", collect=False)
        (root,) = spans.pop_finished()
        phases = root.phase_totals()
        for phase in ("generate", "relabel", "orient", "list"):
            assert phase in phases, phase
        snap = metrics.snapshot()
        assert snap["counters"]["lister.ops"] == result.ops
        assert snap["counters"]["orient.edges"] == graph.m
        assert 0 <= snap["counters"]["orient.edges_flipped"] <= graph.m

    def test_disabled_results_identical(self):
        from repro import (DescendingDegree, DiscretePareto,
                           generate_graph, list_triangles, orient,
                           sample_degree_sequence)
        from repro.distributions import root_truncation
        rng = np.random.default_rng(5)
        dist = DiscretePareto(1.7, 21.0).truncate(root_truncation(300))
        degrees = sample_degree_sequence(dist, 300, rng)
        graph = generate_graph(degrees, rng)
        oriented = orient(graph, DescendingDegree())
        baseline = list_triangles(oriented, "E1", collect=False)
        obs.enable()
        traced = list_triangles(oriented, "E1", collect=False)
        obs.disable()
        again = list_triangles(oriented, "E1", collect=False)
        for result in (traced, again):
            assert result.ops == baseline.ops
            assert result.comparisons == baseline.comparisons
            assert result.hash_inserts == baseline.hash_inserts
            assert result.count == baseline.count
