"""Tests for limiting maps and measure-preserving kernels (section 5)."""

import numpy as np
import pytest

from repro.core.kernels import (
    MAPS,
    AscendingMap,
    ComplementaryRoundRobinMap,
    DescendingMap,
    RoundRobinMap,
    UniformMap,
    complement_map,
    empirical_kernel,
    get_map,
    reverse_map,
)
from repro.core.methods import METHODS
from repro.orientations.permutations import (
    AscendingDegree,
    ComplementaryRoundRobin,
    DescendingDegree,
    RoundRobin,
)


class TestMeasurePreservation:
    """Definition 4: E[K(v; U)] = v for every map the paper uses."""

    @pytest.mark.parametrize("name", sorted(MAPS))
    def test_paper_maps(self, name):
        assert MAPS[name].check_measure_preserving() < 5e-3

    def test_reverse_preserves(self):
        assert reverse_map(RoundRobinMap()).check_measure_preserving() < 5e-3

    def test_complement_preserves(self):
        assert complement_map(
            DescendingMap()).check_measure_preserving() < 5e-3


class TestExpectedH:
    def test_deterministic_maps(self):
        h = METHODS["T1"].h
        us = np.linspace(0, 1, 11)
        np.testing.assert_allclose(AscendingMap().expected_h(h, us), h(us))
        np.testing.assert_allclose(DescendingMap().expected_h(h, us),
                                   h(1 - us))

    def test_uniform_constants(self):
        """Section 5.3: E[h(U)] = 1/6 (vertex), 1/3 (edge)."""
        u = np.float64(0.37)  # arbitrary: result must not depend on u
        uniform = UniformMap()
        assert float(uniform.expected_h(METHODS["T1"].h, u)) \
            == pytest.approx(1 / 6)
        assert float(uniform.expected_h(METHODS["T2"].h, u)) \
            == pytest.approx(1 / 6)
        assert float(uniform.expected_h(METHODS["E1"].h, u)) \
            == pytest.approx(1 / 3)
        assert float(uniform.expected_h(METHODS["E4"].h, u)) \
            == pytest.approx(1 / 3)

    def test_rr_two_point_average(self):
        """Prop. 6: E[h(xi_RR(u))] = (h((1-u)/2) + h((1+u)/2)) / 2."""
        h = METHODS["E1"].h
        us = np.linspace(0, 1, 21)
        expected = (h((1 - us) / 2) + h((1 + us) / 2)) / 2
        np.testing.assert_allclose(RoundRobinMap().expected_h(h, us),
                                   expected)

    def test_crr_is_rr_complement(self):
        """xi_CRR(u) = xi_RR(1 - u) (Prop. 7)."""
        h = METHODS["E4"].h
        us = np.linspace(0, 1, 21)
        np.testing.assert_allclose(
            ComplementaryRoundRobinMap().expected_h(h, us),
            RoundRobinMap().expected_h(h, 1 - us))

    def test_expected_h_matches_monte_carlo(self):
        rng = np.random.default_rng(5)
        h = METHODS["T2"].h
        for m in (RoundRobinMap(), UniformMap(),
                  ComplementaryRoundRobinMap()):
            u = np.full(200_000, 0.3)
            draws = h(m.sample(u, rng))
            assert float(np.mean(draws)) == pytest.approx(
                float(m.expected_h(h, np.float64(0.3))), abs=5e-3)


class TestPropostion7:
    def test_reverse_expected_h(self):
        """E[h(1 - xi(u))] under reverse equals substituting 1 - x."""
        h = METHODS["T1"].h
        us = np.linspace(0, 1, 21)
        base = RoundRobinMap()
        np.testing.assert_allclose(
            reverse_map(base).expected_h(h, us),
            base.expected_h(lambda x: h(1 - np.asarray(x)), us))

    def test_complement_of_rr_equals_crr(self):
        h = METHODS["E1"].h
        us = np.linspace(0, 1, 21)
        np.testing.assert_allclose(
            complement_map(RoundRobinMap()).expected_h(h, us),
            ComplementaryRoundRobinMap().expected_h(h, us))


class TestGetMap:
    def test_by_name_and_instance(self):
        assert get_map("rr").name == "rr"
        m = DescendingMap()
        assert get_map(m) is m
        with pytest.raises(ValueError):
            get_map("zigzag")


class TestAdmissibility:
    """Definition 5: the named permutations converge to their maps."""

    @pytest.mark.parametrize("perm,limit_map", [
        (AscendingDegree(), AscendingMap()),
        (DescendingDegree(), DescendingMap()),
        (RoundRobin(), RoundRobinMap()),
        (ComplementaryRoundRobin(), ComplementaryRoundRobinMap()),
    ])
    def test_empirical_kernel_converges(self, perm, limit_map):
        # (u, v) chosen away from the RR/CRR kernel atoms
        # {(1-u)/2, (1+u)/2, u/2, 1-u/2}, where the CDF jumps and the
        # finite-n estimate straddles the discontinuity
        n = 40_000
        theta = perm.rank_to_label(n)
        for u in (0.21, 0.52, 0.83):
            for v in (0.33, 0.57, 0.97):
                estimate = empirical_kernel(theta, u, v)
                expected = float(limit_map.kernel(v, np.float64(u)))
                assert estimate == pytest.approx(expected, abs=0.05), \
                    (perm.name, u, v)

    def test_empirical_kernel_validates_input(self):
        with pytest.raises(ValueError):
            empirical_kernel(np.array([], dtype=np.int64), 0.5, 0.5)


class TestKernelCdfMonteCarlo:
    """The kernel K(v; u) matches the empirical CDF of sample()."""

    @pytest.mark.parametrize("map_obj", [RoundRobinMap(),
                                         ComplementaryRoundRobinMap(),
                                         UniformMap()])
    def test_kernel_matches_sampling(self, map_obj):
        import numpy as np
        rng = np.random.default_rng(14)
        u = np.full(100_000, 0.37)
        draws = np.asarray(map_obj.sample(u, rng), dtype=float)
        for v in (0.2, 0.5, 0.69, 0.9):
            empirical = float(np.mean(draws <= v))
            assert empirical == pytest.approx(
                float(map_obj.kernel(v, np.float64(0.37))), abs=0.01)

    def test_reverse_map_kernel_matches_sampling(self):
        import numpy as np
        rng = np.random.default_rng(15)
        base = reverse_map(RoundRobinMap())
        u = np.full(100_000, 0.37)
        draws = np.asarray(base.sample(u, rng), dtype=float)
        for v in (0.2, 0.5, 0.9):
            empirical = float(np.mean(draws <= v))
            assert empirical == pytest.approx(
                float(base.kernel(v, np.float64(0.37))), abs=0.01)
