"""Tests for the per-graph method comparison harness."""

import numpy as np
import pytest

from repro.experiments.comparison import (
    MethodProfile,
    compare_methods,
    format_comparison,
)


class TestCompareMethods:
    def test_sorted_by_cost(self, pareto_graph):
        profiles = compare_methods(pareto_graph)
        costs = [p.per_node_cost for p in profiles]
        assert costs == sorted(costs)

    def test_t1_wins_under_optimal_orders(self, pareto_graph):
        """Theorems 4-5: under each method's optimal ordering, T1 has
        the lowest operation count of the fundamental four."""
        profiles = compare_methods(pareto_graph, time_runs=False)
        assert profiles[0].method == "T1"
        assert profiles[0].order == "descending"

    def test_counts_agree(self, pareto_graph):
        profiles = compare_methods(pareto_graph)
        counts = {p.triangles for p in profiles}
        assert len(counts) == 1

    def test_skip_timing(self, pareto_graph):
        profiles = compare_methods(pareto_graph, time_runs=False)
        assert all(p.seconds == 0.0 for p in profiles)
        assert all(p.triangles == -1 for p in profiles)

    def test_format_includes_verdict(self, pareto_graph):
        text = format_comparison(compare_methods(pareto_graph))
        assert "w = c(E1)/c(T1)" in text
        assert "hash" in text or "SEI" in text

    def test_ops_per_second_property(self):
        profile = MethodProfile("T1", "descending", 10.0, 2.0, 5)
        assert profile.ops_per_second == pytest.approx(5.0)
        zero = MethodProfile("T1", "descending", 10.0, 0.0, 5)
        assert zero.ops_per_second == float("inf")
