"""Tests for the model-conformance audit layer (:mod:`repro.obs.audit`).

Covers the acceptance criteria of the audit PR: zero-overhead when
disabled (bit-identical auto-routed runs, no audit I/O), schema-valid
records for every auto-routed call, realized regret matching the
regret-harness definition bit-for-bit on the committed suite, the
misplan diagnosis taxonomy, the rolling calibration store (round-trip
through ``speed_ratio="calibrated"``, staleness, host matching, the
lru cache), speed-ratio resolution precedence, the deterministic
histogram reservoir, the trend auto columns, the live ``repro top``
planner line, and the ``repro audit`` CLI from cold and populated
history.
"""

import json
import math
import time as time_mod
from types import SimpleNamespace

import pytest

from repro import cli, obs
from repro.core.decision import PAPER_SPEED_RATIO, resolve_speed_ratio
from repro.engine import benchmark as bench
from repro.listing.api import list_triangles
from repro.obs import audit, bus, live, metrics, records, report
from repro.obs.dashboard import render_dashboard
from repro.orientations.permutations import DescendingDegree
from repro.orientations.relabel import orient
from repro.pipeline import run_pipeline
from repro.planner.regret import default_suite, run_regret_suite


@pytest.fixture(autouse=True)
def clean_state(monkeypatch):
    """Isolate every test from the process env and module globals."""
    obs.disable()
    obs.reset()
    bus.reset()
    for var in ("REPRO_AUDIT", "REPRO_AUDIT_FILE",
                "REPRO_CALIBRATION_FILE", "REPRO_CALIBRATION_WRITE",
                "REPRO_CALIBRATION_MAX_AGE_S", "REPRO_SPEED_RATIO"):
        monkeypatch.delenv(var, raising=False)
    monkeypatch.setattr(audit, "_enabled", None)
    bench.calibrated_speed_ratio.cache_clear()
    yield
    obs.disable()
    obs.reset()
    bus.reset()
    bench.calibrated_speed_ratio.cache_clear()


def enable_audit(monkeypatch, tmp_path):
    """Turn auditing on with an isolated sink; returns the sink path."""
    sink = tmp_path / "audit.jsonl"
    monkeypatch.setenv(audit.AUDIT_FILE_ENV, str(sink))
    monkeypatch.setattr(audit, "_enabled", True)
    return sink


# --------------------------------------------------------------- gating

class TestGating:
    def test_off_by_default(self):
        assert audit.is_enabled() is False

    def test_env_resolved_lazily_once(self, monkeypatch):
        monkeypatch.setenv(audit.AUDIT_ENV, "1")
        assert audit.is_enabled() is True
        # resolved exactly once: later env changes don't flip it
        monkeypatch.setenv(audit.AUDIT_ENV, "0")
        assert audit.is_enabled() is True

    @pytest.mark.parametrize("value", ["0", "", "no", "off"])
    def test_falsy_env_values(self, monkeypatch, value):
        monkeypatch.setenv(audit.AUDIT_ENV, value)
        assert audit.is_enabled() is False

    def test_enable_disable(self):
        audit.enable()
        assert audit.is_enabled()
        audit.disable()
        assert not audit.is_enabled()

    def test_disabled_hook_is_inert(self, tmp_path, monkeypatch):
        monkeypatch.setenv(audit.AUDIT_FILE_ENV,
                           str(tmp_path / "audit.jsonl"))
        assert audit.record_auto_route(None, "list_triangles") is None
        assert not (tmp_path / "audit.jsonl").exists()

    def test_audit_path_precedence(self, monkeypatch, tmp_path):
        assert audit.audit_path() == audit.DEFAULT_AUDIT_PATH
        monkeypatch.setenv(audit.AUDIT_FILE_ENV, str(tmp_path / "a"))
        assert audit.audit_path() == tmp_path / "a"
        assert audit.audit_path(tmp_path / "b") == tmp_path / "b"


class TestZeroOverheadOff:
    def test_auto_runs_bit_identical_and_no_io(self, pareto_graph,
                                               tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # catch any default-path writes
        oriented = orient(pareto_graph, DescendingDegree())
        off = list_triangles(oriented, method="auto")
        assert not (tmp_path / "benchmarks").exists()

        sink = enable_audit(monkeypatch, tmp_path)
        on = list_triangles(oriented, method="auto")
        assert (on.count, on.ops) == (off.count, off.ops)
        assert on.extra["auto_method"] == off.extra["auto_method"]
        assert sink.exists()


# ------------------------------------------------------ record lifecycle

class TestAutoRouteRecords:
    def test_list_triangles_route(self, pareto_graph, tmp_path,
                                  monkeypatch):
        sink = enable_audit(monkeypatch, tmp_path)
        oriented = orient(pareto_graph, DescendingDegree())
        result = list_triangles(oriented, method="auto")
        recs = audit.load_audit(sink)
        assert len(recs) == 1
        rec = recs[0]
        assert validate_clean(rec)
        assert rec["route"] == "list_triangles"
        assert rec["picked"]["method"] == result.extra["auto_method"]
        # the routing plan is its own exact table: regret is exactly 0
        assert rec["realized"]["regret"] == 0.0
        assert rec["actual"]["ops"] == result.ops
        assert rec["actual"]["triangles"] == result.count
        assert rec["entries"][0]["rank"] == 1
        assert rec["entries"][0]["method"] == rec["picked"]["method"]

    def test_run_pipeline_route(self, pareto_graph, tmp_path,
                                monkeypatch):
        sink = enable_audit(monkeypatch, tmp_path)
        report_obj = run_pipeline(pareto_graph, method="auto")
        recs = audit.load_audit(sink)
        assert len(recs) == 1
        rec = recs[0]
        assert validate_clean(rec)
        assert rec["route"] == "run_pipeline"
        assert rec["realized"]["regret"] == 0.0
        assert rec["actual"]["triangles"] == report_obj.count
        assert rec["n"] == pareto_graph.n
        assert rec["m"] == pareto_graph.m

    def test_validate_file_accepts_real_records(self, pareto_graph,
                                                tmp_path, monkeypatch):
        sink = enable_audit(monkeypatch, tmp_path)
        run_pipeline(pareto_graph, method="auto")
        oriented = orient(pareto_graph, DescendingDegree())
        list_triangles(oriented, method="auto")
        count, errors = audit.validate_audit_file(sink)
        assert count == 2
        assert errors == []

    def test_ratios_present_on_executed_route(self, pareto_graph,
                                              tmp_path, monkeypatch):
        sink = enable_audit(monkeypatch, tmp_path)
        run_pipeline(pareto_graph, method="auto")
        rec = audit.load_audit(sink)[0]
        assert rec["ratios"]["ops"] > 0
        assert rec["ratios"]["model_ops"] == pytest.approx(1.0)
        assert rec["ratios"]["time_unit_ns"] > 0


def validate_clean(rec) -> bool:
    errors = audit.validate_audit_record(rec)
    assert errors == []
    return True


class TestHarnessMatch:
    def test_regret_matches_harness_bit_for_bit(self, tmp_path,
                                                monkeypatch):
        sink = enable_audit(monkeypatch, tmp_path)
        cases = default_suite(n=200)
        rows = run_regret_suite(cases, seed=2017)
        recs = [r for r in audit.load_audit(sink)
                if r["route"] == "regret_case"]
        assert len(recs) == len(rows) == len(cases)
        by_label = {r["label"]: r for r in recs}
        for row in rows:
            rec = by_label[row["label"]]
            realized = rec["realized"]
            # exact float equality: same arithmetic, same inputs
            assert realized["regret"] == row["regret"]
            assert realized["oracle"] == row["oracle"]
            assert realized["picked_time"] == row["planner_time"]
            assert realized["oracle_time"] == row["oracle_time"]
            assert validate_clean(rec)

    def test_pure_pricing_route_has_no_actual(self, tmp_path,
                                              monkeypatch):
        sink = enable_audit(monkeypatch, tmp_path)
        run_regret_suite(default_suite(n=120)[:1], seed=3)
        rec = audit.load_audit(sink)[0]
        assert rec["actual"] is None
        assert "model_ops" in rec["ratios"]


# ---------------------------------------------------------- graph class

class TestGraphClass:
    @pytest.mark.parametrize("n, m, dmax, expected", [
        (None, 5, None, "unknown"),
        (10, None, None, "unknown"),
        (0, 0, None, "empty"),
        (10, 0, None, "empty"),
        (100, 50, None, "sparse"),         # avg 1 < 10
        (100, 5000, None, "dense"),        # avg 100 > 10
        (100, 50, 3, "sparse-light"),
        (100, 50, 90, "sparse-heavy"),     # 90 > 8 * max(1, 1)
        (100, 5000, 99, "dense-light"),
        (16, 64, 15, "dense-heavy"),       # avg 8 > 4; 15 > 8? no...
    ])
    def test_labels(self, n, m, dmax, expected):
        if expected == "dense-heavy":
            # avg = 8 > sqrt(16) = 4 -> dense; heavy needs > 64
            assert audit.graph_class(16, 64, 65) == "dense-heavy"
        else:
            assert audit.graph_class(n, m, dmax) == expected


# ------------------------------------------------------- realized regret

def _fake_plan(best_time, entry_time, key="T1+D"):
    method, ordering = key.split("+")
    entry = SimpleNamespace(method=method, ordering=ordering,
                            predicted_time=entry_time,
                            predicted_cost=entry_time)
    best = SimpleNamespace(method="E1", ordering="D", key="E1+D",
                           predicted_time=best_time,
                           predicted_cost=best_time)
    return SimpleNamespace(
        best=best,
        entry=lambda m, o: entry if (m, o) == (method, ordering)
        else (_ for _ in ()).throw(KeyError(f"{m}+{o}")))


class TestRealizedRegret:
    def test_pick_missing_from_table(self):
        plan = _fake_plan(1.0, 2.0)
        assert audit.realized_regret(
            {"method": "ZZ", "ordering": "D"}, plan) is None

    def test_basic_arithmetic(self):
        out = audit.realized_regret(
            {"method": "T1", "ordering": "D"}, _fake_plan(2.0, 3.0))
        assert out["regret"] == pytest.approx(0.5)
        assert out["oracle"] == "E1+D"

    def test_zero_best_guards(self):
        # both zero: perfect pick on a free graph
        assert audit.realized_regret(
            {"method": "T1", "ordering": "D"},
            _fake_plan(0.0, 0.0))["regret"] == 0.0
        # free oracle, costly pick: infinite regret
        assert math.isinf(audit.realized_regret(
            {"method": "T1", "ordering": "D"},
            _fake_plan(0.0, 5.0))["regret"])


# -------------------------------------------------------------- diagnose

def _misplan_record(**overrides):
    rec = {
        "speed_ratio": 94.8,
        "confidence": 0.5,
        "picked": {"method": "E1", "ordering": "D", "family": "sei"},
        "entries": [
            {"method": "E1", "ordering": "D", "family": "sei",
             "cost": 100.0},
            {"method": "T1", "ordering": "D", "family": "hash",
             "cost": 5.0},
        ],
        "realized": {"regret": 0.5},
        "ratios": {},
    }
    rec.update(overrides)
    return rec


class TestDiagnose:
    def test_ok_when_regret_small_or_absent(self):
        assert audit.diagnose({"realized": {"regret": 0.05}})["kind"] \
            == "ok"
        assert audit.diagnose({"realized": None})["kind"] == "ok"
        assert audit.diagnose({})["kind"] == "ok"

    def test_model_divergence(self):
        rec = _misplan_record(ratios={"model_ops": 2.0})
        assert audit.diagnose(rec)["kind"] == "model_divergence"

    def test_speed_ratio_drift_needs_winner_flip(self):
        rec = _misplan_record()
        # stored 2.0 vs assumed 94.8: factor >> 2, and re-ranking at
        # 2.0 makes T1 (5.0) beat E1 (100/2 = 50)
        out = audit.diagnose(rec, stored_ratio=2.0)
        assert out["kind"] == "speed_ratio_drift"
        assert "T1+D" in out["detail"]

    def test_drift_without_flip_falls_through(self):
        rec = _misplan_record(entries=[
            {"method": "E1", "ordering": "D", "family": "sei",
             "cost": 1.0},
            {"method": "T1", "ordering": "D", "family": "hash",
             "cost": 500.0}])
        # huge factor but E1 still wins under the stored ratio
        assert audit.diagnose(rec, stored_ratio=2.0)["kind"] \
            == "unexplained"

    def test_tie_margin(self):
        rec = _misplan_record(confidence=0.01)
        assert audit.diagnose(rec)["kind"] == "tie_margin"

    def test_unexplained(self):
        assert audit.diagnose(_misplan_record())["kind"] == "unexplained"

    def test_rerank_winner(self):
        entries = _misplan_record()["entries"]
        assert audit._rerank_winner(entries, 94.8) == "E1+D"
        assert audit._rerank_winner(entries, 2.0) == "T1+D"
        assert audit._rerank_winner([], 2.0) is None


# ------------------------------------------------------------ validation

class TestValidation:
    def test_not_a_dict(self):
        assert audit.validate_audit_record([1, 2])

    def test_missing_and_mistyped_fields(self, pareto_graph, tmp_path,
                                         monkeypatch):
        sink = enable_audit(monkeypatch, tmp_path)
        run_pipeline(pareto_graph, method="auto")
        rec = audit.load_audit(sink)[0]
        assert audit.validate_audit_record(rec) == []
        bad = dict(rec)
        del bad["route"]
        assert any("route" in e for e in audit.validate_audit_record(bad))
        bad = dict(rec, confidence="high")
        assert any("confidence" in e
                   for e in audit.validate_audit_record(bad))
        bad = dict(rec, entries=[])
        assert any("entries" in e
                   for e in audit.validate_audit_record(bad))
        # booleans are not acceptable stand-ins for numbers
        bad = dict(rec, schema=True)
        assert any("schema" in e for e in audit.validate_audit_record(bad))

    def test_validate_file_flags_corrupt_lines(self, tmp_path):
        sink = tmp_path / "audit.jsonl"
        sink.write_text('{"schema": 1}\nnot json\n', encoding="utf-8")
        count, errors = audit.validate_audit_file(sink)
        assert count == 2
        assert any("not JSON" in e for e in errors)
        assert any("line 1" in e for e in errors)  # missing fields


class TestLoadAudit:
    def test_missing_file_is_empty(self, tmp_path):
        assert audit.load_audit(tmp_path / "nope.jsonl") == []

    def test_corrupt_lines_skipped(self, tmp_path):
        sink = tmp_path / "audit.jsonl"
        sink.write_text('{"route": "a"}\ngarbage\n\n{"route": "b"}\n',
                        encoding="utf-8")
        recs = audit.load_audit(sink)
        assert [r["route"] for r in recs] == ["a", "b"]

    def test_inf_regret_roundtrips(self, tmp_path):
        sink = tmp_path / "audit.jsonl"
        audit.write_audit_record(
            {"realized": {"regret": math.inf}}, sink)
        assert math.isinf(audit.load_audit(sink)[0]["realized"]["regret"])


# ----------------------------------------------------------- aggregation

def _rec(method="T1", ordering="D", cls="sparse-light", regret=0.0,
         ratio=1.0, kind="ok", route="list_triangles", label=None):
    return {
        "route": route, "label": label, "graph_class": cls,
        "picked": {"method": method, "ordering": ordering},
        "confidence": 0.4,
        "realized": {"regret": regret, "oracle": "E1+D"},
        "ratios": {"ops": ratio},
        "diagnosis": {"kind": kind, "detail": ""},
    }


class TestAnalyzer:
    def test_prediction_ratio_prefers_measured_ops(self):
        rec = {"ratios": {"ops": 2.0, "model_ops": 3.0}}
        assert audit.prediction_ratio(rec) == 2.0
        assert audit.prediction_ratio({"ratios": {"model_ops": 3.0}}) \
            == 3.0
        assert audit.prediction_ratio({"ratios": {"ops": math.inf}}) \
            is None
        assert audit.prediction_ratio({}) is None

    def test_conformance_rows_group_and_sort(self):
        recs = [_rec(ratio=0.8), _rec(ratio=1.2),
                _rec(method="E1", cls="dense-light", regret=0.5,
                     kind="unexplained")]
        rows = audit.conformance_rows(recs)
        assert len(rows) == 2
        assert rows[0]["method"] == "T1"          # biggest group first
        assert rows[0]["count"] == 2
        assert rows[0]["ratio_median"] == pytest.approx(1.0)
        assert rows[0]["calibration_error"] == pytest.approx(0.2)
        assert rows[0]["misplans"] == 0
        assert rows[1]["misplans"] == 1
        assert rows[1]["regret_max"] == pytest.approx(0.5)

    def test_misplan_rows_threshold_and_order(self):
        recs = [_rec(), _rec(regret=0.2, kind="tie_margin"),
                _rec(regret=math.inf, kind="unexplained")]
        rows = audit.misplan_rows(recs)
        assert len(rows) == 2
        assert math.isinf(rows[0]["regret"])      # worst first
        # a clean diagnosis can still be flagged by a tighter threshold
        assert len(audit.misplan_rows([_rec(regret=0.05)],
                                      threshold=0.01)) == 1

    def test_summary_headlines(self):
        recs = [_rec(), _rec(regret=0.04, route="run_pipeline"),
                _rec(regret=math.inf, kind="unexplained")]
        summary = audit.audit_summary(recs)
        assert summary["records"] == 3
        assert summary["routes"] == {"list_triangles": 2,
                                     "run_pipeline": 1}
        assert summary["misplans"] == 1
        assert summary["median_regret"] == pytest.approx(0.02)
        assert math.isinf(summary["worst_regret"])

    def test_formatters_smoke(self):
        recs = [_rec(), _rec(regret=0.9, kind="tie_margin",
                             label="ring/n=64")]
        assert "misplan" in audit.format_summary(recs)
        assert "tie_margin" in audit.format_misplans(
            audit.misplan_rows(recs))
        assert "T1" in audit.format_conformance(
            audit.conformance_rows(recs))
        assert audit.format_misplans([]) == "no misplans recorded"
        assert audit.format_conformance([]) == "no audit records"


# ------------------------------------------------------------- jsonl I/O

class TestAppendJsonl:
    def test_creates_parents_and_appends(self, tmp_path):
        sink = tmp_path / "deep" / "dir" / "log.jsonl"
        records.append_jsonl_line(sink, '{"a": 1}')
        records.append_jsonl_line(sink, '{"a": 2}\n')  # newline ok
        lines = sink.read_text(encoding="utf-8").splitlines()
        assert [json.loads(l)["a"] for l in lines] == [1, 2]


# ----------------------------------------------------- calibration store

class TestCalibrationStore:
    def test_round_trip(self, tmp_path):
        store = tmp_path / "speed_ratio.json"
        bench.store_calibration(3.5, path=store, now=1000.0)
        assert bench.stored_speed_ratio(path=store, now=1001.0) == 3.5

    def test_median_of_fresh_entries(self, tmp_path):
        store = tmp_path / "speed_ratio.json"
        for ratio in (2.0, 10.0, 3.0):
            bench.store_calibration(ratio, path=store, now=1000.0)
        assert bench.stored_speed_ratio(path=store, now=1001.0) == 3.0

    def test_staleness_returns_none(self, tmp_path):
        store = tmp_path / "speed_ratio.json"
        bench.store_calibration(3.5, path=store, now=1000.0)
        assert bench.stored_speed_ratio(
            path=store, max_age_s=60.0, now=5000.0) is None

    def test_staleness_env_knob(self, tmp_path, monkeypatch):
        store = tmp_path / "speed_ratio.json"
        bench.store_calibration(3.5, path=store,
                                now=time_mod.time() - 120.0)
        monkeypatch.setenv("REPRO_CALIBRATION_MAX_AGE_S", "60")
        assert bench.stored_speed_ratio(path=store) is None
        monkeypatch.setenv("REPRO_CALIBRATION_MAX_AGE_S", "3600")
        assert bench.stored_speed_ratio(path=store) == 3.5

    def test_other_host_entries_ignored(self, tmp_path):
        store = tmp_path / "speed_ratio.json"
        bench.store_calibration(3.5, path=store, now=1000.0)
        data = json.loads(store.read_text(encoding="utf-8"))
        data["entries"][0]["host"] = "128-sparc-py9.9"
        store.write_text(json.dumps(data), encoding="utf-8")
        assert bench.stored_speed_ratio(path=store, now=1001.0) is None

    def test_engine_entries_separate(self, tmp_path):
        store = tmp_path / "speed_ratio.json"
        bench.store_calibration(2.0, engine="numpy", path=store,
                                now=1000.0)
        bench.store_calibration(9.0, engine="native", path=store,
                                now=1000.0)
        assert bench.stored_speed_ratio("numpy", store, now=1001.0) \
            == 2.0
        assert bench.stored_speed_ratio("native", store, now=1001.0) \
            == 9.0

    def test_rolling_window_trims(self, tmp_path):
        store = tmp_path / "speed_ratio.json"
        for i in range(bench.MAX_STORE_ENTRIES + 5):
            bench.store_calibration(float(i + 1), path=store,
                                    now=1000.0 + i)
        entries = bench.load_calibration_store(store)["entries"]
        assert len(entries) == bench.MAX_STORE_ENTRIES
        # the oldest measurements fell off the window
        assert min(e["ratio"] for e in entries) == 6.0

    def test_corrupt_store_degrades_to_empty(self, tmp_path):
        store = tmp_path / "speed_ratio.json"
        store.write_text("{broken", encoding="utf-8")
        assert bench.load_calibration_store(store) \
            == {"version": 1, "entries": []}
        assert bench.stored_speed_ratio(path=store) is None

    def test_calibrated_prefers_store_over_measuring(self, tmp_path,
                                                     monkeypatch):
        store = tmp_path / "speed_ratio.json"
        bench.store_calibration(4.25, path=store)
        monkeypatch.setenv(bench.CALIBRATION_FILE_ENV, str(store))

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("measured despite a fresh store")

        monkeypatch.setattr(bench, "measure_speed_ratio", boom)
        bench.calibrated_speed_ratio.cache_clear()
        assert bench.calibrated_speed_ratio() == 4.25

    def test_calibrated_measures_and_writes_back(self, tmp_path,
                                                 monkeypatch):
        store = tmp_path / "speed_ratio.json"
        monkeypatch.setenv(bench.CALIBRATION_FILE_ENV, str(store))
        monkeypatch.setenv("REPRO_CALIBRATION_WRITE", "1")
        monkeypatch.setattr(bench, "measure_speed_ratio",
                            lambda *a, **kw: 7.5)
        bench.calibrated_speed_ratio.cache_clear()
        assert bench.calibrated_speed_ratio() == 7.5
        # the feedback loop persisted the measurement for next time
        assert bench.stored_speed_ratio(path=store) == 7.5

    def test_no_write_back_without_opt_in(self, tmp_path, monkeypatch):
        store = tmp_path / "speed_ratio.json"
        monkeypatch.setenv(bench.CALIBRATION_FILE_ENV, str(store))
        monkeypatch.setattr(bench, "measure_speed_ratio",
                            lambda *a, **kw: 7.5)
        bench.calibrated_speed_ratio.cache_clear()
        assert bench.calibrated_speed_ratio() == 7.5
        assert not store.exists()

    def test_lru_cache_pins_resolution(self, tmp_path, monkeypatch):
        store = tmp_path / "speed_ratio.json"
        bench.store_calibration(4.0, path=store)
        monkeypatch.setenv(bench.CALIBRATION_FILE_ENV, str(store))
        bench.calibrated_speed_ratio.cache_clear()
        assert bench.calibrated_speed_ratio() == 4.0
        # store changes are invisible until the cache is cleared
        bench.store_calibration(400.0, path=store)
        assert bench.calibrated_speed_ratio() == 4.0
        bench.calibrated_speed_ratio.cache_clear()
        assert bench.calibrated_speed_ratio() > 4.0


class TestSpeedRatioResolution:
    def test_explicit_float_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPEED_RATIO", "50")
        assert resolve_speed_ratio(5.0) == 5.0

    def test_env_beats_paper_default(self, monkeypatch):
        assert resolve_speed_ratio(None) == PAPER_SPEED_RATIO
        monkeypatch.setenv("REPRO_SPEED_RATIO", "12.5")
        assert resolve_speed_ratio(None) == 12.5

    def test_paper_keyword(self):
        assert resolve_speed_ratio("paper") == PAPER_SPEED_RATIO

    def test_calibrated_goes_through_store(self, tmp_path, monkeypatch):
        store = tmp_path / "speed_ratio.json"
        bench.store_calibration(6.5, path=store)
        monkeypatch.setenv(bench.CALIBRATION_FILE_ENV, str(store))
        bench.calibrated_speed_ratio.cache_clear()
        assert resolve_speed_ratio("calibrated") == 6.5

    @pytest.mark.parametrize("bad", ["fast", "-1", "0", "inf"])
    def test_invalid_values_raise(self, bad):
        with pytest.raises(ValueError):
            resolve_speed_ratio(bad)


# --------------------------------------------------- histogram reservoir

class TestReservoir:
    def test_identical_streams_identical_samples(self):
        a, b = metrics.Histogram(), metrics.Histogram()
        stream = [float(i % 997) for i in range(metrics.MAX_SAMPLES
                                                + 2000)]
        for v in stream:
            a.observe(v)
            b.observe(v)
        assert a.samples == b.samples
        assert a.summary() == b.summary()

    def test_exact_stats_survive_sampling(self):
        h = metrics.Histogram()
        n = metrics.MAX_SAMPLES + 321
        for i in range(n):
            h.observe(float(i))
        assert h.count == n
        assert h.total == float(n * (n - 1) // 2)
        assert h.min == 0.0
        assert h.max == float(n - 1)
        assert len(h.samples) == metrics.MAX_SAMPLES

    def test_late_values_can_enter_the_reservoir(self):
        h = metrics.Histogram()
        for _ in range(metrics.MAX_SAMPLES):
            h.observe(0.0)
        for _ in range(metrics.MAX_SAMPLES):
            h.observe(1.0)
        # deterministic with RESERVOIR_SEED: the second half displaces
        # a healthy share of the first
        ones = sum(1 for s in h.samples if s == 1.0)
        assert 0 < ones < metrics.MAX_SAMPLES

    def test_seed_changes_selection(self):
        a, b = metrics.Histogram(seed=1), metrics.Histogram(seed=2)
        for i in range(metrics.MAX_SAMPLES + 2000):
            a.observe(float(i))
            b.observe(float(i))
        assert a.samples != b.samples
        assert (a.count, a.min, a.max) == (b.count, b.min, b.max)


# ------------------------------------------------------ trend auto column

def _run_record(name="sweep", counters=None, gauges=None, config=None,
                ts=1.0):
    return records.RunRecord(
        name=name,
        config=config or {},
        spans=[{"name": "total", "duration_ns": 1_000_000}],
        metrics={"counters": counters or {}, "gauges": gauges or {}},
        meta={"git_rev": "abc1234", "timestamp_unix": ts})


class TestTrendAutoColumns:
    def test_counters_and_gauge(self):
        rows = report.trend_rows([_run_record(
            counters={"planner.auto.E1": 3, "planner.auto_routes": 3},
            gauges={"planner.auto_confidence": 0.4})])
        row = rows[0]
        assert row["auto_method"] == "E1"
        assert row["auto_routes"] == 3.0
        assert row["auto_confidence"] == pytest.approx(0.4)
        rendered = report.format_trends(rows)
        assert "E1x3" in rendered
        assert "0.40" in rendered

    def test_config_extra_fallback(self):
        rows = report.trend_rows([_run_record(config={
            "extra": {"auto_method": "T3", "auto_confidence": 0.2}})])
        assert rows[0]["auto_method"] == "T3"
        assert rows[0]["auto_routes"] == 1.0

    def test_absent_shows_dashes(self):
        rendered = report.format_trends(
            report.trend_rows([_run_record()]))
        assert rows_have_dash(rendered)


def rows_have_dash(rendered: str) -> bool:
    data_line = rendered.splitlines()[1]
    return " -- " in data_line


# -------------------------------------------------------- live + repro top

class TestLivePlannerLine:
    def test_state_folds_planner_events(self):
        state = live.LiveState()
        state.update({"type": "planner.decision", "route": "x",
                      "picked": "E1+D", "confidence": 0.3, "ts": 1.0})
        assert state.planner["picked"] == "E1+D"
        state.update({"type": "planner.misplan", "route": "x",
                      "picked": "T1+D", "oracle": "E1+D",
                      "regret": 0.5, "kind": "tie_margin", "ts": 2.0})
        assert state.misplans == 1
        state.update({"type": "planner.drift", "assumed": 94.8,
                      "calibrated": 2.0, "factor": 47.4, "ts": 3.0})
        gauges = state.to_gauges()
        assert gauges["live.planner_misplans"] == 1.0
        assert gauges["live.planner_regret"] == pytest.approx(0.5)
        assert gauges["live.planner_drift_factor"] == pytest.approx(47.4)

    def test_render_with_and_without_planner(self):
        empty = live.render_status(live.LiveState())
        assert "planner" not in empty
        state = live.LiveState()
        state.update({"type": "planner.misplan", "route": "x",
                      "picked": "T1+D", "oracle": "E1+D",
                      "regret": 0.5, "kind": "tie_margin", "ts": 1.0})
        state.update({"type": "planner.drift", "assumed": 94.8,
                      "calibrated": 2.0, "factor": 47.4, "ts": 2.0})
        rendered = live.render_status(state)
        assert "MISPLAN" in rendered
        assert "regret 50.0%" in rendered
        assert "[tie_margin]" in rendered
        assert "speed-ratio drift" in rendered

    def test_top_once_shows_latest_decision(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        events.write_text(json.dumps(
            {"type": "planner.decision", "route": "list_triangles",
             "picked": "E1+D", "confidence": 0.31, "ts": 5.0}) + "\n",
            encoding="utf-8")
        assert cli.main(["top", "--events", str(events), "--once"]) == 0
        out = capsys.readouterr().out
        assert "planner" in out
        assert "E1+D" in out
        assert "conf 0.31" in out


class TestBusSchema:
    @pytest.mark.parametrize("event", [
        {"type": "planner.decision", "ts": 1.0, "route": "a",
         "picked": "E1+D", "confidence": 0.5, "pid": 1},
        {"type": "planner.misplan", "ts": 1.0, "route": "a",
         "picked": "T1+D", "oracle": "E1+D", "regret": 0.5,
         "kind": "tie_margin", "pid": 1},
        {"type": "planner.drift", "ts": 1.0, "assumed": 94.8,
         "calibrated": 2.0, "factor": 47.4, "pid": 1},
    ])
    def test_new_events_validate(self, event):
        assert bus.validate_event(event) == []

    def test_missing_field_rejected(self):
        assert bus.validate_event(
            {"type": "planner.drift", "ts": 1.0, "assumed": 94.8})


# ------------------------------------------------------------------- CLI

class TestAuditCLI:
    def _populate(self, monkeypatch, tmp_path, graph):
        sink = enable_audit(monkeypatch, tmp_path)
        run_pipeline(graph, method="auto")
        oriented = orient(graph, DescendingDegree())
        list_triangles(oriented, method="auto")
        return sink

    def test_cold_summary_exits_with_message(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            cli.main(["audit", "summary", "--file",
                      str(tmp_path / "none.jsonl")])
        assert "no audit records" in str(exc.value)

    def test_summary_and_fail_over(self, pareto_graph, tmp_path,
                                   monkeypatch, capsys):
        sink = self._populate(monkeypatch, tmp_path, pareto_graph)
        assert cli.main(["audit", "summary", "--file", str(sink)]) == 0
        assert "audit: 2 record(s)" in capsys.readouterr().out
        # auto routes re-price on their own table: zero regret passes
        assert cli.main(["audit", "summary", "--file", str(sink),
                         "--fail-over", "0.25"]) == 0

    def test_fail_over_trips_on_high_regret(self, pareto_graph,
                                            tmp_path, monkeypatch,
                                            capsys):
        sink = self._populate(monkeypatch, tmp_path, pareto_graph)
        bad = audit.load_audit(sink)[0]
        bad["realized"]["regret"] = 0.9
        bad_sink = tmp_path / "bad.jsonl"
        audit.write_audit_record(bad, bad_sink)
        assert cli.main(["audit", "summary", "--file", str(bad_sink),
                         "--fail-over", "0.25"]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_summary_json(self, pareto_graph, tmp_path, monkeypatch,
                          capsys):
        sink = self._populate(monkeypatch, tmp_path, pareto_graph)
        assert cli.main(["audit", "summary", "--file", str(sink),
                         "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["summary"]["records"] == 2
        assert data["conformance"]

    def test_misplans_and_validate(self, pareto_graph, tmp_path,
                                   monkeypatch, capsys):
        sink = self._populate(monkeypatch, tmp_path, pareto_graph)
        assert cli.main(["audit", "misplans", "--file",
                         str(sink)]) == 0
        assert "no misplans" in capsys.readouterr().out
        assert cli.main(["audit", "validate", "--file",
                         str(sink)]) == 0
        assert "2 audit record(s) OK" in capsys.readouterr().out

    def test_validate_rejects_corrupt(self, tmp_path, capsys):
        sink = tmp_path / "audit.jsonl"
        sink.write_text("garbage\n", encoding="utf-8")
        assert cli.main(["audit", "validate", "--file",
                         str(sink)]) == 1
        assert "not JSON" in capsys.readouterr().err

    def test_calibration_cold_and_populated(self, tmp_path, capsys):
        store = tmp_path / "speed_ratio.json"
        with pytest.raises(SystemExit) as exc:
            cli.main(["audit", "calibration", "--store", str(store)])
        assert "no calibration entries" in str(exc.value)
        bench.store_calibration(4.5, path=store)
        assert cli.main(["audit", "calibration", "--store",
                         str(store)]) == 0
        assert "4.5" in capsys.readouterr().out
        assert cli.main(["audit", "calibration", "--store", str(store),
                         "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["stored_ratio"] == 4.5
        assert data["entries"]


class TestDashboardPanel:
    def test_panel_present_only_with_records(self, pareto_graph,
                                             tmp_path, monkeypatch):
        sink = enable_audit(monkeypatch, tmp_path)
        run_pipeline(pareto_graph, method="auto")
        recs = audit.load_audit(sink)
        runs = [_run_record()]
        with_panel = render_dashboard(runs, audit_records=recs)
        assert "Planner audit" in with_panel
        assert "audited decision(s)" in with_panel
        without = render_dashboard(runs)
        assert "Planner audit" not in without

    def test_report_html_audit_flag(self, pareto_graph, tmp_path,
                                    monkeypatch):
        sink = enable_audit(monkeypatch, tmp_path)
        run_pipeline(pareto_graph, method="auto")
        runs = tmp_path / "runs.jsonl"
        records.write_record(_run_record(), path=runs)
        out = tmp_path / "dashboard.html"
        assert cli.main(["report", "html", "--runs", str(runs),
                         "--out", str(out), "--audit",
                         str(sink)]) == 0
        assert "Planner audit" in out.read_text(encoding="utf-8")
