"""Tests for wedge-sampling approximate triangle counting."""

import numpy as np
import pytest

from repro import Graph
from repro.graphs.analysis import triangle_count_sparse, wedge_count
from repro.listing.approximate import approximate_triangle_count


class TestWedgeSampling:
    def test_complete_graph_exact(self, k4_graph):
        """Every wedge of K4 closes: the estimate is exact."""
        rng = np.random.default_rng(0)
        est = approximate_triangle_count(k4_graph, 500, rng)
        assert est.closure_rate == 1.0
        assert est.triangles == pytest.approx(4.0)
        assert est.total_wedges == wedge_count(k4_graph)

    def test_triangle_free_graph(self, path_graph):
        rng = np.random.default_rng(0)
        est = approximate_triangle_count(path_graph, 300, rng)
        assert est.closure_rate == 0.0
        assert est.triangles == 0.0

    def test_unbiased_on_random_graph(self, pareto_graph):
        rng = np.random.default_rng(1)
        exact = triangle_count_sparse(pareto_graph)
        est = approximate_triangle_count(pareto_graph, 30_000, rng)
        assert est.triangles == pytest.approx(exact, rel=0.15)
        lo, hi = est.confidence_interval(z=3.5)
        assert lo <= exact <= hi

    def test_ci_narrows_with_samples(self, pareto_graph):
        rng = np.random.default_rng(2)
        small = approximate_triangle_count(pareto_graph, 500, rng)
        large = approximate_triangle_count(pareto_graph, 20_000, rng)
        width = lambda e: e.confidence_interval()[1] - \
            e.confidence_interval()[0]
        assert width(large) < width(small)

    def test_validation(self, k4_graph):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            approximate_triangle_count(k4_graph, 0, rng)
        with pytest.raises(ValueError, match="no wedges"):
            approximate_triangle_count(Graph(4, [(0, 1), (2, 3)]),
                                       10, rng)
