"""Exact cost accounting for Chiba-Nishizeki (section 2.4's claim).

The paper: CN "proposes a variation of L3 where acyclic orientation
holds only for two of the three edges in each triangle. As a result,
its complexity is c_n(E1, theta) rather than c_n(T2, theta)."

Deriving the exact count: label nodes by reverse processing order
(first removed = largest label). When CN processes ``v`` and scans
``N(u)`` for a live neighbor ``u``, the live entries are ``u``'s
``X_u`` out-neighbors plus its in-neighbors with labels up to
``label(v)`` (including ``v`` itself). Summing over all scans gives

    ``ops = T2 + T3 + m``

-- the E3 member of the E1 equivalence class plus the unavoidable
self-hits, confirming CN pays edge-iterator cost, not vertex-iterator
(T2) cost.
"""

import numpy as np
import pytest

from repro import OrientedGraph
from repro.core.costs import total_cost
from repro.listing.chiba_nishizeki import (
    chiba_nishizeki_processing_labels,
    chiba_nishizeki_triangles,
)


class TestExactAccounting:
    def test_ops_equal_e3_plus_m(self, pareto_graph):
        triangles, ops = chiba_nishizeki_triangles(pareto_graph,
                                                   count_ops=True)
        labels = chiba_nishizeki_processing_labels(pareto_graph)
        oriented = OrientedGraph(pareto_graph, labels)
        e3 = total_cost("E3", oriented.out_degrees, oriented.in_degrees)
        assert ops == int(e3) + pareto_graph.m

    def test_ops_equal_e3_plus_m_small_graphs(self, k4_graph,
                                              bowtie_graph, path_graph):
        for graph in (k4_graph, bowtie_graph, path_graph):
            __, ops = chiba_nishizeki_triangles(graph, count_ops=True)
            labels = chiba_nishizeki_processing_labels(graph)
            oriented = OrientedGraph(graph, labels)
            e3 = total_cost("E3", oriented.out_degrees,
                            oriented.in_degrees)
            assert ops == int(e3) + graph.m

    def test_cn_costs_more_than_pure_t2(self, pareto_graph):
        """The section 2.4 point: CN is not a c_n(T2) algorithm."""
        __, ops = chiba_nishizeki_triangles(pareto_graph, count_ops=True)
        labels = chiba_nishizeki_processing_labels(pareto_graph)
        oriented = OrientedGraph(pareto_graph, labels)
        t2 = total_cost("T2", oriented.out_degrees, oriented.in_degrees)
        assert ops > t2

    def test_labels_are_ascending_degree_like(self, pareto_graph):
        """Descending-degree removal = hubs get the largest labels."""
        labels = chiba_nishizeki_processing_labels(pareto_graph)
        hub = int(np.argmax(pareto_graph.degrees))
        assert labels[hub] == pareto_graph.n - 1

    def test_triangles_unchanged_by_instrumentation(self, bowtie_graph):
        plain = chiba_nishizeki_triangles(bowtie_graph)
        counted, __ = chiba_nishizeki_triangles(bowtie_graph,
                                                count_ops=True)
        assert plain == counted == {(0, 1, 2), (2, 3, 4)}
