"""Unit tests for degree distributions, truncation, and sampling."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distributions import (
    ContinuousPareto,
    DiscretePareto,
    EmpiricalDegreeDistribution,
    GeometricDegree,
    TruncatedDistribution,
    ZipfDegree,
    linear_truncation,
    power_truncation,
    root_truncation,
    sample_degree_sequence,
)


class TestDiscretePareto:
    def test_cdf_matches_paper_form(self):
        dist = DiscretePareto(alpha=1.5, beta=15.0)
        for x in [1, 2, 7, 100]:
            expected = 1.0 - (1.0 + math.floor(x) / 15.0) ** -1.5
            assert dist.cdf(x) == pytest.approx(expected)

    def test_cdf_zero_below_support(self):
        dist = DiscretePareto(alpha=2.0, beta=10.0)
        assert dist.cdf(0) == 0.0
        assert dist.cdf(0.9) == 0.0
        assert dist.cdf(-5) == 0.0

    def test_cdf_is_step_function(self):
        """F(x) depends only on floor(x), per the round-up discretization."""
        dist = DiscretePareto(alpha=1.5, beta=15.0)
        assert dist.cdf(3.0) == dist.cdf(3.7)
        assert dist.cdf(3.999) < dist.cdf(4.0)

    def test_pmf_sums_to_cdf(self):
        dist = DiscretePareto(alpha=1.7, beta=21.0)
        ks = np.arange(1, 200)
        assert np.sum(dist.pmf(ks)) == pytest.approx(float(dist.cdf(199)))

    def test_pmf_zero_on_non_integers(self):
        dist = DiscretePareto(alpha=1.7, beta=21.0)
        assert dist.pmf(2.5) == 0.0
        assert dist.pmf(0) == 0.0

    def test_mean_hurwitz_zeta_vs_summation(self):
        dist = DiscretePareto(alpha=2.5, beta=45.0)
        ks = np.arange(1, 2_000_000, dtype=float)
        brute = float(np.sum(ks * dist.pmf(ks)))
        assert dist.mean() == pytest.approx(brute, rel=1e-3)

    def test_paper_parameterization_mean_about_30(self):
        """beta = 30 (alpha - 1) keeps E[D] ~= 30.5 (section 7.3)."""
        for alpha in [1.5, 1.7, 2.1]:
            dist = DiscretePareto.paper_parameterization(alpha)
            assert dist.mean() == pytest.approx(30.5, abs=0.2)

    def test_paper_parameterization_rejects_alpha_below_one(self):
        with pytest.raises(ValueError):
            DiscretePareto.paper_parameterization(1.0)

    def test_mean_infinite_for_alpha_below_one(self):
        assert math.isinf(DiscretePareto(alpha=0.9, beta=5.0).mean())

    def test_second_moment_infinite_below_two(self):
        assert math.isinf(DiscretePareto(alpha=1.9, beta=5.0).moment(2))
        assert math.isfinite(DiscretePareto(alpha=2.1, beta=5.0).moment(2))

    def test_quantile_is_cdf_inverse(self):
        dist = DiscretePareto(alpha=1.5, beta=15.0)
        for u in [0.01, 0.3, 0.77, 0.999]:
            k = dist.quantile(u)
            assert dist.cdf(k) >= u
            assert dist.cdf(k - 1) < u

    def test_quantile_vectorized(self):
        dist = DiscretePareto(alpha=1.5, beta=15.0)
        us = np.array([0.1, 0.5, 0.9])
        ks = dist.quantile(us)
        assert ks.shape == (3,)
        assert np.all(ks >= 1)

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            DiscretePareto(1.5, 15.0).quantile(1.5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DiscretePareto(alpha=0, beta=1)
        with pytest.raises(ValueError):
            DiscretePareto(alpha=1, beta=-1)

    @given(st.floats(min_value=1.1, max_value=4.0),
           st.floats(min_value=0.5, max_value=50.0),
           st.floats(min_value=1e-6, max_value=1.0 - 1e-9))
    @settings(max_examples=60, deadline=None)
    def test_quantile_inverse_property(self, alpha, beta, u):
        dist = DiscretePareto(alpha, beta)
        k = dist.quantile(u)
        assert k >= 1
        assert dist.cdf(k) >= u - 1e-12
        if k > 1:
            assert dist.cdf(k - 1) < u + 1e-12


class TestContinuousPareto:
    def test_cdf_pdf_consistency(self):
        cont = ContinuousPareto(alpha=1.5, beta=15.0)
        xs = np.linspace(0.01, 50.0, 400)
        numeric = np.trapezoid(cont.pdf(xs), xs)
        assert numeric == pytest.approx(
            float(cont.cdf(50.0) - cont.cdf(0.01)), abs=1e-4)

    def test_quantile_roundtrip(self):
        cont = ContinuousPareto(alpha=1.5, beta=15.0)
        for u in [0.1, 0.5, 0.99]:
            assert cont.cdf(cont.quantile(u)) == pytest.approx(u)

    def test_mean_closed_form(self):
        assert ContinuousPareto(3.0, 10.0).mean() == pytest.approx(5.0)
        assert math.isinf(ContinuousPareto(1.0, 10.0).mean())

    def test_partial_mean_matches_numeric(self):
        cont = ContinuousPareto(alpha=2.2, beta=12.0)
        xs = np.linspace(0, 30, 30_001)
        numeric = np.trapezoid(xs * cont.pdf(xs), xs)
        assert cont.partial_mean(30.0) == pytest.approx(numeric, rel=1e-4)

    def test_spread_cdf_eq19_limits(self):
        """Eq. (19): J(0) = 0 and J(inf) = 1.

        The tail vanishes like alpha (x/beta)^(1-alpha), so for
        alpha = 1.5 reaching 1e-4 residual needs x ~ 1e9 * beta."""
        cont = ContinuousPareto(alpha=1.5, beta=15.0)
        assert cont.spread_cdf(0.0) == pytest.approx(0.0)
        assert cont.spread_cdf(1e12) == pytest.approx(1.0, abs=1e-4)

    def test_spread_tail_index_is_alpha_minus_one(self):
        """The spread's tail is one degree heavier than F's."""
        alpha, beta = 2.5, 10.0
        cont = ContinuousPareto(alpha, beta)
        x1, x2 = 1e4, 1e6
        tail_ratio = (1 - cont.spread_cdf(x2)) / (1 - cont.spread_cdf(x1))
        expected = (x2 / x1) ** (1 - alpha)
        assert tail_ratio == pytest.approx(expected, rel=0.05)

    def test_discretize_roundtrip(self):
        disc = ContinuousPareto(1.5, 15.0).discretize()
        assert isinstance(disc, DiscretePareto)
        assert disc.to_continuous().alpha == 1.5


class TestTruncation:
    def test_truncated_cdf_normalized(self):
        dist = DiscretePareto(1.5, 15.0).truncate(50)
        assert dist.cdf(50) == pytest.approx(1.0)
        assert dist.cdf(1000) == pytest.approx(1.0)

    def test_truncated_pmf_zero_outside(self):
        dist = DiscretePareto(1.5, 15.0).truncate(50)
        assert dist.pmf(51) == 0.0
        assert dist.pmf(0) == 0.0
        assert float(np.sum(dist.pmf(np.arange(1, 51)))) == pytest.approx(1.0)

    def test_truncation_renormalizes_mass(self):
        base = DiscretePareto(1.5, 15.0)
        dist = base.truncate(50)
        assert dist.pmf(3) == pytest.approx(
            float(base.pmf(3)) / float(base.cdf(50)))

    def test_retruncation_uses_original_base(self):
        base = DiscretePareto(1.5, 15.0)
        twice = base.truncate(100).truncate(50)
        once = base.truncate(50)
        assert twice.pmf(7) == pytest.approx(float(once.pmf(7)))

    def test_truncated_quantile_within_support(self):
        dist = DiscretePareto(1.2, 6.0).truncate(30)
        ks = dist.quantile(np.linspace(0.001, 0.999, 64))
        assert np.all(ks >= 1)
        assert np.all(ks <= 30)

    def test_truncate_below_support_raises(self):
        with pytest.raises(ValueError):
            DiscretePareto(1.5, 15.0).truncate(0)

    def test_linear_truncation(self):
        assert linear_truncation(100) == 99
        with pytest.raises(ValueError):
            linear_truncation(1)

    def test_root_truncation(self):
        assert root_truncation(100) == 10
        assert root_truncation(99) == 9
        assert root_truncation(101) == 10
        assert root_truncation(1) == 1

    def test_power_truncation(self):
        sched = power_truncation(0.5)
        assert sched(10_000) == 100
        assert power_truncation(1.0)(100) == 99  # capped at n-1
        with pytest.raises(ValueError):
            power_truncation(0.0)

    @given(st.integers(min_value=4, max_value=10**9))
    @settings(max_examples=100, deadline=None)
    def test_root_truncation_is_integer_sqrt(self, n):
        t = root_truncation(n)
        assert t * t <= n < (t + 1) * (t + 1)


class TestOtherLaws:
    def test_geometric_cdf_and_mean(self):
        dist = GeometricDegree(p=0.25)
        assert dist.cdf(1) == pytest.approx(0.25)
        assert dist.mean() == pytest.approx(4.0)
        assert dist.pmf(3) == pytest.approx(0.75**2 * 0.25)

    def test_geometric_quantile(self):
        dist = GeometricDegree(p=0.3)
        for u in [0.05, 0.5, 0.95]:
            k = dist.quantile(u)
            assert dist.cdf(k) >= u
            assert dist.cdf(k - 1) < u

    def test_geometric_rejects_bad_p(self):
        with pytest.raises(ValueError):
            GeometricDegree(p=0.0)
        with pytest.raises(ValueError):
            GeometricDegree(p=1.0)

    def test_zipf_pmf_normalized(self):
        dist = ZipfDegree(s=2.5)
        ks = np.arange(1, 100_000, dtype=float)
        assert float(np.sum(dist.pmf(ks))) == pytest.approx(1.0, abs=1e-3)

    def test_zipf_mean_closed_form(self):
        from scipy.special import zeta
        dist = ZipfDegree(s=3.0)
        assert dist.mean() == pytest.approx(zeta(2.0) / zeta(3.0))
        assert math.isinf(ZipfDegree(s=2.0).mean())

    def test_zipf_rejects_s_below_one(self):
        with pytest.raises(ValueError):
            ZipfDegree(s=1.0)

    def test_empirical_reconstruction(self):
        observed = np.array([1, 1, 2, 3, 3, 3, 7])
        dist = EmpiricalDegreeDistribution(observed)
        assert dist.pmf(3) == pytest.approx(3 / 7)
        assert dist.cdf(2) == pytest.approx(3 / 7)
        assert dist.support_max == 7.0
        assert dist.pmf(4) == 0.0

    def test_empirical_quantile(self):
        dist = EmpiricalDegreeDistribution([1, 2, 2, 5])
        assert dist.quantile(0.1) == 1
        assert dist.quantile(0.5) == 2
        assert dist.quantile(0.99) == 5

    def test_empirical_rejects_bad_input(self):
        with pytest.raises(ValueError):
            EmpiricalDegreeDistribution([])
        with pytest.raises(ValueError):
            EmpiricalDegreeDistribution([0, 1])


class TestSampling:
    def test_sequence_shape_and_range(self, rng):
        dist = DiscretePareto(1.5, 15.0).truncate(50)
        degrees = sample_degree_sequence(dist, 500, rng)
        assert degrees.shape == (500,)
        assert degrees.min() >= 1
        assert degrees.max() <= 50

    def test_even_sum_enforced(self, rng):
        dist = DiscretePareto(1.5, 15.0).truncate(50)
        for __ in range(20):
            degrees = sample_degree_sequence(dist, 101, rng)
            assert degrees.sum() % 2 == 0

    def test_raw_draw_keeps_parity(self, rng):
        dist = DiscretePareto(1.5, 15.0).truncate(50)
        sums = {sample_degree_sequence(dist, 101, rng,
                                       ensure_even_sum=False).sum() % 2
                for __ in range(50)}
        assert sums == {0, 1}  # both parities occur in the raw draw

    def test_empirical_mean_matches_distribution(self, rng):
        dist = DiscretePareto(2.5, 45.0).truncate(1000)
        degrees = sample_degree_sequence(dist, 200_000, rng)
        ks = np.arange(1, 1001, dtype=float)
        expected = float(np.sum(ks * dist.pmf(ks)))
        assert degrees.mean() == pytest.approx(expected, rel=0.02)

    def test_empirical_cdf_matches(self, rng):
        """Kolmogorov-style check of the inverse-CDF sampler."""
        dist = DiscretePareto(1.7, 21.0).truncate(200)
        degrees = sample_degree_sequence(dist, 100_000, rng,
                                         ensure_even_sum=False)
        for x in [1, 3, 10, 50]:
            empirical = np.mean(degrees <= x)
            assert empirical == pytest.approx(float(dist.cdf(x)), abs=0.01)

    def test_invalid_n(self, rng):
        with pytest.raises(ValueError):
            sample_degree_sequence(DiscretePareto(1.5, 15.0), 0, rng)
