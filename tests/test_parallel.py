"""Tests for the multiprocess simulation runner."""

import numpy as np
import pytest

from repro import DescendingDegree, DiscretePareto, obs
from repro.distributions import root_truncation
from repro.experiments.harness import SimulationSpec, sweep_n
from repro.experiments.parallel import (resolve_chunksize, resolve_workers,
                                        simulate_cost_parallel,
                                        sweep_n_parallel)


def _spec(n_sequences=3, n_graphs=2):
    return SimulationSpec(
        base_dist=DiscretePareto(1.7, 21.0),
        truncation=root_truncation,
        method="T1",
        permutation=DescendingDegree(),
        limit_map="descending",
        n_sequences=n_sequences,
        n_graphs=n_graphs,
    )


class TestResolvers:
    def test_explicit_workers_win(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "7")
        assert resolve_workers(3, n_tasks=100) == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "2")
        assert resolve_workers(None, n_tasks=100) == 2

    def test_env_capped_by_tasks(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "64")
        assert resolve_workers(None, n_tasks=3) == 3

    def test_bad_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "lots")
        assert resolve_workers(None, n_tasks=2) >= 1

    def test_workers_floor_is_one(self):
        assert resolve_workers(0, n_tasks=10) == 1
        assert resolve_workers(-3, n_tasks=10) == 1

    def test_chunksize_explicit(self):
        assert resolve_chunksize(5, n_tasks=100, workers=4) == 5

    def test_chunksize_default_covers_tasks(self):
        cs = resolve_chunksize(None, n_tasks=100, workers=4)
        assert 1 <= cs <= 25


class TestParallelRunner:
    def test_serial_path(self):
        value = simulate_cost_parallel(_spec(), 600, seed=1,
                                       max_workers=1)
        assert value > 0

    def test_reproducible_across_worker_counts(self):
        """Seed streams derive from SeedSequence, not worker identity."""
        spec = _spec()
        serial = simulate_cost_parallel(spec, 600, seed=7, max_workers=1)
        parallel = simulate_cost_parallel(spec, 600, seed=7,
                                          max_workers=2)
        assert serial == pytest.approx(parallel, rel=1e-12)

    def test_reproducible_across_chunksizes(self):
        spec = _spec(n_sequences=4)
        a = simulate_cost_parallel(spec, 500, seed=5, max_workers=2,
                                   chunksize=1)
        b = simulate_cost_parallel(spec, 500, seed=5, max_workers=2,
                                   chunksize=4)
        assert a == b

    def test_seed_sequence_accepted(self):
        spec = _spec()
        ss = np.random.SeedSequence([2017, 600, 0])
        a = simulate_cost_parallel(spec, 600, seed=ss, max_workers=1)
        b = simulate_cost_parallel(
            spec, 600, seed=np.random.SeedSequence([2017, 600, 0]),
            max_workers=2)
        assert a == b

    def test_env_worker_override(self, monkeypatch):
        """REPRO_MAX_WORKERS steers the pool without changing values."""
        spec = _spec()
        baseline = simulate_cost_parallel(spec, 500, seed=9,
                                          max_workers=1)
        monkeypatch.setenv("REPRO_MAX_WORKERS", "2")
        assert simulate_cost_parallel(spec, 500, seed=9) == baseline

    def test_matches_model_magnitude(self):
        """Sanity: the parallel estimate lands near the model."""
        from repro import discrete_cost_model
        spec = _spec(n_sequences=4, n_graphs=2)
        n = 2000
        value = simulate_cost_parallel(spec, n, seed=3, max_workers=2)
        model = discrete_cost_model(
            spec.base_dist.truncate(root_truncation(n)), "T1",
            "descending")
        assert value == pytest.approx(model, rel=0.2)


class TestSweep:
    NS = (400, 700)

    def test_sweep_worker_invariance(self):
        spec = _spec()
        serial = sweep_n_parallel(spec, self.NS, seed=13, max_workers=1)
        pooled = sweep_n_parallel(spec, self.NS, seed=13, max_workers=2)
        assert serial == pooled

    def test_sweep_n_delegates_to_pool(self):
        """harness.sweep_n(workers=N) equals the parallel scheduler."""
        spec = _spec()
        direct = sweep_n_parallel(spec, self.NS, seed=13, max_workers=2)
        via_harness = sweep_n(spec, self.NS, seed=13, workers=2)
        assert direct == via_harness

    def test_sweep_rows_shape(self):
        rows = sweep_n_parallel(_spec(), self.NS, seed=13, max_workers=2)
        assert [r["n"] for r in rows] == list(self.NS)
        for row in rows:
            assert row["sim"] > 0 and row["model"] > 0
            assert abs(row["error"]) < 1.0


class TestObsParity:
    """The pooled path reports the same telemetry as the serial one."""

    def _run(self, max_workers):
        obs.enable()
        obs.reset()
        try:
            with obs.span("root"):
                simulate_cost_parallel(_spec(n_sequences=4), 400,
                                       seed=21, max_workers=max_workers)
            spans = obs.pop_finished()
            counters = obs.metrics_snapshot()["counters"]
        finally:
            obs.disable()
        (root,) = spans
        (cell,) = root.children
        return cell, counters

    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_cell_span_and_children(self, max_workers):
        cell, counters = self._run(max_workers)
        assert cell.name == "cell"
        assert cell.attrs["workers"] == max_workers
        assert cell.attrs["instances"] == 8  # 4 sequences x 2 graphs
        seq_spans = [c for c in cell.children if c.name == "sequence"]
        assert len(seq_spans) == 4
        for seq in seq_spans:
            assert any(c.name == "sample" for c in seq.children)

    def test_worker_counters_merged(self):
        __, serial = self._run(1)
        __, pooled = self._run(2)
        assert pooled["harness.instances"] == 8
        assert pooled["orient.edges"] == serial["orient.edges"] > 0
        assert pooled["orient.runs"] == serial["orient.runs"] == 8


class TestWorkerTelemetry:
    """The pool publishes per-worker telemetry into the parent obs.

    Contract (the perf-gate relies on it): deterministic facts are
    *counters* and bit-identical at any pool geometry; wall-clock
    facts are gauges/histograms and never gate.
    """

    def _run(self, max_workers):
        obs.enable()
        obs.reset()
        try:
            with obs.span("root"):
                simulate_cost_parallel(_spec(n_sequences=4), 400,
                                       seed=21, max_workers=max_workers)
            (root,) = obs.pop_finished()
            snap = obs.metrics_snapshot()
        finally:
            obs.disable()
        (cell,) = root.children
        return cell, snap

    def test_counters_identical_across_worker_counts(self):
        __, serial = self._run(1)
        __, pooled = self._run(4)
        assert serial["counters"] == pooled["counters"]
        assert pooled["counters"]["parallel.tasks"] == 4  # n_sequences
        assert pooled["counters"]["parallel.cells"] == 1

    @pytest.mark.parametrize("max_workers", [1, 4])
    def test_gauges_and_histogram(self, max_workers):
        cell, snap = self._run(max_workers)
        gauges = snap["gauges"]
        assert gauges["parallel.workers"] == max_workers
        assert 0.0 <= gauges["parallel.idle_share"] <= 1.0
        assert gauges["parallel.imbalance_ratio"] >= 1.0
        assert snap["histograms"]["parallel.task_ms"]["count"] == 4
        assert cell.attrs["worker_pids"] >= 1
        assert cell.attrs["idle_share"] == pytest.approx(
            gauges["parallel.idle_share"], abs=1e-4)

    def test_disabled_publishes_nothing(self):
        obs.disable()
        obs.reset()
        simulate_cost_parallel(_spec(n_sequences=4), 400, seed=21,
                               max_workers=2)
        snap = obs.metrics_snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}
