"""Tests for the multiprocess simulation runner."""

import numpy as np
import pytest

from repro import DescendingDegree, DiscretePareto
from repro.distributions import root_truncation
from repro.experiments.harness import SimulationSpec
from repro.experiments.parallel import simulate_cost_parallel


def _spec(n_sequences=3, n_graphs=2):
    return SimulationSpec(
        base_dist=DiscretePareto(1.7, 21.0),
        truncation=root_truncation,
        method="T1",
        permutation=DescendingDegree(),
        limit_map="descending",
        n_sequences=n_sequences,
        n_graphs=n_graphs,
    )


class TestParallelRunner:
    def test_serial_path(self):
        value = simulate_cost_parallel(_spec(), 600, seed=1,
                                       max_workers=1)
        assert value > 0

    def test_reproducible_across_worker_counts(self):
        """Seed streams derive from SeedSequence, not worker identity."""
        spec = _spec()
        serial = simulate_cost_parallel(spec, 600, seed=7, max_workers=1)
        parallel = simulate_cost_parallel(spec, 600, seed=7,
                                          max_workers=2)
        assert serial == pytest.approx(parallel, rel=1e-12)

    def test_matches_model_magnitude(self):
        """Sanity: the parallel estimate lands near the model."""
        from repro import discrete_cost_model
        spec = _spec(n_sequences=4, n_graphs=2)
        n = 2000
        value = simulate_cost_parallel(spec, n, seed=3, max_workers=2)
        model = discrete_cost_model(
            spec.base_dist.truncate(root_truncation(n)), "T1",
            "descending")
        assert value == pytest.approx(model, rel=0.2)
