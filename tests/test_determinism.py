"""Determinism guarantees: fixed seeds reproduce everything exactly."""

import numpy as np
import pytest

from repro import (
    DiscretePareto,
    UniformRandom,
    generate_graph,
    orient,
    sample_degree_sequence,
)
from repro.distributions import root_truncation


def _build(seed):
    rng = np.random.default_rng(seed)
    dist = DiscretePareto(1.7, 21.0).truncate(root_truncation(800))
    degrees = sample_degree_sequence(dist, 800, rng)
    graph = generate_graph(degrees, rng)
    oriented = orient(graph, UniformRandom(), rng=rng,
                      tie_break="random")
    return degrees, graph, oriented


class TestSeededReproducibility:
    def test_identical_graphs_same_seed(self):
        d1, g1, o1 = _build(42)
        d2, g2, o2 = _build(42)
        np.testing.assert_array_equal(d1, d2)
        np.testing.assert_array_equal(g1.edges, g2.edges)
        np.testing.assert_array_equal(o1.labels, o2.labels)

    def test_different_seed_different_graph(self):
        __, g1, __ = _build(1)
        __, g2, __ = _build(2)
        assert g1.m != g2.m or not np.array_equal(g1.edges, g2.edges)

    def test_table_generator_deterministic(self):
        from repro.experiments.paper_tables import table06
        __, rows_a = table06(sizes=(400,), n_sequences=2, n_graphs=1)
        __, rows_b = table06(sizes=(400,), n_sequences=2, n_graphs=1)
        for cell_a, cell_b in zip(rows_a[0].cells, rows_b[0].cells):
            assert cell_a[0] == pytest.approx(cell_b[0], rel=1e-12)

    def test_twitter_study_deterministic(self):
        from repro.experiments.twitter import (cost_matrix,
                                               twitter_like_graph)
        g1 = twitter_like_graph(n=1500, rng=np.random.default_rng(9))
        g2 = twitter_like_graph(n=1500, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(cost_matrix(g1), cost_matrix(g2))
