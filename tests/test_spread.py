"""Tests for the spread distribution J(x) (section 4.1, eqs. (18)-(19))."""

import numpy as np
import pytest

from repro import DiscretePareto, SpreadDistribution, pareto_spread_cdf
from repro.core.weights import capped_weight, identity_weight
from repro.distributions import ContinuousPareto, GeometricDegree


class TestSpreadBasics:
    def test_is_a_cdf(self):
        dist = DiscretePareto(1.7, 21.0).truncate(200)
        spread = SpreadDistribution(dist)
        xs = np.arange(0, 201)
        js = spread.cdf(xs.astype(float))
        assert js[0] == 0.0
        assert js[-1] == pytest.approx(1.0)
        assert np.all(np.diff(js) >= -1e-15)

    def test_pmf_is_size_biased(self):
        """P(S = k) = k P(D = k) / E[D] for w(x) = x."""
        dist = DiscretePareto(1.7, 21.0).truncate(100)
        spread = SpreadDistribution(dist)
        ks = np.arange(1, 101, dtype=float)
        mean = float(np.sum(ks * dist.pmf(ks)))
        np.testing.assert_allclose(spread.pmf(ks),
                                   ks * dist.pmf(ks) / mean)

    def test_requires_finite_support(self):
        with pytest.raises(ValueError, match="finite support"):
            SpreadDistribution(DiscretePareto(1.5, 15.0))

    def test_weighted_spread(self):
        """With w(x) = min(x, a) the bias saturates above a."""
        dist = DiscretePareto(1.7, 21.0).truncate(100)
        spread = SpreadDistribution(dist, weight=capped_weight(10.0))
        ks = np.arange(1, 101, dtype=float)
        w = np.minimum(ks, 10.0)
        norm = float(np.sum(w * dist.pmf(ks)))
        np.testing.assert_allclose(spread.pmf(ks),
                                   w * dist.pmf(ks) / norm)

    def test_mean_weight(self):
        dist = DiscretePareto(1.7, 21.0).truncate(100)
        ks = np.arange(1, 101, dtype=float)
        expected = float(np.sum(ks * dist.pmf(ks)))
        assert SpreadDistribution(dist).mean_weight == pytest.approx(expected)


class TestInspectionParadox:
    def test_spread_stochastically_dominates(self):
        """The degree seen by a random edge dominates a random degree."""
        dist = DiscretePareto(1.7, 21.0).truncate(100)
        spread = SpreadDistribution(dist)
        xs = np.arange(1, 100, dtype=float)
        assert np.all(spread.cdf(xs) <= dist.cdf(xs) + 1e-12)

    def test_proposition_5_sampling(self, rng):
        """Prop. 5: size-biased node picking converges to J."""
        dist = DiscretePareto(1.7, 21.0).truncate(50)
        spread = SpreadDistribution(dist)
        draws = spread.sample(100_000, rng)
        for x in [2, 5, 20]:
            assert np.mean(draws <= x) == pytest.approx(
                float(spread.cdf(float(x))), abs=0.01)


class TestParetoClosedForm:
    def test_eq19_matches_numeric_integral(self):
        """J(x) of eq. (19) vs numeric int_0^x y f(y) dy / E[D]."""
        alpha, beta = 1.8, 24.0
        cont = ContinuousPareto(alpha, beta)
        xs = np.linspace(0.1, 200.0, 9)
        grid = np.linspace(0, 200.0, 400_001)
        dens = grid * cont.pdf(grid)
        cum = np.concatenate([[0], np.cumsum(
            (dens[1:] + dens[:-1]) / 2 * np.diff(grid))])
        for x in xs:
            numeric = np.interp(x, grid, cum) / cont.mean()
            assert pareto_spread_cdf(alpha, beta, x) == pytest.approx(
                numeric, abs=1e-4)

    def test_eq19_requires_alpha_above_one(self):
        with pytest.raises(ValueError):
            pareto_spread_cdf(1.0, 10.0, 5.0)

    def test_tail_shape_alpha_minus_one(self):
        """Section 4.1: the spread has Pareto-like tail alpha - 1."""
        alpha, beta = 2.5, 10.0
        x1, x2 = 1e5, 1e7
        r = ((1 - pareto_spread_cdf(alpha, beta, x2))
             / (1 - pareto_spread_cdf(alpha, beta, x1)))
        assert r == pytest.approx((x2 / x1) ** (1 - alpha), rel=0.02)

    def test_discrete_spread_approaches_continuous(self):
        """Truncated discrete J_n tracks eq. (19) for moderate x."""
        alpha, beta = 1.7, 21.0
        dist = DiscretePareto(alpha, beta).truncate(100_000)
        spread = SpreadDistribution(dist)
        for x in [10.0, 50.0, 500.0]:
            assert spread.cdf(x) == pytest.approx(
                pareto_spread_cdf(alpha, beta, x), abs=0.02)


class TestGeometricSpread:
    def test_exponential_like_spread_is_erlang_like(self):
        """Section 4.1 notes exponential D gives Erlang(2) spread; the
        geometric analogue: P(S = k) ~ k (1-p)^(k-1) p^2-ish shape --
        check the mode shifts right of 1."""
        dist = GeometricDegree(0.2).truncate(200)
        spread = SpreadDistribution(dist)
        ks = np.arange(1, 201, dtype=float)
        pmf = spread.pmf(ks)
        assert int(ks[np.argmax(pmf)]) > 1  # mode moved off the minimum
        assert np.sum(pmf) == pytest.approx(1.0)


@pytest.fixture
def rng():
    return np.random.default_rng(99)
