"""Cross-cutting property-based tests of the model stack."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import DiscretePareto, discrete_cost_model, fast_cost_model
from repro.core.kernels import MAPS
from repro.core.methods import FUNDAMENTAL_METHODS
from repro.core.spread import SpreadDistribution
from repro.distributions import GeometricDegree, ZipfDegree

alphas = st.floats(min_value=1.05, max_value=4.0)
betas = st.floats(min_value=0.5, max_value=60.0)
truncations = st.integers(min_value=5, max_value=2000)
methods = st.sampled_from(FUNDAMENTAL_METHODS)
map_names = st.sampled_from(sorted(MAPS))


class TestFastModelEquivalence:
    @given(alphas, betas, truncations, methods, map_names)
    @settings(max_examples=60, deadline=None)
    def test_fast_equals_exact_at_unit_jump(self, alpha, beta, t, method,
                                            map_name):
        """Algorithm 2 with eps <= 1/t IS the exact model (50)."""
        dist = DiscretePareto(alpha, beta).truncate(t)
        exact = discrete_cost_model(dist, method, map_name)
        fast = fast_cost_model(dist, method, map_name, eps=0.9 / t)
        assert fast == pytest.approx(exact, rel=1e-9, abs=1e-12)

    @given(alphas, betas, methods, map_names)
    @settings(max_examples=30, deadline=None)
    def test_compression_error_is_small(self, alpha, beta, method,
                                        map_name):
        """Moderate eps loses little accuracy (the Table 5 finding)."""
        dist = DiscretePareto(alpha, beta).truncate(5000)
        exact = discrete_cost_model(dist, method, map_name)
        fast = fast_cost_model(dist, method, map_name, eps=1e-3)
        assert fast == pytest.approx(exact, rel=0.02)


class TestModelStructure:
    @given(alphas, betas, truncations, map_names)
    @settings(max_examples=40, deadline=None)
    def test_e1_always_t1_plus_t2(self, alpha, beta, t, map_name):
        """Prop. 2 holds inside the model for every map and law."""
        dist = DiscretePareto(alpha, beta).truncate(t)
        e1 = discrete_cost_model(dist, "E1", map_name)
        t1 = discrete_cost_model(dist, "T1", map_name)
        t2 = discrete_cost_model(dist, "T2", map_name)
        assert e1 == pytest.approx(t1 + t2, rel=1e-9, abs=1e-12)

    @given(alphas, betas, truncations)
    @settings(max_examples=40, deadline=None)
    def test_descending_never_worse_than_ascending_for_t1(self, alpha,
                                                          beta, t):
        """Corollary 1 at the model level, for every truncated law."""
        dist = DiscretePareto(alpha, beta).truncate(t)
        desc = discrete_cost_model(dist, "T1", "descending")
        asc = discrete_cost_model(dist, "T1", "ascending")
        assert desc <= asc + 1e-9

    @given(alphas, betas, truncations)
    @settings(max_examples=40, deadline=None)
    def test_rr_never_worse_than_monotone_for_t2(self, alpha, beta, t):
        """Corollary 2 at the model level."""
        dist = DiscretePareto(alpha, beta).truncate(t)
        rr = discrete_cost_model(dist, "T2", "rr")
        desc = discrete_cost_model(dist, "T2", "descending")
        assert rr <= desc + 1e-9

    @given(alphas, betas, truncations, methods)
    @settings(max_examples=40, deadline=None)
    def test_cost_nonnegative(self, alpha, beta, t, method):
        dist = DiscretePareto(alpha, beta).truncate(t)
        for map_name in MAPS:
            assert discrete_cost_model(dist, method, map_name) >= 0.0


class TestSpreadProperties:
    @given(alphas, betas, truncations)
    @settings(max_examples=40, deadline=None)
    def test_pareto_spread_is_cdf(self, alpha, beta, t):
        spread = SpreadDistribution(DiscretePareto(alpha, beta).truncate(t))
        xs = np.linspace(0.0, t + 2.0, 50)
        js = np.asarray(spread.cdf(xs), dtype=float)
        assert np.all(np.diff(js) >= -1e-12)
        assert js[0] == 0.0
        assert js[-1] == pytest.approx(1.0)

    @given(st.floats(min_value=0.05, max_value=0.9),
           truncations)
    @settings(max_examples=30, deadline=None)
    def test_geometric_spread_is_cdf(self, p, t):
        spread = SpreadDistribution(GeometricDegree(p).truncate(t))
        xs = np.arange(0, t + 1, dtype=float)
        js = np.asarray(spread.cdf(xs), dtype=float)
        assert np.all(np.diff(js) >= -1e-12)
        assert js[-1] == pytest.approx(1.0)

    @given(st.floats(min_value=1.2, max_value=4.0), truncations)
    @settings(max_examples=30, deadline=None)
    def test_zipf_model_runs(self, s, t):
        """The whole stack accepts non-Pareto laws (Theorem 1 is
        distribution-generic)."""
        dist = ZipfDegree(s).truncate(t)
        value = discrete_cost_model(dist, "T1", "descending")
        assert value >= 0.0


degree_sequences = st.lists(st.integers(min_value=1, max_value=60),
                            min_size=4, max_size=80)


class TestPlannerProperties:
    @given(alphas, betas, truncations)
    @settings(max_examples=30, deadline=None)
    def test_predicted_costs_positive_and_finite(self, alpha, beta, t):
        """Every candidate of a truncated law prices to a finite,
        non-negative cost -- no admissible alpha can break the plan."""
        from repro.planner import plan_for_distribution
        dist = DiscretePareto(alpha, beta).truncate(t)
        plan = plan_for_distribution(dist)
        assert len(plan.entries) == 18 * 5
        for entry in plan.entries:
            assert math.isfinite(entry.predicted_cost)
            assert entry.predicted_cost >= 0.0
            assert entry.predicted_time <= entry.predicted_cost + 1e-12

    @given(degree_sequences, st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_ranking_invariant_under_degree_permutation(self, degrees,
                                                        random):
        """Only the degree histogram enters the model, so shuffling
        the sequence cannot change the plan."""
        from repro.planner import plan_for_degrees
        shuffled = list(degrees)
        random.shuffle(shuffled)
        base = plan_for_degrees(degrees)
        other = plan_for_degrees(shuffled)
        assert [e.key for e in base.entries] == \
            [e.key for e in other.entries]
        assert [e.predicted_time for e in base.entries] == \
            [e.predicted_time for e in other.entries]

    @given(degree_sequences, st.permutations(
        ["T1", "T2", "T3", "E1", "E4", "L1", "L3"]))
    @settings(max_examples=30, deadline=None)
    def test_argmin_stable_under_candidate_reordering(self, degrees,
                                                      methods):
        """The ranking is a function of the candidate *set*: feeding
        the methods in any order yields the identical plan."""
        from repro.planner import plan_for_degrees
        base = plan_for_degrees(degrees,
                                methods=("T1", "T2", "T3", "E1",
                                         "E4", "L1", "L3"))
        other = plan_for_degrees(degrees, methods=tuple(methods))
        assert [e.key for e in base.entries] == \
            [e.key for e in other.entries]

    @given(alphas, betas, st.integers(min_value=30, max_value=120))
    @settings(max_examples=15, deadline=None)
    def test_sketch_converges_to_exact_degree_plan(self, alpha, beta,
                                                   n):
        """Sampling without replacement: a sketch of size >= n IS the
        full degree sequence, so the plans coincide exactly."""
        from repro.distributions import root_truncation
        from repro.distributions.sampling import sample_degree_sequence
        from repro.graphs.generators import generate_graph
        from repro.planner import plan_for_degrees, plan_for_sketch
        rng = np.random.default_rng(n)
        dist = DiscretePareto(alpha, beta).truncate(root_truncation(n))
        graph = generate_graph(sample_degree_sequence(dist, n, rng),
                               rng)
        full = plan_for_degrees(graph.degrees, n=graph.n)
        sketch = plan_for_sketch(graph, 2 * n, rng)
        assert [e.key for e in full.entries] == \
            [e.key for e in sketch.entries]
        assert [e.predicted_time for e in full.entries] == \
            [e.predicted_time for e in sketch.entries]
