"""Tests for section 6: Theorems 3-5, Corollaries 1-3, Proposition 8."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.kernels import (
    MAPS,
    AscendingMap,
    ComplementaryRoundRobinMap,
    DescendingMap,
    RoundRobinMap,
    UniformMap,
)
from repro.core.methods import METHODS
from repro.core.optimality import (
    cost_functional,
    discrete_functional,
    opt_permutation_ranks,
    optimal_map,
    worst_map,
)

INCREASING_RS = [
    lambda x: x,
    lambda x: x**2,
    lambda x: np.exp(2 * x),
    lambda x: np.sqrt(x),
]

DECREASING_RS = [
    lambda x: 1 - x,
    lambda x: np.exp(-3 * x),
    lambda x: 1.0 / (1.0 + 5 * x),
]


class TestOptimalMapAssignments:
    def test_corollary_1(self):
        assert isinstance(optimal_map("T1"), DescendingMap)
        assert isinstance(optimal_map("E1"), DescendingMap)
        assert isinstance(optimal_map("E2"), DescendingMap)
        assert isinstance(optimal_map("T3"), AscendingMap)
        assert isinstance(optimal_map("E3"), AscendingMap)
        assert isinstance(optimal_map("E5"), AscendingMap)

    def test_corollary_2(self):
        assert isinstance(optimal_map("T2"), RoundRobinMap)
        assert isinstance(optimal_map("E4"), ComplementaryRoundRobinMap)
        assert isinstance(optimal_map("E6"), ComplementaryRoundRobinMap)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            optimal_map("T9")


class TestTheorem3:
    """The declared optimal map minimizes E[r(U) h(xi(U))] over the
    five named maps for every increasing r."""

    @pytest.mark.parametrize("method", ["T1", "T2", "T3", "E1", "E4"])
    def test_optimal_beats_named_maps(self, method):
        h = METHODS[method].h
        best = optimal_map(method)
        for r in INCREASING_RS:
            best_value = cost_functional(r, h, best)
            for name, candidate in MAPS.items():
                value = cost_functional(r, h, candidate)
                assert best_value <= value + 1e-9, (method, name)

    @pytest.mark.parametrize("method", ["T1", "T2", "E1", "E4"])
    def test_decreasing_r_flips_optimum(self, method):
        h = METHODS[method].h
        best = optimal_map(method, r_increasing=False)
        for r in DECREASING_RS:
            best_value = cost_functional(r, h, best)
            for name, candidate in MAPS.items():
                value = cost_functional(r, h, candidate)
                assert best_value <= value + 1e-9, (method, name)

    @given(st.lists(st.floats(min_value=0.0, max_value=10.0),
                    min_size=8, max_size=60),
           st.sampled_from(["T1", "T2", "E1", "E4"]),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_algorithm1_beats_random_permutations(self, increments,
                                                  method, seed):
        """OPT minimizes the finite-n objective over random bijections
        for any non-decreasing r sample (Theorem 3 at finite n)."""
        r_values = np.cumsum(np.asarray(increments))  # non-decreasing
        n = r_values.size
        h = METHODS[method].h
        theta_opt = opt_permutation_ranks(method, n)
        opt_value = discrete_functional(r_values, h, theta_opt)
        rng = np.random.default_rng(seed)
        for __ in range(5):
            theta_rand = rng.permutation(n)
            assert opt_value <= discrete_functional(
                r_values, h, theta_rand) + 1e-9


class TestProposition8:
    def test_constant_r_makes_all_maps_equal(self):
        h = METHODS["E1"].h
        values = [cost_functional(lambda x: np.full_like(x, 3.0), h, m)
                  for m in MAPS.values()]
        np.testing.assert_allclose(values, values[0], rtol=1e-3)

    def test_constant_r_value_matches_uniform(self):
        """Prop. 8's value equals the random-permutation cost shape."""
        h = METHODS["T1"].h
        value = cost_functional(lambda x: np.ones_like(x), h,
                                DescendingMap())
        assert value == pytest.approx(1 / 6, abs=1e-4)


class TestTheorems4And5:
    def test_theorem_4_increasing(self):
        """c(T1, xi_D) < c(T2, xi_RR) when r is increasing."""
        for r in INCREASING_RS:
            t1 = cost_functional(r, METHODS["T1"].h, DescendingMap())
            t2 = cost_functional(r, METHODS["T2"].h, RoundRobinMap())
            assert t1 < t2

    def test_theorem_4_decreasing(self):
        for r in DECREASING_RS:
            t1 = cost_functional(r, METHODS["T1"].h, DescendingMap())
            t2 = cost_functional(r, METHODS["T2"].h, RoundRobinMap())
            assert t1 > t2

    def test_theorem_5_increasing(self):
        """c(E1, xi_D) < c(E4, xi_CRR) when r is increasing."""
        for r in INCREASING_RS:
            e1 = cost_functional(r, METHODS["E1"].h, DescendingMap())
            e4 = cost_functional(r, METHODS["E4"].h,
                                 ComplementaryRoundRobinMap())
            assert e1 < e4

    def test_theorem_5_decreasing(self):
        for r in DECREASING_RS:
            e1 = cost_functional(r, METHODS["E1"].h, DescendingMap())
            e4 = cost_functional(r, METHODS["E4"].h,
                                 ComplementaryRoundRobinMap())
            assert e1 > e4

    def test_constant_r_ties(self):
        r = lambda x: np.ones_like(x)
        t1 = cost_functional(r, METHODS["T1"].h, DescendingMap())
        t2 = cost_functional(r, METHODS["T2"].h, RoundRobinMap())
        assert t1 == pytest.approx(t2, rel=1e-3)
        e1 = cost_functional(r, METHODS["E1"].h, DescendingMap())
        e4 = cost_functional(r, METHODS["E4"].h,
                             ComplementaryRoundRobinMap())
        assert e1 == pytest.approx(e4, rel=1e-3)


class TestCorollary3:
    @pytest.mark.parametrize("method", ["T1", "T2", "E1", "E4"])
    def test_worst_is_complement_and_maximizes(self, method):
        h = METHODS[method].h
        worst = worst_map(method)
        for r in INCREASING_RS:
            worst_value = cost_functional(r, h, worst)
            for candidate in MAPS.values():
                assert worst_value >= cost_functional(r, h, candidate) - 1e-9

    def test_worst_of_t1_is_ascending(self):
        """complement(descending) acts like ascending."""
        h = METHODS["T1"].h
        us = np.linspace(0, 1, 11)
        np.testing.assert_allclose(
            worst_map("T1").expected_h(h, us),
            AscendingMap().expected_h(h, us))


class TestDiscreteFunctional:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            discrete_functional(np.ones(3), METHODS["T1"].h,
                                np.array([0, 1]))
