"""Tests for the run-history analytics layer and regression gate.

Covers :mod:`repro.obs.report` (query/aggregation, robust statistics,
trend and divergence tables), :mod:`repro.obs.baselines` (store +
comparison engine), and the ``repro report`` CLI family -- including
the acceptance scenario: ``compare --fail-on-regress`` exits non-zero
on an injected slowdown and zero on identical runs.
"""

import json

import pytest

from repro import cli, obs
from repro.obs import baselines, records, report


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def make_record(name="table06", wall_ns=100_000_000, ops=5000,
                error=0.02, git_rev="abc1234", ts=1.0, sim=10.0):
    """A synthetic run record shaped like the sim benches produce."""
    return records.RunRecord(
        name=name,
        config={"rows": [{"label": "T1+D", "n": 1000, "sim": sim,
                          "model": sim * (1.0 + error),
                          "error": error}]},
        spans=[{"name": "table", "duration_ns": wall_ns,
                "children": [{"name": "list",
                              "duration_ns": wall_ns // 2}]}],
        metrics={"counters": {"lister.ops": ops, "orient.runs": 8},
                 "gauges": {"engine.native": 0.0}},
        meta={"git_rev": git_rev, "timestamp_unix": ts})


class TestRobustStats:
    def test_median_odd_even(self):
        assert report.median([3, 1, 2]) == 2
        assert report.median([1, 2, 3, 4]) == 2.5

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            report.median([])

    def test_mad(self):
        assert report.mad([1, 2, 3, 4, 100]) == 1.0  # outlier-immune

    def test_summarize(self):
        s = report.summarize_values([10, 12, 11])
        assert s == {"median": 11.0, "mad": 1.0, "count": 3,
                     "min": 10.0, "max": 12.0}


class TestMetricKind:
    @pytest.mark.parametrize("name, kind", [
        ("wall_ms", "time"),
        ("python_ns_per_edge", "time"),
        ("duration_ns", "time"),
        ("error", "error"),
        ("model_error", "error"),
        ("lister.ops", "value"),
        ("sim", "value"),
        ("engine.bloom_hits", "value"),
    ])
    def test_kinds(self, name, kind):
        assert report.metric_kind(name) == kind


class TestRecordCells:
    def test_phase_counter_and_row_cells(self):
        cells = report.record_cells(make_record())
        assert cells["phase:table"]["wall_ms"] == pytest.approx(100.0)
        assert cells["phase:list"]["wall_ms"] == pytest.approx(50.0)
        assert cells["counters"]["lister.ops"] == 5000
        assert cells["gauges"]["engine.native"] == 0.0
        row = cells["cell:T1+D/n=1000"]
        assert row["sim"] == 10.0 and row["error"] == 0.02

    def test_limit_row_skipped(self):
        rec = make_record()
        rec.config["rows"].append({"label": "T1+D", "n": "inf",
                                   "sim": None, "model": 1.0,
                                   "error": None})
        assert "cell:T1+D/n=inf" not in report.record_cells(rec)

    def test_methods_config_cells_drop_speedup(self):
        rec = records.RunRecord(
            name="BENCH", config={"methods": {"E1": {
                "ops": 100, "python_ns_per_edge": 900.0,
                "numpy_ns_per_edge": 30.0, "speedup": 30.0}}})
        cells = report.record_cells(rec)
        assert cells["method:E1"]["ops"] == 100
        assert "speedup" not in cells["method:E1"]


class TestFilterAndAggregate:
    def test_filter_by_name_rev_last(self):
        recs = [make_record(name="a", git_rev="r1", ts=1),
                make_record(name="a", git_rev="r2", ts=2),
                make_record(name="b", git_rev="r2", ts=3)]
        assert len(report.filter_records(recs, names=["a"])) == 2
        assert len(report.filter_records(recs, git_rev="r2")) == 2
        assert report.filter_records(recs, last=1)[0].name in ("a", "b")
        assert len(report.filter_records(recs, last=1)) == 2  # per name

    def test_aggregate_median_over_repeats(self):
        recs = [make_record(wall_ns=100_000_000),
                make_record(wall_ns=120_000_000),
                make_record(wall_ns=90_000_000)]
        agg = report.aggregate(recs)
        cell = agg["table06"]["phase:table"]["wall_ms"]
        assert cell["median"] == pytest.approx(100.0)
        assert cell["count"] == 3


class TestTrendsAndDivergence:
    def test_trend_rows_group_by_rev(self):
        recs = [make_record(git_rev="r1", ts=1),
                make_record(git_rev="r1", ts=2),
                make_record(git_rev="r2", ts=3)]
        rows = report.trend_rows(recs)
        assert [(r["git_rev"], r["runs"]) for r in rows] == [
            ("r1", 2), ("r2", 1)]
        assert rows[0]["counters"]["lister.ops"] == 5000

    def test_format_trends_smoke(self):
        text = report.format_trends(report.trend_rows([make_record()]))
        assert "table06" in text and "abc1234" in text
        assert report.format_trends([]) == "run history is empty"

    def test_divergence_rows(self):
        recs = [make_record(error=0.02), make_record(error=0.04)]
        (row,) = report.divergence_rows(recs)
        assert (row["name"], row["label"], row["n"]) == \
            ("table06", "T1+D", 1000)
        assert row["error"] == pytest.approx(0.03)
        assert row["runs"] == 2
        assert "T1+D" in report.format_divergence([row])


class TestBaselineStore:
    def test_roundtrip(self, tmp_path):
        base = baselines.build_baseline([make_record()], label="x")
        path = baselines.save_baseline(base, tmp_path / "b" / "x.json")
        assert path.exists()
        loaded = baselines.load_baseline(path)
        assert loaded.meta["label"] == "x"
        assert loaded.names() == ["table06"]
        assert loaded.cells["table06"]["counters"]["lister.ops"][
            "median"] == 5000

    def test_baseline_json_is_plain(self, tmp_path):
        base = baselines.build_baseline([make_record()])
        path = baselines.save_baseline(base, tmp_path / "x.json")
        json.loads(path.read_text())  # valid standalone JSON


class TestCompare:
    def _baseline(self):
        return baselines.build_baseline(
            [make_record(wall_ns=100_000_000),
             make_record(wall_ns=102_000_000)])

    def test_identical_is_unchanged(self):
        base = self._baseline()
        deltas = baselines.compare([make_record(wall_ns=101_000_000)],
                                   base)
        assert deltas and not baselines.has_regressions(deltas)
        assert {d.classification for d in deltas} == {"unchanged"}

    def test_slowdown_regresses(self):
        deltas = baselines.compare([make_record(wall_ns=300_000_000)],
                                   self._baseline())
        regressed = [d for d in deltas if d.is_regression]
        assert {d.metric for d in regressed} == {"wall_ms"}
        assert all(d.kind == "time" for d in regressed)

    def test_speedup_improves(self):
        deltas = baselines.compare([make_record(wall_ns=30_000_000)],
                                   self._baseline())
        assert any(d.classification == "improved" for d in deltas)
        assert not baselines.has_regressions(deltas)

    def test_counter_drift_regresses_even_without_time(self):
        deltas = baselines.compare([make_record(ops=5001)],
                                   self._baseline(),
                                   include_time=False)
        assert all(d.kind != "time" for d in deltas)
        regressed = [d for d in deltas if d.is_regression]
        assert [d.metric for d in regressed] == ["lister.ops"]

    def test_error_growth_regresses_shrink_improves(self):
        base = self._baseline()
        grown = baselines.compare([make_record(error=0.30)], base)
        assert any(d.is_regression and d.kind == "error"
                   for d in grown)
        # shrinking |error| against a high-error baseline improves
        noisy = baselines.build_baseline([make_record(error=0.30)])
        shrunk = baselines.compare([make_record(error=0.02)], noisy)
        assert any(d.classification == "improved" and d.kind == "error"
                   for d in shrunk)

    def test_added_missing_never_fatal(self):
        base = self._baseline()
        extra = make_record()
        extra.config["rows"].append({"label": "T2+RR", "n": 1000,
                                     "sim": 5.0, "model": 5.0,
                                     "error": 0.0})
        deltas = baselines.compare([extra], base)
        assert any(d.classification == "added" for d in deltas)
        assert not baselines.has_regressions(deltas)
        # a bench present in the baseline but absent now -> missing
        other = baselines.build_baseline([make_record(name="gone"),
                                          make_record()])
        deltas = baselines.compare([make_record()], other)
        assert any(d.classification == "missing" for d in deltas)
        assert not baselines.has_regressions(deltas)

    def test_unknown_benches_ignored(self):
        deltas = baselines.compare(
            [make_record(), make_record(name="unrelated")],
            self._baseline())
        assert {d.name for d in deltas} == {"table06"}

    def test_summary_and_format(self):
        deltas = baselines.compare([make_record(wall_ns=300_000_000)],
                                   self._baseline())
        counts = baselines.summarize_deltas(deltas)
        assert counts["regressed"] >= 1
        text = baselines.format_deltas(deltas, show="changed")
        assert "regressed" in text and "summary:" in text


class TestReportCLI:
    """End-to-end through ``repro report`` (the acceptance scenario)."""

    def _write_runs(self, path, wall_ns=100_000_000, ops=5000,
                    error=0.02, repeats=2):
        for i in range(repeats):
            records.write_record(
                make_record(wall_ns=wall_ns + i * 1_000_000, ops=ops,
                            error=error), path)

    def test_gate_exit_codes(self, tmp_path, capsys):
        runs = tmp_path / "runs.jsonl"
        self._write_runs(runs)
        base = tmp_path / "base.json"
        assert cli.main(["report", "baseline", "--runs", str(runs),
                         "--out", str(base), "--label", "t"]) == 0
        # identical runs -> exit 0
        assert cli.main(["report", "compare", "--runs", str(runs),
                         "--baseline", str(base),
                         "--fail-on-regress"]) == 0
        # injected slowdown -> exit non-zero
        slow = tmp_path / "slow.jsonl"
        self._write_runs(slow, wall_ns=400_000_000)
        assert cli.main(["report", "compare", "--runs", str(slow),
                         "--baseline", str(base),
                         "--fail-on-regress"]) == 1
        # without the flag the same comparison only warns
        assert cli.main(["report", "compare", "--runs", str(slow),
                         "--baseline", str(base)]) == 0
        assert "WARNING: regressions" in capsys.readouterr().out

    def test_counter_gate_ignores_time(self, tmp_path):
        runs = tmp_path / "runs.jsonl"
        self._write_runs(runs)
        base = tmp_path / "base.json"
        cli.main(["report", "baseline", "--runs", str(runs),
                  "--out", str(base)])
        drift = tmp_path / "drift.jsonl"
        self._write_runs(drift, wall_ns=900_000_000, ops=4999)
        # --no-time: the 9x slowdown is ignored, the ops drift gates
        assert cli.main(["report", "compare", "--runs", str(drift),
                         "--baseline", str(base), "--no-time",
                         "--rtol-time", "100",
                         "--fail-on-regress"]) == 1

    def test_trends_and_divergence_cli(self, tmp_path, capsys):
        runs = tmp_path / "runs.jsonl"
        self._write_runs(runs)
        assert cli.main(["report", "trends", "--runs", str(runs)]) == 0
        assert "table06" in capsys.readouterr().out
        assert cli.main(["report", "divergence", "--runs",
                         str(runs)]) == 0
        assert "T1+D" in capsys.readouterr().out

    def test_divergence_fail_over(self, tmp_path):
        runs = tmp_path / "runs.jsonl"
        self._write_runs(runs, error=0.40)
        assert cli.main(["report", "divergence", "--runs", str(runs),
                         "--fail-over", "0.25"]) == 1
        assert cli.main(["report", "divergence", "--runs", str(runs),
                         "--fail-over", "0.50"]) == 0

    def test_baseline_requires_records(self, tmp_path):
        with pytest.raises(SystemExit):
            cli.main(["report", "baseline", "--runs",
                      str(tmp_path / "empty.jsonl"),
                      "--out", str(tmp_path / "b.json")])

    def test_name_filter(self, tmp_path, capsys):
        runs = tmp_path / "runs.jsonl"
        records.write_record(make_record(name="table06"), runs)
        records.write_record(make_record(name="other"), runs)
        cli.main(["report", "trends", "--runs", str(runs),
                  "--name", "table*"])
        out = capsys.readouterr().out
        assert "table06" in out and "other" not in out
