"""Tests for the compressed-adjacency substrate (section 2.4 aside)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import DescendingDegree, list_triangles, orient
from repro.graphs.compressed import (
    CompressedOrientedGraph,
    decode_varint_deltas,
    encode_varint_deltas,
    iter_varint_deltas,
    run_e1_compressed,
)


class TestVarintCodec:
    def test_roundtrip_basic(self):
        values = [0, 1, 5, 6, 130, 10_000, 10_001]
        assert decode_varint_deltas(encode_varint_deltas(values)) == values

    def test_empty(self):
        assert decode_varint_deltas(encode_varint_deltas([])) == []

    def test_rejects_non_increasing(self):
        with pytest.raises(ValueError):
            encode_varint_deltas([3, 3])
        with pytest.raises(ValueError):
            encode_varint_deltas([5, 2])

    def test_truncated_stream(self):
        blob = encode_varint_deltas([1_000_000])
        with pytest.raises(ValueError):
            list(iter_varint_deltas(blob[:-1]))

    def test_dense_lists_compress_well(self):
        """Consecutive IDs encode to one byte each."""
        values = list(range(1000, 2000))
        blob = encode_varint_deltas(values)
        assert len(blob) <= 1000 + 2  # ~1 byte/value after the head

    @given(st.sets(st.integers(min_value=0, max_value=2**40),
                   max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, values):
        ordered = sorted(values)
        assert decode_varint_deltas(
            encode_varint_deltas(ordered)) == ordered


class TestCompressedGraph:
    def test_lists_roundtrip(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        compressed = CompressedOrientedGraph(oriented)
        for i in range(0, oriented.n, 13):
            assert list(compressed.iter_out(i)) \
                == oriented.out_neighbors(i).tolist()
            assert list(compressed.iter_in(i)) \
                == oriented.in_neighbors(i).tolist()

    def test_degrees_preserved(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        compressed = CompressedOrientedGraph(oriented)
        np.testing.assert_array_equal(compressed.out_degrees,
                                      oriented.out_degrees)
        np.testing.assert_array_equal(compressed.in_degrees,
                                      oriented.in_degrees)

    def test_compression_saves_space(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        compressed = CompressedOrientedGraph(oriented)
        assert compressed.compressed_bytes() \
            < compressed.uncompressed_bytes()


class TestCompressedE1:
    def test_same_triangles_and_ops(self, pareto_graph):
        """The streaming E1 matches the uncompressed one exactly."""
        oriented = orient(pareto_graph, DescendingDegree())
        compressed = CompressedOrientedGraph(oriented)
        reference = list_triangles(oriented, "E1")
        streamed = run_e1_compressed(compressed)
        assert streamed.count == reference.count
        assert streamed.triangle_set() == reference.triangle_set()
        assert streamed.ops == reference.ops

    def test_collect_false(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        compressed = CompressedOrientedGraph(oriented)
        result = run_e1_compressed(compressed, collect=False)
        assert result.count == list_triangles(oriented, "E1").count
        assert result.triangles is None
