"""Tests for the SEI-vs-hash decision rule (section 2.4 + 6.3)."""

import math

import numpy as np
import pytest

from repro import DescendingDegree, DiscretePareto, orient
from repro.core.decision import (
    PAPER_SPEED_RATIO,
    cost_ratio_w,
    decide_in_limit,
    decide_on_graph,
)


class TestOnGraph:
    def test_ratio_above_one(self, pareto_graph):
        """SEI always needs at least as many ops as the best hash
        method (E1 = T1 + T2 >= max(T1, T2) >= min over T's)."""
        oriented = orient(pareto_graph, DescendingDegree())
        assert cost_ratio_w(oriented) >= 1.0

    def test_decision_fields(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        decision = decide_on_graph(oriented)
        assert decision.best_hash_method in ("T1", "T2", "T3")
        assert decision.best_sei_method in ("E1", "E4")
        assert decision.cost_ratio == pytest.approx(
            decision.best_sei_cost / decision.best_hash_cost)
        assert decision.speed_ratio == pytest.approx(PAPER_SPEED_RATIO)

    def test_sei_wins_with_paper_hardware(self, pareto_graph):
        """w_n is single-digit on typical graphs, far below 95: with
        SIMD hardware SEI wins -- the practical takeaway of Table 3."""
        oriented = orient(pareto_graph, DescendingDegree())
        decision = decide_on_graph(oriented)
        assert decision.cost_ratio < 10
        assert decision.sei_wins

    def test_hash_wins_with_slow_scanning(self, pareto_graph):
        """A runtime whose scan is no faster than its hash flips the
        decision."""
        oriented = orient(pareto_graph, DescendingDegree())
        decision = decide_on_graph(oriented, speed_ratio=1.0)
        assert decision.winner == "hash"


class TestInLimit:
    def test_t1_provably_wins_between_thresholds(self):
        """alpha in (4/3, 1.5]: T1 finite, E1 infinite -- hash wins
        regardless of hardware."""
        decision = decide_in_limit(DiscretePareto(1.45, 13.5),
                                   t_max=1e12)
        assert math.isfinite(decision.best_hash_cost)
        assert math.isinf(decision.best_sei_cost)
        assert math.isinf(decision.cost_ratio)
        assert decision.winner == "hash"

    def test_sei_wins_for_light_tails(self):
        """alpha > 1.5: both finite, ratio ~2-4 << 95: SEI wins."""
        decision = decide_in_limit(DiscretePareto(2.5, 45.0), t_max=1e12)
        assert decision.cost_ratio < 10
        assert decision.sei_wins

    def test_both_infinite_is_nan(self):
        """alpha <= 4/3: both diverge; growth rates decide instead."""
        decision = decide_in_limit(DiscretePareto(1.25, 7.5), t_max=1e12)
        assert math.isnan(decision.cost_ratio)
