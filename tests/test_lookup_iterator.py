"""Tests for lookup edge iterators L1-L6 (section 2.3, Table 2)."""

import pytest

from repro import DescendingDegree, OrientedGraph, orient
from repro.core.costs import cost_t1, cost_t2, cost_t3
from repro.listing import run_lookup_iterator

LEI_METHODS = ("L1", "L2", "L3", "L4", "L5", "L6")

#: Table 2: lookup cost per method.
TABLE_2 = {
    "L1": "T2", "L2": "T1", "L3": "T2",
    "L4": "T3", "L5": "T3", "L6": "T1",
}


def _base_cost(name, oriented):
    if name == "T1":
        return cost_t1(oriented.out_degrees)
    if name == "T2":
        return cost_t2(oriented.out_degrees, oriented.in_degrees)
    return cost_t3(oriented.in_degrees)


class TestCorrectness:
    @pytest.mark.parametrize("method", LEI_METHODS)
    def test_single_triangle(self, triangle_graph, method):
        oriented = OrientedGraph(triangle_graph, [0, 1, 2])
        result = run_lookup_iterator(oriented, method)
        assert result.count == 1
        assert result.triangles == [(0, 1, 2)]

    @pytest.mark.parametrize("method", LEI_METHODS)
    def test_k4(self, k4_graph, method):
        oriented = OrientedGraph(k4_graph, [0, 1, 2, 3])
        assert run_lookup_iterator(oriented, method).count == 4

    @pytest.mark.parametrize("method", LEI_METHODS)
    def test_no_triangles(self, path_graph, method):
        oriented = orient(path_graph, DescendingDegree())
        assert run_lookup_iterator(oriented, method).count == 0

    def test_unknown_method(self, triangle_graph):
        oriented = OrientedGraph(triangle_graph, [0, 1, 2])
        with pytest.raises(ValueError):
            run_lookup_iterator(oriented, "L9")


class TestTable2Costs:
    @pytest.mark.parametrize("method", LEI_METHODS)
    def test_lookup_ops_match_table_2(self, pareto_graph, method):
        oriented = orient(pareto_graph, DescendingDegree())
        result = run_lookup_iterator(oriented, method)
        assert result.ops == int(_base_cost(TABLE_2[method], oriented))

    @pytest.mark.parametrize("method", LEI_METHODS)
    def test_hash_population_is_m(self, pareto_graph, method):
        """Section 2.3: populating the tables costs sum X_i = m."""
        oriented = orient(pareto_graph, DescendingDegree())
        result = run_lookup_iterator(oriented, method)
        assert result.hash_inserts == pareto_graph.m
