"""Tests for the cost models (49)-(50) and Algorithm 2.

The gold standard here is Table 5 of the paper (alpha = 1.5,
beta = 30(alpha-1) = 15, T1 + descending, linear truncation), whose
discrete-model column we reproduce to all published decimals.
"""

import numpy as np
import pytest

from repro import (
    DescendingDegree,
    DiscretePareto,
    continuous_cost_model,
    discrete_cost_model,
    fast_cost_model,
)
from repro.core.weights import capped_weight
from repro.distributions import ContinuousPareto, linear_truncation

DIST = DiscretePareto(alpha=1.5, beta=15.0)

#: Table 5 column "F(x) in (50)": the exact discrete model.
TABLE_5_DISCRETE = {10**3: 142.85, 10**4: 241.15, 10**7: 346.92}

#: Table 5 column "F*(x) in (49)": the continuous model.
TABLE_5_CONTINUOUS = {10**3: 144.86, 10**4: 245.29, 10**7: 353.92}


class TestDiscreteModel:
    @pytest.mark.parametrize("n,expected",
                             sorted(TABLE_5_DISCRETE.items()))
    def test_table5_exact_values(self, n, expected):
        dist_n = DIST.truncate(linear_truncation(n))
        value = discrete_cost_model(dist_n, "T1", "descending")
        assert value == pytest.approx(expected, abs=0.005)

    def test_requires_truncation(self):
        with pytest.raises(ValueError, match="truncated"):
            discrete_cost_model(DIST, "T1", "descending")

    def test_t2_symmetric_permutations(self):
        """h_T2(1-x) = h_T2(x): ascending and descending models agree."""
        dist_n = DIST.truncate(500)
        asc = discrete_cost_model(dist_n, "T2", "ascending")
        desc = discrete_cost_model(dist_n, "T2", "descending")
        assert asc == pytest.approx(desc)

    def test_e1_model_is_t1_plus_t2(self):
        dist_n = DIST.truncate(500)
        e1 = discrete_cost_model(dist_n, "E1", "descending")
        t1 = discrete_cost_model(dist_n, "T1", "descending")
        t2 = discrete_cost_model(dist_n, "T2", "descending")
        assert e1 == pytest.approx(t1 + t2)

    def test_uniform_map_model(self):
        """Under xi_U the model factorizes: E[g(D_n)] * E[h(U)]."""
        dist_n = DIST.truncate(500)
        value = discrete_cost_model(dist_n, "T1", "uniform")
        ks = np.arange(1, 501, dtype=float)
        g_mean = float(np.sum((ks * ks - ks) * dist_n.pmf(ks)))
        assert value == pytest.approx(g_mean / 6.0, rel=1e-9)

    def test_descending_beats_ascending_for_t1(self):
        dist_n = DIST.truncate(500)
        desc = discrete_cost_model(dist_n, "T1", "descending")
        asc = discrete_cost_model(dist_n, "T1", "ascending")
        assert desc < asc

    def test_capped_weight_reduces_t1_model(self):
        """w2 = min(x, sqrt(m)) tempers hub influence (Table 11 setup)."""
        dist_n = DiscretePareto(1.2, 6.0).truncate(9999)
        w1 = discrete_cost_model(dist_n, "T1", "descending")
        w2 = discrete_cost_model(dist_n, "T1", "descending",
                                 weight=capped_weight(400.0))
        assert w2 != w1  # the weight genuinely enters the model


class TestFastModel:
    def test_exact_when_eps_tiny(self):
        dist_n = DIST.truncate(999)
        exact = discrete_cost_model(dist_n, "T1", "descending")
        fast = fast_cost_model(dist_n, "T1", "descending", eps=1e-4)
        assert fast == pytest.approx(exact, rel=1e-6)

    def test_eps_one_over_t_is_bitwise_exact(self):
        dist_n = DIST.truncate(200)
        exact = discrete_cost_model(dist_n, "T1", "descending")
        fast = fast_cost_model(dist_n, "T1", "descending", eps=1 / 200)
        assert fast == pytest.approx(exact, rel=1e-12)

    @pytest.mark.parametrize("n,expected",
                             sorted(TABLE_5_DISCRETE.items()))
    def test_table5_algorithm2_column(self, n, expected):
        """Algorithm 2 matches the exact column at eps = 1e-5."""
        dist_n = DIST.truncate(linear_truncation(n))
        value = fast_cost_model(dist_n, "T1", "descending", eps=1e-5)
        assert value == pytest.approx(expected, abs=0.005)

    def test_table5_huge_n(self):
        """The n = 1e10 row (355.79), unreachable by the exact model in
        reasonable time, matches via Algorithm 2."""
        dist_n = DIST.truncate(10**10 - 1)
        value = fast_cost_model(dist_n, "T1", "descending", eps=1e-5)
        assert value == pytest.approx(355.79, abs=0.02)

    def test_rejects_bad_eps(self):
        dist_n = DIST.truncate(100)
        with pytest.raises(ValueError):
            fast_cost_model(dist_n, "T1", "descending", eps=0.0)
        with pytest.raises(ValueError):
            fast_cost_model(dist_n, "T1", "descending", eps=1.0)

    def test_requires_truncation(self):
        with pytest.raises(ValueError):
            fast_cost_model(DIST, "T1", "descending")

    def test_all_maps_and_methods_run(self):
        dist_n = DIST.truncate(300)
        for method in ("T1", "T2", "E1", "E4"):
            for map_name in ("ascending", "descending", "rr", "crr",
                             "uniform"):
                value = fast_cost_model(dist_n, method, map_name, eps=1e-3)
                assert value > 0


class TestContinuousModel:
    @pytest.mark.parametrize("n,expected",
                             sorted(TABLE_5_CONTINUOUS.items()))
    def test_table5_continuous_column(self, n, expected):
        cont = ContinuousPareto(1.5, 15.0)
        value = continuous_cost_model(cont, linear_truncation(n), "T1",
                                      "descending")
        assert value == pytest.approx(expected, rel=2e-3)

    def test_continuous_overshoots_discrete(self):
        """Table 5's observation: the continuous model runs 1.5-2% high."""
        n = 10**4
        cont = ContinuousPareto(1.5, 15.0)
        c_val = continuous_cost_model(cont, n - 1, "T1", "descending")
        d_val = discrete_cost_model(DIST.truncate(n - 1), "T1",
                                    "descending")
        assert 1.005 < c_val / d_val < 1.03

    def test_rejects_bad_truncation(self):
        with pytest.raises(ValueError):
            continuous_cost_model(ContinuousPareto(1.5, 15.0), 0.0, "T1")
