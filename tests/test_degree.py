"""Tests for degree-sequence utilities (Erdos-Gallai, order statistics)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    ascending_order_statistics,
    degree_histogram,
    erdos_gallai_graphical,
)


class TestErdosGallai:
    def test_known_graphic_sequences(self):
        assert erdos_gallai_graphical([])
        assert erdos_gallai_graphical([0])
        assert erdos_gallai_graphical([1, 1])
        assert erdos_gallai_graphical([2, 2, 2])          # triangle
        assert erdos_gallai_graphical([3, 3, 3, 3])       # K4
        assert erdos_gallai_graphical([2, 2, 2, 2, 2])    # C5
        assert erdos_gallai_graphical([3, 2, 2, 2, 1])

    def test_known_non_graphic_sequences(self):
        assert not erdos_gallai_graphical([1])            # odd sum
        assert not erdos_gallai_graphical([2, 2, 1])      # odd sum
        assert not erdos_gallai_graphical([4, 4, 4, 1, 1])  # EG violated
        assert not erdos_gallai_graphical([5, 1, 1, 1])   # degree >= n
        assert not erdos_gallai_graphical([-1, 1])

    def test_star_graphs(self):
        assert erdos_gallai_graphical([4, 1, 1, 1, 1])
        assert not erdos_gallai_graphical([5, 1, 1, 1, 1])

    @given(st.lists(st.integers(min_value=0, max_value=8),
                    min_size=2, max_size=12))
    @settings(max_examples=150, deadline=None)
    def test_matches_networkx(self, degrees):
        networkx = pytest.importorskip("networkx")
        assert erdos_gallai_graphical(degrees) == \
            networkx.is_graphical(degrees)


class TestOrderStatistics:
    def test_ascending_sort(self):
        result = ascending_order_statistics([5, 1, 3, 3])
        np.testing.assert_array_equal(result, [1, 3, 3, 5])

    def test_histogram(self):
        values, counts = degree_histogram([2, 2, 5, 1, 2])
        np.testing.assert_array_equal(values, [1, 2, 5])
        np.testing.assert_array_equal(counts, [1, 3, 1])
