"""Tests for the benchmark-suite shared helpers (``benchmarks/_common``)."""

import importlib
import json
import pathlib
import sys

import pytest

from repro import obs

BENCHMARKS_DIR = pathlib.Path(__file__).resolve().parents[1] / "benchmarks"


@pytest.fixture(scope="module")
def common():
    sys.path.insert(0, str(BENCHMARKS_DIR))
    try:
        module = importlib.import_module("_common")
    finally:
        sys.path.remove(str(BENCHMARKS_DIR))
    return module


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def test_emit_returns_path_and_creates_dirs(common, tmp_path, capsys):
    target = tmp_path / "nested" / "results"  # does not exist yet
    path = common.emit("unit_table", "row one\nrow two",
                       results_dir=target)
    assert path == target / "unit_table.txt"
    assert path.read_text() == "row one\nrow two\n"
    assert "row one" in capsys.readouterr().out


def test_emit_writes_json_sidecar(common, tmp_path):
    common.emit("unit_table", "body", results_dir=tmp_path)
    sidecar = json.loads((tmp_path / "unit_table.json").read_text())
    assert sidecar["name"] == "unit_table"
    assert sidecar["artifact"] == "unit_table.txt"
    assert sidecar["lines"] == 1
    assert "created_unix" in sidecar


def test_emit_appends_run_record(common, tmp_path):
    common.emit("first", "a", results_dir=tmp_path,
                config={"seed": 1})
    common.emit("second", "b", results_dir=tmp_path)
    runs = tmp_path / "runs.jsonl"
    assert runs.exists()
    recs = [json.loads(line) for line in runs.read_text().splitlines()]
    assert [r["name"] for r in recs] == ["first", "second"]
    assert recs[0]["config"] == {"seed": 1}
    assert "git_rev" in recs[0]["meta"]


def test_emit_record_carries_spans_and_metrics(common, tmp_path):
    with common.traced_run("unit", seed=3):
        with obs.span("list", method="T1"):
            obs.metrics.inc("lister.ops", 42)
    common.emit("unit", "text", results_dir=tmp_path)
    (rec,) = [json.loads(line) for line in
              (tmp_path / "runs.jsonl").read_text().splitlines()]
    assert rec["metrics"]["counters"]["lister.ops"] == 42
    (root,) = rec["spans"]
    assert root["name"] == "unit"
    assert root["children"][0]["name"] == "list"


def test_traced_run_restores_disabled_state(common):
    assert not obs.is_enabled()
    with common.traced_run("x"):
        assert obs.is_enabled()
    assert not obs.is_enabled()
