"""Tests for the benchmark-suite shared helpers (``benchmarks/_common``)."""

import importlib
import json
import pathlib
import sys

import pytest

from repro import obs

BENCHMARKS_DIR = pathlib.Path(__file__).resolve().parents[1] / "benchmarks"


@pytest.fixture(scope="module")
def common():
    sys.path.insert(0, str(BENCHMARKS_DIR))
    try:
        module = importlib.import_module("_common")
    finally:
        sys.path.remove(str(BENCHMARKS_DIR))
    return module


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def test_emit_returns_path_and_creates_dirs(common, tmp_path, capsys):
    target = tmp_path / "nested" / "results"  # does not exist yet
    path = common.emit("unit_table", "row one\nrow two",
                       results_dir=target)
    assert path == target / "unit_table.txt"
    assert path.read_text() == "row one\nrow two\n"
    assert "row one" in capsys.readouterr().out


def test_emit_writes_json_sidecar(common, tmp_path):
    common.emit("unit_table", "body", results_dir=tmp_path)
    sidecar = json.loads((tmp_path / "unit_table.json").read_text())
    assert sidecar["name"] == "unit_table"
    assert sidecar["artifact"] == "unit_table.txt"
    assert sidecar["lines"] == 1
    assert "created_unix" in sidecar


def test_emit_appends_run_record(common, tmp_path):
    common.emit("first", "a", results_dir=tmp_path,
                config={"seed": 1})
    common.emit("second", "b", results_dir=tmp_path)
    runs = tmp_path / "runs.jsonl"
    assert runs.exists()
    recs = [json.loads(line) for line in runs.read_text().splitlines()]
    assert [r["name"] for r in recs] == ["first", "second"]
    assert recs[0]["config"] == {"seed": 1}
    assert "git_rev" in recs[0]["meta"]


def test_emit_record_carries_spans_and_metrics(common, tmp_path):
    with common.traced_run("unit", seed=3):
        with obs.span("list", method="T1"):
            obs.metrics.inc("lister.ops", 42)
    common.emit("unit", "text", results_dir=tmp_path)
    (rec,) = [json.loads(line) for line in
              (tmp_path / "runs.jsonl").read_text().splitlines()]
    assert rec["metrics"]["counters"]["lister.ops"] == 42
    (root,) = rec["spans"]
    assert root["name"] == "unit"
    assert root["children"][0]["name"] == "list"


def test_emit_honors_runs_file_env(common, tmp_path, monkeypatch):
    redirected = tmp_path / "isolated" / "history.jsonl"
    monkeypatch.setenv("REPRO_RUNS_FILE", str(redirected))
    common.emit("unit", "text", results_dir=tmp_path)
    assert redirected.exists()
    assert not (tmp_path / "runs.jsonl").exists()
    (rec,) = [json.loads(line)
              for line in redirected.read_text().splitlines()]
    assert rec["name"] == "unit"


def test_sim_rows_for_record(common):
    from repro.experiments import ComparisonRow

    cells = [("T1+D", "T1", None, None), ("E1+RR", "E1", None, None)]
    rows = [
        ComparisonRow(1000, [(10.0, 10.2, 0.02), (5.0, 5.0, 0.0)]),
        ComparisonRow(3000, [(20.0, 20.4, 0.02), None]),  # missing cell
        ComparisonRow("inf", [(None, 1.0, None), (None, 2.0, None)]),
    ]
    flat = common.sim_rows_for_record(rows, cells)
    assert flat == [
        {"label": "T1+D", "n": 1000, "sim": 10.0, "model": 10.2,
         "error": 0.02},
        {"label": "E1+RR", "n": 1000, "sim": 5.0, "model": 5.0,
         "error": 0.0},
        {"label": "T1+D", "n": 3000, "sim": 20.0, "model": 20.4,
         "error": 0.02},
    ]


def test_traced_run_restores_disabled_state(common):
    assert not obs.is_enabled()
    with common.traced_run("x"):
        assert obs.is_enabled()
    assert not obs.is_enabled()
