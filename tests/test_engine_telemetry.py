"""Engine-level telemetry: per-chunk kernel counters and gauges.

The vectorized engine (:mod:`repro.engine.kernels`) publishes
``engine.*`` counters -- chunks, candidate pairs, Bloom probes/hits,
confirming binary searches -- once per run when the obs layer is
enabled, plus an ``engine.native`` gauge reporting whether the
compiled count kernel ran. These tests pin the contract: the counters
are deterministic for a fixed seed, internally consistent with the
listing result, entirely absent (zero cost) when obs is disabled, and
the ``lister.engine.<label>`` counter published by
:func:`repro.listing.list_triangles` reflects the engine that actually
ran.
"""

import numpy as np
import pytest

from repro import DescendingDegree, DiscretePareto, obs, orient
from repro.distributions import root_truncation
from repro.distributions.sampling import sample_degree_sequence
from repro.engine import native, run_numpy
from repro.graphs.generators import generate_graph
from repro.listing import list_triangles


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture(scope="module")
def oriented():
    n = 600
    rng = np.random.default_rng(7)
    dist = DiscretePareto(1.7, 21.0).truncate(root_truncation(n))
    degrees = sample_degree_sequence(dist, n, rng)
    graph = generate_graph(degrees, rng)
    return orient(graph, DescendingDegree())


def engine_counters():
    return {k: v for k, v in obs.metrics.snapshot()["counters"].items()
            if k.startswith("engine.")}


class TestEngineCounters:
    def test_consistent_with_result(self, oriented):
        obs.enable()
        result = run_numpy(oriented, "E1", collect=True,
                           use_native=False)
        got = engine_counters()
        assert got["engine.runs"] == 1
        assert got["engine.chunks"] >= 1
        # every candidate pair goes through exactly one Bloom probe
        assert got["engine.candidates"] == got["engine.bloom_probes"]
        # every Bloom passer is confirmed by one binary search ...
        assert got["engine.bloom_hits"] == \
            got["engine.confirm_binsearches"]
        # ... and the confirmed subset of passers is the triangle count
        assert result.count <= got["engine.bloom_hits"] \
            <= got["engine.candidates"]
        assert result.count > 0

    def test_deterministic_for_fixed_seed(self, oriented):
        # covers the native counters too when a toolchain is present:
        # per-thread op tallies are deterministic by the static block
        # assignment, so the snapshots must still match exactly
        snaps = []
        for _ in range(2):
            obs.enable()
            obs.reset()
            run_numpy(oriented, "T1", collect=True)
            run_numpy(oriented, "E4", collect=False)
            snaps.append(engine_counters())
            obs.disable()
        assert snaps[0] == snaps[1]
        assert snaps[0]["engine.runs"] == 2

    def test_disabled_costs_nothing(self, oriented):
        result = run_numpy(oriented, "E1", collect=True)
        snap = obs.metrics.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert result.count > 0


class TestNativeGauge:
    def test_fallback_reports_zero(self, oriented, monkeypatch):
        monkeypatch.setattr(native, "_lib", None)
        obs.enable()
        result = run_numpy(oriented, "T1", collect=False)
        assert result.extra["native"] is False
        assert obs.metrics.snapshot()["gauges"]["engine.native"] == 0.0
        # the fallback count path feeds the kernel counters instead
        assert engine_counters()["engine.chunks"] >= 1

    def test_native_reports_one_when_available(self, oriented):
        if not native.available():
            pytest.skip("no compiled kernel in this environment")
        obs.enable()
        result = run_numpy(oriented, "T1", collect=False)
        assert result.extra["native"] is True
        assert obs.metrics.snapshot()["gauges"]["engine.native"] == 1.0

    def test_collect_opt_out_is_pure_numpy(self, oriented):
        obs.enable()
        result = run_numpy(oriented, "E1", collect=True,
                           use_native=False)
        assert result.extra["native"] is False
        assert obs.metrics.snapshot()["gauges"]["engine.native"] == 0.0

    def test_native_collect_reports_kernel(self, oriented):
        if not native.available():
            pytest.skip("no compiled kernel in this environment")
        obs.enable()
        result = run_numpy(oriented, "E1", collect=True)
        assert result.extra["native"] is True
        assert result.extra["native_kernel"] in native.KERNEL_KINDS
        snap = obs.metrics.snapshot()
        assert snap["gauges"]["engine.native"] == 1.0
        assert snap["gauges"]["engine.native_threads"] >= 1.0


class TestNativeOpCounters:
    def test_per_thread_ops_sum_to_total(self, oriented):
        if not native.available():
            pytest.skip("no compiled kernel in this environment")
        obs.enable()
        run_numpy(oriented, "T1", collect=False)
        counters = engine_counters()
        total = counters["engine.native.ops"]
        assert total > 0
        per_thread = [v for k, v in counters.items()
                      if k.startswith("engine.native.ops.t")]
        assert per_thread and sum(per_thread) == total
        stats = native.last_stats()
        assert stats["ops"] == total
        assert stats["triangles"] > 0


class TestListerEngineLabel:
    def test_python_and_numpy_labels(self, oriented, monkeypatch):
        monkeypatch.setattr(native, "_lib", None)
        obs.enable()
        list_triangles(oriented, "T1", collect=False, engine="python")
        list_triangles(oriented, "T1", collect=False, engine="numpy")
        counters = obs.metrics.snapshot()["counters"]
        assert counters["lister.engine.python"] == 1
        assert counters["lister.engine.numpy"] == 1

    def test_native_label(self, oriented):
        if not native.available():
            pytest.skip("no compiled kernel in this environment")
        obs.enable()
        list_triangles(oriented, "T1", collect=False, engine="numpy")
        counters = obs.metrics.snapshot()["counters"]
        assert counters["lister.engine.native"] == 1
        assert "lister.engine.numpy" not in counters

    def test_native_engine_value_labels_native(self, oriented):
        if not native.available():
            pytest.skip("no compiled kernel in this environment")
        obs.enable()
        list_triangles(oriented, "T1", collect=True, engine="native")
        counters = obs.metrics.snapshot()["counters"]
        assert counters["lister.engine.native"] == 1
