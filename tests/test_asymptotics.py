"""Tests for finiteness thresholds and scaling rates (section 6.3)."""

import numpy as np
import pytest

from repro.core.asymptotics import (
    e1_scaling_rate,
    finiteness_threshold,
    fit_growth_exponent,
    h_tail_exponent,
    is_cost_finite,
    spread_tail,
    t1_scaling_rate,
)


class TestTailExponents:
    @pytest.mark.parametrize("method,map_name,expected", [
        ("T1", "descending", 2),   # h(1-u) ~ (1-u)^2
        ("T1", "ascending", 0),    # h(u) -> 1/2
        ("T2", "descending", 1),
        ("T2", "ascending", 1),
        ("T2", "rr", 1),
        ("E1", "descending", 1),
        ("E1", "ascending", 0),
        ("E1", "rr", 0),
        ("E4", "crr", 0),
        ("E4", "descending", 0),
        ("T1", "uniform", 0),
        ("T3", "ascending", 2),    # mirror of T1 + descending
    ])
    def test_exponents(self, method, map_name, expected):
        assert h_tail_exponent(method, map_name) == expected


class TestThresholds:
    """All thresholds the paper states, from one rule."""

    @pytest.mark.parametrize("method,map_name,threshold", [
        ("T1", "descending", 4 / 3),
        ("T1", "ascending", 2.0),
        ("T2", "descending", 1.5),
        ("T2", "rr", 1.5),
        ("E1", "descending", 1.5),
        ("E1", "rr", 2.0),
        ("E4", "crr", 2.0),
        ("E1", "uniform", 2.0),
    ])
    def test_threshold_values(self, method, map_name, threshold):
        assert finiteness_threshold(method, map_name) \
            == pytest.approx(threshold)

    def test_is_cost_finite(self):
        assert is_cost_finite(1.4, "T1", "descending")
        assert not is_cost_finite(1.3, "T1", "descending")
        assert is_cost_finite(1.6, "E1", "descending")
        assert not is_cost_finite(1.5, "E1", "descending")

    def test_four_regimes_of_vertex_iterator(self):
        """Section 4.2: thresholds 4/3 < 1.5 < 2 partition alpha."""
        t1d = finiteness_threshold("T1", "descending")
        t2 = finiteness_threshold("T2", "descending")
        t1a = finiteness_threshold("T1", "ascending")
        assert t1d < t2 < t1a


class TestSpreadTail:
    def test_alpha_above_one(self):
        np.testing.assert_allclose(spread_tail(2.0, 100.0), 0.01)

    def test_alpha_one_needs_tn(self):
        with pytest.raises(ValueError):
            spread_tail(1.0, 10.0)
        val = spread_tail(1.0, 10.0, t_n=100.0)
        assert val == pytest.approx(0.5)

    def test_alpha_below_one(self):
        val = spread_tail(0.5, 25.0, t_n=100.0)
        assert val == pytest.approx(1.0 - 5.0 / 10.0)


class TestScalingRates:
    def test_t1_rate_regimes(self):
        n = np.array([1e4, 1e6])
        np.testing.assert_allclose(t1_scaling_rate(4 / 3, n), np.log(n))
        np.testing.assert_allclose(t1_scaling_rate(1.2, n), n**0.2)
        np.testing.assert_allclose(t1_scaling_rate(1.0, n),
                                   np.sqrt(n) / np.log(n) ** 2)
        np.testing.assert_allclose(t1_scaling_rate(0.5, n), n**0.75)

    def test_e1_rate_regimes(self):
        n = np.array([1e4, 1e6])
        np.testing.assert_allclose(e1_scaling_rate(1.5, n), np.log(n))
        np.testing.assert_allclose(e1_scaling_rate(1.2, n), n**0.3)
        np.testing.assert_allclose(e1_scaling_rate(1.0, n),
                                   np.sqrt(n) / np.log(n))
        np.testing.assert_allclose(e1_scaling_rate(0.5, n), n**0.75)

    def test_rates_error_above_threshold(self):
        with pytest.raises(ValueError):
            t1_scaling_rate(1.4, 1e6)
        with pytest.raises(ValueError):
            e1_scaling_rate(1.6, 1e6)
        with pytest.raises(ValueError):
            t1_scaling_rate(-1.0, 1e6)

    def test_t1_grows_slower_than_e1_between_1_and_15(self):
        """Section 6.3: a_n = o(b_n) for alpha in [1, 1.5)."""
        for alpha in (1.1, 1.25, 1.32):
            small = t1_scaling_rate(alpha, 1e8) / t1_scaling_rate(alpha, 1e4)
            big = e1_scaling_rate(alpha, 1e8) / e1_scaling_rate(alpha, 1e4)
            assert small < big

    def test_same_rate_below_one(self):
        """Section 6.3: identical scaling for alpha in (0, 1)."""
        for alpha in (0.3, 0.7, 0.95):
            np.testing.assert_allclose(t1_scaling_rate(alpha, 1e7),
                                       e1_scaling_rate(alpha, 1e7))

    def test_model_growth_matches_rate_alpha_12(self):
        """The model's T1+D growth under root truncation tracks
        n^(2 - 1.5 alpha) for alpha = 1.2 (eq. (47))."""
        from repro import DiscretePareto, fast_cost_model
        from repro.distributions import root_truncation
        dist = DiscretePareto(1.2, 6.0)
        ns = [10**10, 10**11, 10**12, 10**13]
        costs = [fast_cost_model(dist.truncate(root_truncation(n)), "T1",
                                 "descending", eps=1e-4) for n in ns]
        slope = fit_growth_exponent(ns, costs)
        assert slope == pytest.approx(2 - 1.5 * 1.2, abs=0.05)


class TestFitGrowthExponent:
    def test_pure_power_law(self):
        ns = np.array([10.0, 100.0, 1000.0])
        assert fit_growth_exponent(ns, ns**1.7) == pytest.approx(1.7)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_growth_exponent([10.0], [1.0])
