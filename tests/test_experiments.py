"""Tests for the simulation harness, table rendering, and case studies."""

import numpy as np
import pytest

from repro import DescendingDegree, DiscretePareto, RoundRobin
from repro.distributions import linear_truncation, root_truncation
from repro.experiments.harness import (
    SimulationSpec,
    model_cost,
    simulate_cost,
    simulated_vs_model,
    sweep_n,
)
from repro.experiments.speed import measure_primitive_speeds
from repro.experiments.tables import (
    ComparisonRow,
    format_comparison_table,
    format_matrix_table,
)
from repro.experiments.twitter import (
    PERMUTATION_ORDER,
    analyze_cost_matrix,
    cost_matrix,
    twitter_like_graph,
)


def _spec(method="T1", perm=None, map_name="descending",
          truncation=root_truncation, alpha=1.5):
    return SimulationSpec(
        base_dist=DiscretePareto.paper_parameterization(alpha),
        truncation=truncation,
        method=method,
        permutation=perm or DescendingDegree(),
        limit_map=map_name,
        n_sequences=2,
        n_graphs=2,
    )


class TestHarness:
    def test_simulation_close_to_model_amrc(self, rng):
        """Root truncation (AMRC): model within a few percent at n=3000.

        Mirrors Table 6's accuracy claim at reduced scale."""
        spec = _spec()
        sim, model, error = simulated_vs_model(spec, 3000, rng)
        assert sim > 0 and model > 0
        assert abs(error) < 0.15

    def test_t2_rr_cell(self, rng):
        """A Table 7 cell: T2 + RR at alpha = 1.7."""
        spec = _spec(method="T2", perm=RoundRobin(), map_name="rr",
                     alpha=1.7)
        sim, model, error = simulated_vs_model(spec, 2000, rng)
        assert abs(error) < 0.25

    def test_sweep_shapes(self, rng):
        rows = sweep_n(_spec(), [500, 1000], rng)
        assert [r["n"] for r in rows] == [500, 1000]
        assert all({"sim", "model", "error"} <= set(r) for r in rows)

    def test_error_shrinks_with_n_for_amrc(self, rng):
        """Table 6's qualitative trend at small scale (noisy: use a
        generous margin)."""
        spec = _spec()
        rows = sweep_n(spec, [300, 3000], rng)
        assert abs(rows[1]["error"]) < abs(rows[0]["error"]) + 0.05

    def test_model_cost_matches_direct_call(self):
        from repro import discrete_cost_model
        spec = _spec()
        n = 1000
        direct = discrete_cost_model(
            spec.base_dist.truncate(root_truncation(n)), "T1",
            "descending")
        assert model_cost(spec, n) == pytest.approx(direct)

    def test_configuration_generator_undershoots(self, rng):
        """The stub-matching deficit lowers simulated cost vs. residual
        (section 7.2's motivation) under linear truncation."""
        base = dict(method="T1", truncation=linear_truncation, alpha=1.5)
        res = _spec(**base)
        cfg = _spec(**base)
        cfg.generator = "configuration"
        n = 2000
        assert simulate_cost(cfg, n, rng) < simulate_cost(res, n, rng)


class TestTables:
    def test_comparison_table_contains_values(self):
        rows = [ComparisonRow(1000, [(40.2, 39.3, -0.022)]),
                ComparisonRow("inf", [None])]
        text = format_comparison_table("Table 6", ["T1+D"], rows)
        assert "Table 6" in text
        assert "40.2" in text
        assert "-2.2%" in text
        assert "--" in text

    def test_matrix_table_highlights_min(self):
        text = format_matrix_table("Table 12", ["T1"], ["a", "b"],
                                   [[150e9, 123e12]])
        assert "*150B*" in text
        assert "123T" in text

    def test_matrix_table_handles_inf(self):
        text = format_matrix_table("x", ["T1"], ["a"], [[float("inf")]])
        assert "inf" in text


class TestTwitterStudy:
    @pytest.fixture(scope="class")
    def matrix(self):
        graph = twitter_like_graph(n=4000, alpha=1.7)
        return cost_matrix(graph)

    def test_optimal_permutations_match_paper(self, matrix):
        """Table 12's gray cells: theta_D for T1/E1, RR for T2, CRR for
        E4."""
        report = analyze_cost_matrix(matrix)
        per = report["per_method"]
        assert per["T1"]["best"] == "descending"
        assert per["E1"]["best"] == "descending"
        assert per["T2"]["best"] == "rr"
        assert per["E4"]["best"] == "crr"

    def test_e1_desc_is_double_t2_rr(self, matrix):
        """Paper: 'the cost of E1 under theta_D is double that of T2
        under theta_RR'."""
        report = analyze_cost_matrix(matrix)
        assert report["e1_desc_over_t2_rr"] == pytest.approx(2.0, abs=0.1)

    def test_t2_symmetric_in_monotone_perms(self, matrix):
        methods = ["T1", "T2", "E1", "E4"]
        perms = list(PERMUTATION_ORDER)
        t2 = matrix[methods.index("T2")]
        assert t2[perms.index("descending")] == pytest.approx(
            t2[perms.index("ascending")], rel=1e-9)

    def test_e4_flat_across_permutations(self, matrix):
        """Paper: E4 is 'almost equally expensive under all
        permutations' (worst/best ratio ~2 on Twitter)."""
        report = analyze_cost_matrix(matrix)
        assert report["per_method"]["E4"]["worst_over_best"] < 3.0

    def test_degenerate_near_optimal_for_t1(self, matrix):
        methods = ["T1", "T2", "E1", "E4"]
        perms = list(PERMUTATION_ORDER)
        t1 = matrix[methods.index("T1")]
        degen = t1[perms.index("degenerate")]
        desc = t1[perms.index("descending")]
        assert 0.7 < degen / desc < 1.3


class TestSpeed:
    def test_measurement_sanity(self):
        result = measure_primitive_speeds(list_size=20_000, repeats=2)
        assert result["hash_nodes_per_sec"] > 0
        assert result["scan_numpy_nodes_per_sec"] > 0
        assert result["speed_ratio_numpy_scan_over_hash"] > 0
        assert result["paper_speed_ratio"] == pytest.approx(1801 / 19)
