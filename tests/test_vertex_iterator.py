"""Tests for vertex iterators T1-T6 (section 2.2)."""

import pytest

from repro import (
    DescendingDegree,
    OrientedGraph,
    list_triangles,
    orient,
)
from repro.core.costs import cost_t1, cost_t2, cost_t3
from repro.listing import run_vertex_iterator

VERTEX_METHODS = ("T1", "T2", "T3", "T4", "T5", "T6")


class TestCorrectness:
    @pytest.mark.parametrize("method", VERTEX_METHODS)
    def test_single_triangle(self, triangle_graph, method):
        oriented = OrientedGraph(triangle_graph, [0, 1, 2])
        result = run_vertex_iterator(oriented, method)
        assert result.count == 1
        assert result.triangles == [(0, 1, 2)]

    @pytest.mark.parametrize("method", VERTEX_METHODS)
    def test_k4(self, k4_graph, method):
        oriented = OrientedGraph(k4_graph, [0, 1, 2, 3])
        result = run_vertex_iterator(oriented, method)
        assert result.count == 4
        assert result.triangle_set() == {(0, 1, 2), (0, 1, 3), (0, 2, 3),
                                         (1, 2, 3)}

    @pytest.mark.parametrize("method", VERTEX_METHODS)
    def test_no_triangles(self, path_graph, method):
        oriented = orient(path_graph, DescendingDegree())
        assert run_vertex_iterator(oriented, method).count == 0

    def test_triangles_are_ordered_triples(self, bowtie_graph):
        oriented = orient(bowtie_graph, DescendingDegree())
        result = run_vertex_iterator(oriented, "T1")
        for x, y, z in result.triangles:
            assert x < y < z

    def test_collect_false_counts_only(self, k4_graph):
        oriented = OrientedGraph(k4_graph, [0, 1, 2, 3])
        result = run_vertex_iterator(oriented, "T1", collect=False)
        assert result.count == 4
        assert result.triangles is None
        with pytest.raises(ValueError):
            result.triangle_set()

    def test_unknown_method(self, triangle_graph):
        oriented = OrientedGraph(triangle_graph, [0, 1, 2])
        with pytest.raises(ValueError):
            run_vertex_iterator(oriented, "T7")


class TestCostFormulas:
    def test_t1_ops_formula(self, pareto_graph):
        """Eq. (7): ops = sum X (X - 1) / 2."""
        oriented = orient(pareto_graph, DescendingDegree())
        result = run_vertex_iterator(oriented, "T1")
        assert result.ops == int(cost_t1(oriented.out_degrees))

    def test_t2_ops_formula(self, pareto_graph):
        """Eq. (8): ops = sum X Y."""
        oriented = orient(pareto_graph, DescendingDegree())
        result = run_vertex_iterator(oriented, "T2")
        assert result.ops == int(cost_t2(oriented.out_degrees,
                                         oriented.in_degrees))

    def test_t3_ops_formula(self, pareto_graph):
        """Eq. (9): ops = sum Y (Y - 1) / 2."""
        oriented = orient(pareto_graph, DescendingDegree())
        result = run_vertex_iterator(oriented, "T3")
        assert result.ops == int(cost_t3(oriented.in_degrees))

    def test_t4_t5_t6_costs_match_counterparts(self, pareto_graph):
        """Figure 1: T4-T6 only reorder the last two visits."""
        oriented = orient(pareto_graph, DescendingDegree())
        for a, b in [("T1", "T4"), ("T2", "T5"), ("T3", "T6")]:
            assert (run_vertex_iterator(oriented, a).ops
                    == run_vertex_iterator(oriented, b).ops)

    def test_hash_inserts_is_m(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        result = run_vertex_iterator(oriented, "T1")
        assert result.hash_inserts == pareto_graph.m

    def test_per_node_cost(self, k4_graph):
        oriented = OrientedGraph(k4_graph, [0, 1, 2, 3])
        result = run_vertex_iterator(oriented, "T1")
        # out-degrees 0,1,2,3 -> sum X(X-1)/2 = 0+0+1+3 = 4
        assert result.ops == 4
        assert result.per_node_cost == pytest.approx(1.0)


class TestEquivalenceClasses:
    def test_t1_t3_equivalence_under_reversal(self, pareto_graph):
        """Figure 2: c_n(T1, theta) = c_n(T3, theta')."""
        from repro import AscendingDegree, reverse_permutation
        perm = AscendingDegree()
        oriented = orient(pareto_graph, perm)
        rev_oriented = orient(pareto_graph, reverse_permutation(perm))
        assert (run_vertex_iterator(oriented, "T1").ops
                == run_vertex_iterator(rev_oriented, "T3").ops)

    def test_t2_self_reverse(self, pareto_graph):
        """Figure 2: T2 and T5 reverse into each other (same cost)."""
        from repro import AscendingDegree, reverse_permutation
        perm = AscendingDegree()
        oriented = orient(pareto_graph, perm)
        rev_oriented = orient(pareto_graph, reverse_permutation(perm))
        assert (run_vertex_iterator(oriented, "T2").ops
                == run_vertex_iterator(rev_oriented, "T5").ops)
