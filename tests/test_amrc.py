"""Tests for Definition 1 (AMRC) and Proposition 3 (max-degree tails).

Proposition 3: ``P(L_n > n^c) -> 0`` if ``E[D^(1/c)] < inf``. With
``c = 1/2`` this says finite variance keeps the largest sampled degree
below ``sqrt(n)`` with probability approaching one -- the condition
under which the edge-probability model (10) is trustworthy.
"""

import math

import numpy as np
import pytest

from repro import DiscretePareto, sample_degree_sequence
from repro.distributions import linear_truncation, root_truncation


def _exceedance_rate(alpha, beta, n, trials, rng):
    """Fraction of sampled sequences whose max degree exceeds sqrt(n)."""
    dist = DiscretePareto(alpha, beta).truncate(linear_truncation(n))
    hits = 0
    for __ in range(trials):
        degrees = sample_degree_sequence(dist, n, rng,
                                         ensure_even_sum=False,
                                         ensure_graphical=False)
        hits += degrees.max() > math.isqrt(n)
    return hits / trials


class TestProposition3:
    """Prop. 3 is asymptotic: P(L_n > sqrt n) ~ n beta^alpha n^(-a/2),
    so the convergence is only visible at laptop n when beta is small
    (beta = 30 (alpha-1) would need n ~ 1e15 to push the constant
    beta^alpha down). alpha = 4, beta = 2 makes it observable."""

    def test_finite_variance_keeps_max_below_root(self, rng):
        """E[D^2] < inf with small constants: L_n <= sqrt(n) w.h.p."""
        rate = _exceedance_rate(4.0, 2.0, 4000, 40, rng)
        assert rate < 0.2

    def test_exceedance_shrinks_with_n(self, rng):
        """The Prop. 3 convergence, visible across one decade of n."""
        alpha, beta = 4.0, 2.0
        small = _exceedance_rate(alpha, beta, 300, 60, rng)
        large = _exceedance_rate(alpha, beta, 5000, 60, rng)
        assert large <= small + 0.05

    def test_heavy_tail_violates_root_constraint(self, rng):
        """alpha = 1.3 < 2: the max degree blows past sqrt(n) almost
        always under linear truncation -- the unconstrained regime."""
        rate = _exceedance_rate(1.3, 9.0, 4000, 30, rng)
        assert rate > 0.9

    def test_tail_index_rule(self):
        """E[D^(1/c)] < inf iff 1/c < alpha: the Prop. 3 criterion in
        terms of the Pareto moments machinery."""
        dist = DiscretePareto(2.5, 45.0)
        assert math.isfinite(dist.moment(2))   # c = 1/2 applies
        assert math.isinf(dist.moment(3))      # c = 1/3 does not


class TestDefinition1:
    def test_root_truncation_is_deterministically_amrc(self, rng):
        """t_n = sqrt(n) caps L_n by construction: P(L_n > sqrt n) = 0."""
        n = 2000
        dist = DiscretePareto(1.3, 9.0).truncate(root_truncation(n))
        for __ in range(10):
            degrees = sample_degree_sequence(dist, n, rng)
            assert degrees.max() <= math.isqrt(n)

    def test_edge_probabilities_bounded_under_amrc(self, rng):
        """Eq. (10) stays a probability when L_n <= sqrt(n)."""
        from repro.core.outdegree import edge_probability
        n = 2000
        dist = DiscretePareto(1.3, 9.0).truncate(root_truncation(n))
        degrees = np.sort(sample_degree_sequence(dist, n, rng))[::-1]
        assert edge_probability(degrees, 0, 1) <= 1.0
        # and the raw product of the two largest degrees really is
        # below 2m, the binding case
        assert degrees[0] * degrees[1] <= degrees.sum()


@pytest.fixture
def rng():
    return np.random.default_rng(31)
