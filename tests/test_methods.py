"""Tests for the method registry (Table 4 and the equivalence classes)."""

import numpy as np
import pytest

from repro.core.methods import FUNDAMENTAL_METHODS, METHODS, get_method


class TestTable4:
    def test_h_t1(self):
        xs = np.linspace(0, 1, 11)
        np.testing.assert_allclose(METHODS["T1"].h(xs), xs**2 / 2)

    def test_h_t2(self):
        xs = np.linspace(0, 1, 11)
        np.testing.assert_allclose(METHODS["T2"].h(xs), xs * (1 - xs))

    def test_h_e1(self):
        xs = np.linspace(0, 1, 11)
        np.testing.assert_allclose(METHODS["E1"].h(xs), xs * (2 - xs) / 2)

    def test_h_e4(self):
        xs = np.linspace(0, 1, 11)
        np.testing.assert_allclose(METHODS["E4"].h(xs),
                                   (xs**2 + (1 - xs)**2) / 2)

    def test_e1_h_is_t1_plus_t2(self):
        """Prop. 2 at the h level: h_E1 = h_T1 + h_T2."""
        xs = np.linspace(0, 1, 101)
        np.testing.assert_allclose(
            METHODS["E1"].h(xs), METHODS["T1"].h(xs) + METHODS["T2"].h(xs))

    def test_e4_h_is_t1_plus_t3(self):
        xs = np.linspace(0, 1, 101)
        np.testing.assert_allclose(
            METHODS["E4"].h(xs), METHODS["T1"].h(xs) + METHODS["T3"].h(xs))

    def test_e3_h_is_t3_plus_t2(self):
        xs = np.linspace(0, 1, 101)
        np.testing.assert_allclose(
            METHODS["E3"].h(xs), METHODS["T3"].h(xs) + METHODS["T2"].h(xs))

    def test_t2_h_symmetric(self):
        """h(1-x) = h(x) for T2: both monotonic permutations tie."""
        xs = np.linspace(0, 1, 101)
        np.testing.assert_allclose(METHODS["T2"].h(xs),
                                   METHODS["T2"].h(1 - xs))

    def test_e4_h_symmetric(self):
        xs = np.linspace(0, 1, 101)
        np.testing.assert_allclose(METHODS["E4"].h(xs),
                                   METHODS["E4"].h(1 - xs))

    def test_mirror_classes(self):
        """h_T3(x) = h_T1(1-x) and h_E3(x) = h_E1(1-x) (reversal)."""
        xs = np.linspace(0, 1, 101)
        np.testing.assert_allclose(METHODS["T3"].h(xs),
                                   METHODS["T1"].h(1 - xs))
        np.testing.assert_allclose(METHODS["E3"].h(xs),
                                   METHODS["E1"].h(1 - xs))


class TestRegistry:
    def test_all_18_present(self):
        assert len(METHODS) == 18
        for family, count in [("vertex", 6), ("sei", 6), ("lei", 6)]:
            assert sum(m.family == family for m in METHODS.values()) == count

    def test_fundamental_four(self):
        assert FUNDAMENTAL_METHODS == ("T1", "T2", "E1", "E4")

    def test_equivalence_class_representatives(self):
        """Figures 2/4: only four distinct classes survive."""
        classes = {m.equivalent_to for m in METHODS.values()}
        assert classes == {"T1", "T2", "E1", "E4"}

    def test_g_function(self):
        m = METHODS["T1"]
        np.testing.assert_allclose(m.g(np.array([1.0, 2.0, 5.0])),
                                   [0.0, 2.0, 20.0])

    def test_get_method_case_insensitive(self):
        assert get_method("e4").name == "E4"
        with pytest.raises(ValueError):
            get_method("Z9")
