"""Meta-tests: documentation coverage of the public API.

The deliverable "doc comments on every public item" made executable:
every module, public class, public function, and public method in the
package carries a docstring.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports documented at their home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


def _documented_in_mro(cls, method_name: str) -> bool:
    """A method counts as documented if it or any base's version is --
    overrides inherit the contract they implement."""
    for klass in cls.__mro__:
        meth = vars(klass).get(method_name)
        if meth is not None and getattr(meth, "__doc__", None) \
                and meth.__doc__.strip():
            return True
    return False


MODULES = list(_iter_modules())


class TestDocstrings:
    @pytest.mark.parametrize(
        "module", MODULES, ids=[m.__name__ for m in MODULES])
    def test_module_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__

    @pytest.mark.parametrize(
        "module", MODULES, ids=[m.__name__ for m in MODULES])
    def test_public_members_documented(self, module):
        undocumented = []
        for name, obj in _public_members(module):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
            if inspect.isclass(obj):
                for meth_name, meth in vars(obj).items():
                    if meth_name.startswith("_"):
                        continue
                    if not inspect.isfunction(meth):
                        continue
                    if _documented_in_mro(obj, meth_name):
                        continue
                    undocumented.append(f"{name}.{meth_name}")
        assert not undocumented, (
            f"{module.__name__}: missing docstrings on {undocumented}")


class TestProjectDocs:
    def test_required_documents_exist(self):
        import pathlib
        root = pathlib.Path(repro.__file__).resolve().parents[2]
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "docs/THEORY.md", "docs/API.md"):
            path = root / name
            assert path.exists(), name
            assert len(path.read_text()) > 500, name

    def test_all_public_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name
