"""Tests for the library-level table generators and the runner."""

import math

import pytest

from repro.experiments.paper_tables import (
    ALL_TABLES,
    table05,
    table06,
    table11,
    table12,
)
from repro.experiments.reproduce import reproduce_all

SMALL = dict(sizes=(300, 600), n_sequences=2, n_graphs=1)


class TestGenerators:
    def test_registry_complete(self):
        assert set(ALL_TABLES) == {f"table{i:02d}" for i in range(5, 13)}

    def test_table05_small(self):
        text, rows = table05(exact_sizes=(10**3,),
                             fast_sizes=(10**3, 10**4))
        assert "Table 5" in text
        # the n=1e3 exact cell is the paper's 142.85
        n, __, __, exact, __, fast, __ = rows[0]
        assert n == 10**3
        assert exact == pytest.approx(142.85, abs=0.01)
        assert fast == pytest.approx(exact, abs=0.01)

    def test_table06_small(self):
        text, rows = table06(**SMALL)
        assert "alpha=1.5" in text
        assert rows[-1].n == "inf"
        assert math.isinf(rows[-1].cells[0][1])      # T1+A diverges
        assert rows[-1].cells[1][1] == pytest.approx(356.3, abs=0.5)

    def test_table11_small(self):
        text, data = table11(sizes=(400,), n_sequences=2, n_graphs=1)
        assert "w1" in text
        row = data[400]
        assert set(row) == {"T1+D", "T2+D", "T2+RR"}
        # w2 shrinks the T2+RR error magnitude (the experiment's point)
        assert abs(row["T2+RR"][1]) < abs(row["T2+RR"][0])

    def test_table12_small(self):
        text, data = table12(n=3000)
        assert "Twitter-like" in text
        assert data["report"]["per_method"]["T1"]["best"] == "descending"


class TestReproduceRunner:
    def test_subset_run(self, tmp_path, capsys):
        results = reproduce_all(tmp_path, tables=["table05"])
        assert "table05" in results
        assert (tmp_path / "table05.txt").exists()
        assert "Table 5" in capsys.readouterr().out

    def test_unknown_table(self, tmp_path):
        with pytest.raises(ValueError, match="unknown table"):
            reproduce_all(tmp_path, tables=["table99"])
