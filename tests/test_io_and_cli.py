"""Tests for graph I/O and the command-line interface."""

import numpy as np
import pytest

from repro import Graph
from repro.cli import main
from repro.graphs.io import (
    load_degree_sequence,
    load_edge_list,
    save_degree_sequence,
    save_edge_list,
)


class TestEdgeListIO:
    def test_roundtrip(self, bowtie_graph, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list(bowtie_graph, path)
        loaded = load_edge_list(path)
        assert loaded.n == bowtie_graph.n
        assert loaded.m == bowtie_graph.m
        np.testing.assert_array_equal(loaded.edges, bowtie_graph.edges)

    def test_load_dedups_and_drops_loops(self, tmp_path):
        path = tmp_path / "messy.txt"
        path.write_text("# comment\n0 1\n1 0\n2 2\n1 2\n")
        graph = load_edge_list(path)
        assert graph.m == 2
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(2, 2)

    def test_load_empty(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        graph = load_edge_list(path, n=3)
        assert graph.n == 3 and graph.m == 0

    def test_bad_shape(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2 3\n4 5 6\n")
        with pytest.raises(ValueError):
            load_edge_list(path)

    def test_degree_sequence_roundtrip(self, tmp_path):
        path = tmp_path / "deg.txt"
        save_degree_sequence([3, 1, 4, 1, 5], path)
        np.testing.assert_array_equal(load_degree_sequence(path),
                                      [3, 1, 4, 1, 5])


class TestCli:
    def test_generate_and_triangles(self, tmp_path, capsys):
        out = tmp_path / "g.txt"
        assert main(["generate", "--n", "400", "--alpha", "1.7",
                     "--out", str(out), "--seed", "3"]) == 0
        assert out.exists()
        assert main(["triangles", "--graph", str(out), "--method", "E1",
                     "--order", "descending"]) == 0
        captured = capsys.readouterr().out
        assert "triangles" in captured
        assert "c_n" in captured

    def test_triangles_matches_library(self, tmp_path, capsys):
        from repro import DescendingDegree, count_triangles, orient
        out = tmp_path / "g.txt"
        main(["generate", "--n", "300", "--alpha", "2.1",
              "--out", str(out), "--seed", "5"])
        graph = load_edge_list(out)
        expected = count_triangles(orient(graph, DescendingDegree()))
        capsys.readouterr()
        main(["triangles", "--graph", str(out), "--method", "T1"])
        assert f"{expected} triangles" in capsys.readouterr().out

    def test_model_command(self, capsys):
        assert main(["model", "--alpha", "1.5", "--n", "1000",
                     "--method", "T1", "--map", "descending"]) == 0
        out = capsys.readouterr().out
        assert "142.8" in out  # Table 5's n=1e3 cell (142.85)

    def test_model_fast_flag(self, capsys):
        assert main(["model", "--alpha", "1.5", "--n", "1000000000",
                     "--method", "T1", "--map", "descending",
                     "--eps", "1e-4"]) == 0
        assert "Algorithm 2" in capsys.readouterr().out

    def test_limit_command(self, capsys):
        assert main(["limit", "--alpha", "2.5", "--method", "T2",
                     "--map", "rr"]) == 0
        assert "lim" in capsys.readouterr().out

    def test_decide_in_limit(self, capsys):
        assert main(["decide", "--alpha", "1.45"]) == 0
        out = capsys.readouterr().out
        assert "winner: hash" in out

    def test_decide_on_graph(self, tmp_path, capsys):
        out_file = tmp_path / "g.txt"
        main(["generate", "--n", "300", "--alpha", "2.1",
              "--out", str(out_file), "--seed", "5"])
        capsys.readouterr()
        assert main(["decide", "--graph", str(out_file)]) == 0
        assert "winner" in capsys.readouterr().out

    def test_regimes_command(self, capsys):
        assert main(["regimes", "1.3", "1.45", "1.7", "2.5"]) == 0
        out = capsys.readouterr().out
        assert "1.450" in out

    def test_bad_beta(self):
        with pytest.raises(SystemExit):
            main(["limit", "--alpha", "0.9", "--method", "T1",
                  "--map", "descending"])

    def test_predict_command(self, tmp_path, capsys):
        out_file = tmp_path / "g.txt"
        main(["generate", "--n", "500", "--alpha", "1.8",
              "--out", str(out_file), "--seed", "2"])
        capsys.readouterr()
        assert main(["predict", "--graph", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "model c_n" in out
        assert "measured" in out
        assert "w = c(E1)/c(T1)" in out

    def test_predict_empty_graph(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(SystemExit):
            main(["predict", "--graph", str(path)])

    def test_table_command(self, tmp_path, capsys):
        assert main(["table", "table05", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table05.txt").exists()


class TestCliObservability:
    """The --version / --trace flags and the profile subcommand."""

    @pytest.fixture(autouse=True)
    def clean_obs(self):
        from repro import obs
        obs.disable()
        obs.reset()
        yield
        obs.disable()
        obs.reset()

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_trace_flag_prints_span_tree(self, tmp_path, capsys):
        out = tmp_path / "g.txt"
        main(["generate", "--n", "300", "--alpha", "1.7",
              "--out", str(out), "--seed", "4"])
        capsys.readouterr()
        assert main(["triangles", "--graph", str(out), "--method", "T1",
                     "--trace"]) == 0
        text = capsys.readouterr().out
        assert "-- trace" in text
        for phase in ("relabel", "orient", "list"):
            assert phase in text
        assert "lister.ops" in text

    def test_trace_disabled_afterwards(self, tmp_path, capsys):
        from repro import obs
        out = tmp_path / "g.txt"
        main(["generate", "--n", "300", "--alpha", "1.7",
              "--out", str(out), "--seed", "4"])
        main(["triangles", "--graph", str(out), "--trace"])
        assert not obs.is_enabled()

    def test_trace_env_knob(self, tmp_path, capsys, monkeypatch):
        out = tmp_path / "g.txt"
        main(["generate", "--n", "300", "--alpha", "1.7",
              "--out", str(out), "--seed", "4"])
        capsys.readouterr()
        monkeypatch.setenv("REPRO_TRACE", "1")
        main(["triangles", "--graph", str(out)])
        assert "-- trace" in capsys.readouterr().out

    def test_no_trace_no_tree(self, tmp_path, capsys):
        out = tmp_path / "g.txt"
        main(["generate", "--n", "300", "--alpha", "1.7",
              "--out", str(out), "--seed", "4"])
        capsys.readouterr()
        main(["triangles", "--graph", str(out)])
        assert "-- trace" not in capsys.readouterr().out

    def test_profile_prints_phase_table(self, capsys):
        assert main(["profile", "--n", "400", "--alpha", "1.7",
                     "--seed", "2", "--methods", "T1,E1",
                     "--orders", "descending"]) == 0
        text = capsys.readouterr().out
        assert "phase breakdown" in text
        for column in ("relabel ms", "orient ms", "list ms"):
            assert column in text
        # one row per (order, method) combination
        assert text.count("descending") >= 2

    def test_profile_on_graph_file(self, tmp_path, capsys):
        out = tmp_path / "g.txt"
        main(["generate", "--n", "300", "--alpha", "1.7",
              "--out", str(out), "--seed", "4"])
        capsys.readouterr()
        assert main(["profile", "--graph", str(out),
                     "--methods", "T1", "--orders",
                     "descending,ascending"]) == 0
        text = capsys.readouterr().out
        assert "ascending" in text and "descending" in text

    def test_profile_record(self, tmp_path, capsys):
        import json
        sink = tmp_path / "runs.jsonl"
        assert main(["profile", "--n", "400", "--alpha", "1.7",
                     "--seed", "2", "--methods", "T1",
                     "--orders", "descending",
                     "--record", str(sink)]) == 0
        (record,) = [json.loads(line)
                     for line in sink.read_text().splitlines()]
        assert record["name"] == "profile"
        assert record["config"]["methods"] == ["T1"]
        names = {child["name"] for root in record["spans"]
                 for child in root.get("children", [])}
        assert {"relabel", "orient", "list"} <= names

    def test_profile_unknown_order(self):
        with pytest.raises(SystemExit):
            main(["profile", "--n", "300", "--orders", "sideways"])


class TestCliLive:
    """``repro top`` / ``repro serve-metrics`` and the live env knobs."""

    @pytest.fixture(autouse=True)
    def clean_live(self):
        from repro import obs
        from repro.obs import bus, live
        live.disable()
        bus.reset()
        obs.disable()
        obs.reset()
        yield
        live.disable()
        bus.reset()
        obs.disable()
        obs.reset()

    def _write_stream(self, tmp_path):
        import json
        events = [
            {"type": "phase", "ts": 1.0, "pid": 1, "name": "table",
             "status": "start"},
            {"type": "progress", "ts": 2.0, "pid": 1, "scope": "cell",
             "label": "cell n=200 T1", "done": 1.0, "total": 2.0,
             "frac": 0.5, "eta_s": 3.0, "ops_done": 5.0,
             "ops_predicted": 10.0},
            {"type": "heartbeat", "ts": 3.0, "pid": 1,
             "worker_pid": 42, "task": "seq 0 n=200 T1"},
        ]
        path = tmp_path / "events.jsonl"
        path.write_text("".join(json.dumps(e) + "\n" for e in events))
        return path

    def test_top_validate_ok(self, tmp_path, capsys):
        path = self._write_stream(tmp_path)
        assert main(["top", "--events", str(path), "--validate"]) == 0
        assert "3 event(s) OK" in capsys.readouterr().out

    def test_top_validate_rejects_bad_stream(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        path.write_text('{"type": "progress", "ts": 1.0, "pid": 1}\n'
                        "not json at all\n")
        assert main(["top", "--events", str(path), "--validate"]) == 1
        err = capsys.readouterr().err
        assert "schema error" in err
        assert "not JSON" in err

    def test_top_validate_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["top", "--events", str(tmp_path / "nope.jsonl"),
                  "--validate"])

    def test_top_once_renders_state(self, tmp_path, capsys):
        path = self._write_stream(tmp_path)
        assert main(["top", "--events", str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "table" in out
        assert "50.0%" in out
        assert "pid 42" in out

    def test_serve_metrics_once_scrapes(self, tmp_path, capsys):
        import threading
        import urllib.request
        path = self._write_stream(tmp_path)
        result = {}

        def serve():
            result["rc"] = main(["serve-metrics", "--port", "0",
                                 "--events", str(path), "--once"])

        thread = threading.Thread(target=serve, daemon=True)
        # capsys can't capture across threads reliably; read the
        # announced port by polling the captured stdout instead.
        thread.start()
        port = None
        for __ in range(100):
            out = capsys.readouterr().out
            if "metrics" in out:
                port = int(out.split(":")[-1].split("/")[0])
                break
            threading.Event().wait(0.05)
        assert port is not None, "server never announced its port"
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=5) as rsp:
            assert rsp.status == 200
            assert "0.0.4" in rsp.headers["Content-Type"]
            body = rsp.read().decode()
        thread.join(timeout=5)
        assert result["rc"] == 0
        assert "repro_live_events 3" in body
        assert "repro_live_progress_cell 0.5" in body
        assert "repro_live_workers 1" in body

    def test_live_env_wraps_command(self, tmp_path, monkeypatch, capsys):
        from repro.obs import bus
        events = tmp_path / "events.jsonl"
        monkeypatch.setenv("REPRO_LIVE", "1")
        monkeypatch.setenv("REPRO_LIVE_EVENTS", str(events))
        monkeypatch.setenv("REPRO_LIVE_INTERVAL", "0.05")
        assert main(["model", "--alpha", "1.5", "--n", "1000",
                     "--method", "T1", "--map", "descending"]) == 0
        count, errors = bus.validate_events_file(events)
        assert count >= 1
        assert errors == []
        sample_lines = [line for line in events.read_text().splitlines()
                        if '"resource.sample"' in line]
        assert sample_lines, "sampler emitted no samples"


class TestCliRunsFileAlias:
    """--runs-file is accepted wherever --runs is (report + export)."""

    def _history(self, tmp_path):
        from repro import obs
        from repro.obs import records
        obs.disable()
        obs.reset()
        obs.enable()
        with obs.span("table", name="t"):
            obs.metrics.inc("lister.ops", 10)
        record = records.collect("bench_x")
        sink = tmp_path / "runs.jsonl"
        records.write_record(record, sink)
        obs.disable()
        obs.reset()
        return sink

    def test_report_trends_runs_file(self, tmp_path, capsys):
        sink = self._history(tmp_path)
        assert main(["report", "trends", "--runs-file", str(sink)]) == 0
        out_alias = capsys.readouterr().out
        assert main(["report", "trends", "--runs", str(sink)]) == 0
        out_plain = capsys.readouterr().out
        assert "bench_x" in out_alias
        assert out_alias == out_plain

    def test_export_trace_runs_file(self, tmp_path):
        import json
        sink = self._history(tmp_path)
        out = tmp_path / "trace.json"
        assert main(["export", "trace", "--runs-file", str(sink),
                     "--out", str(out)]) == 0
        trace = json.loads(out.read_text())
        assert trace["traceEvents"]
