"""Tests for per-node cost profiles and concentration diagnostics."""

import numpy as np
import pytest

from repro import AscendingDegree, DescendingDegree, orient
from repro.core.costs import (
    cost_concentration,
    per_node_profile,
    total_cost,
)


class TestPerNodeProfile:
    def test_sums_to_total(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        for method in ("T1", "T2", "E1", "E4", "L3"):
            profile = per_node_profile(method, oriented.out_degrees,
                                       oriented.in_degrees)
            assert profile.sum() == pytest.approx(
                total_cost(method, oriented.out_degrees,
                           oriented.in_degrees))

    def test_manual_values(self):
        x = np.array([3.0, 0.0])
        y = np.array([1.0, 2.0])
        np.testing.assert_allclose(per_node_profile("T1", x, y), [3, 0])
        np.testing.assert_allclose(per_node_profile("T2", x, y), [3, 0])
        np.testing.assert_allclose(per_node_profile("E4", x, y), [3, 1])

    def test_nonnegative(self, pareto_graph):
        oriented = orient(pareto_graph, AscendingDegree())
        profile = per_node_profile("E1", oriented.out_degrees,
                                   oriented.in_degrees)
        assert np.all(profile >= 0)


class TestConcentration:
    def test_bounds(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        share = cost_concentration("T1", oriented.out_degrees,
                                   oriented.in_degrees, 0.05)
        assert 0.0 <= share <= 1.0

    def test_ascending_concentrates_t1_on_hubs(self, pareto_graph):
        """Under ascending, hubs carry T1's quadratic out-degree mass;
        descending flattens it -- the mechanism behind Corollary 1."""
        asc = orient(pareto_graph, AscendingDegree())
        desc = orient(pareto_graph, DescendingDegree())
        asc_share = cost_concentration("T1", asc.out_degrees,
                                       asc.in_degrees, 0.02)
        desc_share = cost_concentration("T1", desc.out_degrees,
                                        desc.in_degrees, 0.02)
        assert asc_share > desc_share

    def test_zero_cost_graph(self, path_graph):
        oriented = orient(path_graph, DescendingDegree())
        assert cost_concentration("T1", oriented.out_degrees,
                                  oriented.in_degrees) >= 0.0

    def test_validation(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        with pytest.raises(ValueError):
            cost_concentration("T1", oriented.out_degrees,
                               oriented.in_degrees, 0.0)
