"""Tests for the permutation zoo (ascending/descending/RR/CRR/uniform/OPT)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    AscendingDegree,
    ComplementaryRoundRobin,
    DescendingDegree,
    ExplicitPermutation,
    OptPermutation,
    RoundRobin,
    UniformRandom,
    complement_permutation,
    reverse_permutation,
)
from repro.core.methods import METHODS

ALL_DEGREE_PERMS = [AscendingDegree(), DescendingDegree(), RoundRobin(),
                    ComplementaryRoundRobin()]


class TestBijectivity:
    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=60, deadline=None)
    def test_deterministic_perms_are_bijections(self, n):
        for perm in ALL_DEGREE_PERMS:
            theta = perm.rank_to_label(n)
            assert sorted(theta.tolist()) == list(range(n))

    @given(st.integers(min_value=1, max_value=300),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_uniform_is_bijection(self, n, seed):
        theta = UniformRandom().rank_to_label(n, np.random.default_rng(seed))
        assert sorted(theta.tolist()) == list(range(n))

    @given(st.integers(min_value=1, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_opt_is_bijection(self, n):
        for name in ("T1", "T2", "E1", "E4"):
            theta = OptPermutation(METHODS[name].h).rank_to_label(n)
            assert sorted(theta.tolist()) == list(range(n))


class TestNamedPermutations:
    def test_ascending_is_identity(self):
        np.testing.assert_array_equal(
            AscendingDegree().rank_to_label(5), [0, 1, 2, 3, 4])

    def test_descending_is_reversal(self):
        np.testing.assert_array_equal(
            DescendingDegree().rank_to_label(5), [4, 3, 2, 1, 0])

    def test_round_robin_eq32(self):
        """Eq. (32) hand-computed for n = 6 (1-based [4,3,5,2,6,1])."""
        np.testing.assert_array_equal(
            RoundRobin().rank_to_label(6), [3, 2, 4, 1, 5, 0])

    def test_round_robin_odd_n(self):
        """n = 5, 1-based [3,2,4,1,5]."""
        np.testing.assert_array_equal(
            RoundRobin().rank_to_label(5), [2, 1, 3, 0, 4])

    def test_rr_sends_large_degrees_outward(self):
        """The top-2 ranks (largest degrees) get the extreme labels."""
        n = 100
        theta = RoundRobin().rank_to_label(n)
        assert {theta[-1], theta[-2]} == {0, n - 1}

    def test_crr_is_complement_of_rr(self):
        n = 17
        rr = RoundRobin().rank_to_label(n)
        crr = ComplementaryRoundRobin().rank_to_label(n)
        np.testing.assert_array_equal(crr, rr[::-1])

    def test_crr_sends_large_degrees_to_middle(self):
        n = 100
        theta = ComplementaryRoundRobin().rank_to_label(n)
        assert abs(theta[-1] - n / 2) <= 1
        assert {theta[0], theta[1]} == {0, n - 1}

    def test_uniform_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            UniformRandom().rank_to_label(10)

    def test_explicit_validation(self):
        ExplicitPermutation([2, 0, 1])
        with pytest.raises(ValueError):
            ExplicitPermutation([0, 0, 1])
        with pytest.raises(ValueError):
            ExplicitPermutation([1, 2, 3])

    def test_explicit_wrong_n(self):
        perm = ExplicitPermutation([1, 0])
        with pytest.raises(ValueError):
            perm.rank_to_label(3)


class TestCombinators:
    def test_reverse_formula(self):
        base = RoundRobin()
        n = 11
        np.testing.assert_array_equal(
            reverse_permutation(base).rank_to_label(n),
            (n - 1) - base.rank_to_label(n))

    def test_complement_formula(self):
        base = RoundRobin()
        n = 11
        np.testing.assert_array_equal(
            complement_permutation(base).rank_to_label(n),
            base.rank_to_label(n)[::-1])

    def test_double_reverse_is_identity(self):
        base = RoundRobin()
        twice = reverse_permutation(reverse_permutation(base))
        np.testing.assert_array_equal(twice.rank_to_label(9),
                                      base.rank_to_label(9))

    def test_reverse_of_ascending_is_descending(self):
        np.testing.assert_array_equal(
            reverse_permutation(AscendingDegree()).rank_to_label(7),
            DescendingDegree().rank_to_label(7))


class TestOptPermutation:
    def test_opt_for_t1_is_descending(self):
        """Corollary 1: h increasing + r increasing -> descending."""
        theta = OptPermutation(METHODS["T1"].h).rank_to_label(8)
        np.testing.assert_array_equal(theta,
                                      DescendingDegree().rank_to_label(8))

    def test_opt_for_t3_is_ascending(self):
        """h decreasing + r increasing -> ascending."""
        theta = OptPermutation(METHODS["T3"].h).rank_to_label(8)
        np.testing.assert_array_equal(theta,
                                      AscendingDegree().rank_to_label(8))

    def test_opt_for_t2_pushes_hubs_outward(self):
        """h = x(1-x) peaks at 1/2: largest degrees get extreme labels."""
        n = 101
        theta = OptPermutation(METHODS["T2"].h).rank_to_label(n)
        assert {theta[-1], theta[-2]} <= {0, 1, n - 2, n - 1}

    def test_opt_for_e4_pushes_hubs_to_middle(self):
        n = 101
        theta = OptPermutation(METHODS["E4"].h).rank_to_label(n)
        assert abs(theta[-1] - n / 2) <= 2

    def test_r_decreasing_flips_order(self):
        inc = OptPermutation(METHODS["T1"].h, r_increasing=True)
        dec = OptPermutation(METHODS["T1"].h, r_increasing=False)
        np.testing.assert_array_equal(dec.rank_to_label(8),
                                      inc.rank_to_label(8)[::-1])

    def test_bad_h_shape(self):
        with pytest.raises(ValueError):
            OptPermutation(lambda x: np.array([1.0])).rank_to_label(5)
