"""Tests for the degenerate (smallest-last) orientation [29]."""

import numpy as np
import pytest

from repro import DegenerateOrder, DescendingDegree, Graph, orient
from repro.orientations.degenerate import smallest_last_order


def _path(n):
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def _cycle(n):
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def _complete(n):
    return Graph(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


class TestSmallestLast:
    def test_degeneracy_of_known_graphs(self):
        assert smallest_last_order(_path(8))[1] == 1
        assert smallest_last_order(_cycle(8))[1] == 2
        assert smallest_last_order(_complete(6))[1] == 5

    def test_tree_degeneracy_one(self):
        tree = Graph(7, [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)])
        assert smallest_last_order(tree)[1] == 1

    def test_order_is_permutation(self, pareto_graph):
        order, __ = smallest_last_order(pareto_graph)
        assert sorted(order.tolist()) == list(range(pareto_graph.n))

    def test_first_removed_has_min_degree(self, pareto_graph):
        order, __ = smallest_last_order(pareto_graph)
        assert (pareto_graph.degrees[order[0]]
                == pareto_graph.degrees.min())


class TestDegenerateOrientation:
    def test_max_out_degree_equals_degeneracy(self, pareto_graph):
        """The defining property: min_theta max_i X_i(theta)."""
        __, degeneracy = smallest_last_order(pareto_graph)
        oriented = orient(pareto_graph, DegenerateOrder())
        assert int(oriented.out_degrees.max()) == degeneracy

    def test_beats_descending_on_max_out_degree(self, pareto_graph):
        degen = orient(pareto_graph, DegenerateOrder())
        desc = orient(pareto_graph, DescendingDegree())
        assert degen.out_degrees.max() <= desc.out_degrees.max()

    def test_same_triangles(self, pareto_graph):
        from repro import count_triangles
        degen = orient(pareto_graph, DegenerateOrder())
        desc = orient(pareto_graph, DescendingDegree())
        assert count_triangles(degen) == count_triangles(desc)

    def test_rank_to_label_raises(self):
        with pytest.raises(TypeError):
            DegenerateOrder().rank_to_label(5)

    def test_complete_graph_out_degrees(self):
        oriented = orient(_complete(5), DegenerateOrder())
        assert sorted(oriented.out_degrees.tolist()) == [0, 1, 2, 3, 4]
