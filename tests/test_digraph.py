"""Tests for the relabeled, oriented digraph G(theta)."""

import numpy as np
import pytest

from repro import (
    AscendingDegree,
    DescendingDegree,
    Graph,
    OrientedGraph,
    orient,
    reverse_permutation,
)


class TestOrientation:
    def test_out_neighbors_have_smaller_labels(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        for i in range(oriented.n):
            outs = oriented.out_neighbors(i)
            assert np.all(outs < i)
            ins = oriented.in_neighbors(i)
            assert np.all(ins > i)

    def test_lists_sorted(self, pareto_graph):
        oriented = orient(pareto_graph, AscendingDegree())
        for i in range(oriented.n):
            assert np.all(np.diff(oriented.out_neighbors(i)) > 0)
            assert np.all(np.diff(oriented.in_neighbors(i)) > 0)

    def test_degree_split(self, pareto_graph):
        """X_i + Y_i equals the undirected degree of the relabeled node."""
        oriented = orient(pareto_graph, DescendingDegree())
        for label in range(oriented.n):
            v = oriented.original_vertex(label)
            assert oriented.degrees[label] == pareto_graph.degrees[v]

    def test_total_out_equals_total_in_equals_m(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        assert int(oriented.out_degrees.sum()) == pareto_graph.m
        assert int(oriented.in_degrees.sum()) == pareto_graph.m

    def test_acyclicity(self, pareto_graph):
        """Every edge strictly decreases the label: trivially acyclic."""
        oriented = orient(pareto_graph, AscendingDegree())
        for i in range(oriented.n):
            for j in oriented.out_neighbors(i):
                assert j < i

    def test_identity_labels(self, triangle_graph):
        oriented = OrientedGraph(triangle_graph, [0, 1, 2])
        np.testing.assert_array_equal(oriented.out_neighbors(2), [0, 1])
        np.testing.assert_array_equal(oriented.in_neighbors(0), [1, 2])
        assert oriented.out_neighbors(0).size == 0

    def test_invalid_labels(self, triangle_graph):
        with pytest.raises(ValueError):
            OrientedGraph(triangle_graph, [0, 1])  # wrong shape
        with pytest.raises(ValueError):
            OrientedGraph(triangle_graph, [0, 0, 1])  # not a bijection
        with pytest.raises(ValueError):
            OrientedGraph(triangle_graph, [1, 2, 3])  # wrong range

    def test_edge_key_set(self, triangle_graph):
        oriented = OrientedGraph(triangle_graph, [0, 1, 2])
        n = 3
        assert oriented.edge_key_set() == {1 * n + 0, 2 * n + 0, 2 * n + 1}

    def test_has_directed_edge(self, triangle_graph):
        oriented = OrientedGraph(triangle_graph, [0, 1, 2])
        assert oriented.has_directed_edge(2, 1)
        assert not oriented.has_directed_edge(2, 2)

    def test_original_vertex_roundtrip(self, pareto_graph, rng):
        labels = rng.permutation(pareto_graph.n)
        oriented = OrientedGraph(pareto_graph, labels)
        for v in range(0, pareto_graph.n, 17):
            assert oriented.original_vertex(int(labels[v])) == v


class TestReversalProposition:
    def test_proposition_1_swaps_x_and_y(self, pareto_graph):
        """Prop. 1: reversing theta swaps out- and in-degrees.

        Node with label i under theta has label n-1-i under theta'; its
        out-degree under theta equals its in-degree under theta'.
        """
        perm = DescendingDegree()
        oriented = orient(pareto_graph, perm)
        reversed_oriented = orient(pareto_graph, reverse_permutation(perm))
        n = pareto_graph.n
        flipped = n - 1 - np.arange(n)
        np.testing.assert_array_equal(
            oriented.out_degrees, reversed_oriented.in_degrees[flipped])
        np.testing.assert_array_equal(
            oriented.in_degrees, reversed_oriented.out_degrees[flipped])
