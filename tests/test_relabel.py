"""Tests for the relabel + orient preprocessing (section 2.1)."""

import numpy as np
import pytest

from repro import AscendingDegree, DescendingDegree, Graph, orient
from repro.orientations import labels_from_rank_map


class TestLabelsFromRankMap:
    def test_identity_theta_sorts_by_degree(self):
        degrees = np.array([5, 1, 3])
        labels = labels_from_rank_map(degrees, np.array([0, 1, 2]))
        # vertex 1 (deg 1) -> rank 0 -> label 0; vertex 2 -> 1; vertex 0 -> 2
        np.testing.assert_array_equal(labels, [2, 0, 1])

    def test_reversed_theta(self):
        degrees = np.array([5, 1, 3])
        labels = labels_from_rank_map(degrees, np.array([2, 1, 0]))
        np.testing.assert_array_equal(labels, [0, 2, 1])

    def test_stable_tie_break(self):
        degrees = np.array([2, 2, 2])
        labels = labels_from_rank_map(degrees, np.array([0, 1, 2]))
        np.testing.assert_array_equal(labels, [0, 1, 2])

    def test_random_tie_break_needs_rng(self):
        with pytest.raises(ValueError, match="rng"):
            labels_from_rank_map(np.array([1, 1]), np.array([0, 1]),
                                 tie_break="random")

    def test_random_tie_break_varies(self):
        degrees = np.ones(30, dtype=np.int64)
        theta = np.arange(30)
        rng = np.random.default_rng(0)
        outcomes = {tuple(labels_from_rank_map(degrees, theta, rng=rng,
                                               tie_break="random"))
                    for __ in range(10)}
        assert len(outcomes) > 1

    def test_unknown_tie_break(self):
        with pytest.raises(ValueError, match="tie_break"):
            labels_from_rank_map(np.array([1, 2]), np.array([0, 1]),
                                 tie_break="coin")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            labels_from_rank_map(np.array([1, 2, 3]), np.array([0, 1]))


class TestOrient:
    def test_descending_gives_hubs_small_labels(self):
        star = Graph(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
        oriented = orient(star, DescendingDegree())
        hub_label = oriented.labels[0] if hasattr(oriented, "labels") else None
        assert oriented.labels[0] == 0  # the hub gets label 0
        assert int(oriented.out_degrees[0]) == 0
        assert int(oriented.in_degrees[0]) == 4

    def test_ascending_gives_hubs_large_labels(self):
        star = Graph(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
        oriented = orient(star, AscendingDegree())
        assert oriented.labels[0] == 4
        assert int(oriented.out_degrees[4]) == 4

    def test_descending_minimizes_t1_over_ascending(self, pareto_graph):
        from repro.core.costs import method_cost
        desc = orient(pareto_graph, DescendingDegree())
        asc = orient(pareto_graph, AscendingDegree())
        assert method_cost(desc, "T1") < method_cost(asc, "T1")
