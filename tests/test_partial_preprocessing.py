"""Tests for the section 2.4 partial-preprocessing cost analysis."""

import numpy as np
import pytest

from repro import DescendingDegree, orient
from repro.core.costs import cost_t1, cost_t2, cost_t3, total_cost
from repro.listing import list_triangles
from repro.listing.partial_preprocessing import (
    orientation_only_cost,
    orientation_only_penalty,
    relabel_only_extra_cost,
    run_t1_orientation_only,
    zeta_overhead,
)


class TestOrientationOnly:
    def test_t1_doubles(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        full = total_cost("T1", oriented.out_degrees, oriented.in_degrees)
        without = orientation_only_cost("T1", oriented.out_degrees,
                                        oriented.in_degrees)
        assert without == pytest.approx(2.0 * full)

    def test_t2_unchanged(self, pareto_graph):
        """Section 2.4: T2 keeps its complexity without relabeling."""
        oriented = orient(pareto_graph, DescendingDegree())
        full = total_cost("T2", oriented.out_degrees, oriented.in_degrees)
        without = orientation_only_cost("T2", oriented.out_degrees,
                                        oriented.in_degrees)
        assert without == pytest.approx(full)

    def test_e1_mixed_penalty(self, pareto_graph):
        """E1 doubles only its T1 share: penalty strictly in (1, 2)."""
        oriented = orient(pareto_graph, DescendingDegree())
        penalty = orientation_only_penalty("E1", oriented.out_degrees,
                                           oriented.in_degrees)
        assert 1.0 < penalty < 2.0

    def test_e4_doubles(self, pareto_graph):
        """E4 = T1 + T3 is all pair-mass: it doubles outright."""
        oriented = orient(pareto_graph, DescendingDegree())
        penalty = orientation_only_penalty("E4", oriented.out_degrees,
                                           oriented.in_degrees)
        assert penalty == pytest.approx(2.0)

    def test_executable_t1_orientation_only(self, pareto_graph):
        """The runnable variant exhibits the doubling and finds the
        same triangles."""
        oriented = orient(pareto_graph, DescendingDegree())
        relabeled = list_triangles(oriented, "T1")
        unordered = run_t1_orientation_only(oriented)
        assert unordered.count == relabeled.count
        assert unordered.triangle_set() == relabeled.triangle_set()
        assert unordered.ops == 2 * relabeled.ops

    def test_collect_false(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        result = run_t1_orientation_only(oriented, collect=False)
        assert result.triangles is None
        assert result.count == list_triangles(oriented, "T1").count


class TestRelabelOnly:
    def test_zeta_formula(self):
        degrees = np.array([1, 2, 4, 8])
        assert zeta_overhead(degrees) == pytest.approx(1 + 2 + 3)

    def test_zeta_skips_degree_one(self):
        assert zeta_overhead(np.array([1, 1, 1])) == 0.0

    def test_t1_t3_unaffected(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        assert relabel_only_extra_cost("T1", oriented) == 0.0
        assert relabel_only_extra_cost("T3", oriented) == 0.0
        assert relabel_only_extra_cost("L2", oriented) == 0.0

    def test_t2_pays_zeta(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        assert relabel_only_extra_cost("T2", oriented) == pytest.approx(
            zeta_overhead(oriented.degrees))
        assert relabel_only_extra_cost("E1", oriented) == pytest.approx(
            zeta_overhead(oriented.degrees))

    def test_e4_pays_per_edge_search(self, pareto_graph):
        """E4/E6 take the larger hit: one binary search per edge."""
        oriented = orient(pareto_graph, DescendingDegree())
        e4 = relabel_only_extra_cost("E4", oriented)
        zeta = zeta_overhead(oriented.degrees)
        assert e4 > zeta  # sum Y_i log2 d_i dominates sum log2 d_i

    def test_e3_uses_out_side_e4_in_side(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        e3 = relabel_only_extra_cost("E3", oriented)
        e4 = relabel_only_extra_cost("E4", oriented)
        # under descending, X is small and Y large, so the Y-weighted
        # search cost exceeds the X-weighted one
        assert e4 != e3

    def test_unknown_method(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        with pytest.raises(ValueError):
            relabel_only_extra_cost("Z1", oriented)


class TestSection75Claims:
    """Quantitative checks of the paper's Twitter commentary."""

    def test_no_relabeling_makes_t1_worse_than_t2(self):
        """Section 7.5: T1 and T2 are within 1.7x of each other, so
        doubling T1 (no relabeling) pushes it past T2."""
        from repro import DiscretePareto, RoundRobin, generate_graph, \
            sample_degree_sequence
        rng = np.random.default_rng(75)
        dist = DiscretePareto.paper_parameterization(1.7).truncate(5000)
        degrees = sample_degree_sequence(dist, 5001, rng)
        graph = generate_graph(degrees, rng)
        desc = orient(graph, DescendingDegree())
        rr = orient(graph, RoundRobin())
        t1_desc = total_cost("T1", desc.out_degrees, desc.in_degrees)
        t2_rr = total_cost("T2", rr.out_degrees, rr.in_degrees)
        t1_doubled = orientation_only_cost("T1", desc.out_degrees,
                                           desc.in_degrees)
        assert t1_desc < t2_rr          # relabeled: T1 wins
        assert t1_doubled > t2_rr       # unrelabeled: T1 loses


class TestExecutableE1OrientationOnly:
    def test_ops_are_2t1_plus_t2_plus_m(self, pareto_graph):
        """Full local scans: ops = sum X^2 + sum XY = 2 T1 + T2 + m."""
        from repro.listing.partial_preprocessing import \
            run_e1_orientation_only
        oriented = orient(pareto_graph, DescendingDegree())
        result = run_e1_orientation_only(oriented)
        t1 = cost_t1(oriented.out_degrees)
        t2 = cost_t2(oriented.out_degrees, oriented.in_degrees)
        assert result.ops == int(2 * t1 + t2) + pareto_graph.m

    def test_same_triangles_as_relabeled_e1(self, pareto_graph):
        from repro import list_triangles
        from repro.listing.partial_preprocessing import \
            run_e1_orientation_only
        oriented = orient(pareto_graph, DescendingDegree())
        reference = list_triangles(oriented, "E1")
        unordered = run_e1_orientation_only(oriented)
        assert unordered.triangle_set() == reference.triangle_set()

    def test_overhead_vs_full_preprocessing(self, pareto_graph):
        """The executable penalty sits between 1x and 2x of E1, like
        the section 7.5 Twitter figure (+29%)."""
        from repro import list_triangles
        from repro.listing.partial_preprocessing import \
            run_e1_orientation_only
        oriented = orient(pareto_graph, DescendingDegree())
        full = list_triangles(oriented, "E1", collect=False).ops
        unordered = run_e1_orientation_only(oriented,
                                            collect=False).ops
        assert full < unordered < 2 * full + pareto_graph.m
