"""Stateful (model-based) testing of the Fenwick tree.

Hypothesis drives random interleavings of updates, prefix queries, and
proportional samples against a brute-force reference array -- the
strongest guarantee we can give the generator's core data structure.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.graphs import FenwickTree


class FenwickMachine(RuleBasedStateMachine):
    """Random operation sequences vs a plain-array reference."""

    @initialize(weights=st.lists(
        st.floats(min_value=0.0, max_value=50.0),
        min_size=1, max_size=40))
    def setup(self, weights):
        """Create the tree and its reference array."""
        self.reference = np.asarray(weights, dtype=float)
        self.tree = FenwickTree(self.reference.copy())

    @rule(data=st.data(),
          delta=st.floats(min_value=0.0, max_value=25.0))
    def add(self, data, delta):
        """Point update at a random index."""
        idx = data.draw(st.integers(0, self.reference.size - 1))
        # keep weights non-negative: clamp the downward move
        down = data.draw(st.booleans())
        if down:
            delta = -min(delta, self.reference[idx])
        self.tree.add(idx, delta)
        self.reference[idx] += delta

    @rule(data=st.data())
    def prefix_matches(self, data):
        """Any prefix sum equals the reference cumulative sum."""
        idx = data.draw(st.integers(-1, self.reference.size - 1))
        expected = float(self.reference[:idx + 1].sum())
        assert abs(self.tree.prefix_sum(idx) - expected) < 1e-7

    @rule(data=st.data())
    def sample_is_consistent(self, data):
        """sample(t) returns the first index with prefix sum > t."""
        total = self.tree.total
        if total <= 1e-9:
            return
        frac = data.draw(st.floats(min_value=0.0,
                                   max_value=1.0 - 1e-9))
        target = frac * total
        idx = self.tree.sample(target)
        assert self.tree.prefix_sum(idx) > target
        assert self.tree.prefix_sum(idx - 1) <= target + 1e-7
        assert self.reference[idx] > 0

    @invariant()
    def total_matches(self):
        """The running total never drifts from the reference."""
        assert abs(self.tree.total - float(self.reference.sum())) < 1e-6


TestFenwickStateful = FenwickMachine.TestCase
TestFenwickStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None)
