"""Tests for the asymptotic limits (Theorems 1-2, section 5.3).

The numeric anchors are the infinity rows of the paper's Tables 6-8:
356.3 (T1+D, alpha 1.5), 1307.6 (T2+D, alpha 1.7), 770.4 (T2+RR,
alpha 1.7), 181.5 (T1+D, alpha 2.1), 384.3 (T2+RR, alpha 2.1).
"""

import math
from fractions import Fraction

import numpy as np
import pytest

from repro import DiscretePareto, limit_cost
from repro.core.limits import (
    expected_h_uniform,
    limit_cost_table,
    no_orientation_cost,
    spread_from_limit,
    uniform_orientation_cost,
)

FAST = dict(eps=1e-4, t_start=1e8, t_max=1e14)


class TestPaperLimits:
    def test_t1_descending_alpha_15(self):
        dist = DiscretePareto(1.5, 15.0)
        assert limit_cost(dist, "T1", "descending", **FAST) \
            == pytest.approx(356.3, abs=0.5)

    def test_t2_descending_alpha_17(self):
        dist = DiscretePareto(1.7, 21.0)
        assert limit_cost(dist, "T2", "descending", **FAST) \
            == pytest.approx(1307.6, rel=2e-3)

    def test_t2_rr_alpha_17(self):
        dist = DiscretePareto(1.7, 21.0)
        assert limit_cost(dist, "T2", "rr", **FAST) \
            == pytest.approx(770.4, rel=2e-3)

    def test_t1_descending_alpha_21(self):
        dist = DiscretePareto(2.1, 33.0)
        assert limit_cost(dist, "T1", "descending", **FAST) \
            == pytest.approx(181.5, rel=2e-3)

    def test_t2_rr_alpha_21(self):
        dist = DiscretePareto(2.1, 33.0)
        assert limit_cost(dist, "T2", "rr", **FAST) \
            == pytest.approx(384.3, rel=2e-3)

    def test_rr_beats_descending_for_t2(self):
        """Section 5.3 / Corollary 2, visible in Tables 7 and 10."""
        dist = DiscretePareto(1.7, 21.0)
        rr = limit_cost(dist, "T2", "rr", **FAST)
        desc = limit_cost(dist, "T2", "descending", **FAST)
        assert rr < desc

    def test_t2_rr_is_half_of_e1_descending(self):
        """Eqs. (34)-(35): c(T2, RR) = c(E1, D) / 2 exactly."""
        dist = DiscretePareto(1.7, 21.0)
        rr = limit_cost(dist, "T2", "rr", **FAST)
        e1 = limit_cost(dist, "E1", "descending", **FAST)
        assert rr == pytest.approx(e1 / 2.0, rel=1e-3)


class TestDivergence:
    def test_t1_ascending_alpha_15_diverges(self):
        """Finite only for alpha > 2 under ascending."""
        dist = DiscretePareto(1.5, 15.0)
        assert math.isinf(limit_cost(dist, "T1", "ascending", **FAST))

    def test_e1_descending_below_threshold_diverges(self):
        dist = DiscretePareto(1.45, 13.5)
        assert math.isinf(limit_cost(dist, "E1", "descending", **FAST))

    def test_t1_descending_above_four_thirds_converges(self):
        dist = DiscretePareto(1.4, 12.0)
        assert math.isfinite(limit_cost(dist, "T1", "descending", **FAST))


class TestUniformAndNoOrientation:
    def test_expected_h_constants(self):
        assert expected_h_uniform("T1") == Fraction(1, 6)
        assert expected_h_uniform("T2") == Fraction(1, 6)
        assert expected_h_uniform("E1") == Fraction(1, 3)
        assert expected_h_uniform("E4") == Fraction(1, 3)
        with pytest.raises(ValueError):
            expected_h_uniform("X2")

    def test_uniform_cost_eq31(self):
        """c(M, xi_U) = E[D^2 - D] E[h(U)]."""
        dist = DiscretePareto(2.5, 45.0)
        g_mean = dist.moment(2) - dist.mean()
        assert uniform_orientation_cost(dist, "T1") \
            == pytest.approx(g_mean / 6.0)
        assert uniform_orientation_cost(dist, "E4") \
            == pytest.approx(g_mean / 3.0)

    def test_uniform_cost_infinite_below_two(self):
        assert math.isinf(
            uniform_orientation_cost(DiscretePareto(1.9, 27.0), "T1"))

    def test_three_fold_reduction(self):
        """Section 5.3: orientation alone divides cost by 3."""
        dist = DiscretePareto(2.5, 45.0)
        for family, method in [("vertex", "T1"), ("edge", "E1")]:
            none = no_orientation_cost(dist, family)
            uniform = uniform_orientation_cost(dist, method)
            assert none / uniform == pytest.approx(3.0)

    def test_no_orientation_family_validation(self):
        with pytest.raises(ValueError):
            no_orientation_cost(DiscretePareto(2.5, 45.0), "hybrid")

    def test_uniform_limit_matches_eq31(self):
        """limit_cost under xi_U agrees with the closed form."""
        dist = DiscretePareto(2.5, 45.0)
        closed = uniform_orientation_cost(dist, "T1")
        numeric = limit_cost(dist, "T1", "uniform", **FAST)
        assert numeric == pytest.approx(closed, rel=1e-3)


class TestHelpers:
    def test_limit_cost_table_shape(self):
        dist = DiscretePareto(2.5, 45.0)
        table = limit_cost_table(dist, methods=("T1", "T2"),
                                 maps=("descending", "rr"), **FAST)
        assert set(table) == {"T1", "T2"}
        assert set(table["T1"]) == {"descending", "rr"}
        assert all(v > 0 for row in table.values() for v in row.values())

    def test_spread_from_limit_matches_closed_form(self):
        from repro import pareto_spread_cdf
        dist = DiscretePareto(1.7, 21.0)
        for x in [10, 100, 1000]:
            numeric = spread_from_limit(dist, x, t=1e10)
            closed = pareto_spread_cdf(1.7, 21.0, float(x))
            assert numeric == pytest.approx(closed, abs=0.02)
