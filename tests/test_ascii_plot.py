"""Tests for the dependency-free ASCII charting helper."""

import math

import numpy as np
import pytest

from repro.experiments.ascii_plot import ascii_plot


class TestAsciiPlot:
    def test_basic_render(self):
        chart = ascii_plot({"line": ([0, 1, 2], [0, 1, 2])},
                           title="t", xlabel="x", ylabel="y")
        assert "t" in chart
        assert "o = line" in chart
        assert "|" in chart and "+" in chart

    def test_markers_cycle_per_series(self):
        chart = ascii_plot({"a": ([0, 1], [0, 1]),
                            "b": ([0, 1], [1, 0])})
        assert "o = a" in chart
        assert "x = b" in chart

    def test_infinite_points_dropped(self):
        chart = ascii_plot({"s": ([1, 2, 3], [1.0, math.inf, 3.0])})
        assert "o = s" in chart  # survives with the finite points

    def test_all_infinite_series_message(self):
        chart = ascii_plot({"s": ([1, 2], [math.inf, math.nan])},
                           title="empty")
        assert "no finite data" in chart

    def test_logy_requires_positive(self):
        chart = ascii_plot({"s": ([1, 2, 3], [0.0, 10.0, 100.0])},
                           logy=True)
        assert "o = s" in chart  # the zero point is dropped, not fatal

    def test_axis_labels_present(self):
        chart = ascii_plot({"s": ([0, 10], [5, 50])},
                           xlabel="n", ylabel="cost")
        assert "cost" in chart
        assert "n" in chart

    def test_constant_series(self):
        """Degenerate ranges must not divide by zero."""
        chart = ascii_plot({"flat": ([1, 2, 3], [7, 7, 7])})
        assert "o = flat" in chart

    def test_extremes_land_on_borders(self):
        chart = ascii_plot({"s": ([0, 1], [0, 1])}, width=20, height=5)
        rows = [line for line in chart.splitlines() if "|" in line]
        assert rows[0].rstrip().endswith("o")   # max at top-right
        assert "o" in rows[-1]                  # min at bottom
