"""Tests for structural graph analysis (degeneracy, arboricity, etc.)."""

import numpy as np
import pytest

from repro import Graph
from repro.graphs.analysis import (
    arboricity_bounds,
    degeneracy,
    expected_triangles_configuration_model,
    global_clustering_coefficient,
    triangle_count,
    wedge_count,
)


def _complete(n):
    return Graph(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


class TestDegeneracyAndArboricity:
    def test_tree(self):
        tree = Graph(6, [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)])
        assert degeneracy(tree) == 1
        lower, upper = arboricity_bounds(tree)
        assert lower == 1 and upper == 1  # trees: delta = O(1)

    def test_complete_graph(self):
        k6 = _complete(6)
        assert degeneracy(k6) == 5
        lower, upper = arboricity_bounds(k6)
        # arboricity of K6 is ceil(6/2) = 3
        assert lower <= 3 <= upper

    def test_bounds_order(self, pareto_graph):
        lower, upper = arboricity_bounds(pareto_graph)
        assert 0 <= lower <= upper

    def test_empty(self):
        assert arboricity_bounds(Graph(1, [])) == (0, 0)


class TestTriangleStatistics:
    def test_triangle_count_matches_reference(self, bowtie_graph,
                                              k4_graph, path_graph):
        assert triangle_count(bowtie_graph) == 2
        assert triangle_count(k4_graph) == 4
        assert triangle_count(path_graph) == 0

    def test_clustering_coefficient_complete(self):
        assert global_clustering_coefficient(_complete(5)) \
            == pytest.approx(1.0)

    def test_clustering_coefficient_triangle_free(self, path_graph):
        assert global_clustering_coefficient(path_graph) == 0.0

    def test_wedge_count(self, bowtie_graph):
        # degrees [2,2,4,2,2] -> sum d(d-1)/2 = 1+1+6+1+1 = 10
        assert wedge_count(bowtie_graph) == 10

    def test_configuration_expectation_tracks_generated_graphs(self, rng):
        """Generated graphs land near the moment formula for E[T]."""
        from repro import (DiscretePareto, generate_graph,
                           sample_degree_sequence)
        dist = DiscretePareto(2.5, 45.0).truncate(31)
        degrees = sample_degree_sequence(dist, 1000, rng)
        expected = expected_triangles_configuration_model(degrees)
        counts = [triangle_count(generate_graph(degrees, rng))
                  for __ in range(5)]
        assert np.mean(counts) == pytest.approx(expected, rel=0.3)

    def test_expected_triangles_empty(self):
        assert expected_triangles_configuration_model([0, 0]) == 0.0


class TestAssortativity:
    def test_zero_for_empty_and_regular(self):
        from repro.graphs.analysis import degree_assortativity
        assert degree_assortativity(Graph(3, [])) == 0.0
        # a cycle is 2-regular: constant endpoint degrees
        cycle = Graph(5, [(i, (i + 1) % 5) for i in range(5)])
        assert degree_assortativity(cycle) == 0.0

    def test_star_is_disassortative(self):
        from repro.graphs.analysis import degree_assortativity
        star = Graph(6, [(0, i) for i in range(1, 6)])
        assert degree_assortativity(star) < -0.9

    def test_generated_graphs_near_neutral(self, rng):
        """Residual-degree sampling stays close to degree-neutral
        (AMRC regime), like the configuration-model family it
        approximates."""
        from repro import DiscretePareto, generate_graph, \
            sample_degree_sequence
        from repro.graphs.analysis import degree_assortativity
        dist = DiscretePareto(2.2, 36.0).truncate(31)
        values = []
        for __ in range(5):
            degrees = sample_degree_sequence(dist, 1000, rng)
            values.append(degree_assortativity(
                generate_graph(degrees, rng)))
        assert abs(float(np.mean(values))) < 0.1

    def test_matches_networkx(self, pareto_graph):
        networkx = pytest.importorskip("networkx")
        from repro.graphs.analysis import degree_assortativity
        nx_graph = networkx.Graph()
        nx_graph.add_nodes_from(range(pareto_graph.n))
        nx_graph.add_edges_from(map(tuple, pareto_graph.edges.tolist()))
        expected = networkx.degree_assortativity_coefficient(nx_graph)
        assert degree_assortativity(pareto_graph) == pytest.approx(
            expected, abs=1e-6)


class TestEmpiricalSpread:
    def test_matches_spread_distribution(self, pareto_graph, rng):
        """Prop. 5 at graph level: edge-endpoint degrees follow J."""
        from repro.core.spread import SpreadDistribution
        from repro.distributions import EmpiricalDegreeDistribution
        from repro.graphs.analysis import empirical_spread_sample
        spread = SpreadDistribution(
            EmpiricalDegreeDistribution(pareto_graph.degrees))
        draws = empirical_spread_sample(pareto_graph, 50_000, rng)
        for x in (3.0, 8.0, 20.0):
            assert float(np.mean(draws <= x)) == pytest.approx(
                float(spread.cdf(x)), abs=0.02)

    def test_size_bias_visible(self, pareto_graph, rng):
        """Edge-endpoint degrees average above plain degrees."""
        from repro.graphs.analysis import empirical_spread_sample
        draws = empirical_spread_sample(pareto_graph, 20_000, rng)
        assert draws.mean() > pareto_graph.degrees.mean()

    def test_validation(self, rng):
        from repro.graphs.analysis import empirical_spread_sample
        with pytest.raises(ValueError):
            empirical_spread_sample(Graph(3, []), 10, rng)
