"""Numerical-precision regression tests.

These pin the survival-function arithmetic that keeps the huge-``t_n``
models honest: in float64 the CDF saturates at 1.0 once the tail drops
below ~2^-53, silently zeroing block masses in naive ``cdf`` differences
(the bug class that once froze Algorithm 2's output beyond
``t_n ~ 1e11``).
"""

import numpy as np
import pytest

from repro import DiscretePareto, fast_cost_model
from repro.distributions import GeometricDegree, ZipfDegree


class TestSurvivalPrecision:
    def test_pareto_sf_far_past_float64_epsilon(self):
        """sf keeps relative precision where 1 - cdf returns 0."""
        dist = DiscretePareto(1.5, 15.0)
        x = 1e14
        analytic = (1.0 + x / 15.0) ** -1.5
        assert float(dist.sf(x)) == pytest.approx(analytic, rel=1e-12)
        assert float(1.0 - dist.cdf(x)) == 0.0  # the naive path is dead

    def test_truncated_sf_uses_base_tail(self):
        dist = DiscretePareto(1.5, 15.0).truncate(10**14)
        x = 1e12
        base = DiscretePareto(1.5, 15.0)
        expected = (float(base.sf(x)) - float(base.sf(1e14)))
        assert float(dist.sf(x)) == pytest.approx(expected, rel=1e-9)
        assert float(dist.sf(2e14)) == 0.0  # above the truncation point
        assert float(dist.sf(0.5)) == 1.0   # below the support

    def test_geometric_sf_underflow_graceful(self):
        dist = GeometricDegree(0.5)
        assert float(dist.sf(2000)) == 0.0  # clean underflow, no error
        assert float(dist.sf(10)) == pytest.approx(0.5**10)

    def test_zipf_sf_hurwitz(self):
        from scipy.special import zeta
        dist = ZipfDegree(2.5)
        x = 1e9
        expected = zeta(2.5, x + 1) / zeta(2.5, 1)
        assert float(dist.sf(x)) == pytest.approx(expected, rel=1e-9)

    def test_fast_model_not_frozen_beyond_1e11(self):
        """The regression that motivated the sf rewrite: Algorithm 2
        must keep moving between t = 1e12 and 1e16 for a divergent
        case (here E1+descending at alpha = 1.45 < 1.5)."""
        dist = DiscretePareto(1.45, 13.5)
        v12 = fast_cost_model(dist.truncate(10**12), "E1", "descending",
                              eps=1e-4)
        v16 = fast_cost_model(dist.truncate(10**16), "E1", "descending",
                              eps=1e-4)
        assert v16 > 1.5 * v12

    def test_sf_cdf_complementary_in_safe_range(self):
        dist = DiscretePareto(1.7, 21.0)
        xs = np.array([1.0, 10.0, 1e3, 1e6])
        np.testing.assert_allclose(dist.sf(xs) + dist.cdf(xs), 1.0,
                                   rtol=1e-12)


class TestIntegerSafety:
    def test_edge_keys_fit_int64(self):
        """The directed-edge hash key ``src * n + dst`` must not
        overflow for any n this library realistically handles."""
        n = 3_000_000_000  # 3e9 nodes: key max ~ 9e18 < 2^63-1
        assert (n - 1) * n + (n - 2) < 2**63 - 1

    def test_cost_formulas_use_float64(self):
        """Quadratic sums of big degrees stay finite in the evaluator."""
        from repro.core.costs import cost_t1
        big = np.full(10, 10**8, dtype=np.int64)
        assert cost_t1(big) == pytest.approx(10 * (1e16 - 1e8) / 2,
                                             rel=1e-12)
