"""Tests for the random-graph generators (section 7.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    DiscretePareto,
    configuration_model,
    erdos_gallai_graphical,
    generate_graph,
    residual_degree_model,
    sample_degree_sequence,
)


class TestValidation:
    def test_odd_sum_rejected(self, rng):
        with pytest.raises(ValueError, match="even"):
            residual_degree_model([1, 1, 1], rng)
        with pytest.raises(ValueError, match="even"):
            configuration_model([1, 1, 1], rng)

    def test_degree_too_large_rejected(self, rng):
        with pytest.raises(ValueError, match="impossible"):
            residual_degree_model([4, 2, 1, 1], rng)

    def test_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            residual_degree_model([], rng)

    def test_unknown_generator_name(self, rng):
        with pytest.raises(ValueError, match="unknown generator"):
            generate_graph([1, 1], rng, method="magic")


class TestResidualDegreeModel:
    def test_exact_realization_small(self, rng):
        degrees = np.array([3, 3, 2, 2, 2])
        graph = residual_degree_model(degrees, rng)
        np.testing.assert_array_equal(graph.degrees, degrees)

    def test_exact_realization_heavy_tail(self, rng):
        """The paper's central claim: D_n is realized exactly."""
        dist = DiscretePareto(1.5, 15.0).truncate(31)  # root truncation
        degrees = sample_degree_sequence(dist, 1000, rng)
        graph = residual_degree_model(degrees, rng)
        np.testing.assert_array_equal(graph.degrees, degrees)

    def test_exact_realization_linear_truncation(self, rng):
        """Harder case: unconstrained degrees up to n - 1."""
        dist = DiscretePareto(1.5, 15.0).truncate(499)
        degrees = sample_degree_sequence(dist, 500, rng)
        graph = residual_degree_model(degrees, rng)
        np.testing.assert_array_equal(graph.degrees, degrees)

    def test_simple_graph_output(self, rng):
        dist = DiscretePareto(1.2, 6.0).truncate(199)
        degrees = sample_degree_sequence(dist, 200, rng)
        graph = residual_degree_model(degrees, rng)
        # Graph's constructor rejects loops/duplicates, so reaching here
        # means simplicity; double-check the edge count anyway
        assert 2 * graph.m == int(degrees.sum())

    def test_star_plus_matching(self, rng):
        """A hub adjacent to everyone: the stuck-repair stress case."""
        n = 12
        degrees = np.array([n - 1] + [3] * (n - 1))
        if degrees.sum() % 2:
            degrees[-1] -= 1
        assert erdos_gallai_graphical(degrees)
        graph = residual_degree_model(degrees, rng)
        np.testing.assert_array_equal(graph.degrees, degrees)

    def test_near_complete(self, rng):
        n = 8
        degrees = np.full(n, n - 2)
        graph = residual_degree_model(degrees, rng)
        np.testing.assert_array_equal(graph.degrees, degrees)

    def test_regular_graphs(self, rng):
        for d in [2, 4, 6]:
            degrees = np.full(20, d)
            graph = residual_degree_model(degrees, rng)
            np.testing.assert_array_equal(graph.degrees, degrees)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_exact_realization_property(self, seed):
        """Any sampled Pareto sequence is realized exactly."""
        rng = np.random.default_rng(seed)
        dist = DiscretePareto(1.7, 21.0).truncate(17)  # sqrt(300)
        degrees = sample_degree_sequence(dist, 300, rng)
        graph = residual_degree_model(degrees, rng)
        np.testing.assert_array_equal(graph.degrees, degrees)


class TestConfigurationModel:
    def test_degrees_never_exceed_request(self, rng):
        dist = DiscretePareto(1.5, 15.0).truncate(99)
        degrees = sample_degree_sequence(dist, 100, rng)
        graph = configuration_model(degrees, rng)
        assert np.all(graph.degrees <= degrees)

    def test_deficit_grows_with_heavy_tail(self, rng):
        """Section 7.2: simplification bites hard for alpha < 2 under
        linear truncation, and much less under root truncation."""
        dist_linear = DiscretePareto(1.5, 15.0).truncate(999)
        dist_root = DiscretePareto(1.5, 15.0).truncate(31)
        deficits = {}
        for name, dist in [("linear", dist_linear), ("root", dist_root)]:
            losses = []
            for __ in range(5):
                degrees = sample_degree_sequence(dist, 1000, rng)
                graph = configuration_model(degrees, rng)
                losses.append(1.0 - graph.degrees.sum() / degrees.sum())
            deficits[name] = np.mean(losses)
        assert deficits["linear"] > deficits["root"]
        assert deficits["linear"] > 0.01

    def test_multigraph_not_supported(self, rng):
        with pytest.raises(ValueError, match="simple"):
            configuration_model([2, 2, 2], rng, simplify=False)


class TestDispatcher:
    def test_residual_default(self, rng):
        degrees = np.array([2, 2, 2, 2])
        graph = generate_graph(degrees, rng)
        np.testing.assert_array_equal(graph.degrees, degrees)

    def test_configuration_via_name(self, rng):
        degrees = np.array([2, 2, 2, 2])
        graph = generate_graph(degrees, rng, method="configuration")
        assert np.all(graph.degrees <= degrees)


class TestEdgeProbabilityModel:
    def test_edge_probability_matches_eq10(self, rng):
        """Eq. (10): P(edge i~j) ~ d_i d_j / (2m) in AMRC graphs.

        Checked on the highest-degree pair over many generated graphs.
        """
        dist = DiscretePareto(2.5, 45.0).truncate(17)
        degrees = sample_degree_sequence(dist, 300, rng)
        order = np.argsort(degrees)
        i, j = int(order[-1]), int(order[-2])
        expected = degrees[i] * degrees[j] / degrees.sum()
        trials, hits = 400, 0
        for __ in range(trials):
            graph = residual_degree_model(degrees, rng)
            hits += graph.has_edge(i, j)
        observed = hits / trials
        assert observed == pytest.approx(expected, abs=0.12)
