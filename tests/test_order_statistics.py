"""Tests for the Glivenko-Cantelli / L-estimator machinery (§4.1)."""

import numpy as np
import pytest

from repro import DiscretePareto
from repro.core.kernels import DescendingMap, RoundRobinMap
from repro.core.order_statistics import (
    l_statistic,
    l_statistic_limit,
    partial_sum,
    partial_sum_limit,
    permuted_l_statistic,
    permuted_l_statistic_limit,
)
from repro.orientations.permutations import DescendingDegree, RoundRobin

DIST = DiscretePareto(2.5, 45.0).truncate(500)

G = lambda x: np.asarray(x) ** 2 - np.asarray(x)   # the paper's g
PHI = lambda u: (1.0 - np.asarray(u)) ** 2         # T1+descending's h x2


class TestEq16:
    def test_l_statistic_converges(self):
        rng = np.random.default_rng(0)
        limit = l_statistic_limit(DIST, G, PHI)
        samples = DIST.sample(400_000, rng)
        empirical = l_statistic(samples, G, PHI)
        assert empirical == pytest.approx(limit, rel=0.05)

    def test_l_statistic_exact_small_case(self):
        """Hand-checkable: samples [1, 2], g = id, phi = id."""
        value = l_statistic([2, 1], lambda x: np.asarray(x, float),
                            lambda u: np.asarray(u, float))
        # (1 * 0.5 + 2 * 1.0) / 2
        assert value == pytest.approx(1.25)

    def test_empty_samples(self):
        assert l_statistic([], G, PHI) == 0.0


class TestLemma1:
    @pytest.mark.parametrize("u", [0.25, 0.5, 0.9, 1.0])
    def test_partial_sums_converge(self, u):
        rng = np.random.default_rng(1)
        limit = partial_sum_limit(DIST, G, u)
        samples = DIST.sample(400_000, rng)
        empirical = partial_sum(samples, G, u)
        assert empirical == pytest.approx(limit, rel=0.06, abs=1e-3)

    def test_u_zero(self):
        assert partial_sum([1, 2, 3], G, 0.0) == 0.0
        assert partial_sum_limit(DIST, G, 0.0) == 0.0

    def test_u_validation(self):
        with pytest.raises(ValueError):
            partial_sum([1], G, 1.5)
        with pytest.raises(ValueError):
            partial_sum_limit(DIST, G, -0.1)

    def test_full_range_matches_mean(self):
        """u = 1 recovers E[g(D)] on both sides."""
        limit = partial_sum_limit(DIST, G, 1.0)
        ks = np.arange(1, 501, dtype=float)
        expected = float(np.sum(G(ks) * DIST.pmf(ks)))
        assert limit == pytest.approx(expected, rel=1e-3)


class TestLemma3:
    @pytest.mark.parametrize("perm,limit_map", [
        (DescendingDegree(), DescendingMap()),
        (RoundRobin(), RoundRobinMap()),
    ])
    def test_permuted_statistic_converges(self, perm, limit_map):
        rng = np.random.default_rng(2)
        h = lambda x: np.asarray(x) * (1.0 - np.asarray(x))  # T2's h
        limit = permuted_l_statistic_limit(DIST, limit_map, G, h)
        n = 200_000
        samples = DIST.sample(n, rng)
        theta = perm.rank_to_label(n)
        empirical = permuted_l_statistic(samples, theta, G, h)
        assert empirical == pytest.approx(limit, rel=0.05)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            permuted_l_statistic([1, 2, 3], np.array([0, 1]), G, PHI)
