"""Tests for connected components and induced subgraphs."""

import numpy as np
import pytest

from repro import Graph
from repro.graphs.analysis import triangle_count_sparse
from repro.graphs.components import (
    component_sizes,
    connected_components,
    induced_subgraph,
    largest_component,
)


@pytest.fixture
def two_islands():
    """A triangle plus a 4-path plus an isolated node."""
    return Graph(8, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (5, 6)])


class TestConnectedComponents:
    def test_labels(self, two_islands):
        labels = connected_components(two_islands)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5] == labels[6]
        assert labels[0] != labels[3]
        assert labels[7] not in (labels[0], labels[3])

    def test_sizes_descending(self, two_islands):
        np.testing.assert_array_equal(component_sizes(two_islands),
                                      [4, 3, 1])

    def test_single_component(self, k4_graph):
        assert len(set(connected_components(k4_graph))) == 1

    def test_empty_graph(self):
        assert connected_components(Graph(0, [])).size == 0
        assert component_sizes(Graph(0, [])).size == 0

    def test_matches_networkx(self, pareto_graph):
        networkx = pytest.importorskip("networkx")
        nx_graph = networkx.Graph()
        nx_graph.add_nodes_from(range(pareto_graph.n))
        nx_graph.add_edges_from(map(tuple, pareto_graph.edges.tolist()))
        expected = networkx.number_connected_components(nx_graph)
        assert len(set(connected_components(pareto_graph))) == expected


class TestSubgraphs:
    def test_largest_component(self, two_islands):
        sub, node_map = largest_component(two_islands)
        assert sub.n == 4
        assert sub.m == 3
        np.testing.assert_array_equal(node_map, [3, 4, 5, 6])

    def test_triangles_preserved(self, two_islands):
        sub, __ = induced_subgraph(two_islands, [0, 1, 2])
        assert triangle_count_sparse(sub) == 1

    def test_induced_drops_outside_edges(self, two_islands):
        sub, node_map = induced_subgraph(two_islands, [2, 3, 4])
        assert sub.m == 1  # only (3, 4) survives
        np.testing.assert_array_equal(node_map, [2, 3, 4])

    def test_out_of_range(self, two_islands):
        with pytest.raises(ValueError):
            induced_subgraph(two_islands, [99])

    def test_empty_graph_largest(self):
        sub, node_map = largest_component(Graph(0, []))
        assert sub.n == 0 and node_map.size == 0
