"""Tests for realizing arbitrary kernels as permutations (section 5.1)."""

import numpy as np
import pytest

from repro.core.kernels import (
    AscendingMap,
    DescendingMap,
    RoundRobinMap,
    UniformMap,
    empirical_kernel,
)
from repro.orientations.kernel_permutation import KernelPermutation


class TestDeterministicKernels:
    def test_ascending_reproduced_exactly(self):
        theta = KernelPermutation(AscendingMap()).rank_to_label(
            50, np.random.default_rng(0))
        np.testing.assert_array_equal(theta, np.arange(50))

    def test_descending_reproduced_exactly(self):
        theta = KernelPermutation(DescendingMap()).rank_to_label(
            50, np.random.default_rng(0))
        np.testing.assert_array_equal(theta, np.arange(49, -1, -1))


class TestRandomKernels:
    @pytest.mark.parametrize("limit_map", [RoundRobinMap(), UniformMap()])
    def test_always_a_bijection(self, limit_map):
        rng = np.random.default_rng(3)
        for n in (1, 2, 17, 500):
            theta = KernelPermutation(limit_map).rank_to_label(n, rng)
            assert sorted(theta.tolist()) == list(range(n))

    def test_rr_kernel_recovered(self):
        """The constructed permutation's windowed kernel (27) converges
        back to the RR kernel it was built from."""
        rng = np.random.default_rng(9)
        limit_map = RoundRobinMap()
        theta = KernelPermutation(limit_map).rank_to_label(40_000, rng)
        for u in (0.21, 0.52, 0.83):
            for v in (0.33, 0.57, 0.97):
                estimate = empirical_kernel(theta, u, v)
                expected = float(limit_map.kernel(v, np.float64(u)))
                assert estimate == pytest.approx(expected, abs=0.07), \
                    (u, v)

    def test_uniform_kernel_recovered(self):
        rng = np.random.default_rng(11)
        theta = KernelPermutation(UniformMap()).rank_to_label(40_000, rng)
        for u in (0.25, 0.75):
            for v in (0.4, 0.9):
                assert empirical_kernel(theta, u, v) == pytest.approx(
                    v, abs=0.07)

    def test_cost_matches_kernel_model(self):
        """Orienting by the constructed permutation produces the cost
        the kernel model (29)/(50) predicts."""
        from repro import (DiscretePareto, discrete_cost_model,
                           generate_graph, orient,
                           sample_degree_sequence)
        from repro.core.costs import method_cost
        rng = np.random.default_rng(21)
        n = 4000
        dist = DiscretePareto(1.7, 21.0).truncate(63)
        degrees = sample_degree_sequence(dist, n, rng)
        graph = generate_graph(degrees, rng)
        perm = KernelPermutation(RoundRobinMap())
        oriented = orient(graph, perm, rng=rng)
        measured = method_cost(oriented, "T2")
        model = discrete_cost_model(dist, "T2", RoundRobinMap())
        assert measured == pytest.approx(model, rel=0.12)
