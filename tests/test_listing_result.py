"""Edge-case and serialization coverage for ``ListingResult``."""

import json

import pytest

from repro.listing.base import ListingResult
from repro.obs.records import (json_default, listing_result_from_dict,
                               listing_result_to_dict)


class TestPerNodeCost:
    def test_zero_nodes(self):
        assert ListingResult(method="T1", ops=0, n=0).per_node_cost == 0.0

    def test_zero_nodes_with_ops(self):
        # degenerate but must not divide by zero
        assert ListingResult(method="T1", ops=7, n=0).per_node_cost == 0.0

    def test_normal(self):
        assert ListingResult(method="T1", ops=10,
                             n=4).per_node_cost == pytest.approx(2.5)


class TestTriangleSet:
    def test_raises_without_collect(self):
        result = ListingResult(method="E1", count=3, triangles=None)
        with pytest.raises(ValueError, match="collect=True"):
            result.triangle_set()

    def test_returns_set(self):
        result = ListingResult(method="E1", count=2,
                               triangles=[(0, 1, 2), (0, 1, 2), (1, 2, 3)])
        assert result.triangle_set() == {(0, 1, 2), (1, 2, 3)}


class TestRecordsRoundTrip:
    def _sample(self, collected=True):
        return ListingResult(
            method="E4", count=2,
            triangles=[(0, 1, 2), (1, 2, 3)] if collected else None,
            ops=17, comparisons=12, hash_inserts=5, n=9,
            extra={"note": "unit"})

    def test_roundtrip_collected(self):
        original = self._sample()
        line = json.dumps(listing_result_to_dict(original),
                          default=json_default)
        restored = listing_result_from_dict(json.loads(line))
        assert restored == original

    def test_roundtrip_uncollected(self):
        original = self._sample(collected=False)
        restored = listing_result_from_dict(
            json.loads(json.dumps(listing_result_to_dict(original))))
        assert restored == original
        with pytest.raises(ValueError):
            restored.triangle_set()

    def test_roundtrip_real_run(self):
        import numpy as np
        from repro import (DescendingDegree, DiscretePareto,
                           generate_graph, list_triangles, orient,
                           sample_degree_sequence)
        from repro.distributions import root_truncation
        rng = np.random.default_rng(11)
        dist = DiscretePareto(1.7, 21.0).truncate(root_truncation(200))
        degrees = sample_degree_sequence(dist, 200, rng)
        oriented = orient(generate_graph(degrees, rng),
                          DescendingDegree())
        result = list_triangles(oriented, "T1", collect=True)
        line = json.dumps(listing_result_to_dict(result),
                          default=json_default)
        restored = listing_result_from_dict(json.loads(line))
        assert restored == result
        assert restored.per_node_cost == result.per_node_cost
        assert restored.triangle_set() == result.triangle_set()
