"""Tests for the four-regime classifier (sections 4.2, 6.3)."""

import pytest

from repro.experiments.regimes import (
    DEFAULT_PAIRS,
    classify_alpha,
    format_regime_table,
    provable_t1_window,
    regime_of,
    sweep_regimes,
)


class TestRegimeIndex:
    def test_boundaries(self):
        assert regime_of(1.2) == 1
        assert regime_of(4 / 3) == 1
        assert regime_of(1.4) == 2
        assert regime_of(1.5) == 2
        assert regime_of(1.7) == 3
        assert regime_of(2.0) == 3
        assert regime_of(2.5) == 4


class TestClassification:
    def test_regime1_everything_diverges(self):
        row = classify_alpha(1.3)
        assert row.finite_pairs == ()

    def test_regime2_only_t1_descending(self):
        row = classify_alpha(1.45)
        assert row.finite_pairs == (("T1", "descending"),)
        assert row.t1_beats_e1_provably

    def test_regime3_t2_and_e1_join(self):
        row = classify_alpha(1.7)
        finite = set(row.finite_pairs)
        assert ("T1", "descending") in finite
        assert ("T2", "rr") in finite
        assert ("E1", "descending") in finite
        assert ("E4", "crr") not in finite
        assert not row.t1_beats_e1_provably

    def test_regime4_everything_finite(self):
        row = classify_alpha(2.5)
        assert set(row.finite_pairs) == set(DEFAULT_PAIRS)

    def test_provable_window_is_43_to_32(self):
        low, high = provable_t1_window()
        assert low == pytest.approx(4 / 3)
        assert high == pytest.approx(1.5)


class TestFormatting:
    def test_sweep_and_table(self):
        rows = sweep_regimes([1.3, 1.45, 1.7, 2.5])
        text = format_regime_table(rows)
        assert "1.300" in text
        assert "F" in text and "-" in text
        # regime 4 row is all-finite: no dash after the alpha column
        last_line = text.splitlines()[-1]
        assert "-" not in last_line.replace("2.500", "")
