"""Shared fixtures: small deterministic graphs used across test modules."""

import numpy as np
import pytest

from repro import (
    DiscretePareto,
    Graph,
    generate_graph,
    sample_degree_sequence,
)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def triangle_graph():
    """K3: the smallest graph with a triangle."""
    return Graph(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def k4_graph():
    """K4: four triangles."""
    edges = [(i, j) for i in range(4) for j in range(i + 1, 4)]
    return Graph(4, edges)


@pytest.fixture
def bowtie_graph():
    """Two triangles sharing node 2."""
    return Graph(5, [(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)])


@pytest.fixture
def path_graph():
    """P5: no triangles at all."""
    return Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])


@pytest.fixture
def pareto_graph(rng):
    """A 300-node heavy-tailed random graph (deterministic seed)."""
    dist = DiscretePareto(alpha=1.8, beta=24.0).truncate(40)
    degrees = sample_degree_sequence(dist, 300, rng)
    return generate_graph(degrees, rng)
