"""Tests for the Poisson and lognormal degree laws + sparse counter."""

import math

import numpy as np
import pytest

from repro import generate_graph, sample_degree_sequence
from repro.distributions import LogNormalDegree, PoissonDegree
from repro.graphs.analysis import triangle_count, triangle_count_sparse


class TestPoissonDegree:
    def test_pmf_normalized(self):
        dist = PoissonDegree(5.0)
        ks = np.arange(1, 100, dtype=float)
        assert float(np.sum(dist.pmf(ks))) == pytest.approx(1.0)

    def test_no_mass_at_zero(self):
        dist = PoissonDegree(2.0)
        assert dist.pmf(0) == 0.0
        assert dist.cdf(0.5) == 0.0

    def test_zero_truncated_mean(self):
        lam = 3.0
        dist = PoissonDegree(lam)
        assert dist.mean() == pytest.approx(lam / (1 - math.exp(-lam)))

    def test_second_moment_closed_form(self):
        dist = PoissonDegree(4.0)
        ks = np.arange(1, 200, dtype=float)
        brute = float(np.sum(ks * ks * dist.pmf(ks)))
        assert dist.moment(2) == pytest.approx(brute, rel=1e-9)

    def test_quantile_inverse(self):
        dist = PoissonDegree(7.0)
        for u in (0.1, 0.5, 0.95):
            k = dist.quantile(u)
            assert dist.cdf(k) >= u
            assert dist.cdf(k - 1) < u

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PoissonDegree(0.0)

    def test_full_pipeline(self, rng):
        dist = PoissonDegree(8.0).truncate(40)
        degrees = sample_degree_sequence(dist, 400, rng)
        graph = generate_graph(degrees, rng)
        np.testing.assert_array_equal(graph.degrees, degrees)


class TestLogNormalDegree:
    def test_cdf_sf_complementary(self):
        dist = LogNormalDegree(2.0, 1.0)
        xs = np.array([1.0, 3.0, 10.0, 100.0])
        np.testing.assert_allclose(dist.cdf(xs) + dist.sf(xs), 1.0)

    def test_quantile_inverse(self):
        dist = LogNormalDegree(1.5, 0.8)
        for u in (0.05, 0.5, 0.99):
            k = dist.quantile(u)
            assert dist.cdf(k) >= u - 1e-12
            if k > 1:
                assert dist.cdf(k - 1) < u + 1e-12

    def test_all_moments_finite(self):
        dist = LogNormalDegree(1.0, 0.7)
        assert math.isfinite(dist.moment(2))
        assert math.isfinite(dist.moment(4))

    def test_model_runs_and_orientations_rank(self):
        """Lognormal through the whole analytical stack: descending
        still optimal for T1 (its g/w ratio is increasing for any
        law)."""
        from repro import discrete_cost_model
        dist = LogNormalDegree(2.0, 1.0).truncate(500)
        desc = discrete_cost_model(dist, "T1", "descending")
        asc = discrete_cost_model(dist, "T1", "ascending")
        assert desc < asc

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            LogNormalDegree(1.0, 0.0)


class TestSparseCounter:
    def test_matches_lister(self, pareto_graph):
        assert triangle_count_sparse(pareto_graph) \
            == triangle_count(pareto_graph)

    def test_known_graphs(self, k4_graph, bowtie_graph, path_graph):
        assert triangle_count_sparse(k4_graph) == 4
        assert triangle_count_sparse(bowtie_graph) == 2
        assert triangle_count_sparse(path_graph) == 0

    def test_empty(self):
        from repro import Graph
        assert triangle_count_sparse(Graph(5, [])) == 0

    def test_larger_random_graph(self, rng):
        from repro import DiscretePareto
        dist = DiscretePareto(1.8, 24.0).truncate(44)
        degrees = sample_degree_sequence(dist, 2000, rng)
        graph = generate_graph(degrees, rng)
        assert triangle_count_sparse(graph) == triangle_count(graph)


@pytest.fixture
def rng():
    return np.random.default_rng(66)
