"""Tests for the export layer: trace events, flame stacks, per-span
profiling, the HTML dashboard, and their CLI verbs."""

import json

import pytest

from repro import DescendingDegree, DiscretePareto, cli, obs
from repro.distributions import root_truncation
from repro.experiments.harness import SimulationSpec
from repro.experiments.parallel import sweep_n_parallel
from repro.obs import export, metrics, profiling
from repro.obs import records as obs_records
from repro.obs import report as obs_report
from repro.obs.export import MAIN_TID


def _spec(n_sequences=3, n_graphs=1):
    return SimulationSpec(
        base_dist=DiscretePareto(1.7, 21.0),
        truncation=root_truncation,
        method="T1",
        permutation=DescendingDegree(),
        limit_map="descending",
        n_sequences=n_sequences,
        n_graphs=n_graphs,
    )


@pytest.fixture(scope="module")
def sweep_history(tmp_path_factory):
    """One recorded parallel sweep (2 workers) in a runs.jsonl sink."""
    runs = tmp_path_factory.mktemp("export") / "runs.jsonl"
    obs.enable()
    obs.reset()
    try:
        rows = sweep_n_parallel(_spec(), [400, 600], seed=3,
                                max_workers=2)
        record = obs.collect(
            "sweep",
            config={"rows": [{"label": "T1+descending", **row}
                             for row in rows]})
    finally:
        obs.disable()
    obs_records.write_record(record, runs)
    return record, runs


def _events_by_phase(trace):
    out = {"X": [], "C": [], "M": []}
    for event in trace["traceEvents"]:
        out[event["ph"]].append(event)
    return out


class TestTraceExport:
    def test_validates_and_has_all_phases(self, sweep_history):
        record, _ = sweep_history
        trace = export.records_to_trace([record])
        assert export.validate_trace(trace) == len(trace["traceEvents"])
        assert trace["displayTimeUnit"] == "ms"
        phases = _events_by_phase(trace)
        assert phases["X"] and phases["C"] and phases["M"]
        for event in phases["X"]:
            assert event["dur"] >= 0 and event["ts"] >= 0

    def test_worker_spans_get_own_tids(self, sweep_history):
        record, _ = sweep_history
        phases = _events_by_phase(export.records_to_trace([record]))
        sequences = [e for e in phases["X"] if e["name"] == "sequence"]
        assert sequences, "parallel sweep must export sequence spans"
        worker_tids = {e["tid"] for e in sequences}
        assert worker_tids and MAIN_TID not in worker_tids
        # every worker pid annotated on the span became its tid
        for event in sequences:
            assert event["tid"] == event["args"]["worker_pid"]
        # and every tid got a thread_name metadata event
        named = {e["tid"] for e in phases["M"]
                 if e["name"] == "thread_name"}
        assert worker_tids <= named

    def test_hierarchy_preserved_within_worker(self, sweep_history):
        """A sequence's children stay inside its exported window."""
        record, _ = sweep_history
        phases = _events_by_phase(export.records_to_trace([record]))
        by_tid = {}
        for event in phases["X"]:
            by_tid.setdefault(event["tid"], []).append(event)
        checked = 0
        for tid, events in by_tid.items():
            if tid == MAIN_TID:
                continue
            sequences = [e for e in events if e["name"] == "sequence"]
            inner = [e for e in events if e["name"] in ("sample", "list")]
            assert inner
            for child in inner:
                assert any(
                    seq["ts"] - 0.1 <= child["ts"] and
                    child["ts"] + child["dur"]
                    <= seq["ts"] + seq["dur"] + 0.1
                    for seq in sequences)
                checked += 1
        assert checked

    def test_counter_events_carry_values(self, sweep_history):
        record, _ = sweep_history
        phases = _events_by_phase(export.records_to_trace([record]))
        names = {e["name"] for e in phases["C"]}
        assert "harness.instances" in names
        for event in phases["C"]:
            assert isinstance(event["args"]["value"], (int, float))

    def test_round_trips_through_jsonl(self, sweep_history, tmp_path):
        """The satellite: export a *recorded* parallel sweep."""
        _, runs = sweep_history
        loaded = obs_records.load_records(runs)
        out = export.write_trace(loaded, tmp_path / "trace.json")
        trace = json.loads(out.read_text())
        assert export.validate_trace(trace) > 0
        tids = {e["tid"] for e in trace["traceEvents"]
                if e["ph"] == "X" and e["name"] == "sequence"}
        assert tids and MAIN_TID not in tids

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError):
            export.validate_trace({"traceEvents": []})
        with pytest.raises(ValueError):
            export.validate_trace({"traceEvents": [{"ph": "Z",
                                                    "pid": 1, "tid": 1}]})
        with pytest.raises(ValueError):
            export.validate_trace(
                {"traceEvents": [{"ph": "X", "pid": 1, "tid": 1}]})

    def test_memory_counter_track_from_resources(self):
        record = obs_records.RunRecord(
            name="mem", spans=[{"name": "root", "start_ns": 0,
                                "duration_ns": 1_000_000}],
            metrics={"resources": [{"ts": 1.0, "rss_bytes": 100,
                                    "rss_peak_bytes": 150}]})
        trace = export.records_to_trace([record])
        export.validate_trace(trace)
        mem = [e for e in trace["traceEvents"]
               if e.get("cat") == "memory"]
        assert {e["name"] for e in mem} == {"mem.rss_bytes",
                                            "mem.rss_peak_bytes"}
        assert all(e["ph"] == "C" for e in mem)

    def test_validate_rejects_bool_memory_counter(self):
        trace = {"traceEvents": [
            {"name": "mem.rss_bytes", "cat": "memory", "ph": "C",
             "pid": 1, "tid": 1, "ts": 0.0, "args": {"value": True}},
        ]}
        with pytest.raises(ValueError):
            export.validate_trace(trace)


class TestCollapsedStacks:
    def test_span_self_time_lines(self, sweep_history):
        record, _ = sweep_history
        lines = export.collapsed_stacks([record], source="spans")
        assert lines
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert stack.startswith("sweep")
            assert int(weight) > 0
        assert any(";cell;sequence;" in line for line in lines)

    def test_profile_source_empty_without_attribution(self,
                                                      sweep_history):
        record, _ = sweep_history
        assert export.collapsed_stacks([record],
                                       source="profile") == []

    def test_unknown_source_rejected(self, sweep_history):
        record, _ = sweep_history
        with pytest.raises(ValueError):
            export.collapsed_stacks([record], source="wat")


class TestProfiling:
    def test_env_parsing(self, monkeypatch):
        cases = {"": 0, "0": 0, "off": 0, "junk": 0,
                 "1": profiling.DEFAULT_TOP_K,
                 "true": profiling.DEFAULT_TOP_K, "40": 40}
        for raw, expected in cases.items():
            monkeypatch.setenv("REPRO_PROFILE", raw)
            assert profiling.profile_top_k_from_env() == expected

    def test_top_level_span_gets_profile(self):
        obs.enable(profile=5)
        obs.reset()
        try:
            with obs.span("outer"):
                with obs.span("inner"):
                    sum(i * i for i in range(20_000))
            (root,) = obs.pop_finished()
        finally:
            obs.disable()
        assert root.profile, "top-level span must carry profile stats"
        assert len(root.profile) <= 5
        entry = root.profile[0]
        assert {"func", "file", "line", "ncalls", "tottime",
                "cumtime"} <= set(entry)
        # cProfile cannot nest: only the root profiles
        assert root.children[0].profile is None
        # and the attribution rides to_dict/from_dict round trips
        clone = obs.Span.from_dict(root.to_dict())
        assert clone.profile == root.profile

    def test_disabled_attaches_nothing(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        obs.enable()
        obs.reset()
        try:
            with obs.span("outer"):
                pass
            (root,) = obs.pop_finished()
        finally:
            obs.disable()
        assert root.profile is None
        assert "profile" not in root.to_dict()

    def test_format_profile(self):
        entries = [{"func": "f", "file": "x.py", "line": 3,
                    "ncalls": 2, "tottime": 0.5, "cumtime": 1.0}]
        text = profiling.format_profile(entries)
        assert "f (x.py:3)" in text
        assert "REPRO_PROFILE" in profiling.format_profile([])


class TestHistogramPercentiles:
    def test_summary_has_quantiles(self):
        h = metrics.Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == 100 and s["min"] == 1.0
        assert s["p50"] == pytest.approx(50.5)
        assert s["p95"] == pytest.approx(95.05)
        assert s["p99"] == pytest.approx(99.01)

    def test_single_sample(self):
        h = metrics.Histogram()
        h.observe(7.0)
        s = h.summary()
        assert s["p50"] == s["p99"] == 7.0

    def test_streaming_fields_exact_past_cap(self):
        h = metrics.Histogram()
        for v in range(metrics.MAX_SAMPLES + 50):
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == metrics.MAX_SAMPLES + 50
        assert s["max"] == float(metrics.MAX_SAMPLES + 49)

    def test_trends_surface_task_percentiles(self, sweep_history):
        record, _ = sweep_history
        rows = obs_report.trend_rows([record])
        quantiles = rows[0]["quantiles"].get("parallel.task_ms")
        assert quantiles and {"p50", "p95", "p99"} <= set(quantiles)
        text = obs_report.format_trends(rows)
        assert "task ms p50/p95/p99" in text


class TestAtomicRecords:
    def test_round_trip_and_corruption_counter(self, tmp_path):
        runs = tmp_path / "runs.jsonl"
        record = obs_records.RunRecord(name="r1",
                                       config={"seed": 1})
        obs_records.write_record(record, runs)
        with open(runs, "a") as fh:
            fh.write('{"name": "torn", "con\n')
        obs_records.write_record(
            obs_records.RunRecord(name="r2"), runs, fsync=False)
        metrics.enable()
        try:
            metrics.reset()
            loaded = obs_records.load_records(runs)
            corrupted = metrics.snapshot()["counters"].get(
                "records.corrupted")
        finally:
            metrics.disable()
        assert [r.name for r in loaded] == ["r1", "r2"]
        assert corrupted == 1


class TestDashboard:
    def test_self_contained_html(self, sweep_history):
        record, _ = sweep_history
        html = obs.render_dashboard([record], title="t")
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html and "table view" in html
        for external in ("<script", "src=", "href=", "@import",
                         "url("):
            assert external not in html

    def test_divergence_and_worker_sections(self, sweep_history):
        record, _ = sweep_history
        html = obs.render_dashboard([record])
        assert "Sim-vs-model divergence" in html
        assert "Worker task-time distribution" in html


class TestExportCLI:
    def test_missing_runs_exits_cleanly(self, tmp_path):
        missing = str(tmp_path / "nope.jsonl")
        for argv in (["export", "trace", "--runs", missing,
                      "--out", str(tmp_path / "t.json")],
                     ["export", "flame", "--runs", missing,
                      "--out", str(tmp_path / "f.txt")],
                     ["report", "html", "--runs", missing,
                      "--out", str(tmp_path / "d.html")],
                     ["report", "trends", "--runs", missing]):
            with pytest.raises(SystemExit) as err:
                cli.main(argv)
            assert "no run records" in str(err.value)

    def test_filters_that_match_nothing_exit_cleanly(self,
                                                     sweep_history,
                                                     tmp_path):
        _, runs = sweep_history
        with pytest.raises(SystemExit) as err:
            cli.main(["export", "trace", "--runs", str(runs),
                      "--name", "nosuchbench",
                      "--out", str(tmp_path / "t.json")])
        assert "matched the filters" in str(err.value)

    def test_trace_flame_html_from_history(self, sweep_history,
                                           tmp_path, capsys):
        _, runs = sweep_history
        trace_out = tmp_path / "trace.json"
        flame_out = tmp_path / "flame.txt"
        html_out = tmp_path / "dash.html"
        assert cli.main(["export", "trace", "--runs", str(runs),
                         "--out", str(trace_out)]) == 0
        assert cli.main(["export", "flame", "--runs", str(runs),
                         "--out", str(flame_out)]) == 0
        assert cli.main(["report", "html", "--runs", str(runs),
                         "--out", str(html_out)]) == 0
        capsys.readouterr()
        trace = json.loads(trace_out.read_text())
        assert export.validate_trace(trace) > 0
        assert flame_out.read_text().strip()
        assert html_out.read_text().startswith("<!DOCTYPE html>")

    def test_report_json_modes(self, sweep_history, capsys):
        _, runs = sweep_history
        assert cli.main(["report", "trends", "--runs", str(runs),
                         "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows and rows[0]["name"] == "sweep"
        assert cli.main(["report", "divergence", "--runs", str(runs),
                         "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows and {"label", "n", "error"} <= set(rows[0])

    def test_compare_json_mode(self, sweep_history, tmp_path, capsys):
        _, runs = sweep_history
        baseline = tmp_path / "base.json"
        assert cli.main(["report", "baseline", "--runs", str(runs),
                         "--out", str(baseline)]) == 0
        capsys.readouterr()
        assert cli.main(["report", "compare", "--runs", str(runs),
                         "--baseline", str(baseline), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressed"] is False
        assert payload["summary"]["unchanged"] > 0
        assert all("classification" in d for d in payload["deltas"])

    def test_sweep_record_cli_end_to_end(self, tmp_path, capsys):
        """sweep --record -> export trace: the acceptance path."""
        runs = tmp_path / "cli-runs.jsonl"
        assert cli.main(["sweep", "--alpha", "1.7", "--beta", "21.0",
                         "--ns", "400", "--sequences", "2",
                         "--graphs", "1", "--workers", "2",
                         "--seed", "5", "--record", str(runs)]) == 0
        assert not obs.is_enabled()
        trace_out = tmp_path / "trace.json"
        assert cli.main(["export", "trace", "--runs", str(runs),
                         "--out", str(trace_out)]) == 0
        capsys.readouterr()
        trace = json.loads(trace_out.read_text())
        assert export.validate_trace(trace) > 0
        names = {e["name"] for e in trace["traceEvents"]
                 if e["ph"] == "X"}
        assert {"cell", "sequence"} <= names


class TestProfileCLIExports:
    def test_profile_trace_and_flame_out(self, tmp_path, capsys):
        trace_out = tmp_path / "p.trace.json"
        flame_out = tmp_path / "p.flame.txt"
        assert cli.main(["profile", "--n", "800", "--methods", "T1",
                         "--orders", "descending",
                         "--trace-out", str(trace_out),
                         "--flame-out", str(flame_out)]) == 0
        capsys.readouterr()
        trace = json.loads(trace_out.read_text())
        assert export.validate_trace(trace) > 0
        assert flame_out.read_text().strip()
