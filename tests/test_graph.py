"""Tests for the undirected CSR graph."""

import numpy as np
import pytest

from repro import Graph


class TestConstruction:
    def test_basic_counts(self, bowtie_graph):
        assert bowtie_graph.n == 5
        assert bowtie_graph.m == 6
        np.testing.assert_array_equal(bowtie_graph.degrees, [2, 2, 4, 2, 2])

    def test_neighbors_sorted(self, bowtie_graph):
        """Section 2's standing assumption: lists sorted ascending."""
        for v in range(bowtie_graph.n):
            nbrs = bowtie_graph.neighbors(v)
            assert np.all(np.diff(nbrs) > 0)

    def test_neighbors_content(self, bowtie_graph):
        np.testing.assert_array_equal(bowtie_graph.neighbors(2),
                                      [0, 1, 3, 4])
        np.testing.assert_array_equal(bowtie_graph.neighbors(0), [1, 2])

    def test_edges_canonical(self):
        g = Graph(3, [(2, 0), (1, 2)])
        assert set(map(tuple, g.edges.tolist())) == {(0, 2), (1, 2)}

    def test_empty_graph(self):
        g = Graph(4, [])
        assert g.m == 0
        np.testing.assert_array_equal(g.degrees, [0, 0, 0, 0])
        assert g.neighbors(0).size == 0

    def test_isolated_nodes_allowed(self):
        g = Graph(5, [(0, 1)])
        assert g.degrees[4] == 0

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Graph(3, [(1, 1)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Graph(3, [(0, 1), (1, 0)])
        with pytest.raises(ValueError, match="duplicate"):
            Graph(3, [(0, 1), (0, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph(3, [(0, 3)])
        with pytest.raises(ValueError):
            Graph(3, [(-1, 0)])

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1, [])

    def test_from_edge_list_infers_n(self):
        g = Graph.from_edge_list([(0, 4), (1, 2)])
        assert g.n == 5
        assert g.m == 2


class TestQueries:
    def test_has_edge(self, bowtie_graph):
        assert bowtie_graph.has_edge(0, 1)
        assert bowtie_graph.has_edge(1, 0)
        assert not bowtie_graph.has_edge(0, 3)
        assert not bowtie_graph.has_edge(2, 2)

    def test_adjacency_sets(self, triangle_graph):
        sets = triangle_graph.adjacency_sets()
        assert sets == [{1, 2}, {0, 2}, {0, 1}]

    def test_triangle_count_reference(self, triangle_graph, k4_graph,
                                      bowtie_graph, path_graph):
        assert triangle_graph.triangle_count_reference() == 1
        assert k4_graph.triangle_count_reference() == 4
        assert bowtie_graph.triangle_count_reference() == 2
        assert path_graph.triangle_count_reference() == 0

    def test_degree_sum_is_2m(self, pareto_graph):
        assert int(pareto_graph.degrees.sum()) == 2 * pareto_graph.m
