"""Tests for the harness's uncertainty quantification."""

import math

import numpy as np
import pytest

from repro import DescendingDegree, DiscretePareto, discrete_cost_model
from repro.distributions import root_truncation
from repro.experiments.harness import SimulationSpec
from repro.experiments.statistics import CellEstimate, estimate_cell


def _spec(n_sequences=5, n_graphs=3):
    return SimulationSpec(
        base_dist=DiscretePareto(1.7, 21.0),
        truncation=root_truncation,
        method="T1",
        permutation=DescendingDegree(),
        limit_map="descending",
        n_sequences=n_sequences,
        n_graphs=n_graphs,
    )


class TestCellEstimate:
    def test_interval_arithmetic(self):
        est = CellEstimate(mean=10.0, std_error=1.0,
                           between_sequence_var=5.0,
                           within_sequence_var=2.0,
                           n_sequences=5, n_graphs=3)
        lo, hi = est.confidence_interval()
        assert lo == pytest.approx(10.0 - 1.96)
        assert hi == pytest.approx(10.0 + 1.96)
        assert est.contains(10.5)
        assert not est.contains(13.0)

    def test_estimate_fields(self, rng):
        est = estimate_cell(_spec(), 800, rng)
        assert est.mean > 0
        assert est.std_error >= 0
        assert est.between_sequence_var >= 0
        assert est.within_sequence_var >= 0
        assert est.n_sequences == 5

    def test_estimates_self_consistent(self):
        """Two independent estimates of the same cell agree within
        their combined confidence intervals -- the CI captures the
        Monte-Carlo noise (it does NOT cover the model's finite-n
        bias, which Table 6 shows is a few percent at this n)."""
        spec = _spec(n_sequences=6, n_graphs=3)
        n = 1500
        a = estimate_cell(spec, n, np.random.default_rng(1))
        b = estimate_cell(spec, n, np.random.default_rng(2))
        gap = abs(a.mean - b.mean)
        combined = 4.0 * math.hypot(a.std_error, b.std_error)
        assert gap <= combined

    def test_mean_near_model(self, rng):
        """The cell mean tracks the model to the usual few percent."""
        spec = _spec(n_sequences=6, n_graphs=3)
        n = 2000
        est = estimate_cell(spec, n, rng)
        model = discrete_cost_model(
            spec.base_dist.truncate(root_truncation(n)), "T1",
            "descending")
        assert est.mean == pytest.approx(model, rel=0.12)

    def test_single_sequence_zero_between(self, rng):
        est = estimate_cell(_spec(n_sequences=1, n_graphs=3), 500, rng)
        assert est.between_sequence_var == 0.0
        assert est.std_error == 0.0


@pytest.fixture
def rng():
    return np.random.default_rng(55)
