"""Tests for scanning edge iterators E1-E6 (section 2.3, Table 1)."""

import pytest

from repro import DescendingDegree, OrientedGraph, orient
from repro.core.costs import cost_t1, cost_t2, cost_t3
from repro.listing import run_edge_iterator, run_vertex_iterator
from repro.listing.base import intersect_sorted

SEI_METHODS = ("E1", "E2", "E3", "E4", "E5", "E6")

#: Table 1: (local, remote) cost components per method.
TABLE_1 = {
    "E1": ("T1", "T2"),
    "E2": ("T2", "T1"),
    "E3": ("T3", "T2"),
    "E4": ("T1", "T3"),
    "E5": ("T2", "T3"),
    "E6": ("T3", "T1"),
}


def _base_cost(name, oriented):
    if name == "T1":
        return cost_t1(oriented.out_degrees)
    if name == "T2":
        return cost_t2(oriented.out_degrees, oriented.in_degrees)
    return cost_t3(oriented.in_degrees)


class TestIntersectSorted:
    def test_basic(self):
        matches, comps = intersect_sorted([1, 3, 5, 7], [3, 4, 5])
        assert matches == [3, 5]
        assert comps <= 7

    def test_empty(self):
        assert intersect_sorted([], [1, 2]) == ([], 0)
        assert intersect_sorted([1], []) == ([], 0)

    def test_disjoint(self):
        matches, comps = intersect_sorted([1, 2], [5, 6])
        assert matches == []
        assert comps == 2  # exhausts the left list after two advances

    def test_identical(self):
        matches, __ = intersect_sorted([2, 4, 6], [2, 4, 6])
        assert matches == [2, 4, 6]


class TestCorrectness:
    @pytest.mark.parametrize("method", SEI_METHODS)
    def test_single_triangle(self, triangle_graph, method):
        oriented = OrientedGraph(triangle_graph, [0, 1, 2])
        result = run_edge_iterator(oriented, method)
        assert result.count == 1
        assert result.triangles == [(0, 1, 2)]

    @pytest.mark.parametrize("method", SEI_METHODS)
    def test_k4(self, k4_graph, method):
        oriented = OrientedGraph(k4_graph, [0, 1, 2, 3])
        result = run_edge_iterator(oriented, method)
        assert result.count == 4

    @pytest.mark.parametrize("method", SEI_METHODS)
    def test_bowtie(self, bowtie_graph, method):
        oriented = orient(bowtie_graph, DescendingDegree())
        result = run_edge_iterator(oriented, method)
        assert result.count == 2

    @pytest.mark.parametrize("method", SEI_METHODS)
    def test_no_triangles(self, path_graph, method):
        oriented = orient(path_graph, DescendingDegree())
        assert run_edge_iterator(oriented, method).count == 0

    def test_unknown_method(self, triangle_graph):
        oriented = OrientedGraph(triangle_graph, [0, 1, 2])
        with pytest.raises(ValueError):
            run_edge_iterator(oriented, "E7")


class TestTable1Costs:
    @pytest.mark.parametrize("method", SEI_METHODS)
    def test_ops_decompose_per_table_1(self, pareto_graph, method):
        """Each SEI's ops equal the sum of its two base costs exactly."""
        oriented = orient(pareto_graph, DescendingDegree())
        result = run_edge_iterator(oriented, method)
        local, remote = TABLE_1[method]
        expected = _base_cost(local, oriented) + _base_cost(remote, oriented)
        assert result.ops == int(expected)

    def test_proposition_2(self, pareto_graph):
        """Prop. 2: c_n(E1) = c_n(T1) + c_n(T2)."""
        oriented = orient(pareto_graph, DescendingDegree())
        e1 = run_edge_iterator(oriented, "E1")
        t1 = run_vertex_iterator(oriented, "T1")
        t2 = run_vertex_iterator(oriented, "T2")
        assert e1.ops == t1.ops + t2.ops

    @pytest.mark.parametrize("method", SEI_METHODS)
    def test_comparisons_bounded_by_ops(self, pareto_graph, method):
        """A real merge may exit early, never late."""
        oriented = orient(pareto_graph, DescendingDegree())
        result = run_edge_iterator(oriented, method)
        assert 0 <= result.comparisons <= result.ops

    def test_e1_e3_same_cost_under_reversal(self, pareto_graph):
        """Figure 4: E1 and E3 are one equivalence class."""
        from repro import AscendingDegree, reverse_permutation
        perm = AscendingDegree()
        oriented = orient(pareto_graph, perm)
        rev_oriented = orient(pareto_graph, reverse_permutation(perm))
        assert (run_edge_iterator(oriented, "E1").ops
                == run_edge_iterator(rev_oriented, "E3").ops)

    def test_e4_e6_same_cost_any_orientation(self, pareto_graph):
        """E4 and E6 swap local/remote of the same components."""
        oriented = orient(pareto_graph, DescendingDegree())
        assert (run_edge_iterator(oriented, "E4").ops
                == run_edge_iterator(oriented, "E6").ops)

    def test_e1_e2_same_cost_any_orientation(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        assert (run_edge_iterator(oriented, "E1").ops
                == run_edge_iterator(oriented, "E2").ops)
