"""Tests for the exact cost evaluator (eqs. (7)-(9), Prop. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.costs import (
    cost_t1,
    cost_t2,
    cost_t3,
    method_cost,
    per_node_cost,
    total_cost,
)

degree_arrays = st.lists(st.integers(min_value=0, max_value=50),
                         min_size=1, max_size=40)


class TestBaseFormulas:
    def test_t1_manual(self):
        assert cost_t1([0, 1, 2, 3]) == 0 + 0 + 1 + 3

    def test_t2_manual(self):
        assert cost_t2([1, 2], [3, 4]) == 3 + 8

    def test_t3_manual(self):
        assert cost_t3([4]) == 6

    @given(degree_arrays)
    @settings(max_examples=50, deadline=None)
    def test_t1_matches_loop(self, xs):
        expected = sum(x * (x - 1) / 2 for x in xs)
        assert cost_t1(xs) == pytest.approx(expected)

    @given(degree_arrays, degree_arrays)
    @settings(max_examples=50, deadline=None)
    def test_t2_matches_loop(self, xs, ys):
        k = min(len(xs), len(ys))
        xs, ys = xs[:k], ys[:k]
        expected = sum(x * y for x, y in zip(xs, ys))
        assert cost_t2(xs, ys) == pytest.approx(expected)


class TestComposition:
    def test_e1_is_t1_plus_t2(self):
        xs = np.array([2, 3, 0, 5])
        ys = np.array([1, 0, 4, 2])
        assert total_cost("E1", xs, ys) == pytest.approx(
            cost_t1(xs) + cost_t2(xs, ys))

    def test_e4_is_t1_plus_t3(self):
        xs = np.array([2, 3, 0, 5])
        ys = np.array([1, 0, 4, 2])
        assert total_cost("E4", xs, ys) == pytest.approx(
            cost_t1(xs) + cost_t3(ys))

    def test_lei_costs(self):
        xs = np.array([2, 3])
        ys = np.array([1, 4])
        assert total_cost("L2", xs, ys) == pytest.approx(cost_t1(xs))
        assert total_cost("L1", xs, ys) == pytest.approx(cost_t2(xs, ys))
        assert total_cost("L4", xs, ys) == pytest.approx(cost_t3(ys))

    def test_per_node_divides_by_n(self):
        xs = np.array([2, 2, 2, 2])
        ys = np.array([1, 1, 1, 1])
        assert per_node_cost("T2", xs, ys) == pytest.approx(2.0)

    def test_empty(self):
        assert per_node_cost("T1", np.array([]), np.array([])) == 0.0


class TestOnOrientedGraph:
    def test_method_cost_agrees_with_listing(self, pareto_graph):
        from repro import DescendingDegree, list_triangles, orient
        oriented = orient(pareto_graph, DescendingDegree())
        for method in ("T1", "T2", "E1", "E4", "L3"):
            listed = list_triangles(oriented, method, collect=False)
            assert method_cost(oriented, method) == pytest.approx(
                listed.per_node_cost)
