"""Tests for the external-memory substrate (partitioning + OOC E1)."""

import numpy as np
import pytest

from repro import DescendingDegree, list_triangles, orient
from repro.external import LabelRangePartitioner, external_e1


class TestPartitioner:
    def test_boundaries_cover_everything(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        part = LabelRangePartitioner(oriented, 4)
        assert part.boundaries[0] == 0
        assert part.boundaries[-1] == oriented.n
        assert np.all(np.diff(part.boundaries) > 0)

    def test_partition_of(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        part = LabelRangePartitioner(oriented, 4)
        for label in range(0, oriented.n, 37):
            idx = part.partition_of(label)
            assert part.boundaries[idx] <= label < part.boundaries[idx + 1]
        with pytest.raises(IndexError):
            part.partition_of(oriented.n)

    def test_edge_balance(self, pareto_graph):
        """Ranges hold comparable out-edge mass, not node counts."""
        oriented = orient(pareto_graph, DescendingDegree())
        part = LabelRangePartitioner(oriented, 4)
        masses = [part.load(i).num_edges
                  for i in range(part.num_partitions)]
        assert sum(masses) == oriented.m
        assert max(masses) <= 2.5 * (oriented.m / len(masses)) + \
            oriented.out_degrees.max()

    def test_out_lists_match(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        part = LabelRangePartitioner(oriented, 3)
        block = part.load(1)
        for label in range(block.lo, min(block.hi, block.lo + 20)):
            np.testing.assert_array_equal(
                block.out_neighbors(label),
                oriented.out_neighbors(label))
        with pytest.raises(IndexError):
            block.out_neighbors(block.hi)

    def test_load_cache_and_evict(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        part = LabelRangePartitioner(oriented, 2)
        first = part.load(0)
        assert part.load(0) is first  # cached
        part.evict(0)
        assert part.load(0) is not first

    def test_validation(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        with pytest.raises(ValueError):
            LabelRangePartitioner(oriented, 0)
        with pytest.raises(ValueError):
            LabelRangePartitioner(oriented, oriented.n + 1)
        part = LabelRangePartitioner(oriented, 2)
        with pytest.raises(IndexError):
            part.load(99)


class TestExternalE1:
    @pytest.mark.parametrize("k", [1, 2, 3, 7])
    def test_matches_in_memory_e1(self, pareto_graph, k):
        oriented = orient(pareto_graph, DescendingDegree())
        reference = list_triangles(oriented, "E1")
        result, io = external_e1(oriented, k)
        assert result.count == reference.count
        assert result.triangle_set() == reference.triangle_set()
        assert result.ops == reference.ops

    def test_io_grows_with_k(self, pareto_graph):
        """More partitions => more re-loads: the O(k m) I/O law."""
        oriented = orient(pareto_graph, DescendingDegree())
        __, io2 = external_e1(oriented, 2, collect=False)
        __, io6 = external_e1(oriented, 6, collect=False)
        assert io6.bytes_read > io2.bytes_read

    def test_k1_loads_once(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        __, io = external_e1(oriented, 1, collect=False)
        assert io.loads == 1

    def test_load_pattern_triangular(self, pareto_graph):
        """Candidate c is loaded once per source s >= c."""
        oriented = orient(pareto_graph, DescendingDegree())
        result, io = external_e1(oriented, 4, collect=False)
        k = len(io.per_partition_loads)
        total_expected = k * (k + 1) // 2
        assert io.loads == total_expected

    def test_collect_false(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        result, __ = external_e1(oriented, 3, collect=False)
        assert result.triangles is None
        assert result.count == list_triangles(oriented, "E1").count
