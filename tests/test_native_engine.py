"""Compiled-kernel suite: equivalence, determinism, gating, fallback.

The contract of :mod:`repro.engine.native` v2, pinned three ways:

* **Equivalence** -- for every method x ordering the native listing
  path returns the same sorted triangle set, count, and closed-form
  ``ops`` as the pure-NumPy engine (itself pinned against the
  instrumented Python loops in ``test_engine_equivalence.py``).
* **Determinism** -- emitted buffers are *bit-identical* across thread
  counts (1, 2, 8) and across the two intersection variants
  (merge/bitmap), and streaming chunks concatenate to exactly the
  two-pass array.
* **Gating** -- ``REPRO_NATIVE=0``, a missing compiler, and a failed
  compile each degrade cleanly (cached per process, one structured
  warning for the failure case) while ``engine="native"`` raises
  instead of silently falling back.

Kernel tests skip where no C toolchain exists; the gating/fallback
tests run everywhere.
"""

import logging
import subprocess

import numpy as np
import pytest

from repro import (
    AscendingDegree,
    ComplementaryRoundRobin,
    DescendingDegree,
    DiscretePareto,
    RoundRobin,
    UniformRandom,
    generate_graph,
    orient,
)
from repro.distributions import root_truncation
from repro.distributions.sampling import sample_degree_sequence
from repro.engine import native, run_numpy
from repro.graphs.graph import Graph
from repro.listing.api import ALL_METHODS, list_triangles

ORDERINGS = {
    "ascending": AscendingDegree,
    "descending": DescendingDegree,
    "uniform": UniformRandom,
    "rr": RoundRobin,
    "crr": ComplementaryRoundRobin,
}

needs_native = pytest.mark.skipif(
    not native.available(), reason="no C toolchain in this environment")


@pytest.fixture(scope="module")
def pareto_graph():
    n = 500
    rng = np.random.default_rng(17)
    dist = DiscretePareto(1.7, 21.0).truncate(root_truncation(n))
    return generate_graph(sample_degree_sequence(dist, n, rng), rng)


@pytest.fixture(scope="module", params=sorted(ORDERINGS))
def oriented(request, pareto_graph):
    return orient(pareto_graph, ORDERINGS[request.param](),
                  rng=np.random.default_rng(23))


@needs_native
class TestMethodOrderingEquivalence:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_matches_numpy_engine(self, oriented, method):
        """Sorted triangles, count, and ops agree for every cell."""
        ref = run_numpy(oriented, method, collect=True,
                        use_native=False)
        nat = run_numpy(oriented, method, collect=True, use_native=True)
        assert nat.extra["native"] is True
        assert nat.count == ref.count
        assert nat.ops == ref.ops
        assert nat.hash_inserts == ref.hash_inserts
        assert sorted(nat.triangles) == sorted(ref.triangles)

    def test_count_matches_listing(self, oriented):
        count = native.count_triangles(oriented)
        arr = native.list_triangles_array(oriented)
        assert count == arr.shape[0]
        assert (arr[:, 0] < arr[:, 1]).all()
        assert (arr[:, 1] < arr[:, 2]).all()


@needs_native
class TestDeterminism:
    def test_thread_count_invariance(self, oriented):
        """1, 2, and 8 threads produce bit-identical buffers/stats."""
        runs = {}
        for threads in (1, 2, 8):
            arr = native.list_triangles_array(oriented, threads=threads)
            stats = native.last_stats()
            assert stats["threads"] == min(threads, stats["blocks"])
            runs[threads] = (arr, stats["ops"], stats["triangles"])
        base = runs[1]
        for threads in (2, 8):
            arr, ops, triangles = runs[threads]
            assert np.array_equal(arr, base[0])
            assert arr.tobytes() == base[0].tobytes()
            assert (ops, triangles) == (base[1], base[2])

    def test_count_thread_invariance(self, oriented):
        counts = {t: native.count_triangles(oriented, threads=t)
                  for t in (1, 2, 8)}
        assert len(set(counts.values())) == 1

    def test_kind_invariance(self, oriented):
        """merge and bitmap emit the exact same byte sequence."""
        merge = native.list_triangles_array(oriented, kind="merge")
        bitmap = native.list_triangles_array(oriented, kind="bitmap")
        assert merge.tobytes() == bitmap.tobytes()

    def test_per_thread_ops_partition_total(self, oriented):
        native.count_triangles(oriented, threads=4)
        stats = native.last_stats()
        assert len(stats["ops_per_thread"]) == stats["threads"]
        assert sum(stats["ops_per_thread"]) == stats["ops"]


@needs_native
class TestStreaming:
    def test_chunks_concatenate_to_full_array(self, oriented):
        full = native.list_triangles_array(oriented)
        chunks = list(native.stream_triangles(oriented,
                                              chunk_triangles=64))
        assert len(chunks) > 1  # the cap actually forced spill-back
        assert all(c.dtype == np.uint32 for c in chunks)
        streamed = np.concatenate(chunks, axis=0)
        assert np.array_equal(streamed, full)
        assert native.last_stats()["triangles"] == full.shape[0]

    @pytest.mark.parametrize("kind", native.KERNEL_KINDS)
    def test_both_kinds_stream_identically(self, oriented, kind):
        full = native.list_triangles_array(oriented)
        chunks = list(native.stream_triangles(
            oriented, chunk_triangles=128, kind=kind))
        assert np.array_equal(np.concatenate(chunks, axis=0), full)


@needs_native
class TestDegenerateGraphs:
    def test_empty_graph(self):
        g = orient(Graph(5, []), DescendingDegree())
        assert native.count_triangles(g) == 0
        assert native.list_triangles_array(g).shape == (0, 3)

    def test_star_has_no_triangles(self):
        g = orient(Graph(6, [(0, i) for i in range(1, 6)]),
                   DescendingDegree())
        assert native.count_triangles(g) == 0

    def test_clique(self):
        edges = [(i, j) for i in range(6) for j in range(i + 1, 6)]
        g = orient(Graph(6, edges), DescendingDegree())
        assert native.count_triangles(g) == 20  # C(6,3)
        arr = native.list_triangles_array(g)
        assert sorted(map(tuple, arr.tolist())) == sorted(
            (x, y, z) for x in range(6) for y in range(x + 1, 6)
            for z in range(y + 1, 6))

    def test_self_test(self):
        assert native.self_test()


class TestKnobs:
    def test_resolve_threads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "8")
        assert native.resolve_threads() == 8
        assert native.resolve_threads(2) == 2  # explicit wins
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "junk")
        assert native.resolve_threads() >= 1

    @needs_native
    def test_resolve_kind_env(self, oriented, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_KERNEL", "merge")
        assert native.resolve_kind(oriented) == "merge"
        assert native.resolve_kind(oriented, "bitmap") == "bitmap"
        with pytest.raises(ValueError, match="kernel"):
            native.resolve_kind(oriented, "simd")


@pytest.fixture
def fresh_native(monkeypatch):
    """Reset the module-level resolution cache (restored afterwards)."""
    monkeypatch.setattr(native, "_lib", native._UNSET)
    monkeypatch.setattr(native, "_status",
                        {"state": "unresolved", "reason": None,
                         "compiler": None})


class TestGatingAndFallback:
    def test_repro_native_zero_gates(self, fresh_native, monkeypatch,
                                     pareto_graph):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        assert not native.available()
        assert native.status()["state"] == "gated"
        g = orient(pareto_graph, DescendingDegree())
        assert native.count_triangles(g) is None
        assert native.list_triangles_array(g) is None
        assert native.stream_triangles(g) is None
        # auto + collect silently keeps the python reference engine
        result = list_triangles(g, "T1", collect=True)
        assert result.extra.get("engine") is None

    def test_missing_compiler_degrades(self, fresh_native, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        monkeypatch.setattr(native.shutil, "which", lambda name: None)
        assert not native.available()
        assert native.status()["state"] == "no-compiler"

    def test_failed_compile_cached_and_warned_once(
            self, fresh_native, monkeypatch, caplog):
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        calls = []

        def fake_run(cmd, **kwargs):
            calls.append(cmd)
            raise subprocess.CalledProcessError(
                1, cmd, stderr=b"kernel.c:1: error: boom")

        monkeypatch.setattr(native.subprocess, "run", fake_run)
        with caplog.at_level(logging.DEBUG, logger=native.__name__):
            assert not native.available()
            assert not native.available()  # cached: no second compile
        assert len(calls) == 1
        status = native.status()
        assert status["state"] == "compile-failed"
        assert "boom" in status["reason"]
        warnings = [r for r in caplog.records
                    if r.levelno == logging.WARNING]
        assert len(warnings) == 1

    def test_native_engine_raises_when_unavailable(
            self, monkeypatch, pareto_graph):
        monkeypatch.setattr(native, "_lib", None)
        g = orient(pareto_graph, DescendingDegree())
        with pytest.raises(RuntimeError, match="native engine"):
            list_triangles(g, "T1", collect=True, engine="native")
        with pytest.raises(RuntimeError, match="native engine"):
            list_triangles(g, "T1", collect=False, engine="native")

    def test_numpy_engine_falls_back_silently(self, monkeypatch,
                                              pareto_graph):
        monkeypatch.setattr(native, "_lib", None)
        g = orient(pareto_graph, DescendingDegree())
        result = list_triangles(g, "T1", collect=True, engine="numpy")
        assert result.extra["native"] is False
        ref = list_triangles(g, "T1", collect=True, engine="python")
        assert set(result.triangles) == set(ref.triangles)


@needs_native
class TestNativeEngineValue:
    def test_native_engine_runs(self, oriented):
        result = list_triangles(oriented, "E4", collect=True,
                                engine="native")
        assert result.extra["native"] is True
        assert result.extra["native_kernel"] in native.KERNEL_KINDS
        ref = list_triangles(oriented, "E4", collect=True,
                             engine="python")
        assert sorted(result.triangles) == sorted(ref.triangles)
        assert result.ops == ref.ops
