"""The cost-model query planner: golden picks, routing, and regret."""

import math

import numpy as np
import pytest

from repro import DiscretePareto
from repro.core.crossover import crossover_alpha, limit_cost_ratio
from repro.core.decision import (
    PAPER_SPEED_RATIO,
    SPEED_RATIO_ENV,
    decide_in_limit,
    decide_on_graph,
    resolve_speed_ratio,
)
from repro.engine.benchmark import measure_speed_ratio
from repro.listing.api import list_triangles
from repro.orientations.permutations import DescendingDegree
from repro.orientations.relabel import orient
from repro.pipeline import run_pipeline
from repro.planner import (
    Candidate,
    choose_method,
    plan_for_degrees,
    plan_for_graph,
    plan_in_limit,
    run_regret_suite,
    regret_summary,
)
from repro.planner.regret import default_suite


class TestGoldenLimitPicks:
    def test_never_sei_inside_the_provable_window(self):
        """Section 6.3: for alpha in (4/3, 3/2] every SEI limit is
        infinite while T1's is finite, so the planner must refuse SEI
        no matter how large the hardware speed ratio is."""
        for alpha in (1.40, 1.45):
            plan = plan_in_limit(DiscretePareto(alpha, 10.0),
                                 speed_ratio=1e9)
            assert plan.best.family != "sei", (alpha, plan.best)
            assert plan.best.method == "T1"
            assert math.isinf(
                plan.entry("E1", "descending").predicted_time)

    def test_sei_wins_for_light_tails_on_paper_hardware(self):
        """Above the crossover the single-digit cost ratio hands SEI
        the win under the paper's 94.8x speed ratio."""
        plan = plan_in_limit(DiscretePareto(2.5, 45.0),
                             speed_ratio="paper")
        assert plan.best.is_sei

    def test_agrees_with_decide_in_limit(self):
        """The argmin over {T1, E1} IS the section 2.4 rule."""
        for alpha in (1.4, 1.8, 2.5):
            dist = DiscretePareto(alpha, 30.0 * (alpha - 1.0))
            for ratio in (1.0, 5.0, PAPER_SPEED_RATIO):
                plan = plan_in_limit(dist, methods=("T1", "E1"),
                                     orderings=("descending",),
                                     speed_ratio=ratio)
                decision = decide_in_limit(dist, ratio)
                assert plan.best.is_sei == decision.sei_wins, (
                    alpha, ratio, plan.best, decision)

    def test_crossover_alpha_consistency(self):
        """Picks flip exactly where core.crossover places the boundary
        for a derived speed ratio."""
        ratio = limit_cost_ratio(1.8)
        assert math.isfinite(ratio) and ratio > 1.0
        a_star = crossover_alpha(speed_ratio=ratio, tol=0.02)
        assert a_star == pytest.approx(1.8, abs=0.05)
        for alpha, expect_sei in ((a_star + 0.2, True),
                                  (a_star - 0.2, False)):
            plan = plan_in_limit(
                DiscretePareto(alpha, 30.0 * (alpha - 1.0)),
                methods=("T1", "E1"), orderings=("descending",),
                speed_ratio=ratio)
            assert plan.best.is_sei == expect_sei, (alpha, plan.best)


class TestPlanStructure:
    def test_entries_sorted_and_ranked(self, pareto_graph):
        plan = plan_for_graph(pareto_graph)
        times = [e.predicted_time for e in plan.entries]
        assert times == sorted(times)
        assert [e.rank for e in plan.entries] == list(
            range(1, len(plan.entries) + 1))
        assert plan.best is plan.entries[0]
        assert 0.0 <= plan.confidence <= 1.0

    def test_argmin_stable_under_candidate_reordering(self,
                                                      pareto_graph):
        methods = ("T1", "T2", "E1", "E4", "L1", "L3")
        forward = plan_for_graph(pareto_graph, methods=methods)
        backward = plan_for_graph(pareto_graph,
                                  methods=tuple(reversed(methods)))
        assert [e.key for e in forward.entries] == \
            [e.key for e in backward.entries]

    def test_entry_lookup(self, pareto_graph):
        plan = plan_for_graph(pareto_graph)
        entry = plan.entry("e1", "descending")
        assert entry.method == "E1" and entry.family == "sei"
        with pytest.raises(KeyError):
            plan.entry("T1", "uniform")

    def test_degenerate_rejected_by_model_backend(self, pareto_graph):
        with pytest.raises(ValueError, match="degenerate"):
            plan_for_degrees(pareto_graph.degrees, n=pareto_graph.n,
                             orderings=("descending", "degenerate"))

    def test_opt_candidate_shares_named_optimum(self, pareto_graph):
        """Algorithm 1's OPT construction can never beat the model's
        optimal named map (Corollaries 1-2), so at the model level the
        two candidates price identically."""
        plan = plan_for_degrees(pareto_graph.degrees,
                                n=pareto_graph.n, methods=("T1",))
        assert plan.entry("T1", "opt").predicted_cost == \
            pytest.approx(
                plan.entry("T1", "descending").predicted_cost)


class TestAutoRouting:
    def test_choose_method_agrees_with_decision_rule(self,
                                                     pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        for ratio in (1.0, 5.0, PAPER_SPEED_RATIO):
            plan = choose_method(
                oriented, methods=("T1", "T2", "T3", "E1", "E4"),
                speed_ratio=ratio)
            decision = decide_on_graph(oriented, ratio)
            assert plan.best.is_sei == decision.sei_wins, (
                ratio, plan.best, decision)

    def test_list_triangles_auto(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        result = list_triangles(oriented, method="auto")
        picked = result.extra["auto_method"]
        assert picked == choose_method(oriented).best.method
        assert 0.0 <= result.extra["auto_confidence"] <= 1.0
        explicit = list_triangles(oriented, method=picked)
        assert result.count == explicit.count
        assert result.ops == explicit.ops

    def test_pipeline_auto(self, pareto_graph):
        report = run_pipeline(pareto_graph, method="auto")
        reference = run_pipeline(pareto_graph, method="T1")
        assert report.count == reference.count
        assert report.order in ("ascending", "descending", "rr",
                                "crr", "opt", "degenerate")

    def test_pipeline_auto_respects_order_constraint(self,
                                                     pareto_graph):
        report = run_pipeline(pareto_graph, method="auto",
                              order="ascending")
        assert report.order == "ascending"
        assert report.count == run_pipeline(pareto_graph,
                                            method="T1").count


class TestSpeedRatioOverride:
    def test_default_is_paper(self, monkeypatch):
        monkeypatch.delenv(SPEED_RATIO_ENV, raising=False)
        assert resolve_speed_ratio() == PAPER_SPEED_RATIO
        assert resolve_speed_ratio("paper") == PAPER_SPEED_RATIO

    def test_env_override_threads_into_decision(self, monkeypatch,
                                                pareto_graph):
        monkeypatch.setenv(SPEED_RATIO_ENV, "7.5")
        assert resolve_speed_ratio() == 7.5
        oriented = orient(pareto_graph, DescendingDegree())
        assert decide_on_graph(oriented).speed_ratio == 7.5
        assert plan_for_graph(pareto_graph).speed_ratio == 7.5

    def test_explicit_value_beats_env(self, monkeypatch):
        monkeypatch.setenv(SPEED_RATIO_ENV, "7.5")
        assert resolve_speed_ratio(3.0) == 3.0
        assert resolve_speed_ratio("12") == 12.0

    def test_invalid_values_rejected(self):
        for bad in (-1.0, 0.0, math.inf, math.nan, "nonsense"):
            with pytest.raises(ValueError):
                resolve_speed_ratio(bad)

    def test_measured_ratio_is_positive(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        ratio = measure_speed_ratio(oriented, repeats=1)
        assert math.isfinite(ratio) and ratio > 0.0

    def test_calibrated_resolution_is_cached(self, monkeypatch):
        from repro.engine import benchmark as bench_mod
        calls = []
        bench_mod.calibrated_speed_ratio.cache_clear()
        monkeypatch.setattr(
            bench_mod, "measure_speed_ratio",
            lambda *a, **k: calls.append(1) or 2.5)
        assert resolve_speed_ratio("calibrated") == 2.5
        assert resolve_speed_ratio("calibrated") == 2.5
        assert len(calls) == 1
        bench_mod.calibrated_speed_ratio.cache_clear()


class TestRegretHarness:
    def test_small_suite(self):
        rows = run_regret_suite(default_suite(n=100), seed=7)
        assert len(rows) == len(default_suite(n=100))
        by_label = {r["label"]: r for r in rows}
        for row in rows:
            # the planner only sees the degree law: its pick can never
            # be the structure-dependent degenerate ordering
            assert "degenerate" not in row["planner"]
            assert row["regret"] >= 0.0
            assert row["oracle_time"] <= row["planner_time"] or \
                math.isinf(row["regret"])
        # zero-cost edge cases must not produce spurious regret
        assert by_label["star"]["regret"] == 0.0
        assert by_label["complete"]["regret"] == 0.0
        summary = regret_summary(rows)
        assert summary["cases"] == len(rows)
        assert summary["median_regret"] <= 0.10
        assert 0.0 <= summary["agreement"] <= 1.0

    def test_oracle_can_use_degenerate(self):
        """The oracle's candidate set strictly contains the planner's:
        it may exploit the smallest-last orientation."""
        suite = default_suite(n=100)
        oracle_keys = set()
        rng = np.random.default_rng(3)
        for case in suite:
            graph = case.make(rng)
            oracle_keys.update(
                e.ordering for e in plan_for_graph(graph).entries)
        assert "degenerate" in oracle_keys

    def test_wall_mode_smoke(self):
        rows = run_regret_suite([default_suite(n=60)[2]], seed=5,
                                methods=("T1", "E1"),
                                oracle_mode="wall")
        assert len(rows) == 1
        assert rows[0]["planner_time"] > 0.0

    def test_rejects_unknown_oracle_mode(self):
        from repro.planner import evaluate_case
        with pytest.raises(ValueError, match="oracle_mode"):
            evaluate_case(default_suite(n=60)[0],
                          np.random.default_rng(0),
                          oracle_mode="psychic")


class TestCandidateTable:
    def test_candidate_validation(self):
        with pytest.raises(ValueError):
            Candidate("T9", "descending")
        with pytest.raises(ValueError):
            Candidate("T1", "sideways")
        with pytest.raises(ValueError):
            Candidate("T1", "degenerate").limit_map()

    def test_opt_orientation_shared_by_h_class(self):
        """T1, T4, L2, L6 share h(x) = x(x-1)/2, hence one OPT
        orientation; T2's h differs."""
        keys = {Candidate(m, "opt").orientation_key()
                for m in ("T1", "T4", "L2", "L6")}
        assert len(keys) == 1
        assert Candidate("T2", "opt").orientation_key() not in keys
