"""End-to-end Algorithm 1: OPT permutations on real generated graphs.

Theorem 3 is verified analytically in ``test_optimality``; this module
closes the loop on graphs: orienting by ``OptPermutation(h_M)`` and
*measuring* the cost never loses to any of the named permutations, for
every fundamental method.
"""

import numpy as np
import pytest

from repro import (
    AscendingDegree,
    ComplementaryRoundRobin,
    DescendingDegree,
    DiscretePareto,
    OptPermutation,
    RoundRobin,
    generate_graph,
    orient,
    sample_degree_sequence,
)
from repro.core.costs import method_cost
from repro.core.methods import METHODS
from repro.distributions import root_truncation

NAMED = [AscendingDegree(), DescendingDegree(), RoundRobin(),
         ComplementaryRoundRobin()]


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(61)
    n = 3000
    dist = DiscretePareto(1.7, 21.0).truncate(root_truncation(n))
    degrees = sample_degree_sequence(dist, n, rng)
    return generate_graph(degrees, rng)


class TestOptOnGraphs:
    @pytest.mark.parametrize("method", ["T1", "T2", "E1", "E4"])
    def test_opt_never_loses_to_named_permutations(self, graph, method):
        opt_oriented = orient(graph, OptPermutation(METHODS[method].h))
        opt_cost = method_cost(opt_oriented, method)
        for perm in NAMED:
            other = method_cost(orient(graph, perm), method)
            # OPT minimizes the *expected* cost; on one realization we
            # allow a sliver of sampling slack
            assert opt_cost <= other * 1.02, (method, perm.name)

    @pytest.mark.parametrize("method,twin", [
        ("T1", DescendingDegree()),
        ("T2", RoundRobin()),
        ("E1", DescendingDegree()),
        ("E4", ComplementaryRoundRobin()),
    ])
    def test_opt_essentially_equals_its_named_twin(self, graph, method,
                                                   twin):
        """For the quadratic h family, Algorithm 1 lands on (a tie-
        equivalent of) the Corollary 1-2 permutation."""
        opt_cost = method_cost(
            orient(graph, OptPermutation(METHODS[method].h)), method)
        twin_cost = method_cost(orient(graph, twin), method)
        assert opt_cost == pytest.approx(twin_cost, rel=0.02)

    def test_worst_construction_on_graph(self, graph):
        """Corollary 3 measured: complementing the optimal order gives
        the costliest of the four named permutations for T1."""
        from repro import complement_permutation
        worst = complement_permutation(DescendingDegree())
        worst_cost = method_cost(orient(graph, worst), "T1")
        for perm in NAMED:
            other = method_cost(orient(graph, perm), "T1")
            assert worst_cost >= other * 0.98
