"""Tests for the memory observability layer (`repro.obs.memory`).

Covers the array ledger (check-in/out accounting, tag/span
attribution, weakref auto-release), the footprint conformance model
against real pipeline allocations, the `REPRO_*` env knobs, the
RAM-budget watchdog (pressure/breach events, graceful abort), the
per-span allocation attribution hook, the resource-sampler edge
cases, and the disabled-is-bit-identical guarantee.
"""

import gc
import json

import numpy as np
import pytest

from repro import DescendingDegree, DiscretePareto, obs
from repro.distributions import root_truncation
from repro.distributions.sampling import sample_degree_sequence
from repro.experiments.harness import SimulationSpec, sweep_n
from repro.graphs.generators import generate_graph
from repro.obs import bus, live, memory, metrics
from repro.orientations.relabel import orient


@pytest.fixture(autouse=True)
def clean_memory():
    """Every test starts and ends with the whole obs stack off."""
    live.disable()
    bus.reset()
    obs.disable()
    obs.reset()
    memory.disable()
    memory.reset()
    yield
    live.disable()
    bus.reset()
    obs.disable()
    obs.reset()
    memory.disable()
    memory.reset()


def _oriented(n=2000, seed=3):
    rng = np.random.default_rng(seed)
    dist = DiscretePareto(1.7, 21.0).truncate(root_truncation(n))
    degrees = sample_degree_sequence(dist, n, rng)
    graph = generate_graph(degrees, rng)
    return orient(graph, DescendingDegree(), rng=rng)


class TestLedger:
    def test_disabled_checkin_is_none(self):
        assert memory.check_in("x", nbytes=100) is None
        assert memory.track(object(), "x", [np.zeros(4)]) == ()
        assert memory.attributed_bytes() == 0
        assert memory.ledger_rows() == []

    def test_checkin_checkout_accounting(self):
        memory.enable()
        a = np.zeros(1000, dtype=np.int64)
        token = memory.check_in("test.a", a)
        assert memory.attributed_bytes() == 8000
        assert memory.peak_bytes() == 8000
        (row,) = memory.ledger_rows()
        assert row["tag"] == "test.a"
        assert row["live_bytes"] == 8000
        assert row["dtypes"] == "int64"
        memory.check_out(token)
        assert memory.attributed_bytes() == 0
        (row,) = memory.ledger_rows()
        assert row["live_bytes"] == 0
        assert row["peak_bytes"] == 8000
        assert row["checkouts"] == 1

    def test_checkout_none_and_unknown_are_noops(self):
        memory.enable()
        memory.check_out(None)
        memory.check_out(12345)
        assert memory.attributed_bytes() == 0

    def test_nbytes_and_bytes_like(self):
        memory.enable()
        memory.check_in("raw", nbytes=512, dtype="blob")
        memory.check_in("buf", b"abcd")
        rows = {r["tag"]: r for r in memory.ledger_rows()}
        assert rows["raw"]["live_bytes"] == 512
        assert rows["buf"]["live_bytes"] == 4
        assert rows["buf"]["dtypes"] == "bytes"

    def test_unsizable_object_raises(self):
        memory.enable()
        with pytest.raises(TypeError):
            memory.check_in("bad", object())

    def test_track_releases_on_gc(self):
        memory.enable()

        class Owner:
            pass

        owner = Owner()
        tokens = memory.track(owner, "tracked",
                              [np.zeros(10, dtype=np.int64),
                               np.zeros(5, dtype=np.int64)])
        assert len(tokens) == 2
        assert memory.attributed_bytes() == 120
        del owner
        gc.collect()
        assert memory.attributed_bytes() == 0
        assert memory.peak_bytes() == 120

    def test_span_attribution(self):
        memory.enable()
        obs.enable()
        with obs.span("phase-x"):
            memory.check_in("inner", nbytes=64)
        summary = memory.ledger_summary()
        assert summary["spans"]["phase-x"]["peak_bytes"] == 64

    def test_metrics_gauges_published(self):
        memory.enable()
        metrics.enable()
        token = memory.check_in("g", nbytes=100)
        snap = metrics.snapshot()
        assert snap["gauges"]["mem.attributed_bytes"] == 100.0
        assert snap["counters"]["mem.ledger.checkins"] == 1
        memory.check_out(token)
        snap = metrics.snapshot()
        assert snap["gauges"]["mem.attributed_bytes"] == 0.0
        assert snap["gauges"]["mem.attributed_peak_bytes"] == 100.0

    def test_env_knob_resolved_lazily(self, monkeypatch):
        monkeypatch.setenv(memory.MEM_LEDGER_ENV, "1")
        monkeypatch.setattr(memory, "_enabled", None)
        assert memory.is_enabled()
        monkeypatch.setenv(memory.MEM_LEDGER_ENV, "0")
        monkeypatch.setattr(memory, "_enabled", None)
        assert not memory.is_enabled()

    def test_summary_is_json_serializable(self):
        memory.enable()
        memory.check_in("j", np.zeros(3, dtype=np.float64))
        json.dumps(memory.ledger_summary())


class TestFootprintConformance:
    def test_bloom_constant_pinned_to_kernels(self):
        from repro.engine import kernels
        assert memory.BLOOM_BYTES == kernels._BLOOM_BYTES

    def test_predict_python_engine_graph_only(self):
        pred = memory.predict_footprint(100, 400, engine="python")
        assert set(pred["components"]) == {"graph.csr", "graph.degrees"}
        assert pred["components"]["graph.csr"] == 8 * (800 + 202)
        assert pred["components"]["graph.degrees"] == 24 * 100

    def test_predict_in_keys_only_for_in_window_methods(self):
        base = memory.predict_footprint(100, 400, method="E1")
        inkey = memory.predict_footprint(100, 400, method="E4")
        assert (inkey["components"]["graph.keys"]
                - base["components"]["graph.keys"]) == 8 * 400

    @pytest.mark.parametrize("method", ["E1", "E4", "L6"])
    def test_pipeline_matches_prediction(self, method):
        from repro.engine import run_method_kernel
        memory.enable()
        oriented = _oriented()
        run_method_kernel(oriented, method)
        report = memory.conformance_report(oriented.n, oriented.m,
                                           method=method)
        assert report["verdict"] == "pass", report
        for row in report["components"]:
            assert row["within"], row

    def test_missing_tag_fails_not_passes(self):
        # an unobserved predicted component is a conformance failure
        report = memory.conformance_report(2000, 10000, method="E1",
                                           rows=[])
        assert report["verdict"] == "fail"
        assert all(r["actual_bytes"] == 0 for r in report["components"])

    def test_unmodeled_tags_listed_but_never_gate(self):
        memory.enable()
        oriented = _oriented()
        from repro.engine import run_method_kernel
        run_method_kernel(oriented, "E1")
        memory.check_in("custom.scratch", nbytes=123)
        report = memory.conformance_report(oriented.n, oriented.m,
                                           method="E1")
        assert report["verdict"] == "pass"
        assert {u["tag"] for u in report["unmodeled"]} == \
            {"custom.scratch"}

    def test_formatters_render(self):
        memory.enable()
        memory.check_in("fmt", nbytes=2048, dtype="int64")
        assert "fmt" in memory.format_ledger(memory.ledger_rows())
        report = memory.conformance_report(10, 20, method="E1")
        text = memory.format_conformance(report)
        assert "footprint conformance" in text
        summary_text = memory.format_summary(memory.ledger_summary(),
                                             report)
        assert "attributed" in summary_text
        assert memory.format_ledger([]).startswith("ledger empty")


class TestParseBytes:
    @pytest.mark.parametrize("text,expected", [
        ("", 0), ("0", 0), ("off", 0), ("garbage", 0),
        ("1048576", 1048576), ("512", 512),
        ("1k", 1024), ("512M", 512 * 1024 ** 2),
        ("2g", 2 * 1024 ** 3), ("1T", 1024 ** 4),
        ("512mb", 512 * 1024 ** 2), ("512MiB", 512 * 1024 ** 2),
        ("1.5k", 1536), ("100b", 100),
    ])
    def test_cases(self, text, expected):
        assert memory.parse_bytes(text) == expected

    def test_budget_from_env(self, monkeypatch):
        monkeypatch.setenv(memory.MEM_BUDGET_ENV, "4M")
        assert memory.budget_bytes_from_env() == 4 * 1024 ** 2
        monkeypatch.delenv(memory.MEM_BUDGET_ENV)
        assert memory.budget_bytes_from_env() == 0


class TestBudgetWatchdog:
    def test_disarmed_observe_is_noop(self):
        sink = bus.MemorySink()
        bus.add_sink(sink)
        bus.enable()
        dog = memory.BudgetWatchdog(budget_bytes=0)
        assert not dog.armed
        dog.observe(10 ** 9)
        assert sink.events == []

    def test_pressure_and_breach_events_validate(self):
        sink = bus.MemorySink()
        bus.add_sink(sink)
        bus.enable()
        metrics.enable()
        dog = memory.BudgetWatchdog(budget_bytes=1000)
        dog.observe(500)
        dog.observe(1500)  # breach
        dog.observe(1600)  # still breached: no second breach event
        pressures = sink.of_type("mem.pressure")
        breaches = sink.of_type("mem.breach")
        assert len(pressures) == 3
        assert len(breaches) == 1
        assert breaches[0]["overshoot_bytes"] == 500
        assert breaches[0]["action"] == "warn"
        count, errors = bus.validate_events(sink.events)
        assert errors == []
        snap = metrics.snapshot()
        assert snap["counters"]["mem.breaches"] == 1
        assert snap["gauges"]["mem.pressure"] == 1.6

    def test_breach_latch_rearms_below_95pct(self):
        sink = bus.MemorySink()
        bus.add_sink(sink)
        bus.enable()
        dog = memory.BudgetWatchdog(budget_bytes=1000)
        dog.observe(1500)
        dog.observe(980)   # under budget but above 95%: still latched
        dog.observe(1500)
        assert len(sink.of_type("mem.breach")) == 1
        dog.observe(900)   # re-arms
        dog.observe(1500)
        assert len(sink.of_type("mem.breach")) == 2

    def test_abort_flag_and_check_budget(self, monkeypatch):
        monkeypatch.setenv(memory.MEM_BUDGET_ABORT_ENV, "1")
        sink = bus.MemorySink()
        bus.add_sink(sink)
        bus.enable()
        dog = memory.BudgetWatchdog(budget_bytes=1000)
        dog.observe(2000)
        assert sink.of_type("mem.breach")[0]["action"] == "abort"
        assert memory.abort_requested()
        with pytest.raises(memory.MemoryBudgetExceeded) as err:
            memory.check_budget("unit test")
        assert "unit test" in str(err.value)
        memory.clear_abort()
        memory.check_budget("unit test")  # no longer raises

    def test_pressure_carries_attributed_bytes_when_ledger_on(self):
        memory.enable()
        memory.check_in("p", nbytes=64)
        sink = bus.MemorySink()
        bus.add_sink(sink)
        bus.enable()
        memory.BudgetWatchdog(budget_bytes=1000).observe(100)
        (event,) = sink.of_type("mem.pressure")
        assert event["attributed_bytes"] == 64
        assert bus.validate_event(event) == []

    def test_engine_chunk_loop_aborts_gracefully(self):
        from repro.engine import run_method_kernel
        oriented = _oriented(n=500)
        memory.request_abort("test budget")
        with pytest.raises(memory.MemoryBudgetExceeded):
            run_method_kernel(oriented, "E1")

    def test_ooc_loop_aborts_gracefully(self):
        from repro.external.ooc_listing import external_e1
        oriented = _oriented(n=300)
        memory.request_abort("test budget")
        with pytest.raises(memory.MemoryBudgetExceeded):
            external_e1(oriented, 3, collect=False)


class TestResourceSampler:
    def test_empty_ring_summary_is_none(self):
        sampler = live.ResourceSampler(interval_s=10.0)
        assert sampler.summary() is None
        assert sampler.series() == []

    def test_summary_after_future_since_ts_is_none(self):
        sampler = live.ResourceSampler(interval_s=10.0)
        sampler.sample_once()
        assert sampler.summary(since_ts=float("inf")) is None

    def test_sample_has_honest_peak_field(self):
        sample = live.sample_resources()
        assert isinstance(sample["rss_bytes"], int)
        assert isinstance(sample["rss_peak_bytes"], int)
        assert sample["rss_bytes"] > 0
        assert sample["rss_peak_bytes"] >= sample["rss_bytes"] > 0

    def test_sample_event_validates_with_peak(self):
        sink = bus.MemorySink()
        bus.add_sink(sink)
        bus.enable()
        live.ResourceSampler(interval_s=10.0).sample_once()
        (event,) = sink.of_type("resource.sample")
        assert event["rss_peak_bytes"] >= event["rss_bytes"]
        assert bus.validate_event(event) == []

    def test_old_sample_without_peak_still_validates(self):
        event = {"type": "resource.sample", "ts": 1.0, "pid": 1,
                 "rss_bytes": 1024, "cpu_user_s": 0.1,
                 "cpu_system_s": 0.1, "gc_collections": 1,
                 "gc_objects": 10, "threads": 1}
        assert bus.validate_event(event) == []

    def test_sampler_arms_watchdog_from_budget(self):
        sink = bus.MemorySink()
        bus.add_sink(sink)
        bus.enable()
        sampler = live.ResourceSampler(interval_s=10.0,
                                       budget_bytes=1)  # 1 byte: breach
        assert sampler.watchdog.armed
        sampler.sample_once()
        assert sink.of_type("mem.pressure")
        assert sink.of_type("mem.breach")
        count, errors = bus.validate_events(sink.events)
        assert errors == []

    def test_sampler_disarmed_by_default(self, monkeypatch):
        monkeypatch.delenv(memory.MEM_BUDGET_ENV, raising=False)
        sampler = live.ResourceSampler(interval_s=10.0)
        assert not sampler.watchdog.armed


class TestLiveSurface:
    def test_state_folds_memory_events(self):
        state = live.LiveState()
        state.update({"type": "mem.pressure", "ts": 1.0, "pid": 1,
                      "rss_bytes": 800, "budget_bytes": 1000,
                      "frac": 0.8})
        state.update({"type": "mem.breach", "ts": 2.0, "pid": 1,
                      "rss_bytes": 1200, "budget_bytes": 1000,
                      "overshoot_bytes": 200, "action": "warn"})
        assert state.breaches == 1
        gauges = state.to_gauges()
        assert gauges["mem.budget_bytes"] == 1000.0
        assert gauges["mem.breaches"] == 1.0
        text = live.render_status(state)
        assert "memory" in text
        assert "BREACHED" in text

    def test_state_to_dict_roundtrips_json(self):
        state = live.LiveState()
        state.update({"type": "mem.pressure", "ts": 1.0, "pid": 1,
                      "rss_bytes": 800, "budget_bytes": 1000,
                      "frac": 0.8})
        data = json.loads(json.dumps(state.to_dict()))
        assert data["memory"]["rss_bytes"] == 800
        assert data["events"] == 1
        assert "gauges" in data


class TestAllocAttribution:
    def test_env_knob(self, monkeypatch):
        monkeypatch.delenv(memory.TRACEMALLOC_ENV, raising=False)
        assert memory.tracemalloc_top_k_from_env() == 0
        monkeypatch.setenv(memory.TRACEMALLOC_ENV, "1")
        assert memory.tracemalloc_top_k_from_env() == \
            memory.DEFAULT_ALLOC_TOP_K
        monkeypatch.setenv(memory.TRACEMALLOC_ENV, "7")
        assert memory.tracemalloc_top_k_from_env() == 7
        monkeypatch.setenv(memory.TRACEMALLOC_ENV, "bogus")
        assert memory.tracemalloc_top_k_from_env() == 0

    def test_span_carries_top_allocations(self):
        obs.spans.enable(alloc=5)
        with obs.span("alloc-test"):
            _ = np.zeros(200_000, dtype=np.int64)  # ~1.6 MB
        (root,) = obs.spans.pop_finished()
        assert root.alloc, "no allocation sites attached"
        top = root.alloc[0]
        assert set(top) == {"file", "line", "size_bytes", "count"}
        assert top["size_bytes"] > 10_000
        data = root.to_dict()
        assert data["alloc"] == root.alloc
        back = obs.spans.Span.from_dict(data)
        assert back.alloc == root.alloc

    def test_alloc_off_by_default(self, monkeypatch):
        monkeypatch.delenv(memory.TRACEMALLOC_ENV, raising=False)
        obs.enable()
        with obs.span("no-alloc"):
            _ = np.zeros(1000)
        (root,) = obs.spans.pop_finished()
        assert root.alloc is None
        assert "alloc" not in root.to_dict()


class TestDisabledParity:
    def test_disabled_bit_identical(self, monkeypatch):
        """Counts/ops are byte-identical with memory obs on or off."""
        spec = SimulationSpec(
            base_dist=DiscretePareto(1.7, 21.0),
            truncation=root_truncation,
            method="T1",
            permutation=DescendingDegree(),
            limit_map="descending",
            n_sequences=2,
            n_graphs=2,
        )
        baseline = sweep_n(spec, [200], seed=11)
        memory.enable()
        monkeypatch.setenv(memory.MEM_BUDGET_ENV, "1G")
        with_mem = sweep_n(spec, [200], seed=11)
        memory.disable()
        memory.reset()
        monkeypatch.delenv(memory.MEM_BUDGET_ENV)
        again = sweep_n(spec, [200], seed=11)
        assert with_mem == baseline
        assert again == baseline

    def test_listing_identical_with_ledger(self):
        from repro.listing.api import list_triangles
        oriented = _oriented(n=800)
        off = list_triangles(oriented, "E1", collect=True,
                             engine="numpy")
        memory.enable()
        oriented2 = _oriented(n=800)
        on = list_triangles(oriented2, "E1", collect=True,
                            engine="numpy")
        assert on.count == off.count
        assert on.ops == off.ops
        assert set(on.triangles) == set(off.triangles)


class TestRecordsAndExports:
    def test_ledger_rides_run_record(self):
        from repro.obs import records
        memory.enable()
        memory.check_in("rec.tag", nbytes=4096, dtype="int64")
        record = records.collect("mem-test")
        summary = record.metrics["memory"]
        assert summary["current_bytes"] == 4096
        assert summary["tags"][0]["tag"] == "rec.tag"
        json.loads(record.to_json())

    def test_trace_gets_memory_counter_track(self):
        from repro.obs import export, records
        record = records.RunRecord(
            name="mem-trace",
            spans=[{"name": "root", "start_ns": 1000,
                    "duration_ns": 5_000_000}],
            metrics={
                "resources": [
                    {"ts": 10.0, "rss_bytes": 1000,
                     "rss_peak_bytes": 1500},
                    {"ts": 10.5, "rss_bytes": 2000,
                     "rss_peak_bytes": 2500},
                ],
                "memory": {"current_bytes": 300, "peak_bytes": 400},
            })
        trace = export.records_to_trace([record])
        export.validate_trace(trace)
        counters = [e for e in trace["traceEvents"]
                    if e.get("cat") == "memory"]
        names = {e["name"] for e in counters}
        assert names == {"mem.rss_bytes", "mem.rss_peak_bytes",
                         "mem.attributed_current_bytes",
                         "mem.attributed_peak_bytes"}
        rss = [e for e in counters if e["name"] == "mem.rss_bytes"]
        assert [e["ts"] for e in rss] == [0.0, 500_000.0]
        assert [e["args"]["value"] for e in rss] == [1000, 2000]

    def test_validate_trace_rejects_bad_memory_counter(self):
        from repro.obs import export
        trace = {"traceEvents": [
            {"name": "mem.rss_bytes", "cat": "memory", "ph": "C",
             "pid": 1, "tid": 1, "ts": 0.0, "args": {"value": -5}},
        ]}
        with pytest.raises(ValueError, match="non-negative"):
            export.validate_trace(trace)

    def test_dashboard_memory_panel(self):
        from repro.obs import dashboard, records
        memory.enable()
        memory.check_in("graph.csr", nbytes=10_000, dtype="int64")
        record = records.collect("mem-dash")
        html = dashboard.render_dashboard([record])
        assert "Memory footprint" in html
        assert "graph.csr" in html
