"""Tests for the out-of-core E2 and the E1-vs-E2 I/O contrast."""

import pytest

from repro import DescendingDegree, list_triangles, orient
from repro.external import external_e1, external_e2


class TestExternalE2:
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_matches_in_memory_e2(self, pareto_graph, k):
        oriented = orient(pareto_graph, DescendingDegree())
        reference = list_triangles(oriented, "E2")
        result, io = external_e2(oriented, k)
        assert result.count == reference.count
        assert result.triangle_set() == reference.triangle_set()
        assert result.ops == reference.ops

    def test_e1_and_e2_same_cpu_cost(self, pareto_graph):
        """Table 1: both are T1 + T2 -- CPU ops identical."""
        oriented = orient(pareto_graph, DescendingDegree())
        r1, __ = external_e1(oriented, 4, collect=False)
        r2, __ = external_e2(oriented, 4, collect=False)
        assert r1.ops == r2.ops
        assert r1.count == r2.count

    def test_io_profiles_differ(self, pareto_graph):
        """The section 2.3 open question made concrete: identical CPU,
        different partition traffic (E1 re-reads smaller-label
        candidates, E2 larger-label ones; under descending order those
        carry different edge mass)."""
        oriented = orient(pareto_graph, DescendingDegree())
        __, io1 = external_e1(oriented, 4, collect=False)
        __, io2 = external_e2(oriented, 4, collect=False)
        assert io1.loads == io2.loads  # same triangular pair pattern
        assert io1.bytes_read != io2.bytes_read

    def test_io_grows_with_k(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        __, io2 = external_e2(oriented, 2, collect=False)
        __, io6 = external_e2(oriented, 6, collect=False)
        assert io6.bytes_read > io2.bytes_read
