"""Numpy-engine equivalence against the instrumented Python listers.

The pure-Python loops are the ground truth; the vectorized engine must
return identical triangle sets, counts, ``ops``, and ``hash_inserts``
for every method under every relabeling family -- plus the degenerate
shapes (empty graph, star, clique). ``comparisons`` is intentionally
*not* compared for the E/L families: the Python merges count
early-exit comparisons, the engine reports the closed-form probe
component (see :mod:`repro.engine.kernels`).

The equivalence classes here pass ``use_native=False`` so the *pure*
NumPy kernels stay pinned against the ground truth even on hosts with
a C toolchain (where the default would route through the compiled
kernels -- those have their own suite in ``test_native_engine.py``).
"""

import numpy as np
import pytest

from repro import (
    AscendingDegree,
    ComplementaryRoundRobin,
    DescendingDegree,
    DiscretePareto,
    RoundRobin,
    UniformRandom,
    generate_graph,
    orient,
)
from repro.distributions import root_truncation
from repro.distributions.sampling import sample_degree_sequence
from repro.engine import NUMPY_METHODS, run_numpy
from repro.graphs.graph import Graph
from repro.listing.api import ALL_METHODS, count_triangles, list_triangles

ORDERINGS = {
    "ascending": AscendingDegree,
    "descending": DescendingDegree,
    "uniform": UniformRandom,
    "rr": RoundRobin,
    "crr": ComplementaryRoundRobin,
}


@pytest.fixture(scope="module")
def pareto_graph():
    n = 700
    rng = np.random.default_rng(7)
    dist = DiscretePareto(1.7, 21.0).truncate(root_truncation(n))
    degrees = sample_degree_sequence(dist, n, rng)
    return generate_graph(degrees, rng)


@pytest.fixture(scope="module", params=sorted(ORDERINGS))
def oriented(request, pareto_graph):
    return orient(pareto_graph, ORDERINGS[request.param](),
                  rng=np.random.default_rng(11))


class TestEngineEquivalence:
    def test_covers_all_methods(self):
        assert set(NUMPY_METHODS) == set(ALL_METHODS)

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_identical_results(self, oriented, method):
        py = list_triangles(oriented, method, engine="python")
        np_list = run_numpy(oriented, method, collect=True,
                            use_native=False)
        np_count = run_numpy(oriented, method, collect=False,
                             use_native=False)
        assert py.count == np_list.count == np_count.count
        assert py.ops == np_list.ops == np_count.ops
        assert py.hash_inserts == np_list.hash_inserts
        assert set(py.triangles) == set(np_list.triangles)
        assert len(np_list.triangles) == np_list.count
        assert np_list.extra["native"] is False

    @pytest.mark.parametrize("method", ("T1", "E1", "E4", "L5"))
    def test_triangles_well_ordered(self, oriented, method):
        result = run_numpy(oriented, method, collect=True)
        for x, y, z in result.triangles:
            assert x < y < z

    def test_numpy_engine_deterministic(self, oriented):
        a = run_numpy(oriented, "T2", collect=True, use_native=False)
        b = run_numpy(oriented, "T2", collect=True, use_native=False)
        assert a.triangles == b.triangles
        assert a.count == b.count


class TestEdgeCases:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_empty_graph(self, method):
        g = orient(Graph(5, []), DescendingDegree())
        py = list_triangles(g, method, engine="python")
        np_res = run_numpy(g, method, collect=True)
        assert py.count == np_res.count == 0
        assert np_res.triangles == []
        assert py.ops == np_res.ops == 0

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_star(self, method):
        g = orient(Graph(6, [(0, i) for i in range(1, 6)]),
                   DescendingDegree())
        py = list_triangles(g, method, engine="python")
        np_res = run_numpy(g, method, collect=True)
        assert py.count == np_res.count == 0
        assert py.ops == np_res.ops

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_clique(self, method):
        edges = [(i, j) for i in range(6) for j in range(i + 1, 6)]
        g = orient(Graph(6, edges), DescendingDegree())
        py = list_triangles(g, method, engine="python")
        np_res = run_numpy(g, method, collect=True)
        assert py.count == np_res.count == 20  # C(6,3)
        assert set(py.triangles) == set(np_res.triangles)
        assert py.ops == np_res.ops


class TestDispatch:
    def test_engine_argument(self, oriented):
        py = list_triangles(oriented, "T1", collect=False,
                            engine="python")
        np_res = list_triangles(oriented, "T1", collect=False,
                                engine="numpy")
        assert py.extra.get("engine") is None
        assert np_res.extra["engine"] == "numpy"
        assert py.count == np_res.count

    def test_auto_routes_count_only_to_numpy(self, oriented):
        result = list_triangles(oriented, "E1", collect=False)
        assert result.extra.get("engine") == "numpy"

    def test_auto_collect_follows_native_availability(self, oriented):
        """auto + collect: compiled kernels when present, else python."""
        from repro.engine import native
        result = list_triangles(oriented, "E1", collect=True)
        if native.available():
            assert result.extra.get("engine") == "numpy"
            assert result.extra.get("native") is True
        else:
            assert result.extra.get("engine") is None

    def test_auto_collect_falls_back_to_python(self, oriented,
                                               monkeypatch):
        from repro.engine import native
        monkeypatch.setattr(native, "_lib", None)
        result = list_triangles(oriented, "E1", collect=True)
        assert result.extra.get("engine") is None
        py = list_triangles(oriented, "E1", collect=True,
                            engine="python")
        assert result.triangles == py.triangles

    def test_count_triangles_engine_param(self, oriented):
        assert (count_triangles(oriented, "T3", engine="python")
                == count_triangles(oriented, "T3", engine="numpy"))

    def test_unknown_engine_rejected(self, oriented):
        with pytest.raises(ValueError, match="engine"):
            list_triangles(oriented, "T1", engine="fortran")

    def test_unknown_method_rejected(self, oriented):
        with pytest.raises(ValueError, match="method"):
            run_numpy(oriented, "T9")

    def test_native_fallback_matches(self, oriented, monkeypatch):
        """The pure-NumPy count path (native gated off) still agrees."""
        from repro.engine import kernels, native
        monkeypatch.setattr(native, "_lib", None)
        assert not native.available()
        result = run_numpy(oriented, "T1", collect=False)
        assert not result.extra["native"]
        assert result.count == count_triangles(oriented, "T1",
                                               engine="python")
