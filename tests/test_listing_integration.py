"""Integration tests: all 18 methods, all orientations, all baselines.

The strongest invariant in the paper's framework: *every* method under
*every* acyclic orientation lists exactly the same triangles (each once),
and the instrumented ops always equal the degree-based formulas.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    ALL_METHODS,
    AscendingDegree,
    ComplementaryRoundRobin,
    DegenerateOrder,
    DescendingDegree,
    DiscretePareto,
    Graph,
    RoundRobin,
    UniformRandom,
    adjacency_matrix_triangles,
    brute_force_triangles,
    chiba_nishizeki_triangles,
    compact_forward_triangles,
    count_triangles,
    forward_triangles,
    generate_graph,
    list_triangles,
    orient,
    sample_degree_sequence,
)
from repro.core.costs import total_cost
from repro.listing import triangles_in_original_ids

ALL_PERMS = [AscendingDegree(), DescendingDegree(), RoundRobin(),
             ComplementaryRoundRobin(), UniformRandom(), DegenerateOrder()]


def _random_graph(seed, n=120, alpha=1.6):
    rng = np.random.default_rng(seed)
    dist = DiscretePareto(alpha, 9.0).truncate(max(int(n**0.5), 2))
    degrees = sample_degree_sequence(dist, n, rng)
    return generate_graph(degrees, rng), rng


class TestAllMethodsAgree:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_all_methods_all_permutations(self, seed):
        graph, rng = _random_graph(seed)
        reference = brute_force_triangles(graph)
        for perm in ALL_PERMS:
            oriented = orient(graph, perm, rng=rng, tie_break="random")
            for method in ALL_METHODS:
                result = list_triangles(oriented, method)
                assert triangles_in_original_ids(result, oriented) \
                    == reference, f"{method} under {perm.name}"

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_ops_equal_degree_formulas(self, seed):
        graph, rng = _random_graph(seed)
        for perm in ALL_PERMS:
            oriented = orient(graph, perm, rng=rng, tie_break="random")
            for method in ALL_METHODS:
                result = list_triangles(oriented, method, collect=False)
                expected = total_cost(method, oriented.out_degrees,
                                      oriented.in_degrees)
                assert result.ops == int(round(expected)), \
                    f"{method} under {perm.name}"

    def test_each_triangle_listed_once(self):
        graph, rng = _random_graph(7, n=80)
        oriented = orient(graph, DescendingDegree())
        for method in ALL_METHODS:
            result = list_triangles(oriented, method)
            assert len(result.triangles) == len(set(result.triangles)), \
                method


class TestBaselinesAgree:
    @pytest.mark.parametrize("seed", [3, 4])
    def test_classical_baselines(self, seed):
        graph, __ = _random_graph(seed, n=100)
        reference = brute_force_triangles(graph)
        assert adjacency_matrix_triangles(graph) == reference
        assert chiba_nishizeki_triangles(graph) == reference
        assert forward_triangles(graph) == reference
        assert compact_forward_triangles(graph) == reference

    def test_against_networkx(self):
        networkx = pytest.importorskip("networkx")
        graph, rng = _random_graph(11, n=150)
        nx_graph = networkx.Graph()
        nx_graph.add_nodes_from(range(graph.n))
        nx_graph.add_edges_from(map(tuple, graph.edges.tolist()))
        expected = sum(networkx.triangles(nx_graph).values()) // 3
        oriented = orient(graph, DescendingDegree())
        assert count_triangles(oriented, "E1") == expected

    def test_count_matches_trace_formula(self):
        graph, __ = _random_graph(5, n=90)
        oriented = orient(graph, DescendingDegree())
        assert count_triangles(oriented) \
            == graph.triangle_count_reference()


class TestPropertyBased:
    @given(st.sets(st.tuples(st.integers(0, 14), st.integers(0, 14)),
                   max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_small_graphs(self, raw_edges):
        """Any simple graph: all 18 methods match brute force."""
        edges = {(min(u, v), max(u, v)) for u, v in raw_edges if u != v}
        graph = Graph(15, sorted(edges))
        reference = brute_force_triangles(graph)
        oriented = orient(graph, DescendingDegree())
        for method in ALL_METHODS:
            result = list_triangles(oriented, method)
            assert triangles_in_original_ids(result, oriented) == reference

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_counts_invariant_across_methods(self, seed):
        graph, rng = _random_graph(seed, n=60)
        counts = set()
        for perm in (AscendingDegree(), RoundRobin()):
            oriented = orient(graph, perm)
            counts.update(count_triangles(oriented, m)
                          for m in ("T1", "E4", "L3"))
        assert len(counts) == 1


class TestApi:
    def test_list_triangles_dispatch(self, k4_graph):
        oriented = orient(k4_graph, DescendingDegree())
        for method in ("t1", "E1", "l5"):
            assert list_triangles(oriented, method).count == 4

    def test_unknown_method(self, k4_graph):
        oriented = orient(k4_graph, DescendingDegree())
        with pytest.raises(ValueError):
            list_triangles(oriented, "X1")
