"""Tests for the named closed-form limits (theory.py vs Algorithm 2)."""

import math

import pytest

from repro import DiscretePareto, limit_cost
from repro.core.theory import (
    NAMED_LIMITS,
    e1_descending_limit,
    e1_round_robin_limit,
    named_limit,
    t1_ascending_limit,
    t1_descending_limit,
    t2_descending_limit,
    t2_round_robin_limit,
)
from repro.distributions import ContinuousPareto

CONT = ContinuousPareto(1.7, 21.0)
DISC = DiscretePareto(1.7, 21.0)


class TestAgainstDiscretePipeline:
    """The continuous closed forms track Algorithm 2's discrete limits
    up to the continuous-vs-discrete gap Table 5 quantifies (~2%)."""

    @pytest.mark.parametrize("method,map_name", sorted(NAMED_LIMITS))
    def test_finite_cases_agree(self, method, map_name):
        continuous = named_limit(method, map_name, CONT)
        discrete = limit_cost(DISC, method, map_name, eps=1e-4,
                              t_max=1e14)
        if math.isinf(continuous):
            assert math.isinf(discrete)
        else:
            assert continuous == pytest.approx(discrete, rel=0.03)


class TestStructuralIdentities:
    def test_e1_is_t1_plus_t2_descending(self):
        """(35) = (23) + (24)."""
        assert e1_descending_limit(CONT) == pytest.approx(
            t1_descending_limit(CONT) + t2_descending_limit(CONT),
            rel=1e-6)

    def test_t2_rr_is_half_e1_descending(self):
        """(34) = (35) / 2."""
        assert t2_round_robin_limit(CONT) == pytest.approx(
            e1_descending_limit(CONT) / 2.0, rel=1e-9)

    def test_rr_hurts_e1(self):
        """(36) > (35): RR is the wrong order for E1 (section 5.3)."""
        assert e1_round_robin_limit(CONT) > e1_descending_limit(CONT)


class TestFiniteness:
    def test_t1_ascending_diverges_below_two(self):
        assert math.isinf(t1_ascending_limit(ContinuousPareto(1.9, 27.0)))
        assert math.isfinite(
            t1_ascending_limit(ContinuousPareto(2.1, 33.0)))

    def test_t1_descending_threshold_four_thirds(self):
        assert math.isinf(
            t1_descending_limit(ContinuousPareto(1.3, 9.0)))
        assert math.isfinite(
            t1_descending_limit(ContinuousPareto(1.4, 12.0)))

    def test_e1_rr_diverges_below_two(self):
        assert math.isinf(e1_round_robin_limit(ContinuousPareto(1.7,
                                                                21.0)))

    def test_unknown_pair(self):
        with pytest.raises(ValueError):
            named_limit("E4", "descending", CONT)


class TestBerryEtAlIdentity:
    """Eq. (2) (prior work [9]) equals eq. (4) -- executable."""

    @pytest.mark.parametrize("alpha", [1.8, 2.1, 2.5])
    def test_eq2_matches_eq4(self, alpha):
        from repro.core.theory import berry_et_al_limit
        beta = 30.0 * (alpha - 1.0)
        dist = DiscretePareto(alpha, beta)
        via_eq2 = berry_et_al_limit(dist, t=10**6)
        via_alg2 = limit_cost(dist, "T1", "descending", eps=1e-4)
        assert via_eq2 == pytest.approx(via_alg2, rel=5e-3)

    def test_eq2_rejects_insufficient_support(self):
        from repro.core.theory import berry_et_al_limit
        with pytest.raises(ValueError, match="too small"):
            berry_et_al_limit(DiscretePareto(1.2, 6.0), t=1000)
