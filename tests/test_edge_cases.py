"""Edge cases and failure injection across the stack."""

import numpy as np
import pytest

from repro import (
    DescendingDegree,
    DiscretePareto,
    Graph,
    OrientedGraph,
    UniformRandom,
    list_triangles,
    orient,
)
from repro.graphs import FenwickTree, residual_degree_model
from repro.graphs.generators import havel_hakimi_graph


class TestDegenerateInputs:
    def test_single_node_graph(self):
        graph = Graph(1, [])
        oriented = orient(graph, DescendingDegree())
        for method in ("T1", "E1", "L1"):
            result = list_triangles(oriented, method)
            assert result.count == 0
            assert result.ops == 0

    def test_two_node_graph(self):
        graph = Graph(2, [(0, 1)])
        oriented = orient(graph, DescendingDegree())
        assert list_triangles(oriented, "E4").count == 0

    def test_all_isolated(self):
        graph = Graph(5, [])
        oriented = orient(graph, UniformRandom(),
                          rng=np.random.default_rng(0))
        assert list_triangles(oriented, "T2").count == 0

    def test_complete_graph_count(self):
        n = 10
        graph = Graph(n, [(i, j) for i in range(n)
                          for j in range(i + 1, n)])
        oriented = orient(graph, DescendingDegree())
        expected = n * (n - 1) * (n - 2) // 6
        for method in ("T1", "T3", "E1", "E4", "L5"):
            assert list_triangles(oriented, method).count == expected

    def test_fenwick_single_element(self):
        tree = FenwickTree([5.0])
        assert tree.sample(4.9) == 0
        tree.add(0, -5.0)
        assert tree.total == pytest.approx(0.0)

    def test_orientation_of_zero_node_graph(self):
        graph = Graph(0, [])
        oriented = OrientedGraph(graph, np.array([], dtype=np.int64))
        assert oriented.n == 0


class TestFailureInjection:
    def test_havel_hakimi_fallback_engages(self, monkeypatch):
        """If swap repair dies, generation still realizes the sequence
        exactly via Havel-Hakimi."""
        import repro.graphs.generators as gen

        def broken_repair(*args, **kwargs):
            raise RuntimeError("injected failure")

        monkeypatch.setattr(gen, "_swap_repair", broken_repair)
        rng = np.random.default_rng(0)
        # a sequence whose sequential wiring occasionally leaves
        # leftovers; with the repair broken, any leftover forces the
        # fallback path -- either way the degrees must come out exact
        degrees = np.array([6, 6, 6, 3, 3, 3, 3, 3, 3] * 4)
        if degrees.sum() % 2:
            degrees[-1] -= 1
        for __ in range(5):
            graph = gen.residual_degree_model(degrees, rng)
            np.testing.assert_array_equal(graph.degrees, degrees)

    def test_non_graphic_dense_rejected_fast(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="graphic"):
            residual_degree_model(np.array([4, 4, 4, 1, 1]), rng)

    def test_havel_hakimi_rejects_non_graphic(self):
        with pytest.raises(ValueError):
            havel_hakimi_graph(np.array([4, 4, 4, 1, 1]))

    def test_model_rejects_untruncated(self):
        from repro import discrete_cost_model
        with pytest.raises(ValueError):
            discrete_cost_model(DiscretePareto(1.5, 15.0), "T1",
                                "descending")

    def test_unknown_map_name(self):
        from repro import discrete_cost_model
        dist = DiscretePareto(1.5, 15.0).truncate(50)
        with pytest.raises(ValueError, match="unknown map"):
            discrete_cost_model(dist, "T1", "spiral")

    def test_oriented_graph_rejects_corrupt_labels(self, bowtie_graph):
        with pytest.raises(ValueError):
            OrientedGraph(bowtie_graph, np.array([0, 1, 2, 3, 3]))


class TestCrossover:
    def test_ratio_regimes(self):
        from repro.core.crossover import limit_cost_ratio
        import math
        assert math.isinf(limit_cost_ratio(1.45))
        assert math.isnan(limit_cost_ratio(1.25))
        finite = limit_cost_ratio(2.0)
        assert 1.0 < finite < 50.0

    def test_crossover_monotone(self):
        """Lower speed ratios push the crossover to heavier tails --
        i.e. SEI wins on a wider alpha range when scanning is cheaper
        relative to hashing."""
        from repro.core.crossover import crossover_alpha
        # the ratio plateaus near ~3.5-4 for light tails, so only speed
        # ratios above that plateau ever get crossed
        slow_hw = crossover_alpha(speed_ratio=6.0, hi=3.0, tol=5e-3)
        fast_hw = crossover_alpha(speed_ratio=20.0, hi=3.0, tol=5e-3)
        assert fast_hw <= slow_hw
        assert 1.5 <= fast_hw <= 3.0

    def test_crossover_validation(self):
        from repro.core.crossover import crossover_alpha
        with pytest.raises(ValueError):
            crossover_alpha(speed_ratio=-1.0)
        with pytest.raises(ValueError):
            # ratio at hi=1.6 still far above a tiny speed ratio
            crossover_alpha(speed_ratio=1.01, hi=1.6)
