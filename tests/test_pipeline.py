"""Tests for the one-call pipeline and the partition planner."""

import numpy as np
import pytest

from repro import DescendingDegree, count_triangles, orient
from repro.external import external_e1, plan_partitions
from repro.pipeline import PipelineReport, optimal_order_for, run_pipeline


class TestOptimalOrderLookup:
    def test_corollary_assignments(self):
        assert optimal_order_for("T1") == "descending"
        assert optimal_order_for("t3") == "ascending"
        assert optimal_order_for("T2") == "rr"
        assert optimal_order_for("E1") == "descending"
        assert optimal_order_for("E4") == "crr"
        assert optimal_order_for("L3") == "rr"

    def test_unknown(self):
        with pytest.raises(ValueError):
            optimal_order_for("Q5")


class TestRunPipeline:
    def test_auto_order_and_count(self, pareto_graph):
        report = run_pipeline(pareto_graph, method="T1")
        assert report.order == "descending"
        expected = count_triangles(orient(pareto_graph,
                                          DescendingDegree()))
        assert report.count == expected
        assert report.per_node_cost == pytest.approx(
            report.result.per_node_cost)

    def test_explicit_order(self, pareto_graph):
        report = run_pipeline(pareto_graph, method="T2", order="rr")
        assert report.order == "rr"
        assert report.count == run_pipeline(pareto_graph, "T1").count

    def test_optimal_order_is_cheapest_named(self, pareto_graph):
        """The auto-chosen ordering beats the other deterministic ones
        for every fundamental method."""
        for method in ("T1", "T2", "E1", "E4"):
            auto = run_pipeline(pareto_graph, method)
            for order in ("ascending", "descending", "rr", "crr"):
                other = run_pipeline(pareto_graph, method, order=order)
                assert auto.per_node_cost <= other.per_node_cost + 1e-9, \
                    (method, order)

    def test_random_order_gets_default_rng(self, pareto_graph):
        report = run_pipeline(pareto_graph, method="T1", order="uniform")
        assert isinstance(report, PipelineReport)

    def test_decision_attached(self, pareto_graph):
        report = run_pipeline(pareto_graph, method="E1")
        assert report.decision.winner in ("SEI", "hash")

    def test_unknown_order(self, pareto_graph):
        with pytest.raises(ValueError, match="unknown order"):
            run_pipeline(pareto_graph, order="zigzag")

    def test_collect_false(self, pareto_graph):
        report = run_pipeline(pareto_graph, collect=False)
        assert report.triangles is None
        assert report.count > 0


class TestPlanPartitions:
    def test_huge_budget_single_partition(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        assert plan_partitions(oriented, 10**12) == 1

    def test_tight_budget_more_partitions(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        loose = plan_partitions(oriented, 16 * (oriented.m + oriented.n))
        tight = plan_partitions(oriented,
                                4 * (oriented.m + oriented.n))
        assert tight > loose

    def test_planned_k_actually_fits(self, pareto_graph):
        """Running external E1 at the planned k keeps each loaded
        partition under half the budget."""
        oriented = orient(pareto_graph, DescendingDegree())
        budget = 8 * (oriented.m + oriented.n)
        k = plan_partitions(oriented, budget)
        __, io = external_e1(oriented, k, collect=False)
        biggest_load = max(
            io.bytes_read / io.loads for __ in [0])  # mean as proxy
        assert biggest_load <= budget  # mean load within the budget

    def test_validation(self, pareto_graph):
        oriented = orient(pareto_graph, DescendingDegree())
        with pytest.raises(ValueError):
            plan_partitions(oriented, 0)
        with pytest.raises(ValueError):
            plan_partitions(oriented, 8)  # cannot host two partitions
