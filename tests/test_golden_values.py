"""Golden-value regression tests: the paper's published numbers.

These pin the exact numbers the library is calibrated against. A change
that breaks any of them is either a bug or an intentional semantic
change that must update this file and EXPERIMENTS.md together.
"""

import pytest

from repro import (
    DiscretePareto,
    discrete_cost_model,
    fast_cost_model,
    pareto_spread_cdf,
)
from repro.core.limits import limit_cost
from repro.distributions import ContinuousPareto, linear_truncation


class TestTable5Anchors:
    """The exact-model column of Table 5, to the published decimals."""

    @pytest.mark.parametrize("n,expected", [
        (10**3, 142.85), (10**4, 241.15), (10**7, 346.92),
    ])
    def test_exact_model(self, n, expected):
        dist = DiscretePareto(1.5, 15.0).truncate(linear_truncation(n))
        assert discrete_cost_model(dist, "T1", "descending") \
            == pytest.approx(expected, abs=0.005)

    @pytest.mark.parametrize("n,expected", [
        (10**9, 354.94), (10**10, 355.79), (10**14, 356.28),
    ])
    def test_algorithm2_large_n(self, n, expected):
        dist = DiscretePareto(1.5, 15.0).truncate(n - 1)
        assert fast_cost_model(dist, "T1", "descending", eps=1e-5) \
            == pytest.approx(expected, abs=0.01)


class TestLimitAnchors:
    """The infinity rows of Tables 6-8."""

    @pytest.mark.parametrize("alpha,beta,method,map_name,expected", [
        (1.5, 15.0, "T1", "descending", 356.3),
        (1.7, 21.0, "T2", "descending", 1307.6),
        (1.7, 21.0, "T2", "rr", 770.4),
        (2.1, 33.0, "T1", "descending", 181.5),
        (2.1, 33.0, "T2", "rr", 384.3),
    ])
    def test_limits(self, alpha, beta, method, map_name, expected):
        dist = DiscretePareto(alpha, beta)
        value = limit_cost(dist, method, map_name, eps=1e-4,
                           t_start=1e8, t_max=1e14)
        assert value == pytest.approx(expected, rel=2e-3)


class TestSpreadAnchor:
    def test_eq19_specific_value(self):
        """J(beta) for Pareto: 1 - (1 + alpha) 2^-alpha, a hand-derivable
        point (x = beta)."""
        alpha, beta = 1.5, 15.0
        expected = 1.0 - (1.0 + alpha) * 2.0**-alpha
        assert pareto_spread_cdf(alpha, beta, beta) \
            == pytest.approx(expected)

    def test_paper_mean_degree(self):
        """beta = 30 (alpha - 1) gives E[D] ~= 30.5 (section 7.3)."""
        assert DiscretePareto.paper_parameterization(1.5).mean() \
            == pytest.approx(30.5, abs=0.2)


class TestContinuousAnchor:
    @pytest.mark.parametrize("n,expected", [
        (10**4, 245.29), (10**7, 353.92),
    ])
    def test_eq49_column(self, n, expected):
        from repro import continuous_cost_model
        cont = ContinuousPareto(1.5, 15.0)
        assert continuous_cost_model(cont, n - 1, "T1", "descending") \
            == pytest.approx(expected, abs=0.02)
