"""Spawn start-method parity for the pool-backed harness.

The default Linux pool forks, so workers inherit the parent's modules
and observability state for free. ``spawn`` (the macOS/Windows
default) re-imports everything in a fresh interpreter -- these tests
pin that results stay bit-identical and that the heartbeat queue and
span/counter merge-back survive pickling through a spawn context.
"""

import multiprocessing

import pytest

from repro import DescendingDegree, DiscretePareto, obs
from repro.distributions import root_truncation
from repro.experiments.harness import SimulationSpec
from repro.experiments.parallel import (resolve_mp_context,
                                        simulate_cost_parallel,
                                        sweep_n_parallel)
from repro.obs import bus, live


@pytest.fixture(autouse=True)
def clean_obs():
    live.disable()
    bus.reset()
    obs.disable()
    obs.reset()
    yield
    live.disable()
    bus.reset()
    obs.disable()
    obs.reset()


def _spec(n_sequences=2, n_graphs=2):
    return SimulationSpec(
        base_dist=DiscretePareto(1.7, 21.0),
        truncation=root_truncation,
        method="T1",
        permutation=DescendingDegree(),
        limit_map="descending",
        n_sequences=n_sequences,
        n_graphs=n_graphs,
    )


class TestResolveMpContext:
    def test_default_is_platform(self, monkeypatch):
        monkeypatch.delenv("REPRO_MP_START", raising=False)
        assert resolve_mp_context(None) is None

    def test_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_START", "fork")
        ctx = resolve_mp_context("spawn")
        assert ctx.get_start_method() == "spawn"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_START", "spawn")
        assert resolve_mp_context(None).get_start_method() == "spawn"

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            resolve_mp_context("teleport")


class TestSpawnParity:
    def test_spawn_matches_serial_bit_identical(self):
        spec = _spec()
        serial = simulate_cost_parallel(spec, 250, seed=5, max_workers=1)
        spawned = simulate_cost_parallel(spec, 250, seed=5,
                                         max_workers=2,
                                         mp_start="spawn")
        assert spawned == serial

    def test_sweep_spawn_matches_fork(self):
        spec = _spec()
        fork_ctx = ("fork" if "fork"
                    in multiprocessing.get_all_start_methods() else None)
        rows_fork = sweep_n_parallel(spec, [200], seed=3, max_workers=2,
                                     mp_start=fork_ctx)
        rows_spawn = sweep_n_parallel(spec, [200], seed=3, max_workers=2,
                                      mp_start="spawn")
        assert rows_spawn == rows_fork

    def test_spawn_obs_merge_back_and_heartbeats(self):
        """Counters, span trees, and heartbeats all survive spawn."""
        spec = _spec()
        obs.enable()
        live.enable(interval_s=0.05)
        sink = bus.MemorySink()
        bus.add_sink(sink)
        value = simulate_cost_parallel(spec, 250, seed=5, max_workers=2,
                                       mp_start="spawn")
        snapshot = obs.metrics.snapshot()
        (cell,) = [s for s in obs.spans.pop_finished()
                   if s.name == "cell"]
        live.disable()

        assert value > 0
        # worker counters merged into the parent registry
        assert snapshot["counters"]["harness.instances"] == \
            spec.n_sequences * spec.n_graphs
        assert snapshot["counters"]["orient.runs"] == \
            spec.n_sequences * spec.n_graphs
        # worker span trees reattached under the parent cell span
        sequences = [c for c in cell.children if c.name == "sequence"]
        assert len(sequences) == spec.n_sequences
        worker_pids = {s.attrs["worker_pid"] for s in sequences}
        assert all(pid != cell.attrs.get("pid", -1)
                   for pid in worker_pids)
        # heartbeats were relayed and the watchdog annotated the cell
        beats = sink.of_type("heartbeat")
        assert beats, "no heartbeats under spawn"
        assert {e["worker_pid"] for e in beats} <= worker_pids
        assert cell.attrs["heartbeat_workers"] >= 1
        assert cell.attrs["stalled_workers"] == 0
        count, errors = bus.validate_events(sink.events)
        assert errors == []

    def test_spawn_mem_knobs_parity_and_events(self, monkeypatch):
        """Memory knobs leave spawn results bit-identical; the
        watchdog events the parent emits under them are schema-valid.
        """
        from repro.obs import memory
        spec = _spec()
        baseline = simulate_cost_parallel(spec, 250, seed=5,
                                          max_workers=2,
                                          mp_start="spawn")
        # spawn workers re-resolve both knobs from the inherited env
        monkeypatch.setenv(memory.MEM_LEDGER_ENV, "1")
        monkeypatch.setenv(memory.MEM_BUDGET_ENV, "1")  # 1 B: breach
        memory.reset()
        monkeypatch.setattr(memory, "_enabled", None)
        sink = bus.MemorySink()
        bus.add_sink(sink)
        bus.enable()
        value = simulate_cost_parallel(spec, 250, seed=5,
                                       max_workers=2,
                                       mp_start="spawn")
        live.ResourceSampler(interval_s=10.0).sample_once()
        memory.disable()
        memory.reset()

        assert value == baseline
        assert memory.is_enabled() is False
        (pressure,) = sink.of_type("mem.pressure")
        assert pressure["budget_bytes"] == 1
        assert pressure["rss_bytes"] > 1
        (breach,) = sink.of_type("mem.breach")
        assert breach["action"] == "warn"
        count, errors = bus.validate_events(sink.events)
        assert errors == []
