"""Tests for the expected out-degree model (eqs. (10)-(13), Lemma 2)."""

import numpy as np
import pytest

from repro import DiscretePareto, generate_graph, sample_degree_sequence
from repro.core.outdegree import (
    edge_probability,
    expected_out_degrees,
    expected_q,
    lemma2_profile,
    unified_cost_from_degrees,
)
from repro.core.spread import SpreadDistribution
from repro.core.weights import capped_weight
from repro.distributions import root_truncation
from repro.orientations.permutations import AscendingDegree
from repro.orientations.relabel import orient


class TestExpectedOutDegrees:
    def test_eq11_by_hand(self):
        """n = 3, degrees (by label) [2, 1, 3]: eq. (11) by hand."""
        d = np.array([2.0, 1.0, 3.0])
        expected = expected_out_degrees(d)
        # E[X_0] = 0 (nothing below label 0)
        assert expected[0] == 0.0
        # E[X_1] = 1 * 2 / (6 - 1)
        assert expected[1] == pytest.approx(2.0 / 5.0)
        # E[X_2] = 3 * (2 + 1) / (6 - 3)
        assert expected[2] == pytest.approx(3.0)

    def test_sums_to_m_approximately(self):
        """sum E[X_i] ~ m = sum d / 2 for moderate degrees."""
        rng = np.random.default_rng(2)
        d = rng.integers(1, 20, size=500).astype(float)
        total = expected_out_degrees(d).sum()
        assert total == pytest.approx(d.sum() / 2.0, rel=0.02)

    def test_weighted_version_caps_hubs(self):
        # hub at label 0: it sits in every later node's prefix, so
        # capping its weight shrinks every other expected out-degree --
        # exactly the over-counting correction of eq. (12)
        d = np.concatenate([[90.0], np.full(99, 2.0)])
        plain = expected_out_degrees(d)
        capped = expected_out_degrees(d, weight=capped_weight(5.0))
        # the very last label saturates at its full degree either way
        assert np.all(capped[1:] <= plain[1:])
        assert np.all(capped[1:-1] < plain[1:-1])

    def test_q_in_unit_interval(self):
        rng = np.random.default_rng(3)
        d = rng.integers(1, 40, size=300).astype(float)
        q = expected_q(d)
        assert np.all(q >= 0.0) and np.all(q <= 1.0)

    def test_edge_probability_eq10(self):
        degrees = np.array([3, 4, 2, 1])
        assert edge_probability(degrees, 0, 1) == pytest.approx(12 / 10)\
            or edge_probability(degrees, 0, 1) == 1.0  # clipped
        assert edge_probability(degrees, 2, 3) == pytest.approx(2 / 10)

    def test_edge_probability_empty(self):
        assert edge_probability(np.array([0, 0]), 0, 1) == 0.0


class TestAgainstEnsembles:
    def test_expected_out_degree_matches_simulation(self, rng):
        """E[X_i | D_n] (11) vs ensemble average under ascending."""
        n = 600
        dist = DiscretePareto(2.0, 30.0).truncate(root_truncation(n))
        degrees = sample_degree_sequence(dist, n, rng)
        perm = AscendingDegree()
        x_sum = None
        reps = 30
        for __ in range(reps):
            graph = generate_graph(degrees, rng)
            oriented = orient(graph, perm)
            x = oriented.out_degrees.astype(float)
            x_sum = x if x_sum is None else x_sum + x
            label_degrees = oriented.degrees
        model = expected_out_degrees(label_degrees.astype(float))
        simulated = x_sum / reps
        # compare on aggregate windows (per-node is too noisy at 30 reps)
        for lo, hi in [(0, 200), (200, 400), (400, 600)]:
            assert simulated[lo:hi].sum() == pytest.approx(
                model[lo:hi].sum(), rel=0.06)

    def test_unified_cost_matches_model50(self):
        """Eq. (14) from the quantile skeleton converges to eq. (50)."""
        from repro import discrete_cost_model
        dist = DiscretePareto(1.7, 21.0).truncate(100)
        n = 200_000
        positions = (np.arange(n, dtype=float) + 0.5) / n
        skeleton = np.asarray(dist.quantile(positions), dtype=float)
        via_skeleton = unified_cost_from_degrees("T1", skeleton)
        via_model = discrete_cost_model(dist, "T1", "ascending")
        assert via_skeleton == pytest.approx(via_model, rel=0.02)

    def test_unified_cost_empty(self):
        assert unified_cost_from_degrees("T1", np.array([])) == 0.0


class TestLemma2:
    def test_q_converges_to_spread(self):
        """Lemma 2: q_{ceil(un)} -> J(F^{-1}(u)) under ascending."""
        dist = DiscretePareto(1.7, 21.0).truncate(1000)
        spread = SpreadDistribution(dist)
        us = np.array([0.2, 0.5, 0.8, 0.95])
        profile = lemma2_profile(dist, 300_000, us)
        quantiles = np.asarray(dist.quantile(us), dtype=float)
        targets = np.asarray(spread.cdf(quantiles - 1.0), dtype=float)
        # J evaluated just below the quantile: q counts strictly
        # smaller labels, and ties at the quantile value straddle the
        # jump, so allow the atom's width as tolerance
        atom = np.asarray(spread.pmf(quantiles), dtype=float)
        for p, t, a in zip(profile, targets, atom):
            assert t - 0.02 <= p <= t + a + 0.02

    def test_convergence_improves_with_n(self):
        dist = DiscretePareto(1.7, 21.0).truncate(200)
        spread = SpreadDistribution(dist)
        u = np.array([0.6])
        target = float(spread.cdf(float(dist.quantile(0.6))))
        errors = []
        for n in (1000, 100_000):
            value = float(lemma2_profile(dist, n, u)[0])
            errors.append(abs(value - target))
        assert errors[1] <= errors[0] + 0.02


@pytest.fixture
def rng():
    return np.random.default_rng(44)
