"""Tests for the live telemetry runtime (bus, sampler, progress,
heartbeats, Prometheus surface) and its end-to-end acceptance story."""

import json
import logging
import queue
import threading
import urllib.request

import numpy as np
import pytest

from repro import DescendingDegree, DiscretePareto, obs
from repro.distributions import root_truncation
from repro.experiments.harness import SimulationSpec, sweep_n
from repro.obs import bus, live, metrics, records


@pytest.fixture(autouse=True)
def clean_live():
    """Every test starts and ends with the whole obs stack off."""
    live.disable()
    bus.reset()
    obs.disable()
    obs.reset()
    yield
    live.disable()
    bus.reset()
    obs.disable()
    obs.reset()


def _spec(n_sequences=3, n_graphs=2):
    return SimulationSpec(
        base_dist=DiscretePareto(1.7, 21.0),
        truncation=root_truncation,
        method="T1",
        permutation=DescendingDegree(),
        limit_map="descending",
        n_sequences=n_sequences,
        n_graphs=n_graphs,
    )


class TestBus:
    def test_disabled_emit_is_noop(self):
        sink = bus.MemorySink()
        bus.add_sink(sink)
        assert bus.emit("phase", name="x", status="start") is None
        assert sink.events == []

    def test_enabled_emit_stamps_and_fans_out(self):
        sink = bus.MemorySink()
        bus.add_sink(sink)
        bus.enable()
        event = bus.emit("phase", name="x", status="start")
        assert event["type"] == "phase"
        assert isinstance(event["ts"], float)
        assert isinstance(event["pid"], int)
        assert sink.of_type("phase") == [event]
        assert bus.validate_event(event) == []

    def test_broken_sink_does_not_kill_emit(self):
        class Broken:
            def write(self, event):
                raise RuntimeError("boom")

            def close(self):
                pass

        good = bus.MemorySink()
        bus.add_sink(Broken())
        bus.add_sink(good)
        bus.enable()
        bus.emit("run.start", name="r")
        assert len(good.events) == 1

    def test_jsonl_sink_roundtrip(self, tmp_path):
        path = tmp_path / "deep" / "events.jsonl"  # parents created
        sink = bus.JsonlSink(path)
        bus.add_sink(sink)
        bus.enable()
        bus.emit("run.start", name="r")
        bus.emit("phase", name="cell", status="start")
        sink.close()
        count, errors = bus.validate_events_file(path)
        assert count == 2
        assert errors == []

    def test_validate_flags_missing_and_mistyped_fields(self):
        errors = bus.validate_event(
            {"type": "progress", "ts": 1.0, "pid": 1, "scope": "cell",
             "label": "x", "done": 1, "total": True, "frac": 0.5})
        assert any("'total'" in e for e in errors)  # bool is not a number
        assert bus.validate_event({"type": "nope", "ts": 1.0, "pid": 1})
        assert bus.validate_event("not a dict")

    def test_validate_file_flags_torn_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"type": "run.start", "name": "r", "ts": 1.0,'
                        ' "pid": 1}\n{"type": "run.end", "na\n')
        count, errors = bus.validate_events_file(path)
        assert count == 2
        assert len(errors) == 1
        assert "not JSON" in errors[0]


class TestResourceSampler:
    def test_sample_shape(self):
        sample = live.sample_resources()
        assert sample["rss_bytes"] > 0
        assert sample["threads"] >= 1
        for key, kinds in bus.EVENT_SCHEMA["resource.sample"].items():
            assert isinstance(sample[key], kinds), key

    def test_sample_once_publishes_valid_event(self):
        sink = bus.MemorySink()
        bus.add_sink(sink)
        bus.enable()
        sampler = live.ResourceSampler(interval_s=60.0)
        sampler.sample_once()
        (event,) = sink.of_type("resource.sample")
        assert bus.validate_event(event) == []
        assert len(sampler.series()) == 1

    def test_ring_buffer_ages_out(self):
        sampler = live.ResourceSampler(interval_s=60.0, maxlen=4)
        for __ in range(9):
            sampler.sample_once()
        assert len(sampler.series()) == 4

    def test_start_stop_collects_series(self):
        sampler = live.ResourceSampler(interval_s=0.02)
        sampler.start()
        try:
            deadline = 50
            while len(sampler.series()) < 3 and deadline:
                threading.Event().wait(0.02)
                deadline -= 1
        finally:
            sampler.stop()
        series = sampler.series()
        assert len(series) >= 3
        assert all(s["ts"] <= t["ts"] for s, t in zip(series, series[1:]))

    def test_summary_windows(self):
        sampler = live.ResourceSampler(interval_s=60.0)
        sampler.sample_once()
        sampler.sample_once()
        summary = sampler.summary()
        assert summary["samples"] == 2
        assert summary["rss_max_bytes"] >= summary["rss_min_bytes"]
        assert sampler.summary(since_ts=float("inf")) is None

    def test_sampler_series_reflects_active_runtime(self):
        assert live.sampler_series() == []
        live.enable(interval_s=60.0)
        assert len(live.sampler_series()) >= 1


class TestProgress:
    def test_unit_fraction_without_model(self):
        progress = live.Progress("units", 4)
        progress.advance(1)
        assert progress.frac() == 0.25
        progress.advance(3)
        assert progress.frac() == 1.0

    def test_model_ops_drive_fraction_and_eta(self):
        sink = bus.MemorySink()
        bus.add_sink(sink)
        bus.enable()
        progress = live.Progress("cell n=100", 10, predicted_ops=1000.0,
                                 scope="cell", phase="simulate")
        event = progress.advance(1, ops=250.0)
        assert event["frac"] == 0.25  # by ops, not by the 1/10 units
        assert event["ops_done"] == 250.0
        assert event["ops_predicted"] == 1000.0
        assert event["eta_s"] >= 0.0
        assert event["phase"] == "simulate"
        assert bus.validate_event(event) == []

    def test_throttle_keeps_first_and_terminal(self):
        sink = bus.MemorySink()
        bus.add_sink(sink)
        bus.enable()
        progress = live.Progress("chunks", 5, min_interval_s=3600.0)
        assert progress.advance(1) is not None   # first always publishes
        assert progress.advance(1) is None       # throttled
        assert progress.advance(1) is None
        progress.advance(1)
        assert progress.advance(1) is not None   # terminal always does
        fracs = [e["frac"] for e in sink.of_type("progress")]
        assert fracs == [pytest.approx(0.2), pytest.approx(1.0)]

    def test_disabled_bus_still_tracks_state(self):
        progress = live.Progress("quiet", 2)
        assert progress.advance(1) is None
        assert progress.done == 1


class TestHeartbeats:
    def test_post_and_relay(self):
        sink = bus.MemorySink()
        bus.add_sink(sink)
        bus.enable()
        q = queue.Queue()
        live.post_heartbeat(q, "seq 0 n=100 T1", status="start")
        watchdog = live.HeartbeatWatchdog(q, interval_s=60.0)
        assert watchdog.drain() == 1
        (event,) = sink.of_type("heartbeat")
        assert bus.validate_event(event) == []
        assert event["task"] == "seq 0 n=100 T1"
        assert event["status"] == "start"
        (state,) = watchdog.workers.values()
        assert state["beats"] == 1
        assert state["last_task"] == "seq 0 n=100 T1"

    def test_post_heartbeat_never_raises(self):
        class Broken:
            def put(self, *args, **kwargs):
                raise RuntimeError("manager gone")

        live.post_heartbeat(Broken(), "task")  # must not raise

    def test_deliberate_stall_flags_once_and_recovers(self, caplog):
        sink = bus.MemorySink()
        bus.add_sink(sink)
        bus.enable()
        q = queue.Queue()
        watchdog = live.HeartbeatWatchdog(q, interval_s=0.1,
                                          miss_threshold=3)
        live.post_heartbeat(q, "slow task")
        watchdog.drain()
        (pid,) = watchdog.workers
        with caplog.at_level(logging.WARNING, logger="repro"):
            assert watchdog.check(now=watchdog.workers[pid]["last_seen"]
                                  + 1.0) == [pid]
            # already flagged: a second check stays silent
            assert watchdog.check(now=watchdog.workers[pid]["last_seen"]
                                  + 2.0) == []
        (event,) = sink.of_type("worker.stalled")
        assert bus.validate_event(event) == []
        assert event["worker_pid"] == pid
        assert event["silent_s"] >= 0.3
        assert event["missed"] >= 3
        assert event["last_task"] == "slow task"
        (warning,) = [r for r in caplog.records
                      if r.levelno == logging.WARNING]
        assert warning.getMessage() == "worker heartbeat stalled"
        assert warning.fields["last_task"] == "slow task"
        # a fresh beat clears the flag, so it can stall (and warn) again
        live.post_heartbeat(q, "slow task")
        watchdog.drain()
        assert not watchdog.workers[pid]["stalled"]

    def test_fresh_worker_not_flagged_early(self):
        q = queue.Queue()
        watchdog = live.HeartbeatWatchdog(q, interval_s=0.1,
                                          miss_threshold=3)
        live.post_heartbeat(q, "task")
        watchdog.drain()
        (pid,) = watchdog.workers
        assert watchdog.check(now=watchdog.workers[pid]["last_seen"]
                              + 0.2) == []

    def test_thread_lifecycle_drains_stragglers(self):
        q = queue.Queue()
        watchdog = live.HeartbeatWatchdog(q, interval_s=60.0).start()
        live.post_heartbeat(q, "late beat")
        table = watchdog.stop()
        (state,) = table.values()
        assert state["last_task"] == "late beat"


class TestPrometheus:
    def test_render_counters_gauges_histograms(self):
        metrics.enable()
        metrics.inc("lister.ops", 42)
        metrics.set_gauge("parallel.workers", 4)
        for ms in (1.0, 2.0, 3.0):
            metrics.observe("parallel.task_ms", ms)
        text = live.render_prometheus()
        assert "# TYPE repro_lister_ops_total counter" in text
        assert "repro_lister_ops_total 42" in text
        assert "repro_parallel_workers 4" in text
        assert 'repro_parallel_task_ms{quantile="0.5"} 2' in text
        assert "repro_parallel_task_ms_sum 6" in text
        assert "repro_parallel_task_ms_count 3" in text
        assert text.endswith("\n")

    def test_name_sanitization_and_extra_gauges(self):
        text = live.render_prometheus(
            {"counters": {}, "gauges": {}, "histograms": {}},
            extra_gauges={"live.progress.cell": 0.5})
        assert "repro_live_progress_cell 0.5" in text

    def test_server_scrape_and_404(self):
        metrics.enable()
        metrics.inc("lister.triangles", 7)
        server = live.MetricsServer(port=0)
        port = server.start()
        try:
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics", timeout=5) as rsp:
                assert rsp.status == 200
                assert "0.0.4" in rsp.headers["Content-Type"]
                body = rsp.read().decode()
            assert "repro_lister_triangles_total 7" in body
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/nope", timeout=5)
        finally:
            server.stop()

    def test_bind_plain_serves_exactly_one(self):
        server = live.MetricsServer(port=0)
        port = server.bind_plain()
        thread = threading.Thread(target=server.handle_one_request,
                                  daemon=True)
        thread.start()
        try:
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics", timeout=5) as rsp:
                assert rsp.status == 200
        finally:
            thread.join(timeout=5)
            server.stop()


class TestLiveState:
    def _events(self):
        return [
            {"type": "phase", "ts": 1.0, "pid": 1, "name": "table",
             "status": "start"},
            {"type": "resource.sample", "ts": 2.0, "pid": 1,
             "rss_bytes": 2 * 1024 * 1024, "cpu_user_s": 1.5,
             "cpu_system_s": 0.5, "gc_collections": 3,
             "gc_objects": 100, "threads": 4},
            {"type": "progress", "ts": 3.0, "pid": 1, "scope": "cell",
             "label": "cell n=100 T1", "done": 1.0, "total": 4.0,
             "frac": 0.25, "eta_s": 9.0, "ops_done": 10.0,
             "ops_predicted": 40.0},
            {"type": "heartbeat", "ts": 4.0, "pid": 1,
             "worker_pid": 123, "task": "seq 0"},
            {"type": "worker.stalled", "ts": 5.0, "pid": 1,
             "worker_pid": 456, "silent_s": 2.0, "missed": 4,
             "last_task": "seq 1"},
        ]

    def test_fold_and_gauges(self):
        state = live.LiveState()
        state.update_many(self._events())
        assert state.phases == ["table"]
        assert state.events == 5
        gauges = state.to_gauges()
        assert gauges["live.rss_bytes"] == 2 * 1024 * 1024
        assert gauges["live.progress.cell"] == 0.25
        assert gauges["live.eta_s.cell"] == 9.0
        assert gauges["live.workers"] == 2
        assert gauges["live.workers_stalled"] == 1

    def test_phase_end_pops(self):
        state = live.LiveState()
        state.update({"type": "phase", "ts": 1.0, "pid": 1,
                      "name": "table", "status": "start"})
        state.update({"type": "phase", "ts": 2.0, "pid": 1,
                      "name": "table", "status": "end"})
        assert state.phases == []

    def test_render_status_mentions_everything(self):
        state = live.LiveState()
        state.update_many(self._events())
        text = live.render_status(state)
        assert "table" in text
        assert "25.0%" in text
        assert "eta" in text
        assert "2.0 MB" in text
        assert "pid 123" in text
        assert "STALLED" in text

    def test_render_status_empty(self):
        text = live.render_status(live.LiveState())
        assert "phase    : --" in text
        assert "progress : --" in text

    def test_read_events_leaves_partial_tail(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"type": "run.start", "name": "r"}\n'
                        '{"type": "run.e')  # producer mid-write
        events, offset = live.read_events(path, 0)
        assert [e["type"] for e in events] == ["run.start"]
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('nd", "name": "r"}\n')
        events, offset = live.read_events(path, offset)
        assert [e["type"] for e in events] == ["run.end"]
        assert live.read_events(path, offset) == ([], offset)


class TestRuntimeLifecycle:
    def test_enable_disable_roundtrip(self, tmp_path):
        events = tmp_path / "events.jsonl"
        live.enable(events_path=events, interval_s=60.0)
        assert live.is_enabled()
        assert bus.is_enabled()
        live.disable()
        assert not live.is_enabled()
        assert not bus.is_enabled()
        count, errors = bus.validate_events_file(events)
        assert count >= 1  # the sampler's first + final samples
        assert errors == []

    def test_enable_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_LIVE", raising=False)
        assert not live.enable_from_env()
        monkeypatch.setenv("REPRO_LIVE", "1")
        monkeypatch.setenv("REPRO_LIVE_EVENTS",
                           str(tmp_path / "events.jsonl"))
        monkeypatch.setenv("REPRO_LIVE_INTERVAL", "60")
        assert live.enable_from_env()
        assert live.is_enabled()
        assert (tmp_path / "events.jsonl").exists()

    def test_live_interval_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LIVE_INTERVAL", "0.25")
        assert live.live_interval() == 0.25
        monkeypatch.setenv("REPRO_LIVE_INTERVAL", "junk")
        assert live.live_interval() == live.DEFAULT_INTERVAL_S

    def test_top_level_span_gets_phase_events_and_resources(self):
        live.enable(interval_s=60.0)
        sink = bus.MemorySink()
        bus.add_sink(sink)
        obs.enable()
        with obs.span("table", name="t") as root:
            with obs.span("inner"):  # nested spans stay silent
                pass
        statuses = [(e["name"], e["status"]) for e in sink.of_type("phase")]
        assert statuses == [("table", "start"), ("table", "end")]
        assert root.attrs["resources"]["samples"] >= 1
        assert root.attrs["resources"]["rss_max_bytes"] > 0

    def test_collect_attaches_resource_series(self):
        live.enable(interval_s=60.0)
        obs.enable()
        with obs.span("phase"):
            pass
        record = records.collect("unit")
        series = record.metrics["resources"]
        assert len(series) >= 1
        assert series[0]["rss_bytes"] > 0

    def test_collect_without_live_has_no_resources(self):
        obs.enable()
        with obs.span("phase"):
            pass
        record = records.collect("unit")
        assert "resources" not in record.metrics


class TestFsyncFlag:
    def test_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_FSYNC", raising=False)
        assert records.fsync_from_env()
        for raw in ("0", "false", "no", "OFF"):
            monkeypatch.setenv("REPRO_FSYNC", raw)
            assert not records.fsync_from_env()
        monkeypatch.setenv("REPRO_FSYNC", "1")
        assert records.fsync_from_env()

    def test_appends_stay_atomic_without_fsync(self, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_FSYNC", "0")
        sink = tmp_path / "runs.jsonl"
        for i in range(20):
            records.write_record(records.RunRecord(f"rec{i}"), sink)
        loaded = records.load_records(sink)
        assert [r.name for r in loaded] == [f"rec{i}" for i in range(20)]
        # every line is a complete JSON document (no torn appends)
        for line in sink.read_text().splitlines():
            json.loads(line)

    def test_host_meta_shape(self):
        from repro.engine import native
        meta = records.host_meta()
        assert meta["cpu_count"] >= 1
        assert meta["python"]
        assert meta["machine"]
        # reflects whether the kernels actually resolved, plus the
        # toolchain/thread context benchmark sidecars need
        assert meta["native"] is native.available()
        assert meta["native_state"] == native.status()["state"]
        assert meta["native_threads"] >= 1
        if meta["native"]:
            assert meta["compiler"]


class TestAcceptance:
    """The ISSUE's acceptance story, scaled to test size."""

    def test_sweep_with_live_telemetry(self):
        spec = _spec(n_sequences=3, n_graphs=2)
        live.enable(interval_s=0.05)
        sink = bus.MemorySink()
        bus.add_sink(sink)
        obs.enable()
        with obs.span("table", name="acceptance"):
            rows = sweep_n(spec, [200, 300], workers=2, seed=7)
        record = records.collect("acceptance")
        live.disable()

        assert [r["n"] for r in rows] == [200, 300]
        # sampled resource series rides into the run record
        series = record.metrics["resources"]
        assert len(series) >= 1
        assert all(s["rss_bytes"] > 0 for s in series)
        # >= 1 progress event per cell, carrying the model-ops ETA
        cell_events = [e for e in sink.of_type("progress")
                       if e["scope"] == "cell"]
        for n in (200, 300):
            events = [e for e in cell_events if f"n={n}" in e["label"]]
            assert events, f"no progress events for cell n={n}"
            terminal = events[-1]
            assert terminal["frac"] == pytest.approx(1.0)
            assert terminal["ops_predicted"] > 0
            assert terminal["ops_done"] > 0
            assert "eta_s" in terminal
        # the sweep scope reports across grid points too
        sweep_events = [e for e in sink.of_type("progress")
                        if e["scope"] == "sweep"]
        assert sweep_events[-1]["frac"] == pytest.approx(1.0)
        # heartbeats arrived from every pool worker
        beats = sink.of_type("heartbeat")
        assert beats, "no worker heartbeats relayed"
        assert all(e["worker_pid"] != record.meta.get("pid")
                   for e in beats)
        statuses = {e["status"] for e in beats}
        assert "start" in statuses and "done" in statuses
        # the whole stream is schema-clean
        count, errors = bus.validate_events(sink.events)
        assert count == len(sink.events)
        assert errors == []

    def test_disabled_parity_bit_identical(self):
        spec = _spec(n_sequences=2, n_graphs=2)
        baseline = sweep_n(spec, [200], workers=2, seed=11)
        live.enable(interval_s=0.05)
        with_live = sweep_n(spec, [200], workers=2, seed=11)
        live.disable()
        again = sweep_n(spec, [200], workers=2, seed=11)
        assert with_live == baseline  # telemetry never touches results
        assert again == baseline
