"""``repro.engine`` -- NumPy-vectorized triangle-listing kernels.

The pure-Python listers in :mod:`repro.listing` are the instrumented
ground truth: per-candidate loops whose ``ops``/``comparisons``
counters define the paper's cost metric. This package re-implements
all 18 search patterns as batched NumPy kernels over the
``OrientedGraph`` CSR arrays -- ``searchsorted`` window bounds,
grouped-arange candidate expansion, and sorted-key membership probes
-- delivering order-of-magnitude speedups at ``n >= 10^5`` while
returning bit-identical triangle sets, counts, and ``ops`` (computed
in closed form from the oriented degrees, eqs. (7)-(9)).

Select it per call (``list_triangles(..., engine="numpy")``) or let
the ``"auto"`` policy pick it for count-only workloads; see
docs/PERFORMANCE.md for the design and measured speedups.
"""

from repro.engine import native
from repro.engine.kernels import (
    CHUNK_CANDIDATES,
    NUMPY_METHODS,
    run_numpy,
)

__all__ = [
    "CHUNK_CANDIDATES",
    "NUMPY_METHODS",
    "native",
    "run_numpy",
]
