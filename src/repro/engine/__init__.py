"""``repro.engine`` -- NumPy-vectorized triangle-listing kernels.

The pure-Python listers in :mod:`repro.listing` are the instrumented
ground truth: per-candidate loops whose ``ops``/``comparisons``
counters define the paper's cost metric. This package re-implements
all 18 search patterns as batched NumPy kernels over the
``OrientedGraph`` CSR arrays -- ``searchsorted`` window bounds,
grouped-arange candidate expansion, and sorted-key membership probes
-- delivering order-of-magnitude speedups at ``n >= 10^5`` while
returning bit-identical triangle sets, counts, and ``ops`` (computed
in closed form from the oriented degrees, eqs. (7)-(9)).

When a C toolchain is present, :mod:`repro.engine.native` compiles a
small pthreads kernel library at first use (merge- and bitmap-based
forward intersection, counting *and* triangle emission, deterministic
multi-thread block driver) and both the count and the collect paths
drop into it transparently; ``REPRO_NATIVE=0`` or a failed compile
falls back to the pure-NumPy kernels with identical results.

Select an engine per call (``list_triangles(..., engine="numpy")``,
``engine="native"`` to require the compiled kernels) or let the
``"auto"`` policy pick; see docs/PERFORMANCE.md for the design and
measured speedups.
"""

from repro.engine import native
from repro.engine.kernels import (
    CHUNK_CANDIDATES,
    NUMPY_METHODS,
    run_method_kernel,
    run_numpy,
)
from repro.engine.native import (
    KERNEL_KINDS,
    list_triangles_array,
    stream_triangles,
)

__all__ = [
    "CHUNK_CANDIDATES",
    "KERNEL_KINDS",
    "NUMPY_METHODS",
    "list_triangles_array",
    "native",
    "run_method_kernel",
    "run_numpy",
    "stream_triangles",
]
