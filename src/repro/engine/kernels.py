"""NumPy-vectorized listing kernels over the ``OrientedGraph`` CSR.

Every one of the 18 methods reduces to the same vectorized shape: a
*unit* stream (the CSR entries one family pivots on), a *window* of
candidate partners per unit (a prefix of the unit's own row, a full row
of the other CSR, or a ``searchsorted``-bounded slice of it), and a
batched membership *probe* of ``window x unit`` pairs against the
directed-edge set. The per-method table below is a direct transcription
of the pure-Python loops in :mod:`repro.listing` -- same windows, same
probes, same triangles -- executed a few million candidates at a time
instead of one.

Membership is the hot operation (one probe per candidate, ~10^7 of
them at ``n = 10^5``), so it is two-level: a 2 MiB Bloom bit-table
over 32-bit pair hashes rejects ~93% of non-edges with a single
L2-resident gather, and only the passers (true hits plus a few percent
false positives) are confirmed exactly by binary search in the sorted
edge-key array. The filter is probabilistic but the result is exact --
every reported hit survives the ``searchsorted`` check.

Cost accounting: the instrumented Python listers count ``ops``
per-candidate; eqs. (7)-(9) and Propositions 1-2 prove those counters
equal closed-form functions of the oriented degrees, so this engine
reports the identical ``ops`` via :func:`repro.core.costs.total_ops`
without paying for per-candidate bookkeeping. ``comparisons`` for the
T/L hash-probe families equals ``ops``; for the scanning/lookup edge
iterators it is the *remote* Table 1 component (the probes a faithful
transcription issues), also in closed form -- see ``_PROBE_COMPONENT``.

Because every method lists the same triangle set, count-only calls
(``collect=False``) are free to run the cheapest of the three base
shapes (T1/T2/T3 candidate streams, picked by ``component_ops``
argmin) while still reporting the *requested* method's ``ops``. When a
C toolchain is available both paths drop into the compiled kernels of
:mod:`repro.engine.native`: counts run the branchless count kernel and
collecting runs emit the triangle array directly from C (identical
canonical ``x < y < z`` triples -- the orientation always points
edges at smaller labels -- so only the enumeration *order* differs,
exactly as it already does between the python and numpy engines). Set
``REPRO_NATIVE=0`` to stay pure NumPy.

Memory stays bounded: candidate pairs are materialized in chunks of
``CHUNK_CANDIDATES`` regardless of how skewed the degree sequence is.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

import numpy as np

from repro.core.costs import component_ops
from repro.core.methods import get_method
from repro.engine import native as _native
from repro.listing.base import ListingResult
from repro.obs import bus as _bus
from repro.obs import memory as _memory
from repro.obs import metrics as _metrics

#: Candidate pairs materialized per batch (caps peak working memory).
CHUNK_CANDIDATES = 1 << 21

#: Bloom filter size in bytes (2 MiB = 2^24 bits -- L2/L3 resident;
#: at m ~ 10^6 edges the false-positive rate is ~7%, so the exact
#: verification pass touches <10% of candidates).
_BLOOM_BYTES = 1 << 21
_BLOOM_SHIFT = np.uint32(32 - 21)  # top 21 hash bits pick the byte
_HASH_A = np.uint32(0x85EBCA6B)  # Murmur3 finalizer constants
_HASH_B = np.uint32(0xC2B2AE35)
_BIT_LUT = (np.uint8(1) << np.arange(8, dtype=np.uint8))


@dataclass(frozen=True)
class _Kernel:
    """One method's vectorized shape.

    Attributes
    ----------
    units:
        Which CSR the unit stream walks: ``"out"`` (directed edges as
        ``row -> value``) or ``"in"`` (edges ``value -> row``).
    window:
        Candidate window per unit ``(r=row, v=value, loc=position)``:

        * ``"prefix"`` -- the unit's own row before the unit (``loc``
          elements);
        * ``"out_of_row"`` -- all of row ``r`` in the out-CSR (the T2
          cross product);
        * ``"full_out"`` / ``"full_in"`` -- all of row ``v`` in the
          out-/in-CSR;
        * ``"in_lt"`` / ``"in_gt"`` -- row ``v`` of the in-CSR
          restricted to labels below / above ``r``;
        * ``"out_gt"`` -- row ``v`` of the out-CSR above ``r``.
    probe:
        Which directed edge each candidate ``w`` must close:
        ``"vw"`` = ``v -> w``, ``"rw"`` = ``r -> w``, ``"wr"`` =
        ``w -> r``.
    tri:
        How ``(x, y, z)`` maps onto ``(w, r, v)``.
    """

    units: str
    window: str
    probe: str
    tri: tuple[str, str, str]


#: Transcription of the 18 pure-Python loops (see module docstring).
_KERNELS: dict[str, _Kernel] = {
    # vertex iterators: candidate pairs around a pivot
    "T1": _Kernel("out", "prefix", "vw", ("w", "v", "r")),
    "T2": _Kernel("in", "out_of_row", "vw", ("w", "r", "v")),
    "T3": _Kernel("in", "prefix", "vw", ("r", "w", "v")),
    "T4": _Kernel("out", "prefix", "vw", ("w", "v", "r")),
    "T5": _Kernel("in", "out_of_row", "vw", ("w", "r", "v")),
    "T6": _Kernel("in", "prefix", "vw", ("r", "w", "v")),
    # scanning edge iterators: remote window per directed edge
    "E1": _Kernel("out", "full_out", "rw", ("w", "v", "r")),
    "E2": _Kernel("out", "prefix", "vw", ("w", "v", "r")),
    "E3": _Kernel("in", "full_in", "wr", ("r", "v", "w")),
    "E4": _Kernel("out", "in_lt", "rw", ("v", "w", "r")),
    "E5": _Kernel("out", "in_gt", "wr", ("v", "r", "w")),
    "E6": _Kernel("in", "out_gt", "wr", ("r", "w", "v")),
    # lookup edge iterators share the SEI search orders
    "L1": _Kernel("out", "full_out", "rw", ("w", "v", "r")),
    "L2": _Kernel("out", "prefix", "vw", ("w", "v", "r")),
    "L3": _Kernel("in", "full_in", "wr", ("r", "v", "w")),
    "L4": _Kernel("out", "in_lt", "rw", ("v", "w", "r")),
    "L5": _Kernel("out", "in_gt", "wr", ("v", "r", "w")),
    "L6": _Kernel("in", "out_gt", "wr", ("r", "w", "v")),
}

#: Methods the numpy engine implements (all 18).
NUMPY_METHODS = tuple(sorted(_KERNELS))

#: Probes a faithful transcription issues per SEI/LEI method, as a base
#: cost component (the Table 1 *remote* term): e.g. E1 scans the full
#: out-row of each out-neighbor, sum X_v over out-edges = the T2 sum.
_PROBE_COMPONENT = {
    "E1": "T2", "E2": "T1", "E3": "T2", "E4": "T3", "E5": "T3",
    "E6": "T1",
    "L1": "T2", "L2": "T1", "L3": "T2", "L4": "T3", "L5": "T3",
    "L6": "T1",
}


class _GraphCache:
    """Per-graph engine arrays: uint32 CSR mirrors + the Bloom table.

    Built once per ``OrientedGraph`` (weakly keyed, so the cache dies
    with the graph). uint32 halves the bytes every hot elementwise pass
    streams, which on a memory-bound host is most of the kernel time.
    """

    def __init__(self, oriented):
        n = oriented.n
        out_idx, out_ptr = oriented.out_csr()
        in_idx, in_ptr = oriented.in_csr()
        self.n64 = np.int64(n)
        self.out_keys = oriented.out_key_array()
        self.out_idx32 = out_idx.astype(np.uint32)
        self.in_idx32 = in_idx.astype(np.uint32)
        self.out_rows32 = np.repeat(
            np.arange(n, dtype=np.uint32), oriented.out_degrees)
        self.in_rows32 = np.repeat(
            np.arange(n, dtype=np.uint32), oriented.in_degrees)
        self.bloom = self._build_bloom(self.out_rows32, self.out_idx32)
        if _memory.is_enabled():
            _memory.track(self, "engine.cache",
                          (self.out_idx32, self.in_idx32,
                           self.out_rows32, self.in_rows32))
            _memory.track(self, "engine.bloom", (self.bloom,))

    @staticmethod
    def _build_bloom(src32, dst32) -> np.ndarray:
        bloom = np.zeros(_BLOOM_BYTES, dtype=np.uint8)
        if src32.size == 0:
            return bloom
        h = src32 * _HASH_A
        h ^= dst32 * _HASH_B
        byte = h >> _BLOOM_SHIFT
        bit = (h & np.uint32(7)).astype(np.uint8)
        for b in range(8):
            sel = byte[bit == b]
            if sel.size:
                occupied = np.bincount(
                    sel, minlength=_BLOOM_BYTES).astype(bool)
                bloom |= occupied.astype(np.uint8) << np.uint8(b)
        return bloom

    def probe_hits(self, a32, b32, stats=None) -> np.ndarray:
        """Indices ``i`` where directed edge ``a32[i] -> b32[i]`` exists.

        Exact: Bloom-prefiltered, then confirmed by binary search in
        the sorted edge-key array. With ``stats`` (a counter dict, only
        handed in while metrics are enabled) the probe/hit/confirm
        volumes are accumulated for the ``engine.*`` telemetry.
        """
        if self.out_keys.size == 0:
            return np.empty(0, dtype=np.int64)
        h = a32 * _HASH_A
        h ^= b32 * _HASH_B
        cand = self.bloom[h >> _BLOOM_SHIFT]
        np.bitwise_and(h, np.uint32(7), out=h)
        cand &= _BIT_LUT[h]
        idxs = np.nonzero(cand)[0]
        if stats is not None:
            stats["bloom_probes"] += int(a32.size)
            stats["bloom_hits"] += int(idxs.size)
            stats["confirm_binsearches"] += int(idxs.size)
        if idxs.size == 0:
            return idxs
        key = a32[idxs].astype(np.int64) * self.n64 + b32[idxs]
        pos = np.searchsorted(self.out_keys, key)
        np.minimum(pos, self.out_keys.size - 1, out=pos)
        return idxs[self.out_keys.take(pos) == key]


_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

#: Closed-form cost components per graph (eqs. (7)-(9)); keyed weakly
#: so repeated ``run_numpy`` calls on one graph (a bench sweeping all
#: 18 methods, say) pay the degree reductions once.
_COMPS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _graph_cache(oriented) -> _GraphCache:
    cache = _CACHE.get(oriented)
    if cache is None:
        cache = _GraphCache(oriented)
        _CACHE[oriented] = cache
    return cache


def _component_ops(oriented) -> dict:
    comps = _COMPS.get(oriented)
    if comps is None:
        comps = component_ops(oriented.out_degrees, oriented.in_degrees)
        _COMPS[oriented] = comps
    return comps


def _windows(oriented, kernel, rows, vals, idx, ptr, lens):
    """Per-unit candidate windows ``(source, starts, counts)``."""
    n = np.int64(oriented.n)
    out_idx, out_ptr = oriented.out_csr()
    in_idx, in_ptr = oriented.in_csr()
    if kernel.window == "prefix":
        source = idx
        starts = np.repeat(ptr[:-1], lens)
        counts = np.arange(idx.size, dtype=np.int64) - starts
    elif kernel.window == "out_of_row":
        source = out_idx
        starts = out_ptr[rows]
        counts = oriented.out_degrees[rows]
    elif kernel.window == "full_out":
        source = out_idx
        starts = out_ptr[vals]
        counts = oriented.out_degrees[vals]
    elif kernel.window == "full_in":
        source = in_idx
        starts = in_ptr[vals]
        counts = oriented.in_degrees[vals]
    elif kernel.window == "in_lt":
        source = in_idx
        starts = in_ptr[vals]
        bound = np.searchsorted(oriented.in_key_array(), vals * n + rows)
        counts = bound - starts
    elif kernel.window == "in_gt":
        source = in_idx
        starts = np.searchsorted(oriented.in_key_array(),
                                 vals * n + rows, side="right")
        counts = in_ptr[vals + 1] - starts
    else:  # "out_gt"
        source = out_idx
        starts = np.searchsorted(oriented.out_key_array(),
                                 vals * n + rows, side="right")
        counts = out_ptr[vals + 1] - starts
    return source, starts, counts


def _new_stats() -> dict:
    """Zeroed per-run kernel counters (see :func:`_publish_stats`)."""
    return {"chunks": 0, "candidates": 0, "bloom_probes": 0,
            "bloom_hits": 0, "confirm_binsearches": 0}


def _publish_stats(stats: dict) -> None:
    """Fold one run's kernel counters into ``engine.*`` metrics.

    Published once per ``run_numpy`` call (never inside the chunk
    loop), so the enabled overhead is a handful of dict increments per
    run; with metrics disabled no stats dict exists at all and the hot
    path is untouched.
    """
    _metrics.inc("engine.runs")
    _metrics.inc("engine.chunks", stats["chunks"])
    _metrics.inc("engine.candidates", stats["candidates"])
    _metrics.inc("engine.bloom_probes", stats["bloom_probes"])
    _metrics.inc("engine.bloom_hits", stats["bloom_hits"])
    _metrics.inc("engine.confirm_binsearches",
                 stats["confirm_binsearches"])


def _run_kernel(oriented, kernel, collect, stats=None, label=""):
    """Run one vectorized shape; returns ``(count, triangle_batches)``.

    The chunk loop is the engine's hot path: everything candidate-sized
    is uint32/int32, window expansion is one ``repeat`` + one
    ``arange`` + one add, and membership goes through the graph
    cache's Bloom-verified probe. ``stats`` (only passed while metrics
    are enabled) accumulates the per-chunk telemetry. With the live
    event bus on, a throttled ``progress`` tracker reports candidates
    consumed vs. the total (known exactly up front from ``cum[-1]``);
    with the bus off -- the default -- no tracker exists and the loop
    is unchanged.
    """
    cache = _graph_cache(oriented)
    if kernel.units == "out":
        idx, ptr = oriented.out_csr()
        lens = oriented.out_degrees
        rows32, vals32 = cache.out_rows32, cache.out_idx32
    else:
        idx, ptr = oriented.in_csr()
        lens = oriented.in_degrees
        rows32, vals32 = cache.in_rows32, cache.in_idx32
    rows = rows32.astype(np.int64)
    vals = idx
    source, starts, counts = _windows(
        oriented, kernel, rows, vals, idx, ptr, lens)
    source32 = source.astype(np.uint32) if source.size else \
        np.empty(0, dtype=np.uint32)

    cum = np.empty(counts.size + 1, dtype=np.int64)
    cum[0] = 0
    np.cumsum(counts, out=cum[1:])

    progress = None
    if _bus.is_enabled() and cum[-1] > 0:
        from repro.obs.live import Progress
        progress = Progress(label or "kernel", float(cum[-1]),
                            predicted_ops=float(cum[-1]),
                            scope="chunk", min_interval_s=0.5)

    count = 0
    batches: list[np.ndarray] | None = [] if collect else None
    nu = counts.size
    u0 = 0
    while u0 < nu:
        _memory.check_budget("engine chunk loop")
        u1 = int(np.searchsorted(cum, cum[u0] + CHUNK_CANDIDATES,
                                 side="right")) - 1
        u1 = min(max(u1, u0 + 1), nu)
        k = int(cum[u1] - cum[u0])
        if k == 0:
            u0 = u1
            continue
        if stats is not None:
            stats["chunks"] += 1
            stats["candidates"] += k
        cnt = counts[u0:u1]
        base = (starts[u0:u1] - (cum[u0:u1] - cum[u0])).astype(np.int32)
        pos = np.arange(k, dtype=np.int32)
        pos += np.repeat(base, cnt)
        w32 = source32[pos]
        if kernel.probe == "vw":
            a32 = np.repeat(vals32[u0:u1], cnt)
            b32 = w32
        elif kernel.probe == "rw":
            a32 = np.repeat(rows32[u0:u1], cnt)
            b32 = w32
        else:  # "wr"
            a32 = w32
            b32 = np.repeat(rows32[u0:u1], cnt)
        hits = cache.probe_hits(a32, b32, stats)
        count += hits.size
        if batches is not None and hits.size:
            unit = np.repeat(np.arange(u0, u1, dtype=np.int64), cnt)[hits]
            parts = {"w": w32[hits].astype(np.int64),
                     "r": rows[unit], "v": vals[unit]}
            batches.append(np.stack(
                [parts[name] for name in kernel.tri], axis=1))
        if progress is not None:
            progress.advance(k, ops=k)
        u0 = u1
    return count, batches


def _publish_native_stats() -> None:
    """Fold the last native run's telemetry into ``engine.native.*``.

    Per-thread op tallies become labelled counters
    (``engine.native.ops.t<k>``) -- deterministic for a fixed thread
    count by the static block assignment, so run-history comparisons
    on them are stable. Called only while metrics are enabled.
    """
    ns = _native.last_stats()
    if ns is None:
        return
    _metrics.inc("engine.native.runs")
    _metrics.inc("engine.native.ops", ns["ops"])
    _metrics.set_gauge("engine.native_threads", float(ns["threads"]))
    _metrics.set_gauge("engine.native_blocks", float(ns["blocks"]))
    for t, t_ops in enumerate(ns["ops_per_thread"]):
        _metrics.inc(f"engine.native.ops.t{t}", t_ops)


def _count_fast(oriented, stats=None) -> tuple[int, bool]:
    """Exact triangle count by the cheapest route available.

    Tries the compiled forward kernel first (identical count, ~ns per
    comparison), then falls back to the cheapest of the three
    vectorized base shapes -- every method lists the same triangle
    set, so count-only work is free to pick its stream. Returns
    ``(count, used_native)``.
    """
    native_count = _native.count_triangles(oriented)
    if native_count is not None:
        return native_count, True
    comps = _component_ops(oriented)
    shape = min(("T1", "T2", "T3"), key=comps.get)
    count, _ = _run_kernel(oriented, _KERNELS[shape], collect=False,
                           stats=stats, label=f"count:{shape}")
    return count, False


def _collect_fast(oriented, kernel, method, stats=None,
                  use_native=None) -> tuple[int, list, bool]:
    """Full triangle list by the fastest route that matches semantics.

    ``use_native=None`` tries the compiled emitting kernel and falls
    back to the vectorized chunk loop; ``False`` skips native
    entirely (the caller wants the NumPy enumeration order);
    ``True`` requires it (raises if the library is unavailable).
    Returns ``(count, triangles, used_native)``.
    """
    if use_native is not False:
        arr = _native.list_triangles_array(oriented)
        if arr is not None:
            return arr.shape[0], list(map(tuple, arr.tolist())), True
        if use_native:
            raise RuntimeError(
                "native engine requested but unavailable: "
                f"{_native.status()}")
    count, batches = _run_kernel(oriented, kernel, collect=True,
                                 stats=stats, label=f"list:{method}")
    if batches:
        stacked = np.concatenate(batches, axis=0)
        triangles = list(map(tuple, stacked.tolist()))
    else:
        triangles = []
    return count, triangles, False


def run_method_kernel(oriented, method: str) -> int:
    """Count-only run of *exactly* ``method``'s kernel shape.

    Unlike ``run_numpy(collect=False)`` -- which is free to count
    through the cheapest base shape, since every method lists the same
    triangles -- this drives the named method's own windows, so the
    arrays it genuinely requires (e.g. the lazy in-key array for the
    ``in_lt``/``in_gt`` methods) actually materialize. The memory
    observability surface (``repro mem``) uses it to make the
    footprint-conformance comparison honest. Returns the count.
    """
    method = method.upper()
    kernel = _KERNELS.get(method)
    if kernel is None:
        raise ValueError(f"unknown method {method!r}; choose from "
                         f"{NUMPY_METHODS}")
    stats = _new_stats() if _metrics.is_enabled() else None
    count, _ = _run_kernel(oriented, kernel, collect=False,
                           stats=stats, label=f"mem:{method}")
    if stats is not None:
        _publish_stats(stats)
    return count


def run_numpy(oriented, method: str = "E1", collect: bool = True,
              use_native: bool | None = None) -> ListingResult:
    """Run one of the 18 methods through the vectorized engine.

    Returns a :class:`ListingResult` equivalent to the pure-Python
    engine's: identical triangles (as a set -- enumeration order
    differs from loop order), identical ``count``, ``ops`` and
    ``hash_inserts``; ``comparisons`` is closed-form (see module
    docstring). ``use_native`` gates the compiled kernels: ``None``
    (default) uses them when available, ``False`` stays pure NumPy,
    ``True`` requires them (``RuntimeError`` otherwise).
    ``extra["engine"]`` is ``"numpy"``; ``extra["native"]`` reports
    whether a compiled kernel produced the result, and
    ``extra["native_kernel"]`` names the intersection variant that ran.
    """
    method = method.upper()
    kernel = _KERNELS.get(method)
    if kernel is None:
        raise ValueError(f"unknown method {method!r}; choose from "
                         f"{NUMPY_METHODS}")
    comps = _component_ops(oriented)
    spec = get_method(method)
    ops = sum(comps[c] for c in spec.components)
    hash_inserts = oriented.m if spec.family in ("vertex", "lei") else 0
    comparisons = ops if spec.family in ("vertex", "lei") \
        else comps[_PROBE_COMPONENT[method]]

    stats = _new_stats() if _metrics.is_enabled() else None
    if collect:
        count, triangles, used_native = _collect_fast(
            oriented, kernel, method, stats=stats, use_native=use_native)
    else:
        triangles = None
        if use_native:
            count = _native.count_triangles(oriented)
            if count is None:
                raise RuntimeError(
                    "native engine requested but unavailable: "
                    f"{_native.status()}")
            used_native = True
        elif use_native is False:
            comps_shape = min(("T1", "T2", "T3"), key=comps.get)
            count, _ = _run_kernel(
                oriented, _KERNELS[comps_shape], collect=False,
                stats=stats, label=f"count:{comps_shape}")
            used_native = False
        else:
            count, used_native = _count_fast(oriented, stats=stats)
    if stats is not None:
        _publish_stats(stats)
    if _metrics.is_enabled() and used_native:
        _publish_native_stats()
    _metrics.set_gauge("engine.native", 1.0 if used_native else 0.0)

    extra = {"engine": "numpy", "native": used_native}
    if used_native:
        last = _native.last_stats()
        if last is not None:
            extra["native_kernel"] = last["kind"]
            extra["native_threads"] = last["threads"]
    return ListingResult(
        method=method,
        count=count,
        triangles=triangles,
        ops=ops,
        comparisons=comparisons,
        hash_inserts=hash_inserts,
        n=oriented.n,
        extra=extra,
    )
