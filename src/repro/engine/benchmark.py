"""Side-by-side engine comparison: python vs. pure NumPy vs. native.

One measurement routine shared by ``benchmarks/bench_lister_throughput``
and ``repro bench --native-compare``: for each method it times the
count-only workload on all three engines of
:func:`repro.listing.list_triangles` -- the instrumented Python
reference, the NumPy kernels with the compiled path explicitly
disabled (``use_native=False``, so the column is honest about what
pure NumPy costs), and the compiled kernels -- plus one full native
*listing* run (the operation the paper's cost model prices). Results
come back as a rendered table and a JSON-ready dict whose
``"methods"`` mapping feeds :func:`repro.obs.report.record_cells`:
``*_ns_per_edge`` entries compare as wall-clock (skipped by
``--no-time``), ``ops``/``triangles`` as deterministic values, and
``speedup_*`` ratios are excluded from baseline comparison by name.
"""

from __future__ import annotations

import time

from repro.engine import native
from repro.engine.kernels import run_numpy
from repro.listing.api import list_triangles

#: Default comparison set: the paper's four fundamental methods plus
#: one lookup iterator per probe direction.
DEFAULT_METHODS = ("T1", "T2", "E1", "E4", "L1", "L3")


def _timed(fn, repeats: int = 1):
    """Best-of-``repeats`` wall-clock (single-shot timings at small
    ``n`` are dominated by scheduler noise, which would make the
    bench's speedup gates flaky)."""
    result, best = None, float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def native_compare(oriented, methods=DEFAULT_METHODS,
                   threads: int | None = None, repeats: int = 3):
    """Measure every (method, engine) pair on one oriented graph.

    Returns ``(text, data)``: a rendered side-by-side table and the
    machine-readable dict described in the module docstring. Each
    timing is the best of ``repeats`` runs. The native columns are
    ``None``-valued (and rendered as ``--``) when the compiled kernels
    are unavailable; the comparison itself never requires them.
    """
    m = oriented.m or 1
    have_native = native.available()
    # warm the pure-NumPy caches (Bloom table + uint32 mirrors) so the
    # first timed method doesn't pay the one-off build
    run_numpy(oriented, methods[0] if methods else "T1",
              collect=False, use_native=False)
    data = {
        "n": int(oriented.n),
        "m": int(oriented.m),
        "native": have_native,
        "native_status": native.status(),
        "methods": {},
    }

    native_list_ns = None
    if have_native:
        # warm the block decomposition outside the timed region, then
        # time one full listing emission (method-independent)
        native.count_triangles(oriented, threads=threads)
        arr, elapsed = _timed(
            lambda: native.list_triangles_array(oriented,
                                                threads=threads),
            repeats)
        if arr is not None:
            native_list_ns = elapsed / m * 1e9
            stats = native.last_stats()
            data["native_kernel"] = stats["kind"]
            data["native_threads"] = stats["threads"]
    data["native_list_ns_per_edge"] = native_list_ns

    rows = []
    for method in methods:
        py, t_py = _timed(lambda: list_triangles(
            oriented, method, collect=False, engine="python"))
        pure, t_np = _timed(lambda: run_numpy(
            oriented, method, collect=False, use_native=False),
            repeats)
        assert py.count == pure.count, method
        t_nat = None
        if have_native:
            nat, t_nat = _timed(lambda: run_numpy(
                oriented, method, collect=False, use_native=True),
                repeats)
            assert nat.count == py.count, method
        rows.append((method, py.ops, py.count, t_py, t_np, t_nat))

    header = (f"Engine throughput (n={oriented.n}, m={oriented.m}, "
              f"count-only; native={have_native}"
              + (f", kernel={data.get('native_kernel')}"
                 f", threads={data.get('native_threads')}"
                 if have_native else "") + ")")
    lines = [header,
             f"{'method':>7} {'ops':>12} {'py ns/edge':>11} "
             f"{'np ns/edge':>11} {'nat ns/edge':>12} "
             f"{'py/np':>7} {'np/nat':>7}"]
    for method, ops, count, t_py, t_np, t_nat in rows:
        py_ns = t_py / m * 1e9
        np_ns = t_np / m * 1e9
        speedup_np = t_py / t_np if t_np else float("inf")
        cell = {
            "ops": int(ops), "triangles": int(count),
            "python_ns_per_edge": py_ns,
            "numpy_ns_per_edge": np_ns,
            "speedup_numpy": speedup_np,
            "native_ns_per_edge": None,
            "speedup_native": None,
        }
        if t_nat is not None:
            cell["native_ns_per_edge"] = t_nat / m * 1e9
            cell["speedup_native"] = (t_np / t_nat if t_nat
                                      else float("inf"))
            nat_col = f"{cell['native_ns_per_edge']:>12.1f}"
            nat_speed = f"{cell['speedup_native']:>6.1f}x"
        else:
            nat_col = f"{'--':>12}"
            nat_speed = f"{'--':>7}"
        lines.append(f"{method:>7} {ops:>12} {py_ns:>11.1f} "
                     f"{np_ns:>11.1f} {nat_col} "
                     f"{speedup_np:>6.1f}x {nat_speed}")
        data["methods"][method] = cell
    if native_list_ns is not None:
        lines.append(f"{'(list)':>7} {'-':>12} {'-':>11} {'-':>11} "
                     f"{native_list_ns:>12.1f} {'-':>7} {'-':>7}")
    return "\n".join(lines), data
