"""Side-by-side engine comparison: python vs. pure NumPy vs. native.

One measurement routine shared by ``benchmarks/bench_lister_throughput``
and ``repro bench --native-compare``: for each method it times the
count-only workload on all three engines of
:func:`repro.listing.list_triangles` -- the instrumented Python
reference, the NumPy kernels with the compiled path explicitly
disabled (``use_native=False``, so the column is honest about what
pure NumPy costs), and the compiled kernels -- plus one full native
*listing* run (the operation the paper's cost model prices). Results
come back as a rendered table and a JSON-ready dict whose
``"methods"`` mapping feeds :func:`repro.obs.report.record_cells`:
``*_ns_per_edge`` entries compare as wall-clock (skipped by
``--no-time``), ``ops``/``triangles`` as deterministic values, and
``speedup_*`` ratios are excluded from baseline comparison by name.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from functools import lru_cache

from repro.engine import native
from repro.engine.kernels import run_numpy
from repro.listing.api import list_triangles

#: Default comparison set: the paper's four fundamental methods plus
#: one lookup iterator per probe direction.
DEFAULT_METHODS = ("T1", "T2", "E1", "E4", "L1", "L3")

#: Environment override for the rolling calibration store path.
CALIBRATION_FILE_ENV = "REPRO_CALIBRATION_FILE"

#: Default store, versioned alongside the perf baselines.
DEFAULT_CALIBRATION_PATH = (pathlib.Path("benchmarks") / "baselines"
                            / "speed_ratio.json")

#: Stored measurements older than this are stale (override via
#: ``REPRO_CALIBRATION_MAX_AGE_S``).
DEFAULT_CALIBRATION_MAX_AGE_S = 30 * 24 * 3600.0

#: Rolling-window cap per engine; oldest entries are trimmed.
MAX_STORE_ENTRIES = 32

_TRUTHY = {"1", "true", "yes", "on"}


def _timed(fn, repeats: int = 1):
    """Best-of-``repeats`` wall-clock (single-shot timings at small
    ``n`` are dominated by scheduler noise, which would make the
    bench's speedup gates flaky)."""
    result, best = None, float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def measure_speed_ratio(oriented=None, *, n: int = 4000, seed: int = 0,
                        hash_method: str = "T1", sei_method: str = "E1",
                        engine: str = "numpy", repeats: int = 3) -> float:
    """Measure the section-2.4 ``speed_ratio`` on *this* host.

    Table 3's 94.8x is the per-operation advantage of sequential
    scanning (SEI) over hash-based lookups on the authors' SIMD
    hardware. This micro-calibration measures the same quantity for the
    selected engine of this library: per-op wall time of the best
    hash-family method divided by per-op wall time of the best SEI
    method, each timed best-of-``repeats`` on one oriented graph.

    ``oriented`` defaults to a synthetic heavy-tailed graph
    (``Pareto(1.7)``, descending orientation) so callers can calibrate
    without supplying one. The result feeds
    :func:`repro.core.decision.resolve_speed_ratio` (and through it the
    planner) via ``speed_ratio="calibrated"``.

    Note the honest outcome on interpreted runtimes: the pure-Python
    reference engine has no SIMD scanning advantage, so it measures a
    ratio near 1 -- flipping the decision rule toward hash methods on
    graphs where the paper's hardware favored SEI.
    """
    if oriented is None:
        import numpy as np

        from repro.distributions.pareto import DiscretePareto
        from repro.distributions.sampling import sample_degree_sequence
        from repro.distributions.truncation import root_truncation
        from repro.graphs.generators import generate_graph
        from repro.orientations.permutations import DescendingDegree
        from repro.orientations.relabel import orient

        rng = np.random.default_rng(seed)
        dist = DiscretePareto(1.7, 21.0).truncate(root_truncation(n))
        degrees = sample_degree_sequence(dist, n, rng)
        oriented = orient(generate_graph(degrees, rng),
                          DescendingDegree())
    if engine == "python":
        oriented.edge_key_set()  # warm the membership set
    per_op = {}
    for method in (hash_method, sei_method):
        # one warm-up pass per method (cache builds, allocator churn)
        list_triangles(oriented, method, collect=False, engine=engine)
        result, elapsed = _timed(
            lambda m=method: list_triangles(oriented, m, collect=False,
                                            engine=engine),
            repeats)
        per_op[method] = elapsed / max(result.ops, 1)
    ratio = per_op[hash_method] / max(per_op[sei_method], 1e-12)
    return max(ratio, 1e-6)


def calibration_path(path=None) -> pathlib.Path:
    """Resolve the store: explicit arg > env > versioned default."""
    if path is not None:
        return pathlib.Path(path)
    env = os.environ.get(CALIBRATION_FILE_ENV, "").strip()
    return pathlib.Path(env) if env else DEFAULT_CALIBRATION_PATH


def host_fingerprint() -> str:
    """Coarse host identity guarding stored ratios against reuse on a
    different machine class (a ratio measured on an AVX-512 box must
    not price picks on an ARM runner)."""
    import platform
    return (f"{os.cpu_count()}-{platform.machine()}-"
            f"py{'.'.join(platform.python_version_tuple()[:2])}")


def load_calibration_store(path=None) -> dict:
    """Parse the store; missing or corrupt files degrade to empty.

    Shape: ``{"version": 1, "entries": [{engine, ratio, ts, host,
    host_meta, n, seed}, ...]}`` -- newest entries last.
    """
    store_path = calibration_path(path)
    empty = {"version": 1, "entries": []}
    if not store_path.exists():
        return empty
    try:
        data = json.loads(store_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return empty
    if not isinstance(data, dict) or \
            not isinstance(data.get("entries"), list):
        return empty
    data.setdefault("version", 1)
    return data


def store_calibration(ratio: float, engine: str = "numpy", path=None,
                      *, n: int = 4000, seed: int = 0,
                      now: float | None = None) -> pathlib.Path:
    """Append one measured ratio to the rolling store (atomic write).

    Keeps the newest :data:`MAX_STORE_ENTRIES` per engine, stamps the
    host fingerprint + full host metadata, and replaces the file via a
    same-directory temp rename so a concurrent reader never sees a
    torn store.
    """
    from repro.obs.records import host_meta
    store_path = calibration_path(path)
    store = load_calibration_store(store_path)
    store["entries"].append({
        "engine": str(engine),
        "ratio": float(ratio),
        "ts": float(now if now is not None else time.time()),
        "host": host_fingerprint(),
        "host_meta": host_meta(),
        "n": int(n),
        "seed": int(seed),
    })
    # rolling window: newest MAX_STORE_ENTRIES per engine survive
    by_engine: dict[str, list] = {}
    for entry in store["entries"]:
        by_engine.setdefault(str(entry.get("engine")), []).append(entry)
    kept = []
    for entries in by_engine.values():
        entries.sort(key=lambda e: e.get("ts", 0.0))
        kept.extend(entries[-MAX_STORE_ENTRIES:])
    kept.sort(key=lambda e: e.get("ts", 0.0))
    store["entries"] = kept
    store_path.parent.mkdir(parents=True, exist_ok=True)
    tmp = store_path.with_suffix(store_path.suffix + ".tmp")
    tmp.write_text(json.dumps(store, indent=2) + "\n",
                   encoding="utf-8")
    os.replace(tmp, store_path)
    return store_path


def stored_speed_ratio(engine: str = "numpy", path=None,
                       max_age_s: float | None = None,
                       now: float | None = None) -> float | None:
    """The store's answer for this host, or ``None``.

    Median of the fresh, host-matching entries for ``engine`` --
    median because the rolling window absorbs one noisy CI
    measurement without jerking every subsequent plan. Entries from
    other hosts are ignored outright; when matching entries exist but
    all exceed ``max_age_s`` (default
    :data:`DEFAULT_CALIBRATION_MAX_AGE_S`, override via
    ``REPRO_CALIBRATION_MAX_AGE_S``), the store reports stale: a
    ``planner.calibration_stale`` counter ticks and ``None`` is
    returned so the caller falls back to a fresh measurement.
    """
    if max_age_s is None:
        env = os.environ.get("REPRO_CALIBRATION_MAX_AGE_S", "").strip()
        try:
            max_age_s = float(env) if env else \
                DEFAULT_CALIBRATION_MAX_AGE_S
        except ValueError:
            max_age_s = DEFAULT_CALIBRATION_MAX_AGE_S
    if now is None:
        now = time.time()
    host = host_fingerprint()
    matching = [e for e in load_calibration_store(path)["entries"]
                if e.get("engine") == engine and e.get("host") == host
                and isinstance(e.get("ratio"), (int, float))
                and e["ratio"] > 0]
    if not matching:
        return None
    fresh = [e for e in matching
             if now - float(e.get("ts", 0.0)) <= max_age_s]
    if not fresh:
        from repro.obs import metrics as _metrics
        _metrics.inc("planner.calibration_stale")
        return None
    ratios = sorted(float(e["ratio"]) for e in fresh)
    mid = len(ratios) // 2
    if len(ratios) % 2:
        return ratios[mid]
    return 0.5 * (ratios[mid - 1] + ratios[mid])


@lru_cache(maxsize=8)
def calibrated_speed_ratio(engine: str = "numpy", n: int = 4000,
                           seed: int = 0) -> float:
    """The ``speed_ratio="calibrated"`` backend, store-first.

    Consults the rolling calibration store before burning wall time on
    a fresh micro-benchmark: a fresh host-matching measurement history
    answers immediately (``planner.calibrations_from_store``); a cold
    or stale store falls through to :func:`measure_speed_ratio` on the
    default synthetic graph (``planner.calibrations``), and the new
    measurement is persisted back when ``REPRO_CALIBRATION_WRITE`` is
    truthy -- the audit layer's feedback loop. Per-process cached
    either way.
    """
    from repro.obs import metrics as _metrics

    stored = stored_speed_ratio(engine)
    if stored is not None:
        _metrics.inc("planner.calibrations_from_store")
        return stored
    _metrics.inc("planner.calibrations")
    ratio = measure_speed_ratio(n=n, seed=seed, engine=engine)
    if os.environ.get("REPRO_CALIBRATION_WRITE",
                      "").strip().lower() in _TRUTHY:
        store_calibration(ratio, engine=engine, n=n, seed=seed)
    return ratio


def native_compare(oriented, methods=DEFAULT_METHODS,
                   threads: int | None = None, repeats: int = 3):
    """Measure every (method, engine) pair on one oriented graph.

    Returns ``(text, data)``: a rendered side-by-side table and the
    machine-readable dict described in the module docstring. Each
    timing is the best of ``repeats`` runs. The native columns are
    ``None``-valued (and rendered as ``--``) when the compiled kernels
    are unavailable; the comparison itself never requires them.
    """
    m = oriented.m or 1
    have_native = native.available()
    # warm the pure-NumPy caches (Bloom table + uint32 mirrors) so the
    # first timed method doesn't pay the one-off build
    run_numpy(oriented, methods[0] if methods else "T1",
              collect=False, use_native=False)
    data = {
        "n": int(oriented.n),
        "m": int(oriented.m),
        "native": have_native,
        "native_status": native.status(),
        "methods": {},
    }

    native_list_ns = None
    if have_native:
        # warm the block decomposition outside the timed region, then
        # time one full listing emission (method-independent)
        native.count_triangles(oriented, threads=threads)
        arr, elapsed = _timed(
            lambda: native.list_triangles_array(oriented,
                                                threads=threads),
            repeats)
        if arr is not None:
            native_list_ns = elapsed / m * 1e9
            stats = native.last_stats()
            data["native_kernel"] = stats["kind"]
            data["native_threads"] = stats["threads"]
    data["native_list_ns_per_edge"] = native_list_ns

    rows = []
    for method in methods:
        py, t_py = _timed(lambda: list_triangles(
            oriented, method, collect=False, engine="python"))
        pure, t_np = _timed(lambda: run_numpy(
            oriented, method, collect=False, use_native=False),
            repeats)
        assert py.count == pure.count, method
        t_nat = None
        if have_native:
            nat, t_nat = _timed(lambda: run_numpy(
                oriented, method, collect=False, use_native=True),
                repeats)
            assert nat.count == py.count, method
        rows.append((method, py.ops, py.count, t_py, t_np, t_nat))

    header = (f"Engine throughput (n={oriented.n}, m={oriented.m}, "
              f"count-only; native={have_native}"
              + (f", kernel={data.get('native_kernel')}"
                 f", threads={data.get('native_threads')}"
                 if have_native else "") + ")")
    lines = [header,
             f"{'method':>7} {'ops':>12} {'py ns/edge':>11} "
             f"{'np ns/edge':>11} {'nat ns/edge':>12} "
             f"{'py/np':>7} {'np/nat':>7}"]
    for method, ops, count, t_py, t_np, t_nat in rows:
        py_ns = t_py / m * 1e9
        np_ns = t_np / m * 1e9
        speedup_np = t_py / t_np if t_np else float("inf")
        cell = {
            "ops": int(ops), "triangles": int(count),
            "python_ns_per_edge": py_ns,
            "numpy_ns_per_edge": np_ns,
            "speedup_numpy": speedup_np,
            "native_ns_per_edge": None,
            "speedup_native": None,
        }
        if t_nat is not None:
            cell["native_ns_per_edge"] = t_nat / m * 1e9
            cell["speedup_native"] = (t_np / t_nat if t_nat
                                      else float("inf"))
            nat_col = f"{cell['native_ns_per_edge']:>12.1f}"
            nat_speed = f"{cell['speedup_native']:>6.1f}x"
        else:
            nat_col = f"{'--':>12}"
            nat_speed = f"{'--':>7}"
        lines.append(f"{method:>7} {ops:>12} {py_ns:>11.1f} "
                     f"{np_ns:>11.1f} {nat_col} "
                     f"{speedup_np:>6.1f}x {nat_speed}")
        data["methods"][method] = cell
    if native_list_ns is not None:
        lines.append(f"{'(list)':>7} {'-':>12} {'-':>11} {'-':>11} "
                     f"{native_list_ns:>12.1f} {'-':>7} {'-':>7}")
    return "\n".join(lines), data
