"""Compiled listing/counting kernels (gcc + ctypes, zero dependencies).

The vectorized NumPy kernels bottom out at a few tens of nanoseconds
per candidate on a memory-bound host -- each elementwise pass streams
the whole chunk through RAM. The C kernels in this module do the same
exact work at ~1 ns per elementary operation, because the working set
per pivot is a handful of cache lines. Everything compiles *at first
use* with whatever C compiler the host already has (``cc``/``gcc``;
nothing is installed) and loads via :mod:`ctypes`. Everything is
gated: no compiler, a failed compile, or ``REPRO_NATIVE=0`` all
degrade to the NumPy path (a failed compile is cached for the process
and reported once as a structured warning; the rest stay DEBUG).

Version 2 extends the original count-only merge loop into a small
kernel library:

* **Two intersection variants** (Latapy 2008; Ortmann & Brandes 2014):
  ``merge`` -- two-pointer merge of the sorted prefix ``N+(z)[< y]``
  against ``N+(y)`` per directed edge ``z -> y``; and ``bitmap`` -- a
  per-thread byte mark array over ``N+(z)`` probed by one load per
  candidate, the hash/lookup regime that wins on skewed rows. Both
  enumerate the identical triangle sequence ``(x, y, z)`` with
  ``x < y < z``, ascending in ``x`` within each edge, so emitted
  buffers are bit-identical across variants *and* thread counts.
* **Listing, not just counting**: triangles are emitted into
  preallocated ``uint32`` buffers -- either exact-size (count pass,
  prefix offsets, emit pass) or streamed chunk-by-chunk through a
  resumable ``(z, iy)`` cursor so callers bound memory without
  per-triangle Python boxing.
* **A pthreads block driver**: the vertex range is pre-split into
  ``REPRO_NATIVE_BLOCKS`` edge-balanced blocks (a pure function of the
  graph, *not* of the thread count) and threads claim blocks statically
  round-robin. Per-block triangle/op counters are merged back in block
  order, so counts, ops, and emitted buffers are bit-identical at any
  ``REPRO_NATIVE_THREADS`` value.

The exactness argument is the forward/compact-forward one: for each
edge ``z -> y``, every ``x`` in the intersection of ``N+(z)`` and
``N+(y)`` satisfies
``x < y < z`` (out-neighbors have smaller labels), and each triangle
has exactly one such ``(z, y)`` pair -- so the count is
orientation-exact and method-independent.
"""

from __future__ import annotations

import ctypes
import logging as _stdlog
import os
import shutil
import subprocess
import sys
import tempfile
import weakref

import numpy as np

from repro.obs import memory as _memory

__all__ = [
    "KERNEL_KINDS",
    "available",
    "count_triangles",
    "last_stats",
    "list_triangles_array",
    "resolve_kind",
    "resolve_threads",
    "self_test",
    "status",
    "stream_triangles",
]

#: Intersection-kernel variants the library compiles.
KERNEL_KINDS = ("merge", "bitmap")

_KIND_CODES = {"merge": 0, "bitmap": 1}

#: Vertex blocks the threaded driver splits a graph into. A fixed
#: block count (independent of the thread count) is what makes the
#: merged per-block counters and the emitted buffers bit-identical at
#: any pool geometry.
DEFAULT_BLOCKS = 64

_C_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <pthread.h>

#define KIND_MERGE 0
#define KIND_BITMAP 1

/* One prepared run over an edge-balanced block decomposition of the
 * oriented CSR. indices are uint32 (the engine gates graphs to
 * n < 2^32) and sorted ascending within each row; halving the operand
 * width nearly halves the memory-bound scan cost. block_starts has
 * nblocks+1 vertex boundaries. In the count pass (emit == 0)
 * block_counts/block_ops receive per-block triangle and elementary-op
 * totals; in the emit pass triangles are written as (x, y, z) uint32
 * triples at buf + 3 * offsets[block]. */
typedef struct {
    const int64_t *indptr;
    const uint32_t *indices;
    const int64_t *block_starts;
    int64_t nblocks;
    int64_t n;
    int kind;
    int emit;
    const int64_t *offsets;
    uint32_t *buf;
    int64_t *block_counts;
    int64_t *block_ops;
    int nthreads;
} plan_t;

typedef struct {
    const plan_t *plan;
    int tid;
    uint8_t *mark; /* n-byte scratch, bitmap kind only */
    int failed;
} worker_t;

/* Forward kernels over one vertex block. Both kinds enumerate, per
 * directed edge z -> y (iy ascending), the intersection
 * N+(z)[< y] with N+(y) in ascending x -- identical sequences, so
 * emitted buffers never depend on the kind or the thread count. The
 * count-only loops are branchless (predicated advances / summed mark
 * bytes); the emit loops branch on the rare match. */
static void run_block(const plan_t *p, int64_t b, uint8_t *mark)
{
    const int64_t *indptr = p->indptr;
    const uint32_t *indices = p->indices;
    const int64_t z0 = p->block_starts[b];
    const int64_t z1 = p->block_starts[b + 1];
    int64_t count = 0;
    int64_t ops = 0;
    uint32_t *out = p->emit ? p->buf + 3 * p->offsets[b] : 0;

    if (p->kind == KIND_MERGE) {
        for (int64_t z = z0; z < z1; z++) {
            const int64_t s = indptr[z];
            const int64_t e = indptr[z + 1];
            for (int64_t iy = s; iy < e; iy++) {
                const uint32_t y = indices[iy];
                int64_t i = s;
                int64_t j = indptr[y];
                const int64_t je = indptr[y + 1];
                if (out) {
                    while (i < iy && j < je) {
                        const uint32_t a = indices[i];
                        const uint32_t c = indices[j];
                        ops++;
                        if (a == c) {
                            *out++ = a;
                            *out++ = y;
                            *out++ = (uint32_t)z;
                            count++;
                        }
                        i += (a <= c);
                        j += (c <= a);
                    }
                } else {
                    while (i < iy && j < je) {
                        const uint32_t a = indices[i];
                        const uint32_t c = indices[j];
                        ops++;
                        count += (a == c);
                        i += (a <= c);
                        j += (c <= a);
                    }
                }
            }
        }
    } else {
        for (int64_t z = z0; z < z1; z++) {
            const int64_t s = indptr[z];
            const int64_t e = indptr[z + 1];
            for (int64_t i = s; i < e; i++)
                mark[indices[i]] = 1;
            for (int64_t iy = s; iy < e; iy++) {
                const uint32_t y = indices[iy];
                int64_t j = indptr[y];
                const int64_t je = indptr[y + 1];
                ops += je - j;
                if (out) {
                    for (; j < je; j++) {
                        const uint32_t x = indices[j];
                        if (mark[x]) {
                            *out++ = x;
                            *out++ = y;
                            *out++ = (uint32_t)z;
                            count++;
                        }
                    }
                } else {
                    for (; j < je; j++)
                        count += mark[indices[j]];
                }
            }
            for (int64_t i = s; i < e; i++)
                mark[indices[i]] = 0;
        }
    }
    if (!p->emit)
        p->block_counts[b] = count;
    p->block_ops[b] = ops;
}

/* Threads claim blocks statically round-robin by thread index, so the
 * block -> thread assignment (hence every per-thread tally Python
 * derives from the block arrays) is deterministic. */
static void *worker(void *arg)
{
    worker_t *w = (worker_t *)arg;
    const plan_t *p = w->plan;
    for (int64_t b = w->tid; b < p->nblocks; b += p->nthreads)
        run_block(p, b, w->mark);
    return 0;
}

int repro_forward(const int64_t *indptr, const uint32_t *indices,
                  const int64_t *block_starts, int64_t nblocks,
                  int64_t n, int kind, int nthreads, int emit,
                  const int64_t *offsets, uint32_t *buf,
                  int64_t *block_counts, int64_t *block_ops)
{
    plan_t p = {indptr, indices, block_starts, nblocks, n, kind, emit,
                offsets, buf, block_counts, block_ops, nthreads};
    if (nthreads < 1)
        nthreads = 1;
    if (nthreads > nblocks)
        nthreads = (int)(nblocks > 0 ? nblocks : 1);
    p.nthreads = nthreads;

    if (nthreads == 1) {
        uint8_t *mark = 0;
        if (kind == KIND_BITMAP) {
            mark = (uint8_t *)calloc(n > 0 ? (size_t)n : 1, 1);
            if (!mark)
                return -1;
        }
        for (int64_t b = 0; b < nblocks; b++)
            run_block(&p, b, mark);
        free(mark);
        return 0;
    }

    pthread_t *threads =
        (pthread_t *)malloc(sizeof(pthread_t) * (size_t)nthreads);
    worker_t *ws =
        (worker_t *)malloc(sizeof(worker_t) * (size_t)nthreads);
    if (!threads || !ws) {
        free(threads);
        free(ws);
        return -1;
    }
    int rc = 0;
    for (int t = 0; t < nthreads; t++) {
        ws[t].plan = &p;
        ws[t].tid = t;
        ws[t].failed = 0;
        ws[t].mark = 0;
        if (kind == KIND_BITMAP) {
            ws[t].mark = (uint8_t *)calloc(n > 0 ? (size_t)n : 1, 1);
            if (!ws[t].mark)
                rc = -1;
        }
    }
    int started = 0;
    if (rc == 0) {
        for (; started < nthreads; started++) {
            if (pthread_create(&threads[started], 0, worker,
                               &ws[started]) != 0) {
                rc = -1;
                break;
            }
        }
    }
    for (int t = 0; t < started; t++)
        pthread_join(threads[t], 0);
    for (int t = 0; t < nthreads; t++)
        free(ws[t].mark);
    free(threads);
    free(ws);
    return rc;
}

/* Resumable single-thread emitter: processes directed edges from
 * cursor = {z, iy} and appends triangles to buf until fewer than
 * max-out-degree triples may fit, then saves the cursor and returns
 * the number of triangles written. cap is in triangles. The caller
 * guarantees cap >= the maximum out-degree so every (z, iy) pair's
 * worst case fits an empty buffer. ops accumulates into *ops_out. */
int64_t repro_forward_stream(const int64_t *indptr,
                             const uint32_t *indices,
                             int64_t n, int kind, int64_t *cursor,
                             uint32_t *buf, int64_t cap,
                             int64_t *ops_out, uint8_t *mark)
{
    int64_t z = cursor[0];
    int64_t iy = cursor[1];
    int64_t written = 0;
    int64_t ops = 0;

    for (; z < n; z++) {
        const int64_t s = indptr[z];
        const int64_t e = indptr[z + 1];
        if (iy < s)
            iy = s;
        if (kind == KIND_BITMAP)
            for (int64_t i = s; i < e; i++)
                mark[indices[i]] = 1;
        for (; iy < e; iy++) {
            const uint32_t y = indices[iy];
            const int64_t js = indptr[y];
            const int64_t je = indptr[y + 1];
            int64_t worst = iy - s;
            if (je - js < worst)
                worst = je - js;
            if (written + worst > cap)
                goto pause;
            uint32_t *out = buf + 3 * written;
            if (kind == KIND_MERGE) {
                int64_t i = s;
                int64_t j = js;
                while (i < iy && j < je) {
                    const uint32_t a = indices[i];
                    const uint32_t c = indices[j];
                    ops++;
                    if (a == c) {
                        *out++ = a;
                        *out++ = y;
                        *out++ = (uint32_t)z;
                        written++;
                    }
                    i += (a <= c);
                    j += (c <= a);
                }
            } else {
                ops += je - js;
                for (int64_t j = js; j < je; j++) {
                    const uint32_t x = indices[j];
                    if (mark[x]) {
                        *out++ = x;
                        *out++ = y;
                        *out++ = (uint32_t)z;
                        written++;
                    }
                }
            }
        }
        if (kind == KIND_BITMAP)
            for (int64_t i = s; i < e; i++)
                mark[indices[i]] = 0;
        iy = -1; /* next z starts at its own row head */
    }
pause:
    if (kind == KIND_BITMAP && z < n) {
        const int64_t s = indptr[z];
        const int64_t e = indptr[z + 1];
        for (int64_t i = s; i < e; i++)
            mark[indices[i]] = 0;
    }
    cursor[0] = z;
    cursor[1] = iy;
    *ops_out += ops;
    return written;
}
"""

_I64P = ctypes.POINTER(ctypes.c_int64)
_U32P = ctypes.POINTER(ctypes.c_uint32)
_U8P = ctypes.POINTER(ctypes.c_uint8)


class _Library:
    """Resolved ctypes handles of the compiled kernel library."""

    def __init__(self, cdll: ctypes.CDLL):
        self._cdll = cdll  # keep the mapping alive
        self.forward = cdll.repro_forward
        self.forward.restype = ctypes.c_int
        self.forward.argtypes = [
            _I64P, _U32P, _I64P, ctypes.c_int64, ctypes.c_int64,
            ctypes.c_int, ctypes.c_int, ctypes.c_int, _I64P, _U32P,
            _I64P, _I64P,
        ]
        self.forward_stream = cdll.repro_forward_stream
        self.forward_stream.restype = ctypes.c_int64
        self.forward_stream.argtypes = [
            _I64P, _U32P, ctypes.c_int64, ctypes.c_int, _I64P, _U32P,
            ctypes.c_int64, _I64P, _U8P,
        ]


_UNSET = object()
_lib = _UNSET  # tri-state: _UNSET -> not tried; None -> unavailable
_status: dict = {"state": "unresolved", "reason": None, "compiler": None}
_last_stats: dict | None = None


def _build_library():
    """Compile the kernels into a per-process temp dir; None on failure.

    The outcome is recorded in :data:`_status`; :func:`available`
    caches the result so a failed compile never re-invokes the
    compiler in this process, and emits exactly one structured WARNING
    through :mod:`repro.obs.logging`.
    """
    if os.environ.get("REPRO_NATIVE", "1").lower() in ("0", "false", ""):
        _status.update(state="gated", reason="REPRO_NATIVE disabled")
        return None
    compiler = shutil.which("cc") or shutil.which("gcc")
    if compiler is None:
        _status.update(state="no-compiler",
                       reason="no cc/gcc on PATH")
        return None
    _status["compiler"] = compiler
    workdir = tempfile.mkdtemp(prefix="repro-native-")
    src = os.path.join(workdir, "kernel.c")
    lib = os.path.join(workdir, "kernel.so")
    try:
        with open(src, "w") as fh:
            fh.write(_C_SOURCE)
        subprocess.run(
            [compiler, "-O3", "-shared", "-fPIC", "-pthread",
             "-o", lib, src],
            check=True, capture_output=True, timeout=120)
        handle = _Library(ctypes.CDLL(lib))
        _status.update(state="ok", reason=None)
        return handle
    except subprocess.CalledProcessError as exc:
        detail = (exc.stderr or b"").decode("utf-8", "replace").strip()
        _status.update(state="compile-failed",
                       reason=detail.splitlines()[-1] if detail
                       else "compiler exited non-zero")
        return None
    except (OSError, subprocess.SubprocessError, AttributeError) as exc:
        _status.update(state="compile-failed", reason=str(exc))
        return None


def available() -> bool:
    """Whether the compiled kernels are usable in this process.

    The first call resolves (and caches) the compile attempt -- gated,
    missing-compiler, and success outcomes log as structured DEBUG
    events, a *failed compile* as one structured WARNING -- and
    publishes the ``engine.native_available`` gauge when metrics are
    enabled. Subsequent calls are a cached attribute check: a failure
    never retries the compiler within the process.
    """
    global _lib
    if _lib is _UNSET:
        _lib = _build_library()
        from repro.obs import metrics as _metrics
        from repro.obs.logging import get_logger, log_event
        level = (_stdlog.WARNING
                 if _status["state"] == "compile-failed"
                 else _stdlog.DEBUG)
        log_event(get_logger(__name__), level,
                  "native kernel resolution",
                  available=_lib is not None,
                  state=_status["state"],
                  reason=_status["reason"] or "",
                  gated=os.environ.get("REPRO_NATIVE", "1"))
        _metrics.set_gauge("engine.native_available",
                           1.0 if _lib is not None else 0.0)
    return _lib is not None


def status() -> dict:
    """Resolution state: ``{state, reason, compiler}`` (post-resolve).

    ``state`` is one of ``unresolved``, ``ok``, ``gated``,
    ``no-compiler``, ``compile-failed``, or ``disabled`` (a test
    monkeypatched the library away). Benchmark sidecars record this
    next to their timings.
    """
    out = dict(_status)
    if _lib is None and out["state"] in ("unresolved", "ok"):
        out["state"] = "disabled"
    return out


def resolve_threads(threads: int | None = None) -> int:
    """Worker threads for the block driver.

    Explicit argument first, then ``REPRO_NATIVE_THREADS``, then the
    CPU count. Always at least 1. Thread count never changes results
    -- only wall-clock.
    """
    if threads is not None:
        return max(1, int(threads))
    env = os.environ.get("REPRO_NATIVE_THREADS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def resolve_kind(oriented, kind: str | None = None) -> str:
    """Intersection variant: explicit, ``REPRO_NATIVE_KERNEL``, or auto.

    The auto heuristic follows the degree-regime argument (Latapy
    2008): the bitmap probe does one predicted byte load per candidate
    where the merge does a data-dependent pointer dance, so it wins
    whenever its ``n``-byte mark array stays cache-friendly -- measured
    ~1.5-3x on both the 3k and 100k Pareto benches. The two-pointer
    merge takes over for huge vertex sets where per-thread mark arrays
    would thrash (or be refused by the allocator).
    """
    if kind is None:
        kind = os.environ.get("REPRO_NATIVE_KERNEL", "auto") \
            .strip().lower() or "auto"
    if kind == "auto":
        kind = "bitmap" if oriented.n <= (1 << 25) else "merge"
    if kind not in _KIND_CODES:
        raise ValueError(f"unknown native kernel {kind!r}; choose from "
                         f"{KERNEL_KINDS + ('auto',)}")
    return kind


class _GraphArrays:
    """Per-graph native-call state, weakly cached on the oriented graph.

    Contiguous int64 CSR mirrors (ctypes-ready), the edge-balanced
    block decomposition, and the max out-degree (the streaming
    emitter's worst-case row). Building this once per graph keeps the
    per-call overhead of the native path to a few argument loads --
    which is most of what the ns/edge metric sees on small graphs.
    """

    def __init__(self, oriented, nblocks: int):
        indices, indptr = oriented.out_csr()
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.uint32)
        self.n = int(oriented.n)
        self.m = int(self.indices.size)
        self.max_out_degree = (int(oriented.out_degrees.max())
                               if self.n else 0)
        nblocks = max(1, min(nblocks, self.n or 1))
        # Edge-balanced boundaries: a pure function of the graph, so
        # counts/ops/buffers cannot depend on the thread count.
        targets = np.linspace(0, self.m, nblocks + 1)
        starts = np.searchsorted(self.indptr, targets, side="left")
        starts[0], starts[-1] = 0, self.n
        self.block_starts = np.ascontiguousarray(
            np.maximum.accumulate(starts), dtype=np.int64)
        self.nblocks = nblocks
        self.block_counts = np.zeros(nblocks, dtype=np.int64)
        self.block_ops = np.zeros(nblocks, dtype=np.int64)
        if _memory.is_enabled():
            _memory.track(self, "native.csr",
                          (self.indptr, self.indices))
        self._p_indptr = self.indptr.ctypes.data_as(_I64P)
        self._p_indices = self.indices.ctypes.data_as(_U32P)
        self._p_starts = self.block_starts.ctypes.data_as(_I64P)
        self._p_counts = self.block_counts.ctypes.data_as(_I64P)
        self._p_ops = self.block_ops.ctypes.data_as(_I64P)


_ARRAYS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _resolve_blocks() -> int:
    env = os.environ.get("REPRO_NATIVE_BLOCKS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return DEFAULT_BLOCKS


def _graph_arrays(oriented) -> _GraphArrays:
    arrays = _ARRAYS.get(oriented)
    if arrays is None:
        arrays = _GraphArrays(oriented, _resolve_blocks())
        _ARRAYS[oriented] = arrays
    return arrays


def _record_stats(arrays: _GraphArrays, kind: str, threads: int,
                  count: int) -> None:
    """Stash one native run's block counters for :func:`last_stats`.

    Only a snapshot of the per-block op counters is taken on the hot
    path; the per-thread breakdown (deterministic from the static
    round-robin block assignment) is derived lazily at read time.
    """
    global _last_stats
    _last_stats = (arrays.block_ops.copy(),
                   min(max(threads, 1), arrays.nblocks),
                   kind, arrays.nblocks, count)


def last_stats() -> dict | None:
    """Telemetry of the most recent native run in this process.

    ``{kind, threads, blocks, ops, ops_per_thread, triangles}`` --
    ``ops`` counts the kernel's elementary operations (merge pointer
    advances or bitmap probes), merged from the per-block counters in
    block order; ``ops_per_thread`` follows the static round-robin
    block assignment, so it is identical run-to-run for a fixed
    thread count.
    """
    if _last_stats is None:
        return None
    if isinstance(_last_stats, dict):  # streaming path records directly
        return dict(_last_stats)
    block_ops, threads, kind, nblocks, count = _last_stats
    return {
        "kind": kind,
        "threads": threads,
        "blocks": nblocks,
        "ops": int(block_ops.sum()),
        "ops_per_thread": [int(block_ops[t::threads].sum())
                           for t in range(threads)],
        "triangles": count,
    }


def count_triangles(oriented, threads: int | None = None,
                    kind: str | None = None):
    """Exact triangle count via the compiled kernels, or None if gated.

    Accepts any :class:`~repro.graphs.digraph.OrientedGraph`; the
    caller falls back to the NumPy path on None. ``threads`` defaults
    to ``REPRO_NATIVE_THREADS`` (then the CPU count); the result is
    bit-identical at any value. Graphs with ``n >= 2^32`` exceed the
    uint32 index mirrors and fall back.
    """
    if not available() or oriented.n >= 2**32:
        return None
    arrays = _graph_arrays(oriented)
    kind = resolve_kind(oriented, kind)
    threads = resolve_threads(threads)
    if arrays.m == 0:
        _record_stats(arrays, kind, threads, 0)
        return 0
    rc = _lib.forward(
        arrays._p_indptr, arrays._p_indices, arrays._p_starts,
        arrays.nblocks, arrays.n, _KIND_CODES[kind], threads, 0,
        None, None, arrays._p_counts, arrays._p_ops)
    if rc != 0:
        return None
    count = int(arrays.block_counts.sum())
    _record_stats(arrays, kind, threads, count)
    return count


def list_triangles_array(oriented, threads: int | None = None,
                         kind: str | None = None):
    """All triangles as a ``(count, 3)`` uint32 array, or None if gated.

    Two passes over the block decomposition: a threaded count pass
    yields per-block totals, their prefix sum fixes each block's write
    offset, and a threaded emit pass fills one exact-size preallocated
    buffer. Rows are ``(x, y, z)`` with ``x < y < z``, ordered by
    ``(z, y)`` then ascending ``x`` -- the same bytes at any thread
    count and for either kernel kind.
    """
    if not available() or oriented.n >= 2**32:
        return None
    arrays = _graph_arrays(oriented)
    kind = resolve_kind(oriented, kind)
    threads = resolve_threads(threads)
    if arrays.m == 0:
        _record_stats(arrays, kind, threads, 0)
        return np.empty((0, 3), dtype=np.uint32)
    rc = _lib.forward(
        arrays._p_indptr, arrays._p_indices, arrays._p_starts,
        arrays.nblocks, arrays.n, _KIND_CODES[kind], threads, 0,
        None, None, arrays._p_counts, arrays._p_ops)
    if rc != 0:
        return None
    total = int(arrays.block_counts.sum())
    offsets = np.zeros(arrays.nblocks, dtype=np.int64)
    np.cumsum(arrays.block_counts[:-1], out=offsets[1:])
    buf = np.empty(total * 3, dtype=np.uint32)
    token = _memory.check_in("native.triangles", buf)
    try:
        rc = _lib.forward(
            arrays._p_indptr, arrays._p_indices, arrays._p_starts,
            arrays.nblocks, arrays.n, _KIND_CODES[kind], threads, 1,
            offsets.ctypes.data_as(_I64P), buf.ctypes.data_as(_U32P),
            arrays._p_counts, arrays._p_ops)
    finally:
        _memory.check_out(token)
    if rc != 0:
        return None
    _record_stats(arrays, kind, threads, total)
    return buf.reshape(-1, 3)


def stream_triangles(oriented, chunk_triangles: int = 1 << 20,
                     kind: str | None = None):
    """Generator of ``(k, 3)`` uint32 triangle batches, or None if gated.

    The streaming spill-back path: a resumable C cursor fills one
    reusable ``chunk_triangles``-capacity buffer per call, so peak
    memory is one chunk regardless of the triangle count and Python
    never boxes individual triangles. Batch concatenation equals
    :func:`list_triangles_array` exactly.
    """
    if not available() or oriented.n >= 2**32:
        return None
    arrays = _graph_arrays(oriented)
    kind_name = resolve_kind(oriented, kind)

    def _gen():
        cap = max(int(chunk_triangles), arrays.max_out_degree, 1)
        cursor = np.zeros(2, dtype=np.int64)
        ops = np.zeros(1, dtype=np.int64)
        buf = np.empty(cap * 3, dtype=np.uint32)
        mark = np.zeros(max(arrays.n, 1), dtype=np.uint8)
        tokens = (_memory.check_in("native.triangles", buf),
                  _memory.check_in("native.mark", mark))
        total = 0
        try:
            while cursor[0] < arrays.n:
                _memory.check_budget("native streaming listing")
                written = _lib.forward_stream(
                    arrays._p_indptr, arrays._p_indices, arrays.n,
                    _KIND_CODES[kind_name],
                    cursor.ctypes.data_as(_I64P),
                    buf.ctypes.data_as(_U32P), cap,
                    ops.ctypes.data_as(_I64P),
                    mark.ctypes.data_as(_U8P))
                if written < 0:
                    raise RuntimeError("native streaming kernel failed")
                if written:
                    total += int(written)
                    yield buf[:written * 3].reshape(-1, 3).copy()
                elif cursor[0] < arrays.n:  # pragma: no cover - safety
                    raise RuntimeError(
                        "native streaming kernel stalled")
        finally:
            for token in tokens:
                _memory.check_out(token)
        global _last_stats
        _last_stats = {"kind": kind_name, "threads": 1,
                       "blocks": 1, "ops": int(ops[0]),
                       "ops_per_thread": [int(ops[0])],
                       "triangles": total}

    return _gen()


def self_test() -> bool:
    """Compile-and-verify on a triangle + a path; used by benchmarks."""
    if not available():
        return False
    from repro.graphs.graph import Graph
    from repro.graphs.digraph import OrientedGraph
    tri = OrientedGraph(Graph(4, [(0, 1), (1, 2), (0, 2), (2, 3)]),
                        np.arange(4))
    if count_triangles(tri) != 1:
        return False
    listed = list_triangles_array(tri)
    return listed is not None and listed.tolist() == [[0, 1, 2]]


if __name__ == "__main__":  # pragma: no cover - manual smoke hook
    print("native available:", available(), "status:", status(),
          "self_test:", self_test(), file=sys.stderr)
