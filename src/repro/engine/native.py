"""Optional compiled count kernel (gcc + ctypes, zero dependencies).

The vectorized NumPy kernels bottom out at a few tens of nanoseconds
per candidate on a memory-bound host -- each elementwise pass streams
the whole chunk through RAM. A forward-style CSR merge-intersection
loop in C does the same exact count at ~1 ns per comparison, because
the working set per pivot is a handful of cache lines. This module
compiles that loop *at first use* with whatever C compiler the host
already has (``cc``/``gcc``; nothing is installed) and loads it via
:mod:`ctypes`. Everything is gated: no compiler, a failed compile, or
``REPRO_NATIVE=0`` all degrade silently to the NumPy path.

The kernel is the T1/forward shape (Latapy 2008; Ortmann & Brandes
2014): for each pivot ``z`` and each out-neighbor ``y``, two-pointer
merge of the sorted prefix ``N+(z)[< y]`` against ``N+(y)``. Every
match is a triangle ``x < y < z``, each counted exactly once -- the
count is orientation-exact and method-independent.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import sys
import tempfile

import numpy as np

_C_SOURCE = r"""
#include <stdint.h>

/* Exact triangle count on an acyclically oriented CSR: for each edge
 * z -> y, merge the sorted prefix of N+(z) below y with N+(y).
 * indices must be sorted ascending within each row. */
int64_t repro_count_forward(const int64_t *indptr,
                            const int64_t *indices,
                            int64_t n)
{
    int64_t count = 0;
    for (int64_t z = 0; z < n; z++) {
        const int64_t s = indptr[z];
        const int64_t e = indptr[z + 1];
        for (int64_t iy = s; iy < e; iy++) {
            const int64_t y = indices[iy];
            int64_t i = s;
            int64_t j = indptr[y];
            const int64_t je = indptr[y + 1];
            while (i < iy && j < je) {
                const int64_t a = indices[i];
                const int64_t b = indices[j];
                if (a < b) {
                    i++;
                } else if (b < a) {
                    j++;
                } else {
                    count++;
                    i++;
                    j++;
                }
            }
        }
    }
    return count;
}
"""

_UNSET = object()
_lib = _UNSET  # tri-state: _UNSET -> not tried; None -> unavailable


def _build_library():
    """Compile the kernel into a per-process temp dir; None on failure."""
    if os.environ.get("REPRO_NATIVE", "1").lower() in ("0", "false", ""):
        return None
    compiler = shutil.which("cc") or shutil.which("gcc")
    if compiler is None:
        return None
    workdir = tempfile.mkdtemp(prefix="repro-native-")
    src = os.path.join(workdir, "kernel.c")
    lib = os.path.join(workdir, "kernel.so")
    try:
        with open(src, "w") as fh:
            fh.write(_C_SOURCE)
        subprocess.run(
            [compiler, "-O3", "-shared", "-fPIC", "-o", lib, src],
            check=True, capture_output=True, timeout=120)
        handle = ctypes.CDLL(lib)
        fn = handle.repro_count_forward
        fn.restype = ctypes.c_int64
        fn.argtypes = [ctypes.POINTER(ctypes.c_int64),
                       ctypes.POINTER(ctypes.c_int64),
                       ctypes.c_int64]
        return fn
    except (OSError, subprocess.SubprocessError, AttributeError):
        return None


def available() -> bool:
    """Whether the compiled kernel is usable in this process.

    The first call resolves (and caches) the compile attempt, logs the
    outcome as a structured DEBUG event, and publishes the
    ``engine.native_available`` gauge when metrics are enabled.
    """
    global _lib
    if _lib is _UNSET:
        _lib = _build_library()
        import logging as _stdlog

        from repro.obs import metrics as _metrics
        from repro.obs.logging import get_logger, log_event
        log_event(get_logger(__name__), _stdlog.DEBUG,
                  "native kernel resolution",
                  available=_lib is not None,
                  gated=os.environ.get("REPRO_NATIVE", "1"))
        _metrics.set_gauge("engine.native_available",
                           1.0 if _lib is not None else 0.0)
    return _lib is not None


def count_triangles(oriented):
    """Exact triangle count via the compiled kernel, or None if gated.

    Accepts any :class:`~repro.graphs.digraph.OrientedGraph`; the
    caller falls back to the NumPy path on None.
    """
    if not available():
        return None
    indices, indptr = oriented.out_csr()
    indptr = np.ascontiguousarray(indptr, dtype=np.int64)
    indices = np.ascontiguousarray(indices, dtype=np.int64)
    if indices.size == 0:
        return 0
    c_i64p = ctypes.POINTER(ctypes.c_int64)
    return int(_lib(indptr.ctypes.data_as(c_i64p),
                    indices.ctypes.data_as(c_i64p),
                    ctypes.c_int64(oriented.n)))


def self_test() -> bool:
    """Compile-and-verify on a triangle + a path; used by benchmarks."""
    if not available():
        return False
    from repro.graphs.graph import Graph
    from repro.graphs.digraph import OrientedGraph
    tri = OrientedGraph(Graph(4, [(0, 1), (1, 2), (0, 2), (2, 3)]),
                        np.arange(4))
    return count_triangles(tri) == 1


if __name__ == "__main__":  # pragma: no cover - manual smoke hook
    print("native available:", available(), "self_test:", self_test(),
          file=sys.stderr)
