"""Shared infrastructure for the instrumented triangle listers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import metrics as _metrics


@dataclass
class ListingResult:
    """Outcome of one triangle-listing run.

    Attributes
    ----------
    method:
        Algorithm name (``"T1"``, ``"E4"``, ``"L3"``, ...).
    count:
        Number of triangles listed. Each triangle appears exactly once.
    triangles:
        The triangles as ``(x, y, z)`` label triples with ``x < y < z``
        (label space of the oriented graph), or ``None`` when the run was
        made with ``collect=False``.
    ops:
        The paper's cost metric: candidate tuples for vertex iterators
        (eqs. (7)-(9)), summed local+remote window lengths for scanning
        edge iterators (Table 1), remote lookup counts for LEI (Table 2).
        ``ops / n`` equals ``c_n(M, theta)`` exactly.
    comparisons:
        Actual elementary comparisons executed (two-pointer advances for
        SEI, hash probes for T*/L*). Always ``<= ops`` for SEI since a
        merge can exhaust one window early.
    hash_inserts:
        Elements inserted into hash tables (``m`` for vertex iterators'
        edge table; sum of local list lengths for LEI).
    n:
        Number of nodes, kept so ``per_node_cost`` is self-contained.
    """

    method: str
    count: int = 0
    triangles: list | None = None
    ops: int = 0
    comparisons: int = 0
    hash_inserts: int = 0
    n: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def per_node_cost(self) -> float:
        """``c_n(M, theta) = ops / n`` -- the paper's per-node cost (1)."""
        if self.n == 0:
            return 0.0
        return self.ops / self.n

    def triangle_set(self) -> set:
        """The triangles as a set (requires ``collect=True``)."""
        if self.triangles is None:
            raise ValueError(
                "triangles were not collected; rerun with collect=True")
        return set(self.triangles)


def publish_result_metrics(result: ListingResult) -> None:
    """Publish a run's counters into :mod:`repro.obs.metrics`.

    A no-op while observability is disabled, so the counters the
    listers *return* stay the single source of truth and the hot path
    costs one flag check.
    """
    if not _metrics.is_enabled():
        return
    _metrics.inc("lister.runs")
    _metrics.inc("lister.ops", result.ops)
    _metrics.inc("lister.comparisons", result.comparisons)
    _metrics.inc("lister.hash_inserts", result.hash_inserts)
    _metrics.inc("lister.triangles", result.count)
    _metrics.observe("lister.per_node_cost", result.per_node_cost)


def intersect_sorted(a, b):
    """Two-pointer intersection of sorted int sequences.

    Returns ``(matches, comparisons)`` where ``comparisons`` counts
    pointer-advance comparisons, the elementary operation of a scanning
    edge iterator. Runs in ``O(len(a) + len(b))``.
    """
    matches = []
    i, j = 0, 0
    la, lb = len(a), len(b)
    comparisons = 0
    while i < la and j < lb:
        comparisons += 1
        ai, bj = a[i], b[j]
        if ai == bj:
            matches.append(ai)
            i += 1
            j += 1
        elif ai < bj:
            i += 1
        else:
            j += 1
    return matches, comparisons


def triangles_in_original_ids(result: ListingResult, oriented) -> set:
    """Map label-space triangles back to original vertex IDs.

    Returns a set of sorted ``(u, v, w)`` tuples in the vertex ID space
    of the undirected source graph, for comparison against baselines.
    """
    if result.triangles is None:
        raise ValueError(
            "triangles were not collected; rerun with collect=True")
    inverse = {}
    out = set()
    for x, y, z in result.triangles:
        triple = tuple(sorted(
            inverse.setdefault(v, oriented.original_vertex(v))
            for v in (x, y, z)))
        out.add(triple)
    return out
