"""High-level entry points for the 18 listing methods."""

from __future__ import annotations

from repro.listing.base import ListingResult, publish_result_metrics
from repro.listing.vertex_iterator import run_vertex_iterator, VERTEX_ITERATORS
from repro.listing.edge_iterator import (
    run_edge_iterator,
    SCANNING_EDGE_ITERATORS,
)
from repro.listing.lookup_iterator import (
    run_lookup_iterator,
    LOOKUP_EDGE_ITERATORS,
)
from repro.obs.spans import span

#: Every implemented listing method, grouped by family.
ALL_METHODS = (VERTEX_ITERATORS + SCANNING_EDGE_ITERATORS
               + LOOKUP_EDGE_ITERATORS)


def list_triangles(oriented, method: str = "E1",
                   collect: bool = True) -> ListingResult:
    """List all triangles of the oriented graph with the named method.

    ``method`` is one of ``T1``-``T6``, ``E1``-``E6``, or ``L1``-``L6``.
    Every method enumerates each triangle exactly once (as labels
    ``x < y < z``); they differ only in traversal order and cost. See
    :class:`~repro.listing.base.ListingResult` for the returned counters.

    Example::

        oriented = orient(graph, DescendingDegree())
        result = list_triangles(oriented, method="T1")
        print(result.count, result.per_node_cost)
    """
    method = method.upper()
    with span("list", method=method, n=oriented.n) as sp:
        if method in VERTEX_ITERATORS:
            result = run_vertex_iterator(oriented, method, collect)
        elif method in SCANNING_EDGE_ITERATORS:
            result = run_edge_iterator(oriented, method, collect)
        elif method in LOOKUP_EDGE_ITERATORS:
            result = run_lookup_iterator(oriented, method, collect)
        else:
            raise ValueError(
                f"unknown method {method!r}; choose from {ALL_METHODS}")
        sp.annotate(ops=result.ops, triangles=result.count)
    publish_result_metrics(result)
    return result


def count_triangles(oriented, method: str = "E1") -> int:
    """Count triangles without storing them (``collect=False`` run)."""
    return list_triangles(oriented, method, collect=False).count
