"""High-level entry points for the 18 listing methods.

Three engines back every method:

* ``"python"`` -- the instrumented pure-Python loops (the ground-truth
  reference; per-candidate ``ops``/``comparisons`` counting).
* ``"numpy"`` -- the vectorized kernels of :mod:`repro.engine`
  (identical triangles/counts/``ops``, orders of magnitude faster; see
  docs/PERFORMANCE.md). When the compiled kernels of
  :mod:`repro.engine.native` are available it transparently drops into
  them for both counting and listing.
* ``"native"`` -- the compiled kernels, *required*: raises
  ``RuntimeError`` instead of falling back when no C toolchain is
  available or ``REPRO_NATIVE=0`` is set.

The default ``engine="auto"`` routes count-only runs
(``collect=False``) through the vectorized engine, and collecting runs
through it too whenever the native listing kernels are available
(identical canonical triangle set, C-speed emission); without them it
keeps the reference loops, whose enumeration order is part of the
documented semantics.
"""

from __future__ import annotations

import time

from repro.listing.base import ListingResult, publish_result_metrics
from repro.listing.vertex_iterator import run_vertex_iterator, VERTEX_ITERATORS
from repro.listing.edge_iterator import (
    run_edge_iterator,
    SCANNING_EDGE_ITERATORS,
)
from repro.listing.lookup_iterator import (
    run_lookup_iterator,
    LOOKUP_EDGE_ITERATORS,
)
from repro.obs import metrics as _metrics
from repro.obs.spans import span

#: Every implemented listing method, grouped by family.
ALL_METHODS = (VERTEX_ITERATORS + SCANNING_EDGE_ITERATORS
               + LOOKUP_EDGE_ITERATORS)

#: Recognized values of the ``engine`` argument.
ENGINES = ("auto", "python", "numpy", "native")


def _run_python(oriented, method: str, collect: bool) -> ListingResult:
    if method in VERTEX_ITERATORS:
        return run_vertex_iterator(oriented, method, collect)
    if method in SCANNING_EDGE_ITERATORS:
        return run_edge_iterator(oriented, method, collect)
    if method in LOOKUP_EDGE_ITERATORS:
        return run_lookup_iterator(oriented, method, collect)
    raise ValueError(
        f"unknown method {method!r}; choose from {ALL_METHODS}")


def list_triangles(oriented, method: str = "E1", collect: bool = True,
                   engine: str = "auto") -> ListingResult:
    """List all triangles of the oriented graph with the named method.

    ``method`` is one of ``T1``-``T6``, ``E1``-``E6``, ``L1``-``L6``,
    or ``"auto"``, which asks the cost-model planner
    (:func:`repro.planner.choose_method`) for the cheapest method on
    this orientation -- exact per-method costs weighted by the section
    2.4 speed ratio -- and runs its argmin (recorded in
    ``result.extra["auto_method"]`` alongside the planner's
    confidence). Every method enumerates each triangle exactly once
    (as labels ``x < y < z``); they differ only in traversal order and
    cost. See :class:`~repro.listing.base.ListingResult` for the
    returned counters.

    ``engine`` selects the implementation: ``"python"`` (instrumented
    reference), ``"numpy"`` (vectorized, native-accelerated when
    possible), ``"native"`` (compiled kernels required -- raises when
    unavailable), or ``"auto"`` (numpy for count-only runs; when
    collecting, numpy if the native listing kernels are available and
    python otherwise). All report the same
    ``count``/``ops``/``hash_inserts`` and -- when collecting -- the
    same triangle set; the numpy/native enumeration *order* and the
    E-family ``comparisons`` follow the closed-form semantics
    described in :mod:`repro.engine.kernels`.

    Example::

        oriented = orient(graph, DescendingDegree())
        result = list_triangles(oriented, method="T1")
        print(result.count, result.per_node_cost)
    """
    method = method.upper()
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from "
                         f"{ENGINES}")
    auto_plan = None
    if method == "AUTO":
        from repro.planner import choose_method
        auto_plan = choose_method(oriented)
        method = auto_plan.best.method
        _metrics.inc("planner.auto_routes")
        _metrics.inc(f"planner.auto.{method}")
        _metrics.set_gauge("planner.auto_confidence",
                           auto_plan.confidence)
    # Audit only wraps auto-routed calls, and only when REPRO_AUDIT is
    # on; the disabled path is the one is_enabled() check.
    from repro.obs import audit as _audit
    audit_on = auto_plan is not None and _audit.is_enabled()
    use_native = None
    if engine == "auto":
        if collect:
            from repro.engine import native as _native
            engine = "numpy" if _native.available() else "python"
        else:
            engine = "numpy"
    elif engine == "native":
        engine = "numpy"
        use_native = True
    wall_start = time.perf_counter() if audit_on else 0.0
    with span("list", method=method, n=oriented.n, engine=engine) as sp:
        if auto_plan is not None:
            sp.annotate(auto=True,
                        plan_confidence=round(auto_plan.confidence, 4))
        if engine == "numpy":
            from repro.engine import run_numpy
            if method not in ALL_METHODS:
                raise ValueError(f"unknown method {method!r}; choose "
                                 f"from {ALL_METHODS}")
            result = run_numpy(oriented, method, collect,
                               use_native=use_native)
        else:
            result = _run_python(oriented, method, collect)
        sp.annotate(ops=result.ops, triangles=result.count)
    if auto_plan is not None:
        result.extra["auto_method"] = method
        result.extra["auto_confidence"] = auto_plan.confidence
        if audit_on:
            wall = time.perf_counter() - wall_start
            degrees = oriented.out_degrees + oriented.in_degrees
            _audit.record_auto_route(
                auto_plan, "list_triangles", result=result, wall_s=wall,
                exact_plan=auto_plan, m=oriented.m,
                max_degree=int(degrees.max()) if oriented.n else 0)
    publish_result_metrics(result)
    # publish the resolved engine as a labelled counter (and not just a
    # span attribute) so run-history reports can segment cost by engine
    label = "native" if result.extra.get("native") else engine
    _metrics.inc(f"lister.engine.{label}")
    return result


def count_triangles(oriented, method: str = "E1",
                    engine: str = "auto") -> int:
    """Count triangles without storing them (``collect=False`` run)."""
    return list_triangles(oriented, method, collect=False,
                          engine=engine).count
