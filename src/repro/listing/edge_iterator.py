"""Scanning edge iterators E1-E6 (section 2.3, Figure 3, Table 1).

Each SEI walks the directed edges from a *first* node, and for every
partner intersects two sorted windows with two pointers:

====== ======= ===================================== =====================
method first    local window (first node's list)      remote window
====== ======= ===================================== =====================
E1     z        prefix of N+(z) below y                all of N+(y)
E2     y        all of N+(y)                           prefix of N+(z) below y
E3     x        suffix of N-(x) above y                all of N-(y)
E4     z        suffix of N+(z) above x                prefix of N-(x) below z
E5     y        all of N-(y)                           suffix of N-(x) above y
E6     x        prefix of N-(x) below z                suffix of N+(z) above x
====== ======= ===================================== =====================

Summing the window lengths reproduces Table 1 exactly: e.g. E1's local
prefixes add to ``sum X (X-1) / 2`` (the T1 cost) and its remote windows
to ``sum X Y`` (the T2 cost) -- that is Proposition 2. ``ops`` counts
those window lengths; ``comparisons`` counts the pointer advances a real
merge performs (a merge may exhaust one side early, so
``comparisons <= ops``).

The suffix windows of E4-E6 start "buried in the middle" of a list, which
is why the paper finds them slower on real hardware (binary search or
backward scans); here the boundary is found with ``bisect``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from repro.listing.base import ListingResult, intersect_sorted


def run_edge_iterator(oriented, method: str = "E1",
                      collect: bool = True) -> ListingResult:
    """Run one of E1-E6 on an :class:`OrientedGraph`."""
    runner = _RUNNERS.get(method)
    if runner is None:
        raise ValueError(
            f"unknown scanning edge iterator {method!r}; choose from "
            f"{sorted(_RUNNERS)}")
    triangles, ops, comparisons = runner(oriented, collect)
    return ListingResult(
        method=method,
        count=len(triangles) if collect else triangles,
        triangles=triangles if collect else None,
        ops=ops,
        comparisons=comparisons,
        hash_inserts=0,
        n=oriented.n,
    )


def _run_e1(oriented, collect):
    """E1: visit z; for y in N+(z), intersect N+(z)[<y] with N+(y)."""
    ops = 0
    comparisons = 0
    triangles = [] if collect else 0
    for z in range(oriented.n):
        outs = oriented.out_neighbors(z).tolist()
        for q, y in enumerate(outs):
            local = outs[:q]
            remote = oriented.out_neighbors(y).tolist()
            ops += len(local) + len(remote)
            matches, ncmp = intersect_sorted(local, remote)
            comparisons += ncmp
            if collect:
                triangles.extend((x, y, z) for x in matches)
            else:
                triangles += len(matches)
    return triangles, ops, comparisons


def _run_e2(oriented, collect):
    """E2: visit y; for z in N-(y), intersect N+(y) with N+(z)[<y]."""
    ops = 0
    comparisons = 0
    triangles = [] if collect else 0
    for y in range(oriented.n):
        local_full = oriented.out_neighbors(y).tolist()
        for z in oriented.in_neighbors(y).tolist():
            z_outs = oriented.out_neighbors(z).tolist()
            remote = z_outs[:bisect_left(z_outs, y)]
            ops += len(local_full) + len(remote)
            matches, ncmp = intersect_sorted(local_full, remote)
            comparisons += ncmp
            if collect:
                triangles.extend((x, y, z) for x in matches)
            else:
                triangles += len(matches)
    return triangles, ops, comparisons


def _run_e3(oriented, collect):
    """E3: visit x; for y in N-(x), intersect N-(x)[>y] with N-(y)."""
    ops = 0
    comparisons = 0
    triangles = [] if collect else 0
    for x in range(oriented.n):
        ins = oriented.in_neighbors(x).tolist()
        for q, y in enumerate(ins):
            local = ins[q + 1:]
            remote = oriented.in_neighbors(y).tolist()
            ops += len(local) + len(remote)
            matches, ncmp = intersect_sorted(local, remote)
            comparisons += ncmp
            if collect:
                triangles.extend((x, y, z) for z in matches)
            else:
                triangles += len(matches)
    return triangles, ops, comparisons


def _run_e4(oriented, collect):
    """E4: visit z; for x in N+(z), intersect N+(z)[>x] with N-(x)[<z]."""
    ops = 0
    comparisons = 0
    triangles = [] if collect else 0
    for z in range(oriented.n):
        outs = oriented.out_neighbors(z).tolist()
        for q, x in enumerate(outs):
            local = outs[q + 1:]
            x_ins = oriented.in_neighbors(x).tolist()
            remote = x_ins[:bisect_left(x_ins, z)]
            ops += len(local) + len(remote)
            matches, ncmp = intersect_sorted(local, remote)
            comparisons += ncmp
            if collect:
                triangles.extend((x, y, z) for y in matches)
            else:
                triangles += len(matches)
    return triangles, ops, comparisons


def _run_e5(oriented, collect):
    """E5: visit y; for x in N+(y), intersect N-(y) with N-(x)[>y]."""
    ops = 0
    comparisons = 0
    triangles = [] if collect else 0
    for y in range(oriented.n):
        local_full = oriented.in_neighbors(y).tolist()
        for x in oriented.out_neighbors(y).tolist():
            x_ins = oriented.in_neighbors(x).tolist()
            remote = x_ins[bisect_right(x_ins, y):]
            ops += len(local_full) + len(remote)
            matches, ncmp = intersect_sorted(local_full, remote)
            comparisons += ncmp
            if collect:
                triangles.extend((x, y, z) for z in matches)
            else:
                triangles += len(matches)
    return triangles, ops, comparisons


def _run_e6(oriented, collect):
    """E6: visit x; for z in N-(x), intersect N-(x)[<z] with N+(z)[>x]."""
    ops = 0
    comparisons = 0
    triangles = [] if collect else 0
    for x in range(oriented.n):
        ins = oriented.in_neighbors(x).tolist()
        for q, z in enumerate(ins):
            local = ins[:q]
            z_outs = oriented.out_neighbors(z).tolist()
            remote = z_outs[bisect_right(z_outs, x):]
            ops += len(local) + len(remote)
            matches, ncmp = intersect_sorted(local, remote)
            comparisons += ncmp
            if collect:
                triangles.extend((x, y, z) for y in matches)
            else:
                triangles += len(matches)
    return triangles, ops, comparisons


_RUNNERS = {
    "E1": _run_e1,
    "E2": _run_e2,
    "E3": _run_e3,
    "E4": _run_e4,
    "E5": _run_e5,
    "E6": _run_e6,
}

#: The six SEI names, in paper order.
SCANNING_EDGE_ITERATORS = tuple(sorted(_RUNNERS))
