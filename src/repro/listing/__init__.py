"""Triangle listing: all 18 search patterns of section 2 plus baselines.

The paper dissects vertex/edge iterators in an acyclic digraph into 18
baseline algorithms:

* vertex iterators ``T1``-``T6`` (section 2.2) -- generate candidate
  pairs around a pivot node and probe an edge-existence hash table;
* scanning edge iterators ``E1``-``E6`` (section 2.3) -- walk each
  directed edge and intersect two sorted neighbor lists with two
  pointers; cost splits into *local* (the first node's list) and
  *remote* (the partner's list) per Table 1;
* lookup edge iterators ``L1``-``L6`` -- hash the first node's list once
  and look the remote windows up against it (Table 2).

Every implementation counts the paper's cost metric exactly (candidate
tuples for T*, window lengths for E*/L*), so measured ``ops`` match the
closed-form cost formulas (7)-(9) and Propositions 1-2 identically.

Classical baselines for cross-validation: brute force, the adjacency
matrix method of Itai-Rodeh [23], Chiba-Nishizeki [13], and
Forward / Compact-Forward [33]/[28].
"""

from repro.listing.base import (
    ListingResult,
    intersect_sorted,
    triangles_in_original_ids,
)
from repro.listing.vertex_iterator import (
    run_vertex_iterator,
    VERTEX_ITERATORS,
)
from repro.listing.edge_iterator import (
    run_edge_iterator,
    SCANNING_EDGE_ITERATORS,
)
from repro.listing.lookup_iterator import (
    run_lookup_iterator,
    LOOKUP_EDGE_ITERATORS,
)
from repro.listing.api import list_triangles, count_triangles, ALL_METHODS
from repro.listing.naive import (
    brute_force_triangles,
    adjacency_matrix_triangles,
)
from repro.listing.chiba_nishizeki import chiba_nishizeki_triangles
from repro.listing.forward import forward_triangles, compact_forward_triangles
from repro.listing.partial_preprocessing import (
    orientation_only_cost,
    orientation_only_penalty,
    relabel_only_extra_cost,
    run_t1_orientation_only,
    zeta_overhead,
)
from repro.listing.approximate import (
    WedgeEstimate,
    approximate_triangle_count,
)

__all__ = [
    "ListingResult",
    "intersect_sorted",
    "triangles_in_original_ids",
    "run_vertex_iterator",
    "VERTEX_ITERATORS",
    "run_edge_iterator",
    "SCANNING_EDGE_ITERATORS",
    "run_lookup_iterator",
    "LOOKUP_EDGE_ITERATORS",
    "list_triangles",
    "count_triangles",
    "ALL_METHODS",
    "brute_force_triangles",
    "adjacency_matrix_triangles",
    "chiba_nishizeki_triangles",
    "forward_triangles",
    "compact_forward_triangles",
    "orientation_only_cost",
    "orientation_only_penalty",
    "relabel_only_extra_cost",
    "run_t1_orientation_only",
    "zeta_overhead",
    "WedgeEstimate",
    "approximate_triangle_count",
]
