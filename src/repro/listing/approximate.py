"""Wedge-sampling approximate triangle counting.

The introduction cites the streaming/approximate line of work ([4],
[7]) as one of triangle counting's homes. The classic wedge estimator:
sample wedges (paths ``u - v - w``) with the correct per-node weights
``d_v (d_v - 1) / 2``, check whether each closes, and scale. Unbiased,
with a binomial confidence interval, and orders of magnitude cheaper
than exact listing when only the count (or the clustering coefficient)
is needed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class WedgeEstimate:
    """Outcome of a wedge-sampling run."""

    triangles: float          # estimated triangle count
    closure_rate: float       # fraction of sampled wedges that closed
    total_wedges: int         # exact Sigma d(d-1)/2
    samples: int

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI for the triangle count."""
        p = self.closure_rate
        half = z * math.sqrt(max(p * (1 - p), 0.0) / self.samples)
        lo = max((p - half) * self.total_wedges / 3.0, 0.0)
        hi = (p + half) * self.total_wedges / 3.0
        return lo, hi


def approximate_triangle_count(graph, samples: int,
                               rng: np.random.Generator) -> WedgeEstimate:
    """Estimate the triangle count from ``samples`` random wedges.

    Each closed wedge is one of a triangle's three, so
    ``triangles = closure_rate * total_wedges / 3``. Requires at least
    one wedge in the graph (``ValueError`` otherwise).
    """
    if samples < 1:
        raise ValueError(f"need at least one sample, got {samples}")
    d = graph.degrees.astype(np.float64)
    weights = d * (d - 1.0) / 2.0
    total = float(weights.sum())
    if total == 0.0:
        raise ValueError("graph has no wedges (all degrees <= 1)")
    centers = rng.choice(graph.n, size=samples, p=weights / total)
    adjacency = graph.adjacency_sets()
    closed = 0
    for v in centers:
        nbrs = graph.neighbors(int(v))
        i, j = rng.choice(nbrs.size, size=2, replace=False)
        u, w = int(nbrs[i]), int(nbrs[j])
        if w in adjacency[u]:
            closed += 1
    rate = closed / samples
    return WedgeEstimate(
        triangles=rate * total / 3.0,
        closure_rate=rate,
        total_wedges=int(total),
        samples=samples,
    )
