"""Naive baselines: exhaustive search and the adjacency-matrix method.

Section 1.1: "exhaustively checking all 3-node subsets is the most
obvious solution, but its ~ n^3/6 overhead is far from optimal", and the
first widely known ``O(m^1.5)`` algorithm [23] (Itai-Rodeh) "requires
n^2 RAM to store the adjacency matrix". Both serve as ground truth for
the instrumented iterators in tests.
"""

from __future__ import annotations

import numpy as np


def brute_force_triangles(graph, limit: int = 2000) -> set:
    """All-triples enumeration; ``O(n^3)``, for small test graphs only.

    Returns the set of sorted ``(u, v, w)`` vertex triples.
    """
    if graph.n > limit:
        raise ValueError(
            f"brute force capped at n={limit} (asked for {graph.n})")
    adjacency = graph.adjacency_sets()
    triangles = set()
    for u in range(graph.n):
        for v in range(u + 1, graph.n):
            if v not in adjacency[u]:
                continue
            for w in range(v + 1, graph.n):
                if w in adjacency[u] and w in adjacency[v]:
                    triangles.add((u, v, w))
    return triangles


def adjacency_matrix_triangles(graph, limit: int = 4000) -> set:
    """Itai-Rodeh-flavored matrix method [23].

    For each edge ``(u, v)`` the common neighbors are read off the
    boolean adjacency matrix; restricting to ``w > v`` lists each
    triangle once. Needs ``n^2`` memory, the very limitation the paper
    cites, so the cap is deliberate.
    """
    if graph.n > limit:
        raise ValueError(
            f"matrix method capped at n={limit} (asked for {graph.n})")
    a = np.zeros((graph.n, graph.n), dtype=bool)
    edges = graph.edges
    if edges.size:
        a[edges[:, 0], edges[:, 1]] = True
        a[edges[:, 1], edges[:, 0]] = True
    triangles = set()
    for u, v in edges:
        u, v = int(u), int(v)  # u < v canonically
        common = np.flatnonzero(a[u] & a[v])
        for w in common[common > v]:
            triangles.add((u, v, int(w)))
    return triangles
