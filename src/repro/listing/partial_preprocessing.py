"""Partial preprocessing: orientation-only and relabel-only variants.

Section 2.4 analyzes what happens when prior work skips one of the two
preprocessing steps:

**Orientation without relabeling** ([3], [21], [22], [25], [33], [35],
[36]): nodes in each directed neighbor list "are not ordered in any
particular way against each other", which *doubles* every cost term
that depends on T1 or T3 -- T1 must check all ordered pairs
``x, y in N+(z)`` instead of only ``x < y``, and E1's local scan cannot
stop at ``y``. T2 is unaffected (in/out sets are still separated).
Section 7.5 quantifies the damage on Twitter: T1 doubles (becoming worse
than T2), E1 gains 29%, E4 gains 100%.

**Relabeling without orientation** ([28], [33], [34]): adjacency lists
are sorted by the new IDs but not split into in/out sets, so methods
must locate the in/out boundary with a binary search. T1/T3 are
unaffected; T2 pays ``zeta = sum_i log2 d_i`` extra random accesses;
E1/E2 pay the same ``zeta``; E3/E5 and E4/E6 pay one binary search *per
edge* (``sum X_i log2 d_i`` or ``sum Y_i log2 d_i``).

This module computes the exact operation counts of both regimes so the
section 7.5 claims can be checked quantitatively, and provides an
executable orientation-only T1 whose measured ops exhibit the doubling.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.costs import cost_t1, cost_t2, cost_t3
from repro.core.methods import get_method
from repro.listing.base import ListingResult


def orientation_only_cost(method_name: str, out_degrees,
                          in_degrees) -> float:
    """Total ops when orientation is applied but relabeling is skipped.

    Every T1/T3 component doubles (all ordered pairs / full local
    scans); T2 components are unchanged. Eq.-level: ``X(X-1)/2``
    becomes ``X(X-1)`` and ``Y(Y-1)/2`` becomes ``Y(Y-1)``.
    """
    method = get_method(method_name)
    total = 0.0
    for component in method.components:
        if component == "T1":
            total += 2.0 * cost_t1(out_degrees)
        elif component == "T3":
            total += 2.0 * cost_t3(in_degrees)
        else:
            total += cost_t2(out_degrees, in_degrees)
    return float(total)


def orientation_only_penalty(method_name: str, out_degrees,
                             in_degrees) -> float:
    """Multiplicative cost increase from skipping relabeling.

    Section 7.5's Twitter numbers: 2.0 for T1, 1.0 for T2, 1.29 for E1,
    2.0 for E4 (E4 is all T1/T3 mass, so it doubles outright).
    """
    from repro.core.costs import total_cost
    full = total_cost(method_name, out_degrees, in_degrees)
    if full == 0.0:
        return 1.0
    return orientation_only_cost(method_name, out_degrees,
                                 in_degrees) / full


def zeta_overhead(degrees) -> float:
    """``zeta = sum_i log2 d_i``: the boundary-search overhead.

    The extra random memory accesses T2 (and E1/E2) pay per node when
    the graph is relabeled but not oriented (section 2.4). Nodes of
    degree 0 or 1 need no search.
    """
    d = np.asarray(degrees, dtype=float)
    d = d[d > 1]
    return float(np.sum(np.log2(d)))


def relabel_only_extra_cost(method_name: str, oriented) -> float:
    """Extra lookups when relabeling is applied but orientation skipped.

    Per section 2.4: zero for T1/T3 (and their cost twins), ``zeta``
    for T2 and E1/E2, and one binary search per edge -- i.e.
    ``sum_i X_i log2 d_i`` (or the Y-version) -- for E3/E5 and E4/E6.
    LEI methods inherit the overhead of their cost twin.
    """
    name = method_name.upper()
    degrees = oriented.degrees
    if name in ("T1", "T3", "T4", "T6", "L2", "L4", "L5", "L6"):
        return 0.0
    if name in ("T2", "T5", "E1", "E2", "L1", "L3"):
        return zeta_overhead(degrees)
    if name in ("E3", "E5"):
        # one search per edge, driven by the out-degree side; the paper
        # notes backwards-sorted lists reduce this back to zeta
        return _per_edge_search_cost(oriented.out_degrees, degrees)
    if name in ("E4", "E6"):
        return _per_edge_search_cost(oriented.in_degrees, degrees)
    raise ValueError(f"unknown method {method_name!r}")


def _per_edge_search_cost(per_node_edges, degrees) -> float:
    d = np.asarray(degrees, dtype=float)
    logs = np.where(d > 1, np.log2(np.maximum(d, 2.0)), 0.0)
    return float(np.sum(np.asarray(per_node_edges, dtype=float) * logs))


def run_t1_orientation_only(oriented, collect: bool = True) -> ListingResult:
    """Executable T1 on an oriented-but-not-relabeled graph.

    Emulates unordered neighbor lists: since no global order exists
    among the out-neighbors, T1 must generate *both* ordered pairs of
    every couple and rely on the directed edge check to filter; ops
    come out at ``sum X(X-1)``, exactly double the relabeled cost. The
    triangles found are identical.
    """
    edge_keys = oriented.edge_key_set()
    n = oriented.n
    ops = 0
    triangles = [] if collect else 0
    for z in range(n):
        outs = oriented.out_neighbors(z).tolist()
        k = len(outs)
        ops += k * (k - 1)
        for a in outs:
            for b in outs:
                if a == b:
                    continue
                # candidate edge a -> b; only one orientation exists, so
                # exactly one of the two generated pairs can match
                if a * n + b in edge_keys:
                    if collect:
                        triangles.append((b, a, z))
                    else:
                        triangles += 1
    return ListingResult(
        method="T1/orientation-only",
        count=len(triangles) if collect else triangles,
        triangles=triangles if collect else None,
        ops=ops,
        comparisons=ops,
        hash_inserts=oriented.m,
        n=n,
    )


def run_e1_orientation_only(oriented, collect: bool = True
                            ) -> ListingResult:
    """Executable E1 on an oriented-but-not-relabeled graph.

    Without mutually ordered lists, "scanning of the local list in E1
    cannot stop at y and must traverse the entire N+(z)" (section 2.4):
    the local window is the full out-list for every partner, doubling
    the T1 share of the cost -- ops come out at ``2 T1 + T2`` exactly.
    Unordered lists also preclude a two-pointer merge, so the remote
    side degrades to hash lookups against the local set; triangles are
    deduplicated by keeping only ``x < y`` hits.
    """
    n = oriented.n
    ops = 0
    triangles = [] if collect else 0
    for z in range(n):
        outs = oriented.out_neighbors(z).tolist()
        local = set(outs)
        k = len(outs)
        for y in outs:
            remote = oriented.out_neighbors(y).tolist()
            ops += k + len(remote)  # full local scan + full remote
            for x in remote:
                if x in local:  # x < y automatic: x in N+(y)
                    if collect:
                        triangles.append((x, y, z))
                    else:
                        triangles += 1
    return ListingResult(
        method="E1/orientation-only",
        count=len(triangles) if collect else triangles,
        triangles=triangles if collect else None,
        ops=ops,
        comparisons=ops,
        hash_inserts=oriented.m,
        n=n,
    )
