"""Chiba-Nishizeki triangle listing [13] (section 1.1, 2.4).

The 1985 algorithm: visit nodes in descending order of degree, mark the
current node's neighbors, scan each neighbor's adjacency for marked
nodes, then *remove* the node from the graph. Its CPU complexity is
``O(delta * m)`` where ``delta`` is the arboricity. The paper notes it
is a variation of L3 in which the acyclic orientation holds for only two
of a triangle's three edges, giving it ``c_n(E1, theta)`` cost rather
than ``c_n(T2, theta)``.
"""

from __future__ import annotations

import numpy as np


def chiba_nishizeki_triangles(graph, count_ops: bool = False):
    """List all triangles with the Chiba-Nishizeki procedure.

    Returns the set of sorted vertex triples (or ``(set, ops)`` when
    ``count_ops``). Node removal is emulated with a ``removed`` flag;
    neighbor scans skip removed nodes, which preserves the algorithm's
    complexity class (each edge is scanned a bounded number of times
    before an endpoint disappears).

    ``ops`` counts the *live* pair examinations -- one per still-present
    ``w`` in each scanned neighbor list. Section 2.4's claim, verified
    exactly by the tests: this total equals ``n * c_n(E3, theta)`` where
    ``theta`` labels nodes by reverse processing order (hubs largest --
    the ascending-degree relabeling), because each scan of ``N(u)`` at
    time ``v`` touches ``X_u`` out-neighbors plus the in-neighbors of
    ``u`` processed after ``v`` -- summing to the T3 + T2 decomposition
    of the E1 equivalence class, *not* the bare ``c_n(T2, theta)`` a
    fully oriented L3 would pay.
    """
    order = np.argsort(graph.degrees, kind="stable")[::-1]
    removed = np.zeros(graph.n, dtype=bool)
    marked = np.zeros(graph.n, dtype=bool)
    triangles = set()
    ops = 0
    for v in order:
        v = int(v)
        live_neighbors = [int(u) for u in graph.neighbors(v)
                          if not removed[u]]
        for u in live_neighbors:
            marked[u] = True
        for u in live_neighbors:
            # unmark u first so each triangle v-u-w is found exactly once
            # (when the scan reaches the *second* of u, w in the list)
            marked[u] = False
            for w in graph.neighbors(u):
                w = int(w)
                if removed[w]:
                    continue
                ops += 1
                if marked[w]:
                    triangles.add(tuple(sorted((v, u, w))))
        for u in live_neighbors:
            marked[u] = False
        removed[v] = True
    if count_ops:
        return triangles, ops
    return triangles


def chiba_nishizeki_processing_labels(graph) -> np.ndarray:
    """Labels matching CN's removal order: first removed = largest.

    Orienting the graph by these labels reproduces the acyclic
    structure CN implicitly walks, which is what makes the exact ops
    accounting above testable against the E3 cost formula.
    """
    order = np.argsort(graph.degrees, kind="stable")[::-1]
    labels = np.empty(graph.n, dtype=np.int64)
    labels[order] = np.arange(graph.n - 1, -1, -1, dtype=np.int64)
    return labels
