"""Forward [33] and Compact-Forward [28] baselines (section 2.4).

*Forward* (Schank-Wagner) processes nodes in descending-degree order and
maintains for each node ``v`` a dynamically growing array ``A(v)`` of
already-seen smaller-rank neighbors; each edge triggers one intersection
``A(s) \\cap A(t)``. *Compact Forward* (Latapy) removes the auxiliary
arrays by renumbering nodes by decreasing degree, sorting adjacency by
the new numbers, and intersecting truncated adjacency lists directly.
In the paper's taxonomy both implement E2 under the descending-degree
permutation.
"""

from __future__ import annotations

import numpy as np

from repro.listing.base import intersect_sorted


def _descending_degree_rank(graph) -> np.ndarray:
    """rank[v]: position of v when nodes are sorted by decreasing degree."""
    order = np.argsort(graph.degrees, kind="stable")[::-1]
    rank = np.empty(graph.n, dtype=np.int64)
    rank[order] = np.arange(graph.n)
    return rank


def forward_triangles(graph) -> set:
    """Schank-Wagner *Forward*: dynamic arrays + per-edge intersection.

    Returns the set of sorted vertex triples. ``A(v)`` holds the ranks of
    ``v``'s already-processed neighbors in insertion order, which is rank
    order, so the intersection is a sorted-list merge.
    """
    rank = _descending_degree_rank(graph)
    order = np.argsort(rank)  # vertices in rank order
    vertex_of_rank = order
    a_lists: list[list[int]] = [[] for __ in range(graph.n)]
    triangles = set()
    for s in vertex_of_rank:
        s = int(s)
        for t in graph.neighbors(s):
            t = int(t)
            if rank[t] <= rank[s]:
                continue  # only forward edges: s seen before t
            common, __ = intersect_sorted(a_lists[s], a_lists[t])
            for r in common:
                w = int(vertex_of_rank[r])
                triangles.add(tuple(sorted((s, t, w))))
            a_lists[t].append(int(rank[s]))
    return triangles


def compact_forward_triangles(graph) -> set:
    """Latapy's *Compact Forward*: renumber, sort, intersect in place.

    Nodes are renumbered by decreasing degree (hubs get the smallest new
    numbers); adjacency lists are sorted by new number. For each node
    ``v`` and each neighbor ``u`` with ``new(u) < new(v)``, the lists of
    ``v`` and ``u`` are merged only over entries smaller than ``new(u)``
    -- exactly the truncated intersection of [28], and E2 + theta_D in
    the paper's notation.
    """
    rank = _descending_degree_rank(graph)  # new number per vertex
    order = np.argsort(rank)
    renumbered: list[list[int]] = [
        sorted(int(rank[u]) for u in graph.neighbors(v))
        for v in range(graph.n)]
    triangles = set()
    for v_new in range(graph.n):
        v = int(order[v_new])
        for u_new in renumbered[v]:
            if u_new >= v_new:
                break  # lists are sorted; only smaller-numbered neighbors
            u = int(order[u_new])
            # intersect entries smaller than u_new in both lists
            lv = renumbered[v]
            lu = renumbered[u]
            common, __ = intersect_sorted(
                lv[:_count_below(lv, u_new)], lu[:_count_below(lu, u_new)])
            for w_new in common:
                w = int(order[w_new])
                triangles.add(tuple(sorted((v, u, w))))
    return triangles


def _count_below(sorted_list: list[int], bound: int) -> int:
    """Number of entries strictly below ``bound`` (binary search)."""
    lo, hi = 0, len(sorted_list)
    while lo < hi:
        mid = (lo + hi) // 2
        if sorted_list[mid] < bound:
            lo = mid + 1
        else:
            hi = mid
    return lo
