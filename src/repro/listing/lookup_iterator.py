"""Lookup edge iterators L1-L6 (section 2.3, Table 2).

LEI shares the six search orders of SEI but intersects with a hash
table: the *local* neighbor list of the first visited node is hashed
once, and every element of each remote window is looked up against it
[17]. Therefore:

* ``hash_inserts`` totals ``sum X_i = sum Y_i = m`` (each node's local
  list hashed exactly once);
* ``ops`` counts lookups = the remote window lengths, reproducing
  Table 2 (which is the *remote* row of Table 1): L1 -> T2, L2 -> T1,
  L3 -> T2, L4 -> T3, L5 -> T3, L6 -> T1.

Since the remote windows of L1/L3/L5 are full lists, the label
constraint (``x < y`` etc.) that SEI gets from its window boundaries is
enforced by an explicit comparison after the hash hit. The paper's
conclusion: LEI reduces to vertex-iterator cost and speed, so it never
needs separate asymptotic treatment.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

from repro.listing.base import ListingResult


def run_lookup_iterator(oriented, method: str = "L1",
                        collect: bool = True) -> ListingResult:
    """Run one of L1-L6 on an :class:`OrientedGraph`."""
    runner = _RUNNERS.get(method)
    if runner is None:
        raise ValueError(
            f"unknown lookup edge iterator {method!r}; choose from "
            f"{sorted(_RUNNERS)}")
    triangles, ops, inserts = runner(oriented, collect)
    return ListingResult(
        method=method,
        count=len(triangles) if collect else triangles,
        triangles=triangles if collect else None,
        ops=ops,
        comparisons=ops,
        hash_inserts=inserts,
        n=oriented.n,
    )


def _run_l1(oriented, collect):
    """L1 (E1's order): hash N+(z); look up all of N+(y); keep x < y."""
    ops = 0
    inserts = 0
    triangles = [] if collect else 0
    for z in range(oriented.n):
        outs = oriented.out_neighbors(z).tolist()
        local = set(outs)
        inserts += len(outs)
        for y in outs:
            remote = oriented.out_neighbors(y).tolist()
            ops += len(remote)
            for x in remote:
                if x in local:  # x < y holds automatically: x in N+(y)
                    if collect:
                        triangles.append((x, y, z))
                    else:
                        triangles += 1
    return triangles, ops, inserts


def _run_l2(oriented, collect):
    """L2 (E2's order): hash N+(y); look up N+(z) below y."""
    ops = 0
    inserts = 0
    triangles = [] if collect else 0
    for y in range(oriented.n):
        outs = oriented.out_neighbors(y).tolist()
        local = set(outs)
        inserts += len(outs)
        for z in oriented.in_neighbors(y).tolist():
            z_outs = oriented.out_neighbors(z).tolist()
            remote = z_outs[:bisect_left(z_outs, y)]
            ops += len(remote)
            for x in remote:
                if x in local:
                    if collect:
                        triangles.append((x, y, z))
                    else:
                        triangles += 1
    return triangles, ops, inserts


def _run_l3(oriented, collect):
    """L3 (E3's order): hash N-(x); look up all of N-(y); keep z > y."""
    ops = 0
    inserts = 0
    triangles = [] if collect else 0
    for x in range(oriented.n):
        ins = oriented.in_neighbors(x).tolist()
        local = set(ins)
        inserts += len(ins)
        for y in ins:
            remote = oriented.in_neighbors(y).tolist()
            ops += len(remote)
            for z in remote:  # z > y automatically: z in N-(y)
                if z in local:
                    if collect:
                        triangles.append((x, y, z))
                    else:
                        triangles += 1
    return triangles, ops, inserts


def _run_l4(oriented, collect):
    """L4 (E4's order): hash N+(z); look up N-(x) below z; keep y > x."""
    ops = 0
    inserts = 0
    triangles = [] if collect else 0
    for z in range(oriented.n):
        outs = oriented.out_neighbors(z).tolist()
        local = set(outs)
        inserts += len(outs)
        for x in outs:
            x_ins = oriented.in_neighbors(x).tolist()
            remote = x_ins[:bisect_left(x_ins, z)]
            ops += len(remote)
            for y in remote:  # y > x automatically: y in N-(x)
                if y in local:
                    if collect:
                        triangles.append((x, y, z))
                    else:
                        triangles += 1
    return triangles, ops, inserts


def _run_l5(oriented, collect):
    """L5 (E5's order): hash N-(y); look up N-(x) above y."""
    ops = 0
    inserts = 0
    triangles = [] if collect else 0
    for y in range(oriented.n):
        ins = oriented.in_neighbors(y).tolist()
        local = set(ins)
        inserts += len(ins)
        for x in oriented.out_neighbors(y).tolist():
            x_ins = oriented.in_neighbors(x).tolist()
            remote = x_ins[bisect_right(x_ins, y):]
            ops += len(remote)
            for z in remote:
                if z in local:
                    if collect:
                        triangles.append((x, y, z))
                    else:
                        triangles += 1
    return triangles, ops, inserts


def _run_l6(oriented, collect):
    """L6 (E6's order): hash N-(x); look up N+(z) above x; keep y < z."""
    ops = 0
    inserts = 0
    triangles = [] if collect else 0
    for x in range(oriented.n):
        ins = oriented.in_neighbors(x).tolist()
        local = set(ins)
        inserts += len(ins)
        for z in ins:
            z_outs = oriented.out_neighbors(z).tolist()
            remote = z_outs[bisect_right(z_outs, x):]
            ops += len(remote)
            for y in remote:  # y < z automatically: y in N+(z)
                if y in local:
                    if collect:
                        triangles.append((x, y, z))
                    else:
                        triangles += 1
    return triangles, ops, inserts


_RUNNERS = {
    "L1": _run_l1,
    "L2": _run_l2,
    "L3": _run_l3,
    "L4": _run_l4,
    "L5": _run_l5,
    "L6": _run_l6,
}

#: The six LEI names, in paper order.
LOOKUP_EDGE_ITERATORS = tuple(sorted(_RUNNERS))
