"""Vertex iterators T1-T6 (section 2.2, Figure 1).

All six visit a pivot node and verify edge existence between pairs of its
directed neighbors via the edge hash table. The pivot's role in the
triangle ``x < y < z`` distinguishes them:

* **T1** pivots on ``z`` (the largest): candidate edges ``y -> x`` over
  ordered pairs ``x < y`` in ``N+(z)``; cost ``sum X (X - 1) / 2``.
* **T2** pivots on ``y`` (the middle): candidate edges ``z -> x`` over
  ``N-(y) x N+(y)``; cost ``sum X Y``.
* **T3** pivots on ``x`` (the smallest): candidate edges ``z -> y`` over
  ordered pairs ``y < z`` in ``N-(x)``; cost ``sum Y (Y - 1) / 2``.
* **T4/T5/T6** repeat T1/T2/T3 with the last two neighbors visited in
  the opposite order -- identical cost, different memory-access pattern.

Because the graph is relabeled (not merely oriented), T1/T3 enumerate
only ordered pairs from each sorted list; without relabeling they would
have to check all pairs, doubling the cost (section 2.4).
"""

from __future__ import annotations

from repro.listing.base import ListingResult


def run_vertex_iterator(oriented, method: str = "T1",
                        collect: bool = True) -> ListingResult:
    """Run one of T1-T6 on an :class:`OrientedGraph`.

    ``ops`` counts candidate tuples exactly as in eqs. (7)-(9);
    ``comparisons`` counts hash probes (equal to ``ops`` here -- every
    candidate costs one probe); ``hash_inserts`` is ``m`` for the edge
    table.
    """
    runner = _RUNNERS.get(method)
    if runner is None:
        raise ValueError(
            f"unknown vertex iterator {method!r}; choose from "
            f"{sorted(_RUNNERS)}")
    return runner(oriented, collect)


def _result(oriented, method, triangles, ops, collect):
    return ListingResult(
        method=method,
        count=len(triangles) if collect else triangles,
        triangles=triangles if collect else None,
        ops=ops,
        comparisons=ops,
        hash_inserts=oriented.m,
        n=oriented.n,
    )


def _run_t1(oriented, collect, swap_last=False):
    """T1 (and T4 when ``swap_last``): pivot z, candidates y -> x."""
    edge_keys = oriented.edge_key_set()
    n = oriented.n
    ops = 0
    triangles = [] if collect else 0
    for z in range(n):
        outs = oriented.out_neighbors(z).tolist()
        k = len(outs)
        ops += k * (k - 1) // 2
        if swap_last:
            # T4: fix x first, then scan the larger ys
            pair_iter = ((outs[p], outs[q])
                         for p in range(k) for q in range(p + 1, k))
        else:
            # T1: fix y first, then scan the smaller xs
            pair_iter = ((outs[p], outs[q])
                         for q in range(k) for p in range(q))
        for x, y in pair_iter:
            if y * n + x in edge_keys:
                if collect:
                    triangles.append((x, y, z))
                else:
                    triangles += 1
    return _result(oriented, "T4" if swap_last else "T1",
                   triangles, ops, collect)


def _run_t2(oriented, collect, swap_last=False):
    """T2 (and T5 when ``swap_last``): pivot y, candidates z -> x."""
    edge_keys = oriented.edge_key_set()
    n = oriented.n
    ops = 0
    triangles = [] if collect else 0
    for y in range(n):
        outs = oriented.out_neighbors(y).tolist()
        ins = oriented.in_neighbors(y).tolist()
        ops += len(outs) * len(ins)
        if swap_last:
            # T5: fix x in N+(y) first, then scan z in N-(y)
            pair_iter = ((x, z) for x in outs for z in ins)
        else:
            # T2: fix z in N-(y) first, then scan x in N+(y)
            pair_iter = ((x, z) for z in ins for x in outs)
        for x, z in pair_iter:
            if z * n + x in edge_keys:
                if collect:
                    triangles.append((x, y, z))
                else:
                    triangles += 1
    return _result(oriented, "T5" if swap_last else "T2",
                   triangles, ops, collect)


def _run_t3(oriented, collect, swap_last=False):
    """T3 (and T6 when ``swap_last``): pivot x, candidates z -> y."""
    edge_keys = oriented.edge_key_set()
    n = oriented.n
    ops = 0
    triangles = [] if collect else 0
    for x in range(n):
        ins = oriented.in_neighbors(x).tolist()
        k = len(ins)
        ops += k * (k - 1) // 2
        if swap_last:
            # T6: fix z first, then scan the smaller ys
            pair_iter = ((ins[p], ins[q])
                         for q in range(k) for p in range(q))
        else:
            # T3: fix y first, then scan the larger zs
            pair_iter = ((ins[p], ins[q])
                         for p in range(k) for q in range(p + 1, k))
        for y, z in pair_iter:
            if z * n + y in edge_keys:
                if collect:
                    triangles.append((x, y, z))
                else:
                    triangles += 1
    return _result(oriented, "T6" if swap_last else "T3",
                   triangles, ops, collect)


_RUNNERS = {
    "T1": lambda g, c: _run_t1(g, c, swap_last=False),
    "T2": lambda g, c: _run_t2(g, c, swap_last=False),
    "T3": lambda g, c: _run_t3(g, c, swap_last=False),
    "T4": lambda g, c: _run_t1(g, c, swap_last=True),
    "T5": lambda g, c: _run_t2(g, c, swap_last=True),
    "T6": lambda g, c: _run_t3(g, c, swap_last=True),
}

#: The six vertex-iterator names, in paper order.
VERTEX_ITERATORS = tuple(sorted(_RUNNERS))
