"""Table 3 substitution: primitive operation speeds in this runtime.

The paper benchmarks (on an Intel i7-3930K) hash-table probing at 19M
nodes/sec against SIMD scanning intersection at 1,801M nodes/sec -- a
95x gap that makes SEI competitive despite needing more operations. We
cannot reproduce SIMD intersection in pure Python, but the *decision
rule* of section 2.4 -- "SEI wins iff its operation-count ratio ``w_n``
is below the speed ratio" -- only needs the two primitive speeds of the
actual runtime, which this module measures:

* hash probe: membership tests against a Python ``set`` (the vertex
  iterator / LEI primitive);
* scanning: two-pointer merge over sorted NumPy int64 arrays via
  ``numpy.intersect1d`` (the closest vectorized analogue of the SIMD
  loop) and over Python lists (the interpreter baseline).
"""

from __future__ import annotations

import time

import numpy as np

from repro.listing.base import intersect_sorted


def measure_primitive_speeds(list_size: int = 100_000,
                             repeats: int = 5,
                             rng: np.random.Generator | None = None) -> dict:
    """Throughput (nodes/sec) of the three primitives on long lists.

    "Long adjacency lists" mirror the paper's best-case-for-intersection
    setup. Returns a dict with per-primitive nodes/sec and the speed
    ratio the section 2.4 decision rule needs.
    """
    if rng is None:
        rng = np.random.default_rng(42)
    universe = 4 * list_size
    a = np.sort(rng.choice(universe, size=list_size, replace=False))
    b = np.sort(rng.choice(universe, size=list_size, replace=False))
    a_list = a.tolist()
    b_list = b.tolist()
    a_set = set(a_list)

    def best_time(fn):
        best = float("inf")
        for __ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    t_hash = best_time(lambda: sum(1 for x in b_list if x in a_set))
    t_scan_py = best_time(lambda: intersect_sorted(a_list, b_list))
    t_scan_np = best_time(lambda: np.intersect1d(a, b, assume_unique=True))

    hash_speed = list_size / t_hash
    scan_py_speed = 2 * list_size / t_scan_py
    scan_np_speed = 2 * list_size / t_scan_np
    return {
        "list_size": list_size,
        "hash_nodes_per_sec": hash_speed,
        "scan_python_nodes_per_sec": scan_py_speed,
        "scan_numpy_nodes_per_sec": scan_np_speed,
        "speed_ratio_numpy_scan_over_hash": scan_np_speed / hash_speed,
        "paper_hash_speed": 19e6,
        "paper_simd_scan_speed": 1801e6,
        "paper_speed_ratio": 1801.0 / 19.0,
    }
