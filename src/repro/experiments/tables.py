"""Paper-style table assembly and text rendering.

Tables 6-11 share one layout: rows indexed by ``n``, and per
(method, permutation) column group the triple ``sim | model | error``.
Table 12 is a method x permutation matrix of total operation counts.
These helpers render both shapes as aligned monospace text, the way the
benchmark scripts print them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ComparisonRow:
    """One ``n`` row of a sim-vs-model table (possibly several cells)."""

    n: int | str
    cells: list  # list of (sim, model, error) triples; entries may be None


def _fmt_value(x) -> str:
    if x is None:
        return "--"
    if isinstance(x, str):
        return x
    if x != x:  # NaN
        return "--"
    if x == float("inf"):
        return "inf"
    if abs(x) >= 1000:
        return f"{x:,.1f}"
    return f"{x:.1f}" if abs(x) >= 10 else f"{x:.2f}"


def _fmt_error(e) -> str:
    if e is None or e != e:
        return "--"
    return f"{100.0 * e:+.1f}%"


def format_comparison_table(title: str, group_names: list[str],
                            rows: list[ComparisonRow]) -> str:
    """Render a Tables-6-to-10 style sim/model/error table."""
    header_cells = ["n"]
    for name in group_names:
        header_cells += [f"{name} sim", f"{name} model", f"{name} err"]
    body = []
    for row in rows:
        line = [str(row.n)]
        for cell in row.cells:
            if cell is None:
                line += ["--", "--", "--"]
            else:
                sim, model, error = cell
                line += [_fmt_value(sim), _fmt_value(model),
                         _fmt_error(error)]
        body.append(line)
    return _render(title, [header_cells] + body)


def format_matrix_table(title: str, row_names: list[str],
                        col_names: list[str], values,
                        highlight_min: bool = True) -> str:
    """Render a Table-12 style matrix (methods x permutations).

    With ``highlight_min`` the smallest entry of each row is wrapped in
    ``*...*`` -- the paper highlights the optimal permutation in gray.
    """
    header = [""] + list(col_names)
    body = []
    for name, row in zip(row_names, values):
        row = list(row)
        finite = [v for v in row if v == v and v != float("inf")]
        best = min(finite) if finite and highlight_min else None
        cells = [name]
        for v in row:
            text = _fmt_big(v)
            if best is not None and v == best:
                text = f"*{text}*"
            cells.append(text)
        body.append(cells)
    return _render(title, [header] + body)


def _fmt_big(x) -> str:
    """Human units like the paper's 150B / 123T entries."""
    if x is None or x != x:
        return "--"
    if x == float("inf"):
        return "inf"
    for unit, scale in (("T", 1e12), ("B", 1e9), ("M", 1e6), ("K", 1e3)):
        if abs(x) >= scale:
            return f"{x / scale:.3g}{unit}"
    return f"{x:.3g}"


def _render(title: str, table: list[list[str]]) -> str:
    widths = [max(len(row[c]) for row in table)
              for c in range(len(table[0]))]
    lines = [title, "-" * (sum(widths) + 2 * (len(widths) - 1))]
    for i, row in enumerate(table):
        lines.append("  ".join(cell.rjust(w)
                               for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)
