"""Dependency-free ASCII line charts for the figure-style artifacts.

The paper's figures are diagrams, not data plots, but several of its
results are naturally curves (cost vs alpha, error vs n, the E1/T1
ratio exploding toward the 1.5 threshold). With no plotting stack
available offline, this renders small multiples as monospace charts --
good enough to eyeball shapes in a terminal or a results file.
"""

from __future__ import annotations

import math

import numpy as np

#: Marker characters cycled across series.
MARKERS = "ox+*#@"


def ascii_plot(series: dict, width: int = 68, height: int = 18,
               logy: bool = False, title: str = "",
               xlabel: str = "", ylabel: str = "") -> str:
    """Render ``{label: (xs, ys)}`` as an ASCII chart.

    Non-finite y values are dropped per point (an infinite limit simply
    leaves the chart). With ``logy`` the y axis is log10 (requires
    positive data).
    """
    cleaned = {}
    for label, (xs, ys) in series.items():
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        mask = np.isfinite(xs) & np.isfinite(ys)
        if logy:
            mask &= ys > 0
        if mask.any():
            cleaned[label] = (xs[mask],
                              np.log10(ys[mask]) if logy else ys[mask])
    if not cleaned:
        return f"{title}\n(no finite data to plot)"

    all_x = np.concatenate([xs for xs, __ in cleaned.values()])
    all_y = np.concatenate([ys for __, ys in cleaned.values()])
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for __ in range(height)]
    for idx, (label, (xs, ys)) in enumerate(sorted(cleaned.items())):
        marker = MARKERS[idx % len(MARKERS)]
        for x, y in zip(xs, ys):
            col = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((y - y_lo) / (y_hi - y_lo) * (height - 1)))
            grid[height - 1 - row][col] = marker

    y_top = f"{10**y_hi:.3g}" if logy else f"{y_hi:.3g}"
    y_bot = f"{10**y_lo:.3g}" if logy else f"{y_lo:.3g}"
    gutter = max(len(y_top), len(y_bot), len(ylabel)) + 1
    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        if r == 0:
            left = y_top.rjust(gutter)
        elif r == height - 1:
            left = y_bot.rjust(gutter)
        elif r == height // 2 and ylabel:
            left = ylabel.rjust(gutter)
        else:
            left = " " * gutter
        lines.append(f"{left}|{''.join(row)}")
    axis = " " * gutter + "+" + "-" * width
    lines.append(axis)
    x_left = f"{x_lo:.3g}"
    x_right = f"{x_hi:.3g}"
    pad = width - len(x_left) - len(x_right)
    center = xlabel.center(max(pad, len(xlabel)))
    lines.append(" " * (gutter + 1) + x_left
                 + center[:max(pad, 0)] + x_right)
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} = {label}"
        for i, label in enumerate(sorted(cleaned)))
    lines.append(" " * (gutter + 1) + legend)
    return "\n".join(lines)
