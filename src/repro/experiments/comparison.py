"""Which method should I run on *this* graph?

The paper's practical bottom line (sections 2.4 and 6.3): the answer
depends on the graph's degree structure and the hardware's
hash-vs-scan speed ratio. This harness makes the recommendation for a
concrete graph: cost every fundamental method under its optimal
orientation, time the actual implementations, and report both rankings
side by side with the decision-rule verdict.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.costs import method_cost
from repro.core.decision import PAPER_SPEED_RATIO
from repro.listing.api import list_triangles
from repro.pipeline import _ORDERS, optimal_order_for


@dataclass(frozen=True)
class MethodProfile:
    """One method's showing on a concrete graph."""

    method: str
    order: str
    per_node_cost: float
    seconds: float
    triangles: int

    @property
    def ops_per_second(self) -> float:
        """Measured operation throughput of this implementation."""
        if self.seconds <= 0:
            return float("inf")
        return self.per_node_cost / self.seconds  # per node per sec


def compare_methods(graph, methods=("T1", "T2", "E1", "E4"),
                    rng: np.random.Generator | None = None,
                    time_runs: bool = True) -> list[MethodProfile]:
    """Profile each method under its Corollary-1/2 optimal ordering.

    Returns profiles sorted by operation cost (the hardware-independent
    ranking); wall-clock seconds add the implementation-dependent view.
    With ``time_runs=False`` the listers are skipped and only the
    degree-based costs are reported (fast path for big graphs).
    """
    from repro.orientations.relabel import orient
    if rng is None:
        rng = np.random.default_rng(0)
    profiles = []
    oriented_cache: dict[str, object] = {}
    for method in methods:
        order = optimal_order_for(method)
        oriented = oriented_cache.get(order)
        if oriented is None:
            oriented = orient(graph, _ORDERS[order], rng=rng)
            oriented_cache[order] = oriented
        cost = method_cost(oriented, method)
        seconds = 0.0
        count = -1
        if time_runs:
            start = time.perf_counter()
            result = list_triangles(oriented, method, collect=False)
            seconds = time.perf_counter() - start
            count = result.count
        profiles.append(MethodProfile(method, order, cost, seconds,
                                      count))
    return sorted(profiles, key=lambda p: p.per_node_cost)


def format_comparison(profiles,
                      speed_ratio: float = PAPER_SPEED_RATIO) -> str:
    """Human-readable ranking plus the section 2.4 verdict."""
    lines = [f"{'method':>7} {'order':>11} {'c_n':>10} {'seconds':>9} "
             f"{'triangles':>10}"]
    for p in profiles:
        secs = f"{p.seconds:.3f}" if p.seconds else "--"
        tri = str(p.triangles) if p.triangles >= 0 else "--"
        lines.append(f"{p.method:>7} {p.order:>11} "
                     f"{p.per_node_cost:>10.2f} {secs:>9} {tri:>10}")
    by_name = {p.method: p for p in profiles}
    if "T1" in by_name and "E1" in by_name and by_name["T1"].per_node_cost:
        w = by_name["E1"].per_node_cost / by_name["T1"].per_node_cost
        winner = "SEI (E1)" if w < speed_ratio else "hash (T1)"
        lines.append(
            f"\nw = c(E1)/c(T1) = {w:.2f} vs speed ratio "
            f"{speed_ratio:.1f} => on SIMD-class hardware: {winner}")
    return "\n".join(lines)
