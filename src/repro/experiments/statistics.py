"""Uncertainty quantification for the Monte-Carlo harness.

The paper reports plain averages over 10,000 instances and notes the
results "are still pretty noisy, which explains non-monotonicity of
error in certain cases". At Python scale the budgets are smaller, so
error bars matter more: this module decomposes the variance of
``c_n(M, theta_n)`` into its two sampling layers -- across degree
sequences ``D_n`` and across graphs ``G_n`` realizing a fixed sequence
-- and produces standard errors and normal-approximation confidence
intervals for the cell mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.costs import per_node_cost
from repro.distributions.sampling import sample_degree_sequence
from repro.graphs.generators import generate_graph
from repro.orientations.relabel import orient


@dataclass(frozen=True)
class CellEstimate:
    """Monte-Carlo estimate of one experimental cell."""

    mean: float
    std_error: float
    between_sequence_var: float   # variance of per-sequence means
    within_sequence_var: float    # mean variance across graphs
    n_sequences: int
    n_graphs: int

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI for the cell mean."""
        half = z * self.std_error
        return self.mean - half, self.mean + half

    def contains(self, value: float, z: float = 1.96) -> bool:
        """Does the z-level confidence interval cover ``value``?"""
        lo, hi = self.confidence_interval(z)
        return lo <= value <= hi


def estimate_cell(spec, n: int, rng: np.random.Generator) -> CellEstimate:
    """Run a :class:`SimulationSpec` cell with variance decomposition.

    The estimator of the cell mean is the grand mean of per-sequence
    means; its standard error follows the one-way random-effects
    formula ``sqrt(Var(sequence means) / S)``, which correctly absorbs
    the graph-level noise into the per-sequence means.
    """
    dist_n = spec.base_dist.truncate(spec.truncation(n))
    sequence_means = []
    within_vars = []
    for __ in range(spec.n_sequences):
        degrees = sample_degree_sequence(dist_n, n, rng)
        costs = []
        for __ in range(spec.n_graphs):
            graph = generate_graph(degrees, rng, method=spec.generator)
            oriented = orient(graph, spec.permutation, rng=rng,
                              tie_break=spec.tie_break)
            costs.append(per_node_cost(spec.method,
                                       oriented.out_degrees,
                                       oriented.in_degrees))
        sequence_means.append(float(np.mean(costs)))
        within_vars.append(float(np.var(costs, ddof=1))
                           if len(costs) > 1 else 0.0)
    mean = float(np.mean(sequence_means))
    between = (float(np.var(sequence_means, ddof=1))
               if len(sequence_means) > 1 else 0.0)
    std_error = math.sqrt(between / max(len(sequence_means), 1))
    return CellEstimate(
        mean=mean,
        std_error=std_error,
        between_sequence_var=between,
        within_sequence_var=float(np.mean(within_vars)),
        n_sequences=spec.n_sequences,
        n_graphs=spec.n_graphs,
    )
