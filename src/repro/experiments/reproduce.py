"""Standalone reproduction runner: regenerate every paper table.

Usage::

    python -m repro.experiments.reproduce [output_dir] [--full]

Writes one text artifact per table into ``output_dir`` (default
``./reproduction``) and prints them as it goes. ``--full`` enlarges
the grids (slower, closer to the paper's scale). The pytest benchmarks
in ``benchmarks/`` run the same generators *with assertions*; this
runner is for producing the artifacts without a test harness.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.experiments.paper_tables import (ALL_TABLES, DEFAULT_SIZES,
                                            FULL_SIZES)


def reproduce_all(output_dir="reproduction", full: bool = False,
                  tables=None) -> dict:
    """Regenerate the selected tables; returns ``{name: data}``."""
    out = pathlib.Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    selected = tables or sorted(ALL_TABLES)
    results = {}
    for name in selected:
        generator = ALL_TABLES.get(name)
        if generator is None:
            raise ValueError(
                f"unknown table {name!r}; choose from "
                f"{sorted(ALL_TABLES)}")
        start = time.perf_counter()
        if name == "table05":
            text, data = generator()
        elif name == "table12":
            text, data = generator(n=100_000 if full else 30_000)
        else:
            text, data = generator(
                sizes=FULL_SIZES if full else DEFAULT_SIZES,
                n_sequences=8 if full else 3,
                n_graphs=8 if full else 2)
        elapsed = time.perf_counter() - start
        print(text)
        print(f"[{name}: {elapsed:.1f}s]\n")
        (out / f"{name}.txt").write_text(text + "\n")
        results[name] = data
    return results


def main(argv=None) -> int:
    """Parse CLI arguments and run the regeneration."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's evaluation tables")
    parser.add_argument("output_dir", nargs="?", default="reproduction")
    parser.add_argument("--full", action="store_true",
                        help="larger grids (closer to paper scale)")
    parser.add_argument("--tables", nargs="*", default=None,
                        help="subset, e.g. table05 table12")
    args = parser.parse_args(argv)
    reproduce_all(args.output_dir, full=args.full, tables=args.tables)
    return 0


if __name__ == "__main__":
    sys.exit(main())
