"""Monte-Carlo harness: simulated cost vs. the discrete model (50).

The paper's protocol (section 7.3): average ``c_n(M, theta_n)`` over
``S`` random degree sequences ``D_n``, each realized by ``G`` random
graphs (the paper uses 100 x 100 = 10,000 instances at up to
``n = 10^7``; pure Python scales that down by default, configurable
upward). Cost is evaluated *exactly* from the oriented degrees via
eqs. (7)-(9) -- no listing run is needed, because the instrumented
listers' ``ops`` equal those formulas identically (verified in tests).
"""

from __future__ import annotations

import logging
import math
import os
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.costs import per_node_cost
from repro.core.kernels import LimitMap
from repro.core.model import discrete_cost_model
from repro.core.weights import identity_weight
from repro.distributions.base import DegreeDistribution
from repro.distributions.sampling import sample_degree_sequence
from repro.graphs.generators import generate_graph
from repro.obs import bus as _bus
from repro.obs import metrics as _metrics
from repro.obs.logging import get_logger, log_event
from repro.obs.spans import span
from repro.orientations.permutations import Permutation
from repro.orientations.relabel import orient

_log = get_logger(__name__)

#: Default |model/sim - 1| beyond which a cell logs a divergence
#: warning; override with the ``REPRO_MODEL_ERROR_WARN`` env variable.
MODEL_ERROR_WARN_DEFAULT = 0.25


def model_error_warn_threshold() -> float:
    """The active divergence-warning threshold (env-overridable)."""
    raw = os.environ.get("REPRO_MODEL_ERROR_WARN", "")
    try:
        return float(raw)
    except ValueError:
        return MODEL_ERROR_WARN_DEFAULT


@dataclass
class SimulationSpec:
    """One experimental cell: a (method, permutation) pair plus workload.

    Attributes
    ----------
    base_dist:
        The untruncated degree law ``F``.
    truncation:
        Schedule ``n -> t_n`` (e.g. ``linear_truncation``).
    method:
        Listing method name (cost evaluated from degrees).
    permutation:
        The relabeling permutation ``theta_n``.
    limit_map:
        The permutation's limiting map ``xi`` (for the model side).
    weight:
        The ``w(x)`` entering the model (simulation is unaffected).
    n_sequences / n_graphs:
        Monte-Carlo budget: degree sequences per cell and graphs per
        sequence.
    generator:
        ``"residual"`` (exact realization, the paper's choice) or
        ``"configuration"``.
    """

    base_dist: DegreeDistribution
    truncation: Callable[[int], int]
    method: str
    permutation: Permutation
    limit_map: LimitMap | str
    weight: Callable = identity_weight
    n_sequences: int = 4
    n_graphs: int = 4
    generator: str = "residual"
    tie_break: str = "random"
    extra: dict = field(default_factory=dict)


def simulate_cost(spec: SimulationSpec, n: int,
                  rng: np.random.Generator) -> float:
    """Monte-Carlo estimate of ``E[c_n(M, theta_n)]`` at size ``n``."""
    dist_n = spec.base_dist.truncate(spec.truncation(n))
    costs = []
    with span("cell", method=spec.method,
              permutation=type(spec.permutation).__name__, n=n):
        for seq in range(spec.n_sequences):
            with span("sequence", index=seq):
                with span("sample", n=n):
                    degrees = sample_degree_sequence(dist_n, n, rng)
                for __ in range(spec.n_graphs):
                    graph = generate_graph(degrees, rng,
                                           method=spec.generator)
                    oriented = orient(graph, spec.permutation, rng=rng,
                                      tie_break=spec.tie_break)
                    with span("list", method=spec.method):
                        costs.append(per_node_cost(
                            spec.method, oriented.out_degrees,
                            oriented.in_degrees))
            if _log.isEnabledFor(logging.DEBUG):
                log_event(_log, logging.DEBUG, "monte-carlo progress",
                          method=spec.method,
                          permutation=type(spec.permutation).__name__,
                          n=n, sequence=seq + 1,
                          of=spec.n_sequences,
                          graphs_per_sequence=spec.n_graphs)
    _metrics.inc("harness.instances", len(costs))
    return float(np.mean(costs))


def model_cost(spec: SimulationSpec, n: int) -> float:
    """The discrete model (50) for the same cell."""
    dist_n = spec.base_dist.truncate(spec.truncation(n))
    return discrete_cost_model(dist_n, spec.method, spec.limit_map,
                               spec.weight)


def check_model_divergence(spec: SimulationSpec, n: int, sim: float,
                           model: float) -> float:
    """Relative error ``model / sim - 1``, with the divergence warning.

    ``relative_error`` matches the sign convention of the paper's
    tables (negative = model underestimates). Cells whose absolute
    relative error exceeds :func:`model_error_warn_threshold` bump
    ``harness.divergent_cells`` and log a structured WARNING instead
    of diverging silently. Shared by the serial and pool-backed
    harnesses.
    """
    error = model / sim - 1.0 if sim else float("nan")
    threshold = model_error_warn_threshold()
    if math.isfinite(error) and abs(error) > threshold:
        _metrics.inc("harness.divergent_cells")
        log_event(_log, logging.WARNING, "model-simulation divergence",
                  method=spec.method,
                  permutation=type(spec.permutation).__name__,
                  n=n, sim=sim, model=model, relative_error=error,
                  threshold=threshold)
    return error


def simulated_vs_model(spec: SimulationSpec, n: int,
                       rng: np.random.Generator) -> tuple[float, float,
                                                          float]:
    """Return ``(sim, model, relative_error)`` for one cell.

    See :func:`check_model_divergence` for the error convention and
    the divergence warning.
    """
    sim = simulate_cost(spec, n, rng)
    model = model_cost(spec, n)
    error = check_model_divergence(spec, n, sim, model)
    return sim, model, error


def sweep_n(spec: SimulationSpec, ns: Sequence[int],
            rng: np.random.Generator | None = None, *,
            workers: int | None = 1, chunksize: int | None = None,
            seed: int = 0) -> list[dict]:
    """Run a cell across graph sizes; returns one dict per ``n``.

    With ``workers=1`` (the default) this is the legacy serial path:
    one ``rng`` threads through every cell, preserving historic
    sequences exactly. Any other value -- including ``None`` (resolve
    from ``REPRO_MAX_WORKERS`` / cpu count) -- delegates to
    :func:`repro.experiments.parallel.sweep_n_parallel`, which fans
    sequences over a process pool and derives its streams from
    ``seed`` (``rng`` is then unused and may be ``None``).
    """
    if workers != 1:
        from repro.experiments.parallel import sweep_n_parallel
        return sweep_n_parallel(spec, ns, seed=seed,
                                max_workers=workers,
                                chunksize=chunksize)
    if rng is None:
        rng = np.random.default_rng(seed)
    ns = list(ns)
    progress = None
    if _bus.is_enabled():
        from repro.obs.live import Progress
        try:
            predicted = sum(model_cost(spec, n) * n
                            * spec.n_sequences * spec.n_graphs
                            for n in ns)
        except Exception:
            predicted = None
        progress = Progress(f"sweep {spec.method} x{len(ns)}", len(ns),
                            predicted_ops=predicted, scope="sweep",
                            phase="sweep")
    rows = []
    for n in ns:
        sim, model, error = simulated_vs_model(spec, n, rng)
        rows.append({"n": n, "sim": sim, "model": model, "error": error})
        if progress is not None:
            progress.advance(
                1, ops=sim * n * spec.n_sequences * spec.n_graphs)
    return rows
