"""Evaluation harness reproducing section 7's tables.

* :mod:`repro.experiments.harness` -- Monte-Carlo simulation of
  ``E[c_n(M, theta_n)]`` over random degree sequences and random graphs,
  compared against the discrete model (50).
* :mod:`repro.experiments.tables` -- row assembly and paper-style
  formatting of the comparison tables.
* :mod:`repro.experiments.twitter` -- the section 7.5 case study on a
  synthetic heavy-tailed stand-in for the Twitter graph.
* :mod:`repro.experiments.speed` -- the Table 3 substitution: measured
  hash-probe vs. scanning-intersection throughput in this runtime.
"""

from repro.experiments.harness import (
    SimulationSpec,
    simulate_cost,
    simulated_vs_model,
    sweep_n,
)
from repro.experiments.tables import (
    ComparisonRow,
    format_comparison_table,
    format_matrix_table,
)
from repro.experiments.twitter import (
    twitter_like_graph,
    cost_matrix,
    analyze_cost_matrix,
)
from repro.experiments.speed import measure_primitive_speeds
from repro.experiments.regimes import (
    classify_alpha,
    sweep_regimes,
    regime_of,
    provable_t1_window,
    format_regime_table,
)
from repro.experiments.statistics import CellEstimate, estimate_cell
from repro.experiments.parallel import simulate_cost_parallel
from repro.experiments.comparison import (
    MethodProfile,
    compare_methods,
    format_comparison,
)

__all__ = [
    "SimulationSpec",
    "simulate_cost",
    "simulated_vs_model",
    "sweep_n",
    "ComparisonRow",
    "format_comparison_table",
    "format_matrix_table",
    "twitter_like_graph",
    "cost_matrix",
    "analyze_cost_matrix",
    "measure_primitive_speeds",
    "classify_alpha",
    "sweep_regimes",
    "regime_of",
    "provable_t1_window",
    "format_regime_table",
    "CellEstimate",
    "estimate_cell",
    "simulate_cost_parallel",
    "MethodProfile",
    "compare_methods",
    "format_comparison",
]
