"""The four-regime landscape of vertex/edge iterators (sections 4.2, 6.3).

Section 4.2: "vertex iterator exhibits at least four regimes of
operation, i.e., alpha <= 4/3, alpha in (4/3, 1.5], alpha in (1.5, 2],
and alpha > 2". This module sweeps the tail index and classifies each
(method, permutation) pair, producing the summary the paper describes in
prose as an explicit table -- including the headline regime
``alpha in (4/3, 1.5]`` where T1 is provably faster than E1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.asymptotics import finiteness_threshold, is_cost_finite

#: The boundaries separating the four regimes of section 4.2.
REGIME_BOUNDARIES = (4.0 / 3.0, 1.5, 2.0)

#: The grid of (method, map) pairs the paper analyzes.
DEFAULT_PAIRS = (
    ("T1", "descending"),
    ("T1", "ascending"),
    ("T2", "rr"),
    ("T2", "descending"),
    ("E1", "descending"),
    ("E1", "rr"),
    ("E4", "crr"),
)


@dataclass(frozen=True)
class RegimeRow:
    """Finiteness classification of one tail index."""

    alpha: float
    finite_pairs: tuple
    infinite_pairs: tuple

    @property
    def t1_beats_e1_provably(self) -> bool:
        """The section 6.3 regime: T1 finite while E1 diverges."""
        return (("T1", "descending") in self.finite_pairs
                and ("E1", "descending") in self.infinite_pairs)


def classify_alpha(alpha: float, pairs=DEFAULT_PAIRS) -> RegimeRow:
    """Which (method, map) pairs have finite limits at this alpha?"""
    finite = tuple(p for p in pairs if is_cost_finite(alpha, *p))
    infinite = tuple(p for p in pairs if p not in finite)
    return RegimeRow(alpha, finite, infinite)


def regime_of(alpha: float) -> int:
    """Regime index 1-4 per section 4.2 (1 = everything diverges)."""
    for idx, boundary in enumerate(REGIME_BOUNDARIES):
        if alpha <= boundary:
            return idx + 1
    return len(REGIME_BOUNDARIES) + 1


def sweep_regimes(alphas, pairs=DEFAULT_PAIRS) -> list[RegimeRow]:
    """Classify a grid of tail indices."""
    return [classify_alpha(a, pairs) for a in alphas]


def format_regime_table(rows) -> str:
    """Render the sweep as a compact finite/infinite matrix."""
    pairs = sorted({p for row in rows
                    for p in row.finite_pairs + row.infinite_pairs})
    header = f"{'alpha':>6} " + " ".join(
        f"{m}+{x[:4]:<4}" for m, x in pairs)
    lines = ["Finiteness regimes (F = finite limit, - = divergent)",
             header]
    for row in rows:
        cells = " ".join(
            f"{'F' if p in row.finite_pairs else '-':>7} " for p in pairs)
        lines.append(f"{row.alpha:>6.3f} {cells}")
    return "\n".join(lines)


def provable_t1_window() -> tuple[float, float]:
    """The (open, closed] alpha interval where T1 provably beats E1.

    Derived from the thresholds rather than hardcoded, so it stays
    correct if the threshold machinery changes: it is
    ``(threshold(T1, desc), threshold(E1, desc)]`` = ``(4/3, 3/2]``.
    """
    return (finiteness_threshold("T1", "descending"),
            finiteness_threshold("E1", "descending"))
