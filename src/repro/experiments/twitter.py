"""Section 7.5 case study on a synthetic Twitter stand-in.

The paper computes total CPU operations ``n c_n(M, theta_n)`` on the
Twitter follower graph [27] (41M nodes, 1.2B edges) for the four
fundamental methods under six orientations (Table 12). The raw graph is
9.3 GB and unavailable offline, so :func:`twitter_like_graph` generates
a discrete-Pareto graph whose degree law has the same qualitative shape
(heavy tail, ``E[D]`` tens of edges). Every claim the paper draws from
Table 12 is *relative* -- which permutation wins per method, worst/best
ratios, ``E1(theta_D) ~ 2 x T2(theta_RR)`` -- and those are functions of
the degree distribution, not of scale, so the study's shape carries
over (see DESIGN.md for the substitution rationale).
"""

from __future__ import annotations

import numpy as np

from repro.core.costs import total_cost
from repro.obs.spans import span
from repro.distributions.pareto import DiscretePareto
from repro.distributions.sampling import sample_degree_sequence
from repro.graphs.generators import generate_graph
from repro.orientations.degenerate import DegenerateOrder
from repro.orientations.permutations import (
    AscendingDegree,
    ComplementaryRoundRobin,
    DescendingDegree,
    RoundRobin,
    UniformRandom,
)
from repro.orientations.relabel import orient

#: The Table 12 column order.
PERMUTATION_ORDER = ("descending", "ascending", "rr", "crr", "uniform",
                     "degenerate")

_PERMUTATIONS = {
    "descending": DescendingDegree(),
    "ascending": AscendingDegree(),
    "rr": RoundRobin(),
    "crr": ComplementaryRoundRobin(),
    "uniform": UniformRandom(),
    "degenerate": DegenerateOrder(),
}


def twitter_like_graph(n: int = 50_000, alpha: float = 1.7,
                       rng: np.random.Generator | None = None):
    """A heavy-tailed stand-in for the Twitter graph at tractable scale.

    Discrete Pareto with the paper's ``beta = 30 (alpha - 1)``
    parameterization (``E[D] ~ 30.5``, matching Twitter's mean degree of
    ``2m/n ~ 58`` within a small factor) and linear truncation.
    """
    if rng is None:
        rng = np.random.default_rng(2017)
    dist = DiscretePareto.paper_parameterization(alpha).truncate(n - 1)
    degrees = sample_degree_sequence(dist, n, rng)
    return generate_graph(degrees, rng)


def cost_matrix(graph, methods=("T1", "T2", "E1", "E4"),
                permutations=PERMUTATION_ORDER,
                rng: np.random.Generator | None = None) -> np.ndarray:
    """Total CPU operations ``n c_n(M, theta)`` per (method, permutation).

    Each permutation is applied once (orientations are deterministic
    given the tie-break; ``uniform`` uses ``rng``), then all methods are
    costed from the same oriented degrees -- exactly how Table 12 was
    produced. Tie-breaking is stable so that the exact symmetries the
    paper relies on (e.g. T2 identical under ascending/descending) hold
    to the last operation.
    """
    if rng is None:
        rng = np.random.default_rng(7)
    matrix = np.empty((len(methods), len(permutations)), dtype=float)
    for col, perm_name in enumerate(permutations):
        perm = _PERMUTATIONS[perm_name]
        oriented = orient(graph, perm, rng=rng, tie_break="stable")
        for row, method in enumerate(methods):
            with span("list", method=method, permutation=perm_name):
                matrix[row, col] = total_cost(method,
                                              oriented.out_degrees,
                                              oriented.in_degrees)
    return matrix


def analyze_cost_matrix(matrix: np.ndarray,
                        methods=("T1", "T2", "E1", "E4"),
                        permutations=PERMUTATION_ORDER) -> dict:
    """Table 12's qualitative readouts, for assertions and reports.

    Returns per-method best/worst permutations and ratios, plus the
    paper's two cross-method observations: ``E1(theta_D) / T2(theta_RR)``
    (about 2) and ``E4(best) / E1(theta_D)`` (three-digit).
    """
    methods = list(methods)
    permutations = list(permutations)
    report: dict = {"per_method": {}}
    for i, m in enumerate(methods):
        row = matrix[i]
        considered = [p for p in permutations if p != "degenerate"]
        idx = [permutations.index(p) for p in considered]
        sub = row[idx]
        best = considered[int(np.argmin(sub))]
        worst = considered[int(np.argmax(sub))]
        report["per_method"][m] = {
            "best": best,
            "worst": worst,
            "worst_over_best": float(np.max(sub) / np.min(sub)),
        }
    def cell(method, perm):
        return matrix[methods.index(method), permutations.index(perm)]
    if "E1" in methods and "T2" in methods:
        report["e1_desc_over_t2_rr"] = float(
            cell("E1", "descending") / cell("T2", "rr"))
    if "E4" in methods and "E1" in methods:
        e4_best = float(np.min(matrix[methods.index("E4")]))
        report["e4_best_over_e1_desc"] = float(
            e4_best / cell("E1", "descending"))
    return report
