"""Library-level regeneration of the paper's evaluation tables.

Each ``table*`` function computes one table of section 7 (at a
configurable scale) and returns ``(text, data)`` -- the rendered
paper-style table plus the raw values for programmatic checks. The
pytest benchmarks wrap these; ``python -m repro.experiments.reproduce``
runs them all standalone.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.fastmodel import fast_cost_model
from repro.core.limits import limit_cost
from repro.core.model import continuous_cost_model, discrete_cost_model
from repro.core.weights import capped_weight, identity_weight
from repro.distributions.pareto import ContinuousPareto, DiscretePareto
from repro.distributions.truncation import (linear_truncation,
                                            root_truncation)
from repro.experiments.harness import (SimulationSpec, simulate_cost,
                                       simulated_vs_model)
from repro.experiments.tables import (ComparisonRow,
                                      format_comparison_table,
                                      format_matrix_table)
from repro.orientations.permutations import (AscendingDegree,
                                             DescendingDegree, RoundRobin)

#: Default simulation sizes (paper: 1e4 .. 1e7).
DEFAULT_SIZES = (1000, 3000, 10_000)
FULL_SIZES = (10_000, 30_000, 100_000)


def simulation_table(title: str, base_dist, truncation, cells,
                     sizes=DEFAULT_SIZES, n_sequences: int = 3,
                     n_graphs: int = 2, seed: int = 2017,
                     workers: int | None = 0,
                     chunksize: int | None = None):
    """A Tables-6-to-10 style sweep: sim vs model (50) vs the limit.

    ``cells`` is a list of ``(label, method, permutation, limit_map)``.
    Returns ``(text, rows)`` with ``rows`` a list of
    :class:`ComparisonRow` (last row = the limits).

    ``workers=0`` (the default) keeps the historic serial path: one
    RNG threads through every cell, so existing golden values stay
    byte-identical. Any other value routes each cell through the
    process-pool harness with a deterministic per-cell seed derived
    from ``(seed, n, cell index)`` -- reproducible for a fixed seed at
    any worker count (``workers=None`` resolves from
    ``REPRO_MAX_WORKERS`` / cpu count).
    """
    rng = np.random.default_rng(seed)
    rows = []
    for n in sizes:
        row_cells = []
        for cell_idx, (__, method, perm, limit_map) in enumerate(cells):
            spec = SimulationSpec(
                base_dist=base_dist, truncation=truncation,
                method=method, permutation=perm, limit_map=limit_map,
                n_sequences=n_sequences, n_graphs=n_graphs)
            if workers == 0:
                row_cells.append(simulated_vs_model(spec, n, rng))
            else:
                from repro.experiments.parallel import (
                    simulated_vs_model_parallel)
                cell_seed = np.random.SeedSequence(
                    [seed, int(n), cell_idx])
                row_cells.append(simulated_vs_model_parallel(
                    spec, n, seed=cell_seed, max_workers=workers,
                    chunksize=chunksize))
        rows.append(ComparisonRow(n, row_cells))
    limit_cells = []
    for __, method, perm, limit_map in cells:
        limit = limit_cost(base_dist, method, limit_map, eps=1e-4,
                           t_start=1e8, t_max=1e14)
        limit_cells.append((None, limit, None))
    rows.append(ComparisonRow("inf", limit_cells))
    labels = [c[0] for c in cells]
    return format_comparison_table(title, labels, rows), rows


def table05(exact_sizes=(10**3, 10**4, 10**7),
            fast_sizes=(10**3, 10**4, 10**7, 10**9, 10**10, 10**12,
                        10**14, 10**17)):
    """Table 5: continuous (49) vs exact (50) vs Algorithm 2, + times."""
    dist = DiscretePareto(1.5, 15.0)
    cont = ContinuousPareto(1.5, 15.0)
    rows = []
    for n in fast_sizes:
        t = n - 1
        t0 = time.perf_counter()
        c_val = continuous_cost_model(cont, t, "T1", "descending")
        t_cont = time.perf_counter() - t0
        if n in exact_sizes:
            t0 = time.perf_counter()
            exact = discrete_cost_model(dist.truncate(t), "T1",
                                        "descending")
            t_exact = time.perf_counter() - t0
        else:
            exact, t_exact = None, None
        t0 = time.perf_counter()
        fast = fast_cost_model(dist.truncate(t), "T1", "descending",
                               eps=1e-5)
        t_fast = time.perf_counter() - t0
        rows.append((n, c_val, t_cont, exact, t_exact, fast, t_fast))
    lines = ["Table 5: T1 + descending, alpha=1.5, linear truncation, "
             "eps=1e-5",
             f"{'n':>8}  {'(49) cont':>10} {'time':>7}  "
             f"{'(50) exact':>10} {'time':>7}  {'Alg 2':>10} {'time':>7}"]
    for n, c_val, tc, exact, te, fast, tf in rows:
        exact_s = (f"{exact:10.2f} {te:6.2f}s" if exact is not None
                   else f"{'too slow':>10} {'--':>7}")
        lines.append(f"{n:8.0e}  {c_val:10.2f} {tc:6.2f}s  {exact_s}  "
                     f"{fast:10.2f} {tf:6.2f}s")
    return "\n".join(lines), rows


def table06(sizes=DEFAULT_SIZES, **kwargs):
    """Table 6: T1 x {ascending, descending}, alpha=1.5, root trunc."""
    return simulation_table(
        "Table 6: cost with alpha=1.5 and root truncation",
        DiscretePareto(1.5, 15.0), root_truncation,
        [("T1+A", "T1", AscendingDegree(), "ascending"),
         ("T1+D", "T1", DescendingDegree(), "descending")],
        sizes=sizes, **kwargs)


def table07(sizes=DEFAULT_SIZES, **kwargs):
    """Table 7: T2 x {descending, RR}, alpha=1.7, root truncation."""
    return simulation_table(
        "Table 7: cost with alpha=1.7 and root truncation",
        DiscretePareto(1.7, 21.0), root_truncation,
        [("T2+D", "T2", DescendingDegree(), "descending"),
         ("T2+RR", "T2", RoundRobin(), "rr")],
        sizes=sizes, **kwargs)


def table08(sizes=DEFAULT_SIZES, **kwargs):
    """Table 8: alpha=2.1 under linear truncation (still AMRC)."""
    return simulation_table(
        "Table 8: cost with alpha=2.1 and linear truncation",
        DiscretePareto(2.1, 33.0), linear_truncation,
        [("T1+D", "T1", DescendingDegree(), "descending"),
         ("T2+RR", "T2", RoundRobin(), "rr")],
        sizes=sizes, **kwargs)


def table09(sizes=DEFAULT_SIZES, **kwargs):
    """Table 9: Table 6's setup under linear truncation."""
    return simulation_table(
        "Table 9: cost with alpha=1.5 and linear truncation",
        DiscretePareto(1.5, 15.0), linear_truncation,
        [("T1+A", "T1", AscendingDegree(), "ascending"),
         ("T1+D", "T1", DescendingDegree(), "descending")],
        sizes=sizes, **kwargs)


def table10(sizes=DEFAULT_SIZES, **kwargs):
    """Table 10: Table 7's setup under linear truncation."""
    return simulation_table(
        "Table 10: cost with alpha=1.7 and linear truncation",
        DiscretePareto(1.7, 21.0), linear_truncation,
        [("T2+D", "T2", DescendingDegree(), "descending"),
         ("T2+RR", "T2", RoundRobin(), "rr")],
        sizes=sizes, **kwargs)


def table11(sizes=DEFAULT_SIZES, n_sequences: int = 3, n_graphs: int = 2,
            seed: int = 2017):
    """Table 11: model error with w1 vs w2, alpha=1.2, linear trunc."""
    dist = DiscretePareto(1.2, 6.0)
    cells = [("T1+D", "T1", DescendingDegree(), "descending"),
             ("T2+D", "T2", DescendingDegree(), "descending"),
             ("T2+RR", "T2", RoundRobin(), "rr")]
    rng = np.random.default_rng(seed)
    table = {}
    for n in sizes:
        t_n = linear_truncation(n)
        dist_n = dist.truncate(t_n)
        ks = np.arange(1, t_n + 1, dtype=float)
        m_expected = n * float(np.sum(ks * dist_n.pmf(ks))) / 2.0
        w2 = capped_weight(max(np.sqrt(m_expected), 2.0))
        row = {}
        for label, method, perm, limit_map in cells:
            spec = SimulationSpec(
                base_dist=dist, truncation=linear_truncation,
                method=method, permutation=perm, limit_map=limit_map,
                n_sequences=n_sequences, n_graphs=n_graphs)
            sim = simulate_cost(spec, n, rng)
            err1 = discrete_cost_model(dist_n, method, limit_map,
                                       identity_weight) / sim - 1.0
            err2 = discrete_cost_model(dist_n, method, limit_map,
                                       w2) / sim - 1.0
            row[label] = (err1, err2)
        table[n] = row
    labels = [c[0] for c in cells]
    lines = ["Table 11: relative error of (50), alpha=1.2, linear "
             "truncation",
             f"{'n':>7}  " + "  ".join(
                 f"{label + ' w1':>10} {label + ' w2':>10}"
                 for label in labels)]
    for n, row in table.items():
        cells_text = "  ".join(
            f"{100 * row[label][0]:>9.1f}% {100 * row[label][1]:>9.1f}%"
            for label in labels)
        lines.append(f"{n:>7}  {cells_text}")
    return "\n".join(lines), table


def table12(n: int = 30_000, alpha: float = 1.7, seed: int = 2017):
    """Table 12: the Twitter study on the synthetic stand-in."""
    from repro.experiments.twitter import (PERMUTATION_ORDER,
                                           analyze_cost_matrix,
                                           cost_matrix,
                                           twitter_like_graph)
    rng = np.random.default_rng(seed)
    graph = twitter_like_graph(n=n, alpha=alpha, rng=rng)
    methods = ("T1", "T2", "E1", "E4")
    matrix = cost_matrix(graph, methods=methods, rng=rng)
    text = format_matrix_table(
        f"Table 12: CPU operations on Twitter-like graph "
        f"(n={n}, m={graph.m})",
        list(methods), list(PERMUTATION_ORDER), matrix)
    report = analyze_cost_matrix(matrix, methods=methods)
    return text, {"matrix": matrix, "report": report, "graph": graph}


#: Everything `reproduce` regenerates, in paper order.
ALL_TABLES = {
    "table05": table05,
    "table06": table06,
    "table07": table07,
    "table08": table08,
    "table09": table09,
    "table10": table10,
    "table11": table11,
    "table12": table12,
}
