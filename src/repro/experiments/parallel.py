"""Multiprocess Monte-Carlo for the simulation harness.

The paper averages every cell over 10,000 graph instances; a single
Python process cannot afford that, but the instances are embarrassingly
parallel. This runner fans a :class:`SimulationSpec` cell out over a
process pool with independent, reproducibly-derived RNG streams
(``numpy.random.SeedSequence.spawn``), and aggregates the per-instance
costs.
"""

from __future__ import annotations

import concurrent.futures
import os

import numpy as np

from repro.core.costs import per_node_cost
from repro.distributions.sampling import sample_degree_sequence
from repro.graphs.generators import generate_graph
from repro.orientations.relabel import orient


def _run_one_sequence(args):
    """Worker: one degree sequence, ``n_graphs`` realizations."""
    spec, n, seed_entropy = args
    rng = np.random.default_rng(seed_entropy)
    dist_n = spec.base_dist.truncate(spec.truncation(n))
    degrees = sample_degree_sequence(dist_n, n, rng)
    costs = []
    for __ in range(spec.n_graphs):
        graph = generate_graph(degrees, rng, method=spec.generator)
        oriented = orient(graph, spec.permutation, rng=rng,
                          tie_break=spec.tie_break)
        costs.append(per_node_cost(spec.method, oriented.out_degrees,
                                   oriented.in_degrees))
    return costs


def simulate_cost_parallel(spec, n: int, seed: int = 0,
                           max_workers: int | None = None) -> float:
    """Parallel version of
    :func:`repro.experiments.harness.simulate_cost`.

    Spawns one task per degree sequence; each task derives its RNG from
    ``SeedSequence(seed).spawn``, so results are reproducible for a
    fixed ``(spec, n, seed)`` regardless of worker count.
    """
    if max_workers is None:
        max_workers = min(spec.n_sequences, os.cpu_count() or 1)
    seeds = np.random.SeedSequence(seed).spawn(spec.n_sequences)
    tasks = [(spec, n, s) for s in seeds]
    if max_workers <= 1:
        results = [_run_one_sequence(t) for t in tasks]
    else:
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=max_workers) as pool:
            results = list(pool.map(_run_one_sequence, tasks))
    all_costs = [c for chunk in results for c in chunk]
    return float(np.mean(all_costs))
