"""Multiprocess Monte-Carlo for the simulation harness.

The paper averages every cell over 10,000 graph instances; a single
Python process cannot afford that, but the instances are embarrassingly
parallel. This runner fans :class:`SimulationSpec` cells out over a
process pool with independent, reproducibly-derived RNG streams
(``numpy.random.SeedSequence.spawn``) and chunked scheduling, and
aggregates per-instance costs *and* per-worker observability back into
the parent:

* every worker runs its sequence under the same ``sequence``/
  ``sample``/``list`` span structure the serial harness emits, ships
  the finished span trees and the metric-counter snapshot home as
  plain dicts, and the parent reattaches them under its ``cell`` span
  (:meth:`repro.obs.spans.Span.from_dict`) and folds the counters into
  its registry (:func:`repro.obs.metrics.merge_counters`);
* ``harness.instances`` is incremented in the parent exactly as
  :func:`repro.experiments.harness.simulate_cost` does;
* every task reports ``(pid, wall_ns)`` back and the parent publishes
  per-worker telemetry (``parallel.tasks``, ``parallel.task_ms``,
  idle share, imbalance ratio -- see
  :func:`_publish_worker_telemetry`) and annotates the ``cell`` span
  with it.

Results are bit-for-bit identical for a fixed seed regardless of
worker count or chunk size: the seed derivation, task order, and
aggregation order never depend on the pool geometry.

Worker-count resolution: an explicit ``max_workers`` argument wins,
then the ``REPRO_MAX_WORKERS`` environment variable, then
``min(n_tasks, os.cpu_count())``.
"""

from __future__ import annotations

import concurrent.futures
import math
import multiprocessing
import os
import time

import numpy as np

from repro.core.costs import per_node_cost
from repro.distributions.sampling import sample_degree_sequence
from repro.experiments.harness import check_model_divergence, model_cost
from repro.graphs.generators import generate_graph
from repro.obs import bus as _bus
from repro.obs import live as _live
from repro.obs import metrics as _metrics
from repro.obs import spans as _spans
from repro.obs.spans import Span, span
from repro.orientations.relabel import orient

__all__ = [
    "resolve_chunksize",
    "resolve_mp_context",
    "resolve_workers",
    "simulate_cost_parallel",
    "simulated_vs_model_parallel",
    "sweep_n_parallel",
]


def resolve_workers(max_workers: int | None, n_tasks: int) -> int:
    """Pick the pool size: argument > ``REPRO_MAX_WORKERS`` > cpus.

    The environment override and the default are both capped by the
    task count (more workers than tasks is pure overhead); an explicit
    argument is taken as-is.
    """
    if max_workers is not None:
        return max(1, int(max_workers))
    raw = os.environ.get("REPRO_MAX_WORKERS", "")
    if raw:
        try:
            return max(1, min(int(raw), n_tasks))
        except ValueError:
            pass
    return max(1, min(n_tasks, os.cpu_count() or 1))


def resolve_chunksize(chunksize: int | None, n_tasks: int,
                      workers: int) -> int:
    """Tasks handed to a worker per round trip.

    Default: ~4 chunks per worker (``ceil(n_tasks / (4 * workers))``)
    -- large enough to amortize pickling, small enough to keep the
    pool load-balanced when sequence costs vary.
    """
    if chunksize is not None:
        return max(1, int(chunksize))
    return max(1, math.ceil(n_tasks / (4 * workers)))


def resolve_mp_context(mp_start: str | None = None):
    """Multiprocessing context: argument > ``REPRO_MP_START`` > default.

    ``"fork"`` (the Linux default) inherits the parent's modules;
    ``"spawn"`` re-imports everything in a fresh interpreter -- the
    only option on macOS/Windows and the mode the spawn-parity tests
    exercise. ``None``/empty falls back to the platform default.
    """
    method = (mp_start if mp_start is not None
              else os.environ.get("REPRO_MP_START", "")).strip().lower()
    if not method:
        return None
    return multiprocessing.get_context(method)


def _run_one_sequence(task):
    """Worker: one degree sequence, ``n_graphs`` realizations.

    ``task`` is ``(spec, n, seq_index, seed, bootstrap)``. With
    ``bootstrap=None`` (serial in-process call) the ambient
    observability state is used directly -- spans nest under the open
    ``cell`` span, metrics go to the live registry -- and the obs
    fields of the return value are ``None``. In a child process
    ``bootstrap`` carries the parent's ``(spans_on, metrics_on)``
    flags -- extended to ``(spans_on, metrics_on, hb_queue,
    hb_interval)`` while live telemetry is on, where ``hb_queue`` is a
    manager-queue proxy (picklable under both ``fork`` and ``spawn``)
    the worker posts liveness heartbeats into: one at sequence start,
    then at most one per ``hb_interval`` as realizations complete. The
    parent-side :class:`repro.obs.live.HeartbeatWatchdog` drains them.

    The worker enables a fresh obs state, runs, and returns the
    collected span dicts and counter snapshot for the parent to merge.
    Every path also returns a telemetry tuple ``(pid, wall_ns)`` so
    the parent can attribute per-task wall time to the worker process
    that executed it (one ``perf_counter_ns`` pair per *sequence*, far
    outside any hot loop).
    """
    spec, n, seq_index, seed, bootstrap = task
    in_child = bootstrap is not None
    hb_queue = None
    hb_interval = _live.DEFAULT_INTERVAL_S
    t0 = time.perf_counter_ns()
    if in_child:
        if len(bootstrap) >= 4:
            spans_on, metrics_on, hb_queue, hb_interval = bootstrap[:4]
        else:
            spans_on, metrics_on = bootstrap
        _spans.reset()
        _metrics.reset()
        if spans_on:
            _spans.enable()
        if metrics_on:
            _metrics.enable()
    task_label = f"seq {seq_index} n={n} {spec.method}"
    if hb_queue is not None:
        _live.post_heartbeat(hb_queue, task_label, status="start")
    last_hb = time.monotonic()
    rng = np.random.default_rng(seed)
    dist_n = spec.base_dist.truncate(spec.truncation(n))
    costs = []
    with span("sequence", index=seq_index, n=n) as seq_span:
        if in_child:
            # Marks the reattached subtree with its worker process so
            # the trace exporter can lay it on its own thread row.
            seq_span.annotate(worker_pid=os.getpid())
        with span("sample", n=n):
            degrees = sample_degree_sequence(dist_n, n, rng)
        for __ in range(spec.n_graphs):
            graph = generate_graph(degrees, rng, method=spec.generator)
            oriented = orient(graph, spec.permutation, rng=rng,
                              tie_break=spec.tie_break)
            with span("list", method=spec.method):
                costs.append(per_node_cost(
                    spec.method, oriented.out_degrees,
                    oriented.in_degrees))
            if (hb_queue is not None
                    and time.monotonic() - last_hb >= hb_interval):
                _live.post_heartbeat(hb_queue, task_label,
                                     status="running")
                last_hb = time.monotonic()
    if hb_queue is not None:
        _live.post_heartbeat(hb_queue, task_label, status="done")
    tele = (os.getpid(), time.perf_counter_ns() - t0)
    if not in_child:
        return costs, None, None, tele
    counters = _metrics.snapshot()["counters"] if metrics_on else None
    span_dicts = ([s.to_dict() for s in _spans.pop_finished()]
                  if spans_on else None)
    if spans_on:
        _spans.disable()
    if metrics_on:
        _metrics.disable()
    return costs, counters, span_dicts, tele


def _cell_progress(spec, n: int, n_tasks: int):
    """Model-ops progress tracker for one cell (``None`` when bus off).

    The paper's cost model predicts the cell's total work up front:
    ``E[c_n] * n`` ops per instance, ``n_sequences * n_graphs``
    instances -- so live progress is reported as fraction of predicted
    ops consumed (each finished task contributes its *actual* summed
    ``per_node_cost * n``), and the ETA extrapolates from that
    fraction rather than from task counts.
    """
    if not _bus.is_enabled():
        return None
    try:
        predicted = (model_cost(spec, n) * n
                     * n_tasks * spec.n_graphs)
    except Exception:
        predicted = None
    return _live.Progress(
        f"cell n={n} {spec.method}", n_tasks,
        predicted_ops=predicted, scope="cell", phase="simulate")


def simulate_cost_parallel(spec, n: int, seed=0,
                           max_workers: int | None = None,
                           chunksize: int | None = None,
                           mp_start: str | None = None) -> float:
    """Parallel version of
    :func:`repro.experiments.harness.simulate_cost`.

    Spawns one task per degree sequence; each task derives its RNG
    from ``SeedSequence(seed).spawn``, so results are bit-for-bit
    reproducible for a fixed ``(spec, n, seed)`` regardless of
    ``max_workers`` / ``chunksize`` / ``mp_start`` (start method:
    argument > ``REPRO_MP_START`` > platform default).

    Observability parity with the serial harness: the fan-out runs
    under a ``cell`` span, worker span trees are reattached beneath
    it, worker counters are merged into the parent registry, and
    ``harness.instances`` counts every realized graph. With live
    telemetry on (``REPRO_LIVE=1``) the pool results are consumed
    lazily so every finished task advances a model-ops progress
    tracker, and workers post heartbeats a watchdog thread relays /
    monitors for stalls.
    """
    n_tasks = spec.n_sequences
    workers = resolve_workers(max_workers, n_tasks)
    cs = resolve_chunksize(chunksize, n_tasks, workers)
    root = (seed if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed))
    seeds = root.spawn(n_tasks)
    with span("cell", method=spec.method,
              permutation=type(spec.permutation).__name__, n=n,
              workers=workers, chunksize=cs) as cell:
        progress = _cell_progress(spec, n, n_tasks)
        pool_t0 = time.perf_counter_ns()
        if workers <= 1:
            results = []
            for i, s in enumerate(seeds):
                result = _run_one_sequence((spec, n, i, s, None))
                results.append(result)
                if progress is not None:
                    progress.advance(1, ops=sum(result[0]) * n)
        else:
            bootstrap = (_spans.is_enabled(), _metrics.is_enabled())
            manager = watchdog = None
            if _live.is_enabled():
                interval = _live.live_interval()
                manager = multiprocessing.Manager()
                watchdog = _live.HeartbeatWatchdog(
                    manager.Queue(), interval_s=interval).start()
                bootstrap = bootstrap + (watchdog.queue, interval)
            tasks = [(spec, n, i, s, bootstrap)
                     for i, s in enumerate(seeds)]
            try:
                with concurrent.futures.ProcessPoolExecutor(
                        max_workers=workers,
                        mp_context=resolve_mp_context(mp_start)) as pool:
                    # pool.map yields in task order as results arrive;
                    # consuming it lazily lets each completion advance
                    # the progress tracker without changing the final
                    # (order-deterministic) aggregation below.
                    results = []
                    for result in pool.map(_run_one_sequence, tasks,
                                           chunksize=cs):
                        results.append(result)
                        if progress is not None:
                            progress.advance(1, ops=sum(result[0]) * n)
            finally:
                if watchdog is not None:
                    stalled = sum(
                        1 for w in watchdog.stop().values()
                        if w.get("stalled"))
                    cell.annotate(heartbeat_workers=len(
                        watchdog.workers), stalled_workers=stalled)
                if manager is not None:
                    manager.shutdown()
            for __, counters, span_dicts, __tele in results:
                if counters:
                    _metrics.merge_counters(counters)
                if span_dicts and isinstance(cell, Span):
                    cell.children.extend(
                        Span.from_dict(d) for d in span_dicts)
        elapsed_ns = time.perf_counter_ns() - pool_t0
        all_costs = [c for costs, __, __, __ in results for c in costs]
        cell.annotate(instances=len(all_costs))
        if _metrics.is_enabled():
            _publish_worker_telemetry(
                cell, workers, [tele for *__, tele in results],
                elapsed_ns)
    _metrics.inc("harness.instances", len(all_costs))
    return float(np.mean(all_costs))


def _publish_worker_telemetry(cell, workers: int, teles, elapsed_ns: int
                              ) -> None:
    """Fold per-task ``(pid, wall_ns)`` telemetry into the registry.

    Deterministic facts go to *counters* (``parallel.tasks``,
    ``parallel.cells`` -- bit-identical at any pool geometry);
    wall-clock facts go to gauges / histograms:

    * ``parallel.task_ms`` (histogram) -- per-sequence wall time;
    * ``parallel.workers`` -- resolved pool size;
    * ``parallel.busy_share`` -- sum of task wall time over
      ``workers * elapsed`` (1.0 = perfectly packed pool);
    * ``parallel.idle_share`` -- its complement, clamped to [0, 1];
    * ``parallel.imbalance_ratio`` -- busiest worker's total over the
      mean worker total (1.0 = perfectly balanced).

    The same numbers land as attributes on the ``cell`` span, so run
    records carry them per cell as well as in aggregate.
    """
    _metrics.inc("parallel.cells")
    _metrics.inc("parallel.tasks", len(teles))
    busy_by_pid: dict[int, int] = {}
    total_busy = 0
    for pid, wall_ns in teles:
        _metrics.observe("parallel.task_ms", wall_ns / 1e6)
        busy_by_pid[pid] = busy_by_pid.get(pid, 0) + wall_ns
        total_busy += wall_ns
    busy_share = (total_busy / (workers * elapsed_ns)
                  if elapsed_ns > 0 else 0.0)
    idle_share = min(max(1.0 - busy_share, 0.0), 1.0)
    mean_busy = total_busy / len(busy_by_pid) if busy_by_pid else 0.0
    imbalance = (max(busy_by_pid.values()) / mean_busy
                 if mean_busy > 0 else 1.0)
    _metrics.set_gauge("parallel.workers", workers)
    _metrics.set_gauge("parallel.busy_share", busy_share)
    _metrics.set_gauge("parallel.idle_share", idle_share)
    _metrics.set_gauge("parallel.imbalance_ratio", imbalance)
    cell.annotate(worker_pids=len(busy_by_pid),
                  idle_share=round(idle_share, 4),
                  imbalance_ratio=round(imbalance, 4))


def simulated_vs_model_parallel(spec, n: int, seed=0,
                                max_workers: int | None = None,
                                chunksize: int | None = None,
                                mp_start: str | None = None
                                ) -> tuple[float, float, float]:
    """Parallel analogue of
    :func:`repro.experiments.harness.simulated_vs_model` -- same
    return convention and divergence warning, pool-backed simulation.
    """
    sim = simulate_cost_parallel(spec, n, seed=seed,
                                 max_workers=max_workers,
                                 chunksize=chunksize,
                                 mp_start=mp_start)
    model = model_cost(spec, n)
    error = check_model_divergence(spec, n, sim, model)
    return sim, model, error


def sweep_n_parallel(spec, ns, seed=0, max_workers: int | None = None,
                     chunksize: int | None = None,
                     mp_start: str | None = None) -> list[dict]:
    """Pool-backed :func:`repro.experiments.harness.sweep_n`.

    Each ``n`` gets its own child ``SeedSequence`` (spawned in grid
    order), so the whole sweep is reproducible for a fixed ``seed``
    and invariant to the pool geometry. With the live bus on, the
    sweep itself reports model-ops progress across its grid points.
    """
    root = (seed if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed))
    ns = list(ns)
    children = root.spawn(len(ns))
    progress = None
    if _bus.is_enabled():
        try:
            predicted = sum(model_cost(spec, n) * n
                            * spec.n_sequences * spec.n_graphs
                            for n in ns)
        except Exception:
            predicted = None
        progress = _live.Progress(
            f"sweep {spec.method} x{len(ns)}", len(ns),
            predicted_ops=predicted, scope="sweep", phase="sweep")
    rows = []
    for n, child in zip(ns, children):
        sim, model, error = simulated_vs_model_parallel(
            spec, n, seed=child, max_workers=max_workers,
            chunksize=chunksize, mp_start=mp_start)
        rows.append({"n": n, "sim": sim, "model": model,
                     "error": error})
        if progress is not None:
            progress.advance(
                1, ops=sim * n * spec.n_sequences * spec.n_graphs)
    return rows
