"""Hierarchical wall-clock spans with an optional tracemalloc hook.

A span times one phase of the pipeline (``relabel``, ``orient``,
``list``, ...) via :func:`time.perf_counter_ns` and nests: spans opened
while another span is active become its children, so a top-level span
closes into a tree describing where the run spent its time.

Observability is *disabled by default* and the disabled path is a
module-level no-op fast path: :func:`span` then returns a shared
singleton whose ``__enter__``/``__exit__`` do nothing, so instrumented
library code pays only one global check per phase -- the counters the
listers return (``ops``, ``comparisons``, ``hash_inserts``) are never
affected either way.

Thread safety: the active-span stack is thread-local (each thread grows
its own tree) while finished root spans are collected into one shared
list behind a lock; :func:`pop_finished` drains it.

With ``enable(memory=True)`` the module also starts :mod:`tracemalloc`
and each span records the net allocated bytes over its lifetime plus
the global peak observed at its close.

With ``enable(profile=...)`` (or the ``REPRO_PROFILE`` environment
knob, consulted by default) every *top-level* span additionally runs
under :mod:`cProfile` and closes with its top-K functions by
cumulative time attached as ``span.profile`` -- see
:mod:`repro.obs.profiling`. The hook shares the span enable path, so
the disabled fast path is untouched.
"""

from __future__ import annotations

import threading
import time

__all__ = [
    "Span",
    "current_span",
    "disable",
    "enable",
    "format_span_tree",
    "is_enabled",
    "pop_finished",
    "reset",
    "set_live_hook",
    "span",
]

_enabled = False
_trace_memory = False
_profile_top_k = 0
_alloc_top_k = 0
_alloc_started_tracemalloc = False
_lock = threading.Lock()
_finished: list["Span"] = []

# Live-telemetry hook (repro.obs.live): called as hook(span, "start"|
# "end") on *top-level* span transitions only. None (the default) keeps
# the span hot path at a single falsy check.
_live_top_hook = None


def set_live_hook(hook) -> None:
    """Install/remove the top-level span lifecycle hook (live runtime)."""
    global _live_top_hook
    _live_top_hook = hook


class _Frames(threading.local):
    """Per-thread stack of currently open spans."""

    def __init__(self):
        self.stack: list[Span] = []


_frames = _Frames()


class Span:
    """One timed phase; ``children`` makes finished spans a tree.

    Attributes
    ----------
    name:
        Phase name (``"relabel"``, ``"orient"``, ``"list"``, ...).
    attrs:
        Free-form key/value annotations (method, n, seed, ...).
    start_ns / duration_ns:
        ``perf_counter_ns`` timestamps; ``duration_ns`` is 0 until the
        span closes.
    mem_delta_bytes / mem_peak_bytes:
        Only populated when memory tracing is on: net tracemalloc
        allocation over the span and the traced peak at close.
    profile:
        Only populated for top-level spans while profiling is on: the
        top-K functions by cumulative time (list of dicts -- see
        :func:`repro.obs.profiling.top_functions`).
    alloc:
        Only populated for top-level spans while ``REPRO_TRACEMALLOC``
        attribution is on: the top-K net-allocating source lines over
        the span (list of dicts -- see
        :func:`repro.obs.memory.top_allocations`).
    """

    __slots__ = ("name", "attrs", "start_ns", "duration_ns", "children",
                 "mem_delta_bytes", "mem_peak_bytes", "profile", "alloc")

    def __init__(self, name: str, attrs: dict | None = None):
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.start_ns = 0
        self.duration_ns = 0
        self.children: list[Span] = []
        self.mem_delta_bytes: int | None = None
        self.mem_peak_bytes: int | None = None
        self.profile: list | None = None
        self.alloc: list | None = None

    @property
    def duration_ms(self) -> float:
        """Span duration in milliseconds."""
        return self.duration_ns / 1e6

    def annotate(self, **attrs) -> "Span":
        """Attach key/value attributes to the span; returns ``self``."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict:
        """JSON-ready representation of the subtree.

        ``start_ns`` is the raw ``perf_counter_ns`` open timestamp --
        meaningful only *relative* to other spans of the same process
        (the trace exporter uses it to lay siblings out on a shared
        timeline and falls back to sequential packing when a subtree
        crossed a process boundary).
        """
        out: dict = {"name": self.name,
                     "start_ns": int(self.start_ns),
                     "duration_ns": int(self.duration_ns)}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.mem_delta_bytes is not None:
            out["mem_delta_bytes"] = int(self.mem_delta_bytes)
        if self.mem_peak_bytes is not None:
            out["mem_peak_bytes"] = int(self.mem_peak_bytes)
        if self.profile is not None:
            out["profile"] = list(self.profile)
        if self.alloc is not None:
            out["alloc"] = list(self.alloc)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output.

        Used to reattach worker-process span trees (which cross the
        process boundary as plain dicts) under a parent span.
        """
        s = cls(data["name"], data.get("attrs"))
        s.start_ns = int(data.get("start_ns", 0))
        s.duration_ns = int(data.get("duration_ns", 0))
        if "mem_delta_bytes" in data:
            s.mem_delta_bytes = int(data["mem_delta_bytes"])
        if "mem_peak_bytes" in data:
            s.mem_peak_bytes = int(data["mem_peak_bytes"])
        if "profile" in data:
            s.profile = list(data["profile"])
        if "alloc" in data:
            s.alloc = list(data["alloc"])
        s.children = [cls.from_dict(c) for c in data.get("children", [])]
        return s

    def phase_totals(self) -> dict[str, int]:
        """Total ``duration_ns`` per span name over the whole subtree."""
        totals: dict[str, int] = {}

        def walk(s: Span) -> None:
            totals[s.name] = totals.get(s.name, 0) + s.duration_ns
            for child in s.children:
                walk(child)

        walk(self)
        return totals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.duration_ms:.3f} ms, "
                f"{len(self.children)} children)")


class _ActiveSpan:
    """Context manager driving one real (enabled) span."""

    __slots__ = ("span", "_mem_start", "_profiler", "_alloc_before")

    def __init__(self, name: str, attrs: dict):
        self.span = Span(name, attrs)
        self._mem_start: int | None = None
        self._profiler = None
        self._alloc_before = None

    def __enter__(self) -> Span:
        top_level = not _frames.stack
        _frames.stack.append(self.span)
        if top_level and _live_top_hook is not None:
            try:
                _live_top_hook(self.span, "start")
            except Exception:  # pragma: no cover - hook must not fail run
                pass
        if _trace_memory:
            import tracemalloc
            self._mem_start = tracemalloc.get_traced_memory()[0]
        if _alloc_top_k and top_level:
            # Allocation-site attribution, like profiling: only tree
            # roots snapshot (diffs are expensive) and descendants are
            # covered by the root's window.
            import tracemalloc
            self._alloc_before = tracemalloc.take_snapshot()
        if _profile_top_k and top_level:
            # Only the root of each tree profiles: cProfile cannot
            # nest, and descendants are covered by the root's run.
            import cProfile
            self._profiler = cProfile.Profile()
            self._profiler.enable()
        self.span.start_ns = time.perf_counter_ns()
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        s = self.span
        s.duration_ns = time.perf_counter_ns() - s.start_ns
        if self._profiler is not None:
            self._profiler.disable()
            from repro.obs.profiling import top_functions
            s.profile = top_functions(self._profiler, _profile_top_k)
            self._profiler = None
        if self._alloc_before is not None:
            import tracemalloc
            from repro.obs.memory import top_allocations
            s.alloc = top_allocations(
                self._alloc_before, tracemalloc.take_snapshot(),
                _alloc_top_k)
            self._alloc_before = None
        if self._mem_start is not None:
            import tracemalloc
            current, peak = tracemalloc.get_traced_memory()
            s.mem_delta_bytes = current - self._mem_start
            s.mem_peak_bytes = peak
        if exc_type is not None:
            s.attrs.setdefault("error", exc_type.__name__)
        stack = _frames.stack
        if stack and stack[-1] is s:
            stack.pop()
        elif s in stack:  # pragma: no cover - unbalanced exit guard
            del stack[stack.index(s):]
        if stack:
            stack[-1].children.append(s)
        else:
            if _live_top_hook is not None:
                try:
                    _live_top_hook(s, "end")
                except Exception:  # pragma: no cover - hook must not fail
                    pass
            with _lock:
                _finished.append(s)
        return False


class _NoopSpan:
    """Shared do-nothing span: the disabled fast path."""

    __slots__ = ()
    name = None
    attrs: dict = {}
    start_ns = 0
    duration_ns = 0
    duration_ms = 0.0
    children: list = []
    profile = None

    def annotate(self, **attrs):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NOOP = _NoopSpan()


def span(name: str, /, **attrs):
    """Open a (nestable) span; a no-op unless tracing is enabled.

    ``name`` is positional-only so an attribute may also be called
    ``name``.

    Usage::

        with span("orient", n=graph.n) as sp:
            ...
            sp.annotate(edges_flipped=k)
    """
    if not _enabled:
        return _NOOP
    return _ActiveSpan(name, attrs)


def enable(memory: bool = False, profile: int | None = None,
           alloc: int | None = None) -> None:
    """Turn span collection on (optionally with tracemalloc tracking).

    ``profile`` controls per-top-level-span :mod:`cProfile`
    attribution: an int is the top-K function count to attach (0
    disables), ``None`` (the default) consults the ``REPRO_PROFILE``
    environment knob via
    :func:`repro.obs.profiling.profile_top_k_from_env` -- so every
    existing enable path (``--trace``, ``REPRO_TRACE=1``, the bench
    drivers, pool workers) picks the mode up without new plumbing.

    ``alloc`` is the same design for per-top-level-span *allocation*
    attribution (``span.alloc``, top-K net-allocating source lines):
    ``None`` consults ``REPRO_TRACEMALLOC`` via
    :func:`repro.obs.memory.tracemalloc_top_k_from_env`. A non-zero K
    starts :mod:`tracemalloc` if nothing else has.
    """
    global _enabled, _trace_memory, _profile_top_k, _alloc_top_k
    global _alloc_started_tracemalloc
    if memory:
        import tracemalloc
        if not tracemalloc.is_tracing():
            tracemalloc.start()
    _trace_memory = bool(memory)
    if profile is None:
        from repro.obs.profiling import profile_top_k_from_env
        _profile_top_k = profile_top_k_from_env()
    else:
        _profile_top_k = max(0, int(profile))
    if alloc is None:
        from repro.obs.memory import tracemalloc_top_k_from_env
        _alloc_top_k = tracemalloc_top_k_from_env()
    else:
        _alloc_top_k = max(0, int(alloc))
    if _alloc_top_k:
        import tracemalloc
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            _alloc_started_tracemalloc = True
    _enabled = True


def disable() -> None:
    """Turn span collection off and stop tracemalloc if we started it."""
    global _enabled, _trace_memory, _profile_top_k, _alloc_top_k
    global _alloc_started_tracemalloc
    _enabled = False
    if _trace_memory or _alloc_started_tracemalloc:
        import tracemalloc
        if tracemalloc.is_tracing():
            tracemalloc.stop()
    _trace_memory = False
    _profile_top_k = 0
    _alloc_top_k = 0
    _alloc_started_tracemalloc = False


def is_enabled() -> bool:
    """Whether spans are currently being recorded."""
    return _enabled


def current_span() -> Span | None:
    """The innermost open span of this thread, or ``None``."""
    stack = _frames.stack
    return stack[-1] if stack else None


def pop_finished() -> list[Span]:
    """Drain and return the finished root spans (all threads)."""
    with _lock:
        out = list(_finished)
        _finished.clear()
    return out


def reset() -> None:
    """Drop all finished roots and this thread's open stack."""
    pop_finished()
    _frames.stack.clear()


def format_span_tree(root: Span) -> str:
    """Render a finished span tree as an indented text block."""
    lines: list[str] = []

    def walk(s: Span, depth: int) -> None:
        attrs = " ".join(f"{k}={v}" for k, v in s.attrs.items())
        mem = ""
        if s.mem_peak_bytes is not None:
            mem = f"  peak={s.mem_peak_bytes / 1e6:.2f}MB"
        lines.append(f"{'  ' * depth}{s.name:<12} "
                     f"{s.duration_ms:>10.3f} ms{mem}"
                     + (f"  [{attrs}]" if attrs else ""))
        for child in s.children:
            walk(child, depth + 1)

    walk(root, 0)
    return "\n".join(lines)
