"""Live telemetry runtime: in-flight visibility for long runs.

Everything else in :mod:`repro.obs` is post-hoc; this module answers
"is the run making progress *right now*, is it leaking memory, is a
worker stuck?" -- the questions a 30-minute sweep or an out-of-core
listing run raises while it executes. Four parts, all publishing
through the :mod:`repro.obs.bus` event bus:

* :class:`ResourceSampler` -- a background daemon thread that
  periodically snapshots RSS / CPU time / GC counts / thread count
  (``/proc/self`` + :mod:`resource`, no psutil) into a ring buffer,
  publishes each sample as a ``resource.sample`` event, and mirrors
  the latest values into ``live.*`` gauges. The series rides into run
  records (:func:`repro.obs.records.collect`) and a compact summary is
  attached to closing top-level spans.
* :class:`Progress` -- tracks one workload against a *model-predicted
  op budget* (the paper's E[cost] per cell makes the total work known
  up front), emitting ``progress`` events whose ``frac``/``eta_s``
  derive from the fraction of predicted ops consumed.
* :func:`post_heartbeat` + :class:`HeartbeatWatchdog` -- pool workers
  post periodic liveness over a ``multiprocessing`` (manager) queue;
  the parent-side watchdog relays them as ``heartbeat`` events and
  flags workers silent for ``miss_threshold`` intervals with a
  ``worker.stalled`` event, a structured WARNING, and the
  ``live.stalled_workers`` counter -- keeping the last task context
  per worker.
* the read surface -- :func:`render_prometheus` /
  :class:`MetricsServer` expose Prometheus-text gauges and counters
  over a tiny :mod:`http.server` thread (``repro serve-metrics``), and
  :class:`LiveState` + :func:`render_status` fold an event stream into
  the in-place terminal view of ``repro top``.

The runtime is **off by default** (``REPRO_LIVE`` unset): every hook
in the engine, harness, and scheduler guards on one module-global
check, so hot-path timings and counters are untouched when disabled.
"""

from __future__ import annotations

import collections
import gc
import http.server
import json
import logging
import math
import os
import re
import threading
import time

from repro.obs import bus as _bus
from repro.obs import metrics as _metrics
from repro.obs.logging import get_logger, log_event

__all__ = [
    "DEFAULT_INTERVAL_S",
    "HeartbeatWatchdog",
    "LiveState",
    "MetricsServer",
    "Progress",
    "ResourceSampler",
    "disable",
    "enable",
    "enable_from_env",
    "is_enabled",
    "live_interval",
    "post_heartbeat",
    "render_prometheus",
    "render_status",
    "sample_resources",
    "sampler_series",
]

_log = get_logger(__name__)

_TRUTHY = {"1", "true", "yes", "on"}

#: Default sampler / heartbeat cadence in seconds.
DEFAULT_INTERVAL_S = 0.5

#: Ring-buffer capacity of the resource series (at the default
#: cadence: ~8.5 minutes of history; older samples age out).
SERIES_MAXLEN = 1024

_enabled = False
_sampler: "ResourceSampler | None" = None
_jsonl_sink = None
_ticker_sink = None
_server: "MetricsServer | None" = None


def live_interval() -> float:
    """Sampler/heartbeat cadence: ``REPRO_LIVE_INTERVAL`` or 0.5 s."""
    raw = os.environ.get("REPRO_LIVE_INTERVAL", "").strip()
    try:
        value = float(raw)
        return value if value > 0 else DEFAULT_INTERVAL_S
    except ValueError:
        return DEFAULT_INTERVAL_S


def is_enabled() -> bool:
    """Whether the live runtime is on (the hook fast-path check)."""
    return _enabled


# ------------------------------------------------------- resource sampler

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def _rss_peak_bytes() -> int:
    """Peak resident set size: ``VmHWM``, else ``ru_maxrss``.

    ``/proc/self/status`` reports the high-water mark in KiB; the
    :mod:`resource` fallback is KiB on Linux too. This is the value
    the old ``_rss_bytes`` fallback used to *mislabel* as current.
    """
    try:
        with open("/proc/self/status", "rb") as fh:
            for line in fh:
                if line.startswith(b"VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:  # pragma: no cover - exotic platform
        return 0


def _rss_bytes() -> int:
    """Current resident set size via ``/proc/self/statm``.

    ``statm`` field 2 is resident pages -- current RSS, cheap to read.
    On platforms without procfs the only portable signal is the peak
    (an upper bound on current); callers that need the distinction
    read the separate ``rss_peak_bytes`` sample field instead of
    trusting a conflated fallback.
    """
    try:
        with open("/proc/self/statm", "rb") as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return _rss_peak_bytes()


def sample_resources() -> dict:
    """One process-resource snapshot (the ``resource.sample`` payload)."""
    times = os.times()
    stats = gc.get_stats()
    return {
        "rss_bytes": _rss_bytes(),
        "rss_peak_bytes": _rss_peak_bytes(),
        "cpu_user_s": float(times.user),
        "cpu_system_s": float(times.system),
        "gc_collections": int(sum(s.get("collections", 0)
                                  for s in stats)),
        "gc_objects": int(sum(gc.get_count())),
        "threads": threading.active_count(),
    }


class ResourceSampler:
    """Daemon thread snapshotting process resources into a ring buffer.

    Every ``interval_s`` it takes :func:`sample_resources`, appends the
    sample (plus a wall-clock ``ts``) to the ring, publishes it as a
    ``resource.sample`` bus event, and mirrors the latest values into
    ``live.rss_bytes`` / ``live.cpu_user_s`` / ... gauges (no-ops while
    metrics are disabled).
    """

    def __init__(self, interval_s: float | None = None,
                 maxlen: int = SERIES_MAXLEN,
                 budget_bytes: int | None = None):
        self.interval_s = interval_s if interval_s else live_interval()
        self._ring: collections.deque = collections.deque(maxlen=maxlen)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        # RAM-budget watchdog (repro.obs.memory): disarmed unless
        # budget_bytes (or REPRO_MEM_BUDGET) is set, in which case
        # every sample also checks pressure/breach.
        from repro.obs import memory as _memory
        self.watchdog = _memory.BudgetWatchdog(budget_bytes)

    def sample_once(self) -> dict:
        """Take, record, and publish one sample; returns it."""
        sample = sample_resources()
        sample["ts"] = time.time()
        with self._lock:
            self._ring.append(sample)
        _bus.emit("resource.sample",
                  **{k: v for k, v in sample.items() if k != "ts"})
        _metrics.set_gauge("live.rss_bytes", sample["rss_bytes"])
        _metrics.set_gauge("live.rss_peak_bytes",
                           sample["rss_peak_bytes"])
        _metrics.set_gauge("live.cpu_user_s", sample["cpu_user_s"])
        _metrics.set_gauge("live.cpu_system_s", sample["cpu_system_s"])
        _metrics.set_gauge("live.threads", sample["threads"])
        if self.watchdog.armed:
            self.watchdog.observe(sample["rss_bytes"])
        return sample

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample_once()

    def start(self) -> "ResourceSampler":
        """Take an immediate first sample and start the loop."""
        self.sample_once()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-live-sampler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the loop (takes one final sample for a closed series)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.sample_once()

    def series(self) -> list[dict]:
        """Snapshot of the ring buffer (oldest first)."""
        with self._lock:
            return list(self._ring)

    def summary(self, since_ts: float | None = None) -> dict | None:
        """Compact min/max/delta summary, optionally since ``since_ts``.

        This is the shape attached to closing top-level spans: peak
        RSS, CPU seconds consumed over the window, sample count.
        """
        samples = self.series()
        if since_ts is not None:
            samples = [s for s in samples if s["ts"] >= since_ts]
        if not samples:
            return None
        rss = [s["rss_bytes"] for s in samples]
        return {
            "samples": len(samples),
            "rss_max_bytes": max(rss),
            "rss_min_bytes": min(rss),
            "cpu_user_s": samples[-1]["cpu_user_s"]
            - samples[0]["cpu_user_s"],
            "cpu_system_s": samples[-1]["cpu_system_s"]
            - samples[0]["cpu_system_s"],
        }


def sampler_series() -> list[dict]:
    """The active sampler's ring-buffer snapshot ([] when off)."""
    return _sampler.series() if _sampler is not None else []


# ------------------------------------------------------------ progress/ETA

class Progress:
    """Progress/ETA over a workload with a model-predicted op budget.

    ``total_units`` is the unit count (cells, tasks, chunks);
    ``predicted_ops`` is the cost model's prediction of the total work
    (``E[c_n] * n * instances`` for a simulation cell). When given, the
    reported fraction and ETA derive from *ops consumed vs. predicted*
    -- the paper's cost model acting as the progress estimator -- and
    fall back to unit counting otherwise.

    ``min_interval_s`` throttles event volume for fine-grained callers
    (the engine chunk loop): intermediate events are dropped unless the
    interval elapsed; first and terminal events always publish.
    """

    def __init__(self, label: str, total_units: int | float,
                 predicted_ops: float | None = None,
                 scope: str = "cell", phase: str | None = None,
                 min_interval_s: float = 0.0):
        self.label = label
        self.total_units = max(float(total_units), 1.0)
        self.predicted_ops = (float(predicted_ops)
                              if predicted_ops else None)
        self.scope = scope
        self.phase = phase
        self.min_interval_s = min_interval_s
        self.done = 0.0
        self.ops_done = 0.0
        self._t0 = time.monotonic()
        self._last_emit = 0.0
        self._emitted = 0

    def frac(self) -> float:
        """Fraction complete, by predicted ops when available."""
        if self.predicted_ops:
            return min(self.ops_done / self.predicted_ops, 1.0)
        return min(self.done / self.total_units, 1.0)

    def eta_s(self) -> float | None:
        """Remaining seconds extrapolated from the consumed fraction."""
        frac = self.frac()
        if frac <= 0.0:
            return None
        elapsed = time.monotonic() - self._t0
        return elapsed * (1.0 - frac) / frac

    def advance(self, units: int | float = 1,
                ops: int | float | None = None) -> dict | None:
        """Consume ``units`` (and ``ops``) and maybe publish an event.

        Returns the published event dict, or ``None`` when throttled
        or when the bus is disabled.
        """
        self.done += units
        if ops is not None:
            self.ops_done += ops
        if not _bus.is_enabled():
            return None
        now = time.monotonic()
        terminal = self.done >= self.total_units
        if (self._emitted and not terminal
                and now - self._last_emit < self.min_interval_s):
            return None
        self._last_emit = now
        self._emitted += 1
        frac = self.frac()
        fields = {
            "scope": self.scope,
            "label": self.label,
            "done": float(self.done),
            "total": float(self.total_units),
            "frac": frac,
        }
        if self.phase is not None:
            fields["phase"] = self.phase
        if self.predicted_ops is not None:
            fields["ops_done"] = float(self.ops_done)
            fields["ops_predicted"] = float(self.predicted_ops)
        eta = self.eta_s()
        if eta is not None:
            fields["eta_s"] = eta
        _metrics.set_gauge(f"live.progress.{self.scope}", frac)
        if eta is not None:
            _metrics.set_gauge(f"live.eta_s.{self.scope}", eta)
        return _bus.emit("progress", **fields)


# ------------------------------------------------------------ heartbeats

def post_heartbeat(queue, task: str, **context) -> None:
    """Worker side: post one liveness beat (best-effort, non-fatal).

    ``queue`` is the manager queue the parent's watchdog drains (a
    manager proxy survives pickling under both ``fork`` and ``spawn``
    start methods). A broken queue must never kill the worker.
    """
    try:
        queue.put({"worker_pid": os.getpid(), "task": str(task),
                   "ts": time.time(), **context}, block=False)
    except Exception:  # pragma: no cover - manager already gone
        pass


class HeartbeatWatchdog:
    """Parent-side drain of the worker heartbeat queue + stall flagging.

    A daemon thread pulls beats off the queue, relays each as a
    ``heartbeat`` bus event, and tracks per-worker
    ``(last_seen, last_task, beats)``. A worker silent for more than
    ``miss_threshold * interval_s`` after its first beat is flagged
    *once per silence*: a ``worker.stalled`` event, a structured
    WARNING carrying the last task context, and the
    ``live.stalled_workers`` counter. A later beat clears the flag.
    """

    def __init__(self, queue, interval_s: float | None = None,
                 miss_threshold: int = 3):
        self.queue = queue
        self.interval_s = interval_s if interval_s else live_interval()
        self.miss_threshold = max(1, int(miss_threshold))
        self.workers: dict[int, dict] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    # -- beat intake ----------------------------------------------------
    def _ingest(self, beat: dict) -> None:
        pid = int(beat.get("worker_pid", -1))
        with self._lock:
            state = self.workers.setdefault(
                pid, {"beats": 0, "stalled": False, "last_task": ""})
            state["beats"] += 1
            state["last_seen"] = time.monotonic()
            state["last_task"] = str(beat.get("task", ""))
            state["stalled"] = False
        _bus.emit("heartbeat", worker_pid=pid,
                  task=str(beat.get("task", "")),
                  **{k: v for k, v in beat.items()
                     if k not in ("worker_pid", "task", "ts")})

    def drain(self) -> int:
        """Pull every queued beat right now; returns how many."""
        drained = 0
        while True:
            try:
                beat = self.queue.get(block=False)
            except Exception:
                break
            self._ingest(beat)
            drained += 1
        return drained

    # -- stall detection ------------------------------------------------
    def check(self, now: float | None = None) -> list[int]:
        """Flag workers silent for too long; returns newly-stalled pids."""
        now = time.monotonic() if now is None else now
        limit = self.miss_threshold * self.interval_s
        newly = []
        with self._lock:
            candidates = [(pid, dict(state))
                          for pid, state in self.workers.items()
                          if not state["stalled"]
                          and now - state.get("last_seen", now) > limit]
            for pid, __ in candidates:
                self.workers[pid]["stalled"] = True
        for pid, state in candidates:
            silent = now - state.get("last_seen", now)
            missed = int(silent / self.interval_s)
            newly.append(pid)
            _metrics.inc("live.stalled_workers")
            _bus.emit("worker.stalled", worker_pid=pid,
                      silent_s=silent, missed=missed,
                      last_task=state.get("last_task", ""))
            log_event(_log, logging.WARNING, "worker heartbeat stalled",
                      worker_pid=pid, silent_s=round(silent, 2),
                      missed_intervals=missed,
                      last_task=state.get("last_task", ""))
        return newly

    # -- thread lifecycle -----------------------------------------------
    def _run(self) -> None:
        poll = min(self.interval_s / 2.0, 0.25)
        while not self._stop.wait(poll):
            self.drain()
            self.check()

    def start(self) -> "HeartbeatWatchdog":
        """Start the drain/check loop on a daemon thread."""
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-live-watchdog", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> dict[int, dict]:
        """Stop the loop, drain stragglers, return the worker table."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.drain()
        with self._lock:
            return {pid: dict(state)
                    for pid, state in self.workers.items()}


# ------------------------------------------------- Prometheus read surface

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    metric = _PROM_BAD.sub("_", name)
    if not metric.startswith("repro_"):
        metric = "repro_" + metric
    return metric


def render_prometheus(snapshot: dict | None = None,
                      extra_gauges: dict | None = None) -> str:
    """Prometheus text exposition (0.0.4) of a metrics snapshot.

    Counters map to ``counter``, gauges to ``gauge``, histograms to
    ``summary`` (quantile labels + ``_sum`` / ``_count``).
    ``extra_gauges`` lets the server fold in gauges derived elsewhere
    (the ``repro top`` state of an events file).
    """
    snapshot = snapshot if snapshot is not None else _metrics.snapshot()
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = _prom_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {float(snapshot['counters'][name]):g}")
    gauges = dict(snapshot.get("gauges", {}))
    gauges.update(extra_gauges or {})
    for name in sorted(gauges):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {float(gauges[name]):g}")
    for name in sorted(snapshot.get("histograms", {})):
        summary = snapshot["histograms"][name]
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} summary")
        for q_key, q_label in (("p50", "0.5"), ("p95", "0.95"),
                               ("p99", "0.99")):
            if isinstance(summary.get(q_key), (int, float)):
                lines.append(f'{metric}{{quantile="{q_label}"}} '
                             f"{float(summary[q_key]):g}")
        lines.append(f"{metric}_sum {float(summary.get('sum', 0.0)):g}")
        lines.append(f"{metric}_count {int(summary.get('count', 0))}")
    return "\n".join(lines) + "\n"


class MetricsServer:
    """Tiny scrape endpoint: ``GET /metrics`` -> Prometheus text.

    Runs a :class:`http.server.ThreadingHTTPServer` on a daemon thread;
    ``render`` is called per scrape (default: the process registry plus
    the live sampler gauges), so the endpoint always reflects the
    current state. ``port=0`` binds an ephemeral port -- read it back
    from :attr:`port` after :meth:`start`.
    """

    def __init__(self, port: int = 0, host: str = "127.0.0.1",
                 render=None):
        self.host = host
        self.port = port
        self.render = render or render_prometheus
        self._httpd: http.server.ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> int:
        """Bind + serve in the background; returns the bound port."""
        server = self

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                if self.path not in ("/", "/metrics"):
                    self.send_error(404)
                    return
                try:
                    body = server.render().encode("utf-8")
                except Exception as exc:  # pragma: no cover
                    self.send_error(500, str(exc))
                    return
                self.send_response(200)
                self.send_header(
                    "Content-Type",
                    "text/plain; version=0.0.4; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # silence per-scrape stderr
                pass

        self._httpd = http.server.ThreadingHTTPServer(
            (self.host, self.port), Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-live-metrics", daemon=True)
        self._thread.start()
        return self.port

    def bind_plain(self) -> int:
        """Bind a single-threaded server without serving; returns port.

        The ``repro serve-metrics --once`` path: bind (so the scraper
        can't race the listener), announce the port, then block in
        :meth:`handle_one_request`.
        """
        server = self

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                body = server.render().encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type",
                    "text/plain; version=0.0.4; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # silence per-scrape stderr
                pass

        self._httpd = http.server.HTTPServer(
            (self.host, self.port), Handler)
        self.port = self._httpd.server_address[1]
        return self.port

    def handle_one_request(self) -> None:
        """Serve exactly one request on the calling thread (CI mode)."""
        if self._httpd is None:
            self.bind_plain()
        self._httpd.handle_request()

    def stop(self) -> None:
        """Shut the server down and release the socket."""
        if self._httpd is not None:
            if self._thread is not None:
                # shutdown() handshakes with serve_forever -- it would
                # block forever on a bind_plain()-only server.
                self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


# ----------------------------------------------------- event-stream state

class LiveState:
    """Folds a telemetry event stream into the current run picture.

    Feed events (dicts) through :meth:`update`; the state keeps the
    latest resource sample, the latest progress per ``(scope, label)``,
    the current phase stack, and a per-worker liveness table --
    everything ``repro top`` renders and ``repro serve-metrics
    --events`` exports as gauges.
    """

    def __init__(self):
        self.resources: dict | None = None
        self.progress: dict[tuple, dict] = {}
        self.phases: list[str] = []
        self.workers: dict[int, dict] = {}
        self.planner: dict | None = None
        self.misplans = 0
        self.drift: dict | None = None
        self.memory: dict | None = None
        self.breaches = 0
        self.events = 0
        self.last_ts: float | None = None

    def update(self, event: dict) -> None:
        """Fold one event into the state (non-dicts are ignored)."""
        if not isinstance(event, dict):
            return
        self.events += 1
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            self.last_ts = ts
        type_ = event.get("type")
        if type_ == "resource.sample":
            self.resources = event
        elif type_ == "progress":
            self.progress[(event.get("scope"), event.get("label"))] = \
                event
        elif type_ == "phase":
            name = str(event.get("name"))
            if event.get("status") == "start":
                self.phases.append(name)
            elif name in self.phases:
                self.phases.remove(name)
        elif type_ == "heartbeat":
            pid = event.get("worker_pid")
            self.workers[pid] = {"last_ts": ts,
                                 "task": event.get("task", ""),
                                 "stalled": False}
        elif type_ == "worker.stalled":
            pid = event.get("worker_pid")
            state = self.workers.setdefault(
                pid, {"last_ts": ts, "task": ""})
            state["stalled"] = True
            state["task"] = event.get("last_task", state.get("task", ""))
        elif type_ == "planner.decision":
            self.planner = event
        elif type_ == "planner.misplan":
            self.misplans += 1
            self.planner = event
        elif type_ == "planner.drift":
            self.drift = event
        elif type_ == "mem.pressure":
            self.memory = event
        elif type_ == "mem.breach":
            self.breaches += 1
            self.memory = event

    def update_many(self, events) -> None:
        """Fold an iterable of events, in order."""
        for event in events:
            self.update(event)

    def to_gauges(self) -> dict[str, float]:
        """Gauge view of the state (the ``--events`` scrape surface)."""
        out: dict[str, float] = {"live.events": float(self.events)}
        if self.resources:
            for key in ("rss_bytes", "rss_peak_bytes", "cpu_user_s",
                        "cpu_system_s", "threads"):
                if isinstance(self.resources.get(key), (int, float)):
                    out[f"live.{key}"] = float(self.resources[key])
        # memory gauges appear only once a mem.* event was seen, so
        # streams from budget-free runs export exactly as before
        if self.memory is not None:
            for key in ("budget_bytes", "rss_bytes",
                        "attributed_bytes"):
                if isinstance(self.memory.get(key), (int, float)):
                    out[f"mem.{key}"] = float(self.memory[key])
            frac = self.memory.get("frac")
            budget = self.memory.get("budget_bytes")
            if isinstance(frac, (int, float)):
                out["mem.pressure"] = float(frac)
            elif isinstance(budget, (int, float)) and budget > 0:
                out["mem.pressure"] = float(
                    self.memory.get("rss_bytes", 0)) / budget
            out["mem.breaches"] = float(self.breaches)
        for (scope, __), event in self.progress.items():
            if isinstance(event.get("frac"), (int, float)):
                out[f"live.progress.{scope}"] = float(event["frac"])
            if isinstance(event.get("eta_s"), (int, float)):
                out[f"live.eta_s.{scope}"] = float(event["eta_s"])
        out["live.workers"] = float(len(self.workers))
        out["live.workers_stalled"] = float(
            sum(1 for w in self.workers.values() if w.get("stalled")))
        if self.planner is not None:
            conf = self.planner.get("confidence")
            if isinstance(conf, (int, float)):
                out["live.planner_confidence"] = float(conf)
            regret = self.planner.get("regret")
            if isinstance(regret, (int, float)) and \
                    math.isfinite(regret):
                out["live.planner_regret"] = float(regret)
        out["live.planner_misplans"] = float(self.misplans)
        if self.drift is not None and isinstance(
                self.drift.get("factor"), (int, float)):
            out["live.planner_drift_factor"] = float(
                self.drift["factor"])
        return out

    def to_dict(self) -> dict:
        """JSON-ready snapshot of the whole state.

        The ``repro top --once --json`` payload: everything
        :func:`render_status` shows (phases, progress, resources,
        workers, planner, memory) plus the gauge view, so CI and
        scripts consume the live status without screen-scraping.
        """
        return {
            "events": self.events,
            "last_ts": self.last_ts,
            "phases": list(self.phases),
            "progress": [dict(ev) for __, ev in
                         sorted(self.progress.items(),
                                key=lambda kv: (kv[0][0] or "",
                                                kv[0][1] or ""))],
            "resources": dict(self.resources) if self.resources
            else None,
            "workers": {str(pid): dict(state)
                        for pid, state in self.workers.items()},
            "planner": dict(self.planner) if self.planner else None,
            "misplans": self.misplans,
            "drift": dict(self.drift) if self.drift else None,
            "memory": dict(self.memory) if self.memory else None,
            "breaches": self.breaches,
            "gauges": self.to_gauges(),
        }


def _fmt_bytes(value: float) -> str:
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            return (f"{value:.1f} {unit}" if unit != "B"
                    else f"{int(value)} B")
        value /= 1024.0
    return f"{value:.1f} TB"  # pragma: no cover - unreachable


def render_status(state: LiveState) -> str:
    """Render a :class:`LiveState` as the ``repro top`` text block."""
    lines = []
    stamp = (time.strftime("%H:%M:%S", time.localtime(state.last_ts))
             if state.last_ts else "--:--:--")
    lines.append(f"repro live · {state.events} event(s) · last {stamp}")
    lines.append(f"phase    : "
                 f"{' > '.join(state.phases) if state.phases else '--'}")
    if state.progress:
        for (scope, label), ev in sorted(state.progress.items(),
                                         key=lambda kv: kv[0][0] or ""):
            frac = float(ev.get("frac", 0.0))
            bar_n = int(round(20 * min(max(frac, 0.0), 1.0)))
            eta = ev.get("eta_s")
            eta_txt = (f"  eta {eta:6.1f}s"
                       if isinstance(eta, (int, float)) else "")
            ops = ""
            if isinstance(ev.get("ops_predicted"), (int, float)):
                ops = (f"  ops {ev.get('ops_done', 0):.3g}"
                       f"/{ev['ops_predicted']:.3g}")
            lines.append(f"{scope:<9}: [{'#' * bar_n}{'.' * (20 - bar_n)}]"
                         f" {100 * frac:5.1f}%{eta_txt}{ops}  {label}")
    else:
        lines.append("progress : --")
    if state.resources:
        res = state.resources
        lines.append(
            f"resources: rss {_fmt_bytes(res.get('rss_bytes', 0))}"
            f"   cpu {res.get('cpu_user_s', 0.0):.1f}s user"
            f" / {res.get('cpu_system_s', 0.0):.1f}s sys"
            f"   threads {res.get('threads', 0)}"
            f"   gc {res.get('gc_collections', 0)}")
    else:
        lines.append("resources: --")
    # the memory line appears only once a mem.* event was seen (a
    # budget-armed run), so budget-free streams render as before
    if state.memory is not None or state.breaches:
        ev = state.memory or {}
        rss = ev.get("rss_bytes", 0)
        budget = ev.get("budget_bytes", 0)
        frac = ev.get("frac")
        if not isinstance(frac, (int, float)):
            frac = (rss / budget) if budget else 0.0
        attributed = ev.get("attributed_bytes")
        attr_txt = (f"  attributed {_fmt_bytes(attributed)}"
                    if isinstance(attributed, (int, float)) else "")
        breach_txt = (f"  BREACHED x{state.breaches}"
                      if state.breaches else "")
        lines.append(
            f"memory   : rss {_fmt_bytes(rss)} / budget "
            f"{_fmt_bytes(budget)} ({100 * frac:5.1f}%)"
            f"{attr_txt}{breach_txt}")
    if state.workers:
        now = state.last_ts or time.time()
        for pid in sorted(state.workers):
            worker = state.workers[pid]
            age = now - (worker.get("last_ts") or now)
            flag = "STALLED" if worker.get("stalled") else "ok"
            lines.append(f"worker   : pid {pid:<8} {flag:<8} "
                         f"{age:5.1f}s ago  {worker.get('task', '')}")
    else:
        lines.append("worker   : --")
    # the planner line appears only once a decision event was seen, so
    # event streams from planner-free runs render exactly as before
    if state.planner is not None:
        ev = state.planner
        flag = "MISPLAN" if ev.get("type") == "planner.misplan" else "ok"
        conf = ev.get("confidence")
        conf_txt = (f"  conf {conf:.2f}"
                    if isinstance(conf, (int, float)) else "")
        regret = ev.get("regret")
        regret_txt = ""
        if isinstance(regret, (int, float)):
            regret_txt = ("  regret inf" if math.isinf(regret)
                          else f"  regret {100 * regret:.1f}%")
        kind = ev.get("kind")
        kind_txt = f"  [{kind}]" if isinstance(kind, str) else ""
        misplan_txt = (f"  misplans {state.misplans}"
                       if state.misplans else "")
        lines.append(f"planner  : {ev.get('picked', '?'):<16} "
                     f"{flag:<8}{conf_txt}{regret_txt}{kind_txt}"
                     f"{misplan_txt}")
        if state.drift is not None:
            d = state.drift
            lines.append(
                f"planner  : speed-ratio drift assumed "
                f"{d.get('assumed', 0.0):.3g}x vs calibrated "
                f"{d.get('calibrated', 0.0):.3g}x "
                f"({d.get('factor', 0.0):.1f}x apart)")
    return "\n".join(lines)


def read_events(path, offset: int = 0) -> tuple[list[dict], int]:
    """Parse events from ``path`` starting at byte ``offset``.

    Returns ``(events, new_offset)``; a trailing partial line (the
    producer mid-write) is left for the next call. The follower loop
    of ``repro top`` calls this repeatedly.
    """
    events: list[dict] = []
    with open(path, "rb") as fh:
        fh.seek(offset)
        data = fh.read()
    end = data.rfind(b"\n")
    if end < 0:
        return events, offset
    for line in data[:end].splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return events, offset + end + 1


# ------------------------------------------------------- enable / disable

def enable(events_path=None, ticker: bool = False,
           interval_s: float | None = None,
           serve_port: int | None = None) -> None:
    """Start the live runtime: bus sinks, sampler, span hook, server.

    Idempotent-ish: calling while enabled reconfigures sinks. The
    JSONL sink (``events_path``) and stderr ticker are optional; the
    sampler always runs (its series is what run records pick up). With
    ``serve_port`` the Prometheus endpoint starts too (0 = ephemeral).
    """
    global _enabled, _sampler, _jsonl_sink, _ticker_sink, _server
    disable()
    _bus.enable()
    if events_path:
        _jsonl_sink = _bus.JsonlSink(events_path)
        _bus.add_sink(_jsonl_sink)
    if ticker:
        _ticker_sink = _bus.TickerSink()
        _bus.add_sink(_ticker_sink)
    _sampler = ResourceSampler(interval_s=interval_s).start()
    if serve_port is not None:
        _server = MetricsServer(port=serve_port)
        _server.start()
    from repro.obs import spans as _spans
    _spans.set_live_hook(_span_hook)
    _enabled = True


def disable() -> None:
    """Stop the sampler/server, detach the span hook, close sinks."""
    global _enabled, _sampler, _jsonl_sink, _ticker_sink, _server
    if not (_enabled or _sampler or _server):
        _bus.disable()
        return
    from repro.obs import spans as _spans
    _spans.set_live_hook(None)
    if _sampler is not None:
        _sampler.stop()
        _sampler = None
    if _server is not None:
        _server.stop()
        _server = None
    if _jsonl_sink is not None:
        _bus.remove_sink(_jsonl_sink)
        _jsonl_sink.close()
        _jsonl_sink = None
    if _ticker_sink is not None:
        _bus.remove_sink(_ticker_sink)
        _ticker_sink = None
    _bus.disable()
    _enabled = False


def enable_from_env() -> bool:
    """Start the runtime when ``REPRO_LIVE`` is truthy; the decision.

    Companion knobs: ``REPRO_LIVE_EVENTS`` (JSONL sink path),
    ``REPRO_LIVE_TICKER=1`` (stderr ticker),
    ``REPRO_LIVE_INTERVAL`` (cadence seconds), ``REPRO_LIVE_PORT``
    (Prometheus endpoint port).
    """
    if os.environ.get("REPRO_LIVE", "").strip().lower() not in _TRUTHY:
        return False
    events_path = os.environ.get("REPRO_LIVE_EVENTS", "").strip() or None
    ticker = (os.environ.get("REPRO_LIVE_TICKER", "").strip().lower()
              in _TRUTHY)
    port_raw = os.environ.get("REPRO_LIVE_PORT", "").strip()
    port = None
    if port_raw:
        try:
            port = int(port_raw)
        except ValueError:
            port = None
    enable(events_path=events_path, ticker=ticker, serve_port=port)
    return True


def _span_hook(span, status: str) -> None:
    """Top-level span lifecycle -> ``phase`` events + resource summary.

    Installed into :mod:`repro.obs.spans` while the runtime is on; on
    close, the sampler's window summary (peak RSS, CPU consumed) is
    attached to the span so the recorded tree carries the resource
    context of each phase.
    """
    _bus.emit("phase", name=str(span.name), status=status)
    if status == "end" and _sampler is not None:
        # A fresh sample on close keeps the series aligned with phase
        # boundaries and guarantees the window is never empty, even for
        # spans shorter than the sampling interval.
        _sampler.sample_once()
        window_s = span.duration_ns / 1e9
        summary = _sampler.summary(since_ts=time.time() - window_s - 0.001)
        if summary:
            span.annotate(resources=summary)
