"""Per-span CPU profiling attribution (the ``REPRO_PROFILE`` knob).

The span layer answers *which phase* the wall clock went to; this
module answers *which functions inside the phase*. When profiling is
on, every top-level span runs under its own :mod:`cProfile.Profile`
and closes with the top-K functions by cumulative time attached as
``span.profile`` -- a list of JSON-ready dicts that ride the span tree
into run records, the Chrome trace export, and the collapsed-stack
flame export (:mod:`repro.obs.export`).

Opt-in and overhead
-------------------
Profiling shares the span enable path: it only ever runs when spans
are enabled *and* ``REPRO_PROFILE`` is set (or an explicit
``spans.enable(profile=K)`` was made), so the disabled fast path --
the shared no-op span -- is untouched and the instrumented library
costs nothing extra. ``REPRO_PROFILE=1`` attaches the default top
:data:`DEFAULT_TOP_K` functions; ``REPRO_PROFILE=40`` raises the
cutoff to 40; ``0`` / unset disables.

cProfile cannot nest, so only the *root* of each span tree profiles;
descendants are covered by the root's run and the span hierarchy
itself attributes their share of the wall clock.
"""

from __future__ import annotations

import os
import pstats

__all__ = [
    "DEFAULT_TOP_K",
    "format_profile",
    "profile_top_k_from_env",
    "top_functions",
]

#: Functions kept per profiled span when ``REPRO_PROFILE=1``.
DEFAULT_TOP_K = 20

_FALSY = {"", "0", "false", "no", "off"}


def profile_top_k_from_env() -> int:
    """Resolve ``REPRO_PROFILE`` to a top-K count (0 = disabled).

    Truthy words (``1``/``true``/``yes``/``on``) mean
    :data:`DEFAULT_TOP_K`; an integer above 1 is taken as the K
    itself; anything falsy or unparsable disables profiling.
    """
    raw = os.environ.get("REPRO_PROFILE", "").strip().lower()
    if raw in _FALSY:
        return 0
    if raw in {"1", "true", "yes", "on"}:
        return DEFAULT_TOP_K
    try:
        return max(0, int(raw))
    except ValueError:
        return 0


def top_functions(profiler, top_k: int = DEFAULT_TOP_K) -> list[dict]:
    """Top-K functions of a finished profiler, by cumulative time.

    Each entry is JSON-ready::

        {"func": "list_triangles", "file": ".../api.py", "line": 88,
         "ncalls": 12, "tottime": 0.031, "cumtime": 0.87}

    ``tottime`` (time inside the function itself) is additive across
    entries; ``cumtime`` includes callees and therefore overlaps.
    Profiler bookkeeping frames are dropped.
    """
    stats = pstats.Stats(profiler)
    rows = []
    for (filename, line, func), (cc, nc, tt, ct, callers) in \
            stats.stats.items():  # type: ignore[attr-defined]
        if func in ("<built-in method builtins.exec>",) or \
                "cProfile" in filename:
            continue
        rows.append({
            "func": func,
            "file": filename,
            "line": int(line),
            "ncalls": int(nc),
            "tottime": float(tt),
            "cumtime": float(ct),
        })
    rows.sort(key=lambda r: (-r["cumtime"], -r["tottime"], r["func"]))
    return rows[:max(0, int(top_k))]


def format_profile(entries, limit: int | None = None) -> str:
    """Render attached profile entries as an aligned text block."""
    if not entries:
        return "no profile data (set REPRO_PROFILE=1 and enable spans)"
    lines = [f"{'cumtime s':>10} {'tottime s':>10} {'ncalls':>8}  "
             f"function"]
    for entry in entries[:limit]:
        where = f"{entry.get('file', '?')}:{entry.get('line', 0)}"
        lines.append(f"{entry.get('cumtime', 0.0):>10.4f} "
                     f"{entry.get('tottime', 0.0):>10.4f} "
                     f"{entry.get('ncalls', 0):>8}  "
                     f"{entry.get('func', '?')} ({where})")
    return "\n".join(lines)
