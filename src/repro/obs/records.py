"""JSONL run records: machine-readable trail of every measured run.

A :class:`RunRecord` bundles what a benchmark or experiment just did --
the finished span trees, a metrics snapshot, the run configuration
(method, permutation, n, seed, ...) and environment metadata (git
revision, python version, wall-clock timestamp) -- and appends it as
one JSON line to a ``runs.jsonl`` sink (default
``benchmarks/results/runs.jsonl``, overridable via the
``REPRO_RUNS_FILE`` environment variable or an explicit path).

The serializer is numpy-aware (:func:`json_default`) and also
round-trips :class:`~repro.listing.base.ListingResult` objects via
:func:`listing_result_to_dict` / :func:`listing_result_from_dict`.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import pathlib
import shutil
import subprocess
import sys
import time

from repro.obs import metrics as _metrics
from repro.obs import spans as _spans

__all__ = [
    "DEFAULT_RUNS_PATH",
    "RunRecord",
    "collect",
    "fsync_from_env",
    "git_revision",
    "host_meta",
    "append_jsonl_line",
    "json_default",
    "listing_result_from_dict",
    "listing_result_to_dict",
    "load_records",
    "record_run",
    "runs_path",
    "write_record",
]

DEFAULT_RUNS_PATH = pathlib.Path("benchmarks") / "results" / "runs.jsonl"

_FALSY = {"0", "false", "no", "off"}

_git_rev_cache: str | None = None
_git_rev_known = False


def runs_path(path=None) -> pathlib.Path:
    """Resolve the JSONL sink: explicit arg > ``REPRO_RUNS_FILE`` > default."""
    if path is not None:
        return pathlib.Path(path)
    env = os.environ.get("REPRO_RUNS_FILE", "").strip()
    return pathlib.Path(env) if env else DEFAULT_RUNS_PATH


def fsync_from_env() -> bool:
    """Whether appends fsync: ``REPRO_FSYNC`` (default on).

    Benchmark drivers set ``REPRO_FSYNC=0`` so a tight emit loop is not
    dominated by per-record disk flushes; the ``O_APPEND``
    single-``write`` append stays atomic either way -- only the
    durability-on-power-loss guarantee is relaxed.
    """
    return os.environ.get("REPRO_FSYNC", "").strip().lower() not in _FALSY


_compiler_version_cache = _UNRESOLVED = object()


def _compiler_version() -> str | None:
    """First line of ``cc/gcc --version``, resolved once per process."""
    global _compiler_version_cache
    if _compiler_version_cache is _UNRESOLVED:
        _compiler_version_cache = None
        compiler = shutil.which("cc") or shutil.which("gcc")
        if compiler is not None:
            try:
                proc = subprocess.run(
                    [compiler, "--version"], capture_output=True,
                    text=True, timeout=10)
                if proc.returncode == 0 and proc.stdout:
                    _compiler_version_cache = \
                        proc.stdout.splitlines()[0].strip()
            except (OSError, subprocess.SubprocessError):
                pass
    return _compiler_version_cache


def host_meta() -> dict:
    """Host metadata making records comparable across machines.

    Attached to benchmark sidecars and surfaced by ``repro report
    trends``: results from a 4-core CI runner and a 64-core box must
    never be averaged silently. ``native`` reports whether the
    compiled kernels actually resolved in this process (with the
    failure state when they did not), ``compiler`` the toolchain
    version line, and ``native_threads`` the thread count the block
    driver would use.
    """
    import platform
    from repro.engine import native as _native
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "native": _native.available(),
        "native_state": _native.status()["state"],
        "native_threads": _native.resolve_threads(),
        "compiler": _compiler_version(),
    }


def git_revision() -> str | None:
    """Short git revision of the repo containing this package, if any."""
    global _git_rev_cache, _git_rev_known
    if _git_rev_known:
        return _git_rev_cache
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=pathlib.Path(__file__).resolve().parent)
        _git_rev_cache = (proc.stdout.strip()
                          if proc.returncode == 0 and proc.stdout.strip()
                          else None)
    except (OSError, subprocess.SubprocessError):
        _git_rev_cache = None
    _git_rev_known = True
    return _git_rev_cache


def json_default(obj):
    """``json.dumps`` fallback handling numpy scalars/arrays and more."""
    if hasattr(obj, "item") and not isinstance(obj, dict):
        try:
            return obj.item()  # numpy scalar
        except (TypeError, ValueError):
            pass
    if hasattr(obj, "tolist"):
        return obj.tolist()  # numpy array
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    if isinstance(obj, pathlib.Path):
        return str(obj)
    return str(obj)


@dataclasses.dataclass
class RunRecord:
    """One machine-readable run: spans + metrics + config + metadata."""

    name: str
    config: dict = dataclasses.field(default_factory=dict)
    spans: list = dataclasses.field(default_factory=list)
    metrics: dict = dataclasses.field(default_factory=dict)
    meta: dict = dataclasses.field(default_factory=dict)

    def to_json(self) -> str:
        """Serialize to one JSON line (no trailing newline)."""
        return json.dumps(dataclasses.asdict(self), default=json_default)

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        return cls(name=data.get("name", ""),
                   config=data.get("config", {}) or {},
                   spans=data.get("spans", []) or [],
                   metrics=data.get("metrics", {}) or {},
                   meta=data.get("meta", {}) or {})

    def phase_totals(self) -> dict[str, int]:
        """Aggregate ``duration_ns`` by span name over all span trees."""
        totals: dict[str, int] = {}

        def walk(node: dict) -> None:
            name = node.get("name", "?")
            totals[name] = totals.get(name, 0) + int(
                node.get("duration_ns", 0))
            for child in node.get("children", ()):
                walk(child)

        for root in self.spans:
            walk(root)
        return totals


def collect(name: str, config: dict | None = None,
            spans=None) -> RunRecord:
    """Assemble a record from the current obs state.

    Drains :func:`repro.obs.spans.pop_finished` unless an explicit list
    of :class:`~repro.obs.spans.Span` objects (or span dicts) is given,
    and snapshots the metrics registry.
    """
    if spans is None:
        spans = _spans.pop_finished()
    span_dicts = [s.to_dict() if hasattr(s, "to_dict") else s
                  for s in spans]
    metrics = _metrics.snapshot()
    # While the live runtime is on, the sampler's ring-buffered
    # RSS/CPU series rides into the record (lazy import: live imports
    # records' siblings, never the other way on the cold path).
    from repro.obs import live as _live
    if _live.is_enabled():
        series = _live.sampler_series()
        if series:
            metrics["resources"] = series
    # Likewise the array ledger: the full per-tag/per-span attribution
    # rides the record whenever REPRO_MEM_LEDGER was on for the run.
    from repro.obs import memory as _memory
    if _memory.is_enabled():
        metrics["memory"] = _memory.ledger_summary()
    return RunRecord(
        name=name,
        config=dict(config or {}),
        spans=span_dicts,
        metrics=metrics,
        meta={
            "git_rev": git_revision(),
            "python": sys.version.split()[0],
            "timestamp_unix": time.time(),
        },
    )


def append_jsonl_line(path, line: str,
                      fsync: bool | None = None) -> pathlib.Path:
    """Append one pre-serialized JSON line to ``path`` atomically.

    The shared low-level appender behind :func:`write_record` and the
    audit log (:mod:`repro.obs.audit`). The append is atomic at the
    line level: the caller serializes fully *before* the file is
    touched, then the line goes through one ``O_APPEND`` descriptor,
    so a crashed or concurrent writer can tear at most its own line --
    it can never interleave bytes into another record.

    ``fsync=None`` (the default) consults ``REPRO_FSYNC`` via
    :func:`fsync_from_env`: flushes stay on unless a caller (the
    benchmark drivers) opts out of per-append durability.
    """
    if fsync is None:
        fsync = fsync_from_env()
    sink = pathlib.Path(path)
    sink.parent.mkdir(parents=True, exist_ok=True)
    payload = (line.rstrip("\n") + "\n").encode("utf-8")
    fd = os.open(str(sink), os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                 0o644)
    try:
        # One write per record: O_APPEND makes each call an atomic
        # append, so the loop only continues on a short write (ENOSPC
        # territory) rather than splitting a healthy line.
        view = memoryview(payload)
        while view:
            view = view[os.write(fd, view):]
        if fsync:
            os.fsync(fd)
    finally:
        os.close(fd)
    return sink


def write_record(record: RunRecord, path=None,
                 fsync: bool | None = None) -> pathlib.Path:
    """Append ``record`` as one JSONL line; returns the sink path.

    See :func:`append_jsonl_line` for the atomicity and fsync
    contract; :func:`load_records` keeps its skip-with-warning path as
    the fallback for histories written before this guarantee (or torn
    by power loss mid-sector).
    """
    return append_jsonl_line(runs_path(path), record.to_json(),
                             fsync=fsync)


def record_run(name: str, config: dict | None = None,
               path=None) -> pathlib.Path:
    """:func:`collect` + :func:`write_record` in one call."""
    return write_record(collect(name, config), path)


def load_records(path=None) -> list[RunRecord]:
    """Parse every record in the sink (missing file = empty list).

    A truncated or corrupted line (a crashed writer, a partial append)
    must not take the whole history down: bad lines are skipped and
    counted, and one structured WARNING summarizes them via
    :mod:`repro.obs.logging`.
    """
    sink = runs_path(path)
    if not sink.exists():
        return []
    out = []
    skipped = 0
    first_bad: tuple[int, str] | None = None
    for lineno, line in enumerate(
            sink.read_text(encoding="utf-8").splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            data = str(exc)
        if not isinstance(data, dict):
            skipped += 1
            if first_bad is None:
                first_bad = (lineno, str(data))
            continue
        out.append(RunRecord.from_dict(data))
    if skipped:
        _metrics.inc("records.corrupted", skipped)
        from repro.obs.logging import get_logger, log_event
        log_event(get_logger(__name__), logging.WARNING,
                  "skipped corrupted run-record lines", path=str(sink),
                  skipped=skipped, first_bad_line=first_bad[0],
                  detail=first_bad[1])
    return out


def listing_result_to_dict(result) -> dict:
    """JSON-ready dict of a :class:`ListingResult` (lossless)."""
    return {
        "method": result.method,
        "count": int(result.count),
        "triangles": ([list(t) for t in result.triangles]
                      if result.triangles is not None else None),
        "ops": int(result.ops),
        "comparisons": int(result.comparisons),
        "hash_inserts": int(result.hash_inserts),
        "n": int(result.n),
        "extra": dict(result.extra),
    }


def listing_result_from_dict(data: dict):
    """Inverse of :func:`listing_result_to_dict`."""
    from repro.listing.base import ListingResult
    triangles = data.get("triangles")
    if triangles is not None:
        triangles = [tuple(t) for t in triangles]
    return ListingResult(
        method=data["method"],
        count=int(data.get("count", 0)),
        triangles=triangles,
        ops=int(data.get("ops", 0)),
        comparisons=int(data.get("comparisons", 0)),
        hash_inserts=int(data.get("hash_inserts", 0)),
        n=int(data.get("n", 0)),
        extra=dict(data.get("extra") or {}),
    )
