"""Pub/sub event bus for live telemetry (``repro.obs.live``).

Post-hoc observability (spans, run records) answers "what happened";
the bus answers "what is happening *now*": producers -- the resource
sampler, the progress/ETA layer, the worker-heartbeat watchdog, the
span phase hook -- publish small dict events through :func:`emit`, and
pluggable sinks fan them out:

* :class:`MemorySink` -- in-process list, for tests and ``repro top``;
* :class:`JsonlSink` -- one JSON line per event appended to a stream
  file (the ``REPRO_LIVE_EVENTS`` sink ``repro top`` follows);
* :class:`TickerSink` -- a throttled single-line stderr progress
  ticker.

Like the rest of :mod:`repro.obs`, the bus is disabled by default and
the disabled path is one module-global check: :func:`emit` returns
immediately, so instrumented hot paths (the engine chunk loop, the
pool scheduler) pay nothing unless live telemetry is on.

Every published event is stamped with ``type``, ``ts`` (unix seconds)
and ``pid``; :data:`EVENT_SCHEMA` names the per-type required fields
and :func:`validate_events` / :func:`validate_events_file` enforce them
(the CI live-smoke job gates on the emitted stream).
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time

__all__ = [
    "EVENT_SCHEMA",
    "EventBus",
    "JsonlSink",
    "MemorySink",
    "TickerSink",
    "add_sink",
    "bus",
    "disable",
    "emit",
    "enable",
    "is_enabled",
    "remove_sink",
    "reset",
    "validate_event",
    "validate_events",
    "validate_events_file",
]

_enabled = False


#: Required payload fields per event type (beyond the stamped
#: ``type`` / ``ts`` / ``pid``). Values are the accepted types.
EVENT_SCHEMA: dict[str, dict[str, tuple]] = {
    # background sampler: one process-resource snapshot
    "resource.sample": {
        "rss_bytes": (int,),
        "cpu_user_s": (int, float),
        "cpu_system_s": (int, float),
        "gc_collections": (int,),
        "gc_objects": (int,),
        "threads": (int,),
    },
    # progress/ETA layer: one unit of a tracked workload finished
    "progress": {
        "scope": (str,),       # "sweep" | "cell" | "chunk" | ...
        "label": (str,),
        "done": (int, float),
        "total": (int, float),
        "frac": (int, float),
    },
    # pool worker liveness (relayed by the parent watchdog)
    "heartbeat": {
        "worker_pid": (int,),
        "task": (str,),
    },
    # watchdog verdict: a worker missed too many intervals
    "worker.stalled": {
        "worker_pid": (int,),
        "silent_s": (int, float),
        "missed": (int,),
        "last_task": (str,),
    },
    # top-level span lifecycle (the "phase" line of ``repro top``)
    "phase": {
        "name": (str,),
        "status": (str,),      # "start" | "end"
    },
    # run bracketing, for multi-run event streams
    "run.start": {"name": (str,)},
    "run.end": {"name": (str,)},
    # audit layer (repro.obs.audit): one auto-routed planner pick
    "planner.decision": {
        "route": (str,),       # "list_triangles" | "run_pipeline" | ...
        "picked": (str,),      # "METHOD+ordering"
        "confidence": (int, float),
    },
    # audit layer: a pick whose realized regret crossed the threshold
    "planner.misplan": {
        "route": (str,),
        "picked": (str,),
        "oracle": (str,),
        "regret": (int, float),
        "kind": (str,),        # diagnosis taxonomy, see audit.diagnose
    },
    # audit layer: assumed speed ratio far from the calibrated one
    "planner.drift": {
        "assumed": (int, float),
        "calibrated": (int, float),
        "factor": (int, float),
    },
    # memory watchdog (repro.obs.memory): one pressure reading per
    # resource sample while REPRO_MEM_BUDGET is armed
    "mem.pressure": {
        "rss_bytes": (int,),
        "budget_bytes": (int,),
        "frac": (int, float),
    },
    # memory watchdog: RSS crossed the budget (once per excursion)
    "mem.breach": {
        "rss_bytes": (int,),
        "budget_bytes": (int,),
        "overshoot_bytes": (int,),
        "action": (str,),      # "warn" | "abort"
    },
}

#: Optional, typed-when-present progress fields (the model-ops ETA).
_PROGRESS_OPTIONAL = {
    "ops_done": (int, float),
    "ops_predicted": (int, float),
    "eta_s": (int, float),
    "phase": (str,),
}

#: Optional typed-when-present fields per event type. Keeping
#: ``rss_peak_bytes`` optional (it postdates the first recorded
#: streams) lets old event files keep validating.
_OPTIONAL_FIELDS: dict[str, dict[str, tuple]] = {
    "progress": _PROGRESS_OPTIONAL,
    "resource.sample": {"rss_peak_bytes": (int,)},
    "mem.pressure": {"attributed_bytes": (int,)},
}


class MemorySink:
    """Keeps every event in a list -- tests and in-process readers."""

    def __init__(self):
        self.events: list[dict] = []

    def write(self, event: dict) -> None:
        """Append ``event`` to the in-memory list."""
        self.events.append(event)

    def of_type(self, type_: str) -> list[dict]:
        """Events filtered to one ``type``."""
        return [e for e in self.events if e.get("type") == type_]

    def close(self) -> None:
        """Nothing to release."""


class JsonlSink:
    """Appends one JSON line per event to a stream file.

    The file is opened line-buffered in append mode so a concurrent
    ``repro top --events`` follower sees events as they happen; parent
    directories are created on demand.
    """

    def __init__(self, path):
        self.path = path
        parent = os.path.dirname(str(path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh = open(path, "a", buffering=1, encoding="utf-8")

    def write(self, event: dict) -> None:
        """Serialize ``event`` as one line (a single ``write`` call)."""
        self._fh.write(json.dumps(event, default=str) + "\n")

    def close(self) -> None:
        """Flush and close the stream file."""
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - best-effort flush
            pass


class TickerSink:
    """Single-line stderr progress ticker, time-throttled.

    Only ``progress`` and ``worker.stalled`` events render (samples and
    heartbeats would just flicker); re-renders are capped at one per
    ``min_interval_s`` except for terminal events (``frac >= 1``).
    """

    def __init__(self, stream=None, min_interval_s: float = 0.2):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self._last_render = 0.0

    def write(self, event: dict) -> None:
        """Render progress / stall events to the ticker stream."""
        type_ = event.get("type")
        if type_ == "worker.stalled":
            self.stream.write(
                f"\nWARNING worker {event.get('worker_pid')} stalled: "
                f"silent {event.get('silent_s', 0):.1f}s on "
                f"{event.get('last_task')!r}\n")
            return
        if type_ != "progress":
            return
        now = time.monotonic()
        frac = float(event.get("frac", 0.0))
        if frac < 1.0 and now - self._last_render < self.min_interval_s:
            return
        self._last_render = now
        eta = event.get("eta_s")
        eta_txt = f"  eta {eta:.1f}s" if isinstance(eta, (int, float)) \
            else ""
        bar_n = int(round(20 * min(max(frac, 0.0), 1.0)))
        self.stream.write(
            f"\r[{'#' * bar_n}{'.' * (20 - bar_n)}] {100 * frac:5.1f}% "
            f"{event.get('label', '')}{eta_txt}   ")
        if frac >= 1.0:
            self.stream.write("\n")

    def close(self) -> None:
        """Nothing to release (the stream is borrowed)."""


class EventBus:
    """Thread-safe fan-out of stamped events to registered sinks."""

    def __init__(self):
        self._lock = threading.Lock()
        self._sinks: list = []

    def add_sink(self, sink) -> None:
        """Register ``sink`` (any object with ``write``/``close``)."""
        with self._lock:
            self._sinks.append(sink)

    def remove_sink(self, sink) -> None:
        """Unregister ``sink`` if present (it is not closed)."""
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    def sinks(self) -> list:
        """Snapshot of the registered sinks."""
        with self._lock:
            return list(self._sinks)

    def emit(self, type_: str, **fields) -> dict:
        """Stamp and publish one event; returns the event dict."""
        event = {"type": type_, "ts": time.time(), "pid": os.getpid(),
                 **fields}
        with self._lock:
            sinks = list(self._sinks)
        for sink in sinks:
            try:
                sink.write(event)
            except Exception:  # pragma: no cover - sink must not kill run
                pass
        return event

    def close(self) -> None:
        """Close and drop every sink."""
        with self._lock:
            sinks, self._sinks = self._sinks, []
        for sink in sinks:
            sink.close()


_bus = EventBus()


def bus() -> EventBus:
    """The process-wide bus instance."""
    return _bus


def enable() -> None:
    """Turn event publication on."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn event publication off (sinks stay registered)."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    """Whether :func:`emit` publishes."""
    return _enabled


def emit(type_: str, **fields) -> dict | None:
    """Publish an event -- no-op (returns ``None``) while disabled."""
    if not _enabled:
        return None
    return _bus.emit(type_, **fields)


def add_sink(sink) -> None:
    """Register a sink on the process-wide bus."""
    _bus.add_sink(sink)


def remove_sink(sink) -> None:
    """Unregister a sink from the process-wide bus."""
    _bus.remove_sink(sink)


def reset() -> None:
    """Disable publication and close/drop every sink."""
    disable()
    _bus.close()


# ------------------------------------------------------------ validation

def validate_event(event) -> list[str]:
    """Schema errors of one event dict (empty list = valid)."""
    errors = []
    if not isinstance(event, dict):
        return [f"event is not an object: {event!r}"]
    type_ = event.get("type")
    if not isinstance(type_, str):
        return [f"missing/invalid 'type': {type_!r}"]
    if type_ not in EVENT_SCHEMA:
        return [f"unknown event type {type_!r}"]
    if not isinstance(event.get("ts"), (int, float)):
        errors.append(f"{type_}: missing/invalid 'ts'")
    if not isinstance(event.get("pid"), int):
        errors.append(f"{type_}: missing/invalid 'pid'")
    for field, kinds in EVENT_SCHEMA[type_].items():
        value = event.get(field)
        if not isinstance(value, kinds) or isinstance(value, bool):
            errors.append(f"{type_}: field {field!r} should be "
                          f"{'/'.join(k.__name__ for k in kinds)}, "
                          f"got {value!r}")
    for field, kinds in _OPTIONAL_FIELDS.get(type_, {}).items():
        value = event.get(field)
        if value is not None and (not isinstance(value, kinds)
                                  or isinstance(value, bool)):
            errors.append(f"{type_}: optional field {field!r} "
                          f"should be "
                          f"{'/'.join(k.__name__ for k in kinds)}, "
                          f"got {value!r}")
    return errors


def validate_events(events) -> tuple[int, list[str]]:
    """Validate an iterable of event dicts; ``(count, errors)``."""
    count = 0
    errors: list[str] = []
    for i, event in enumerate(events):
        count += 1
        errors.extend(f"event {i}: {e}" for e in validate_event(event))
    return count, errors


def validate_events_file(path) -> tuple[int, list[str]]:
    """Validate a JSONL event stream file; ``(count, errors)``.

    Unparseable lines are schema errors too (a live stream must never
    tear: the JSONL sink writes each event with a single buffered
    ``write``).
    """
    count = 0
    errors: list[str] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            count += 1
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"line {lineno}: not JSON ({exc})")
                continue
            errors.extend(f"line {lineno}: {e}"
                          for e in validate_event(event))
    return count, errors
