"""Baseline store and comparison engine for the perf-regression gate.

A *baseline* is the aggregated measurement cells of a set of run
records (:func:`repro.obs.report.aggregate`) frozen to a JSON file
under ``benchmarks/baselines/``, stamped with the git revision and
creation time. Comparing the current run history against a baseline
classifies every (bench, cell, metric) as

* ``improved``  -- wall-clock dropped below the tolerance band;
* ``unchanged`` -- within tolerance;
* ``regressed`` -- wall-clock rose above the band, a deterministic
  counter / cost value drifted at all, or the model-vs-simulation
  error grew in magnitude;
* ``added`` / ``missing`` -- the cell exists on only one side
  (reported, never fatal: a renamed bench is not a slowdown).

Tolerances are per metric *kind* (:func:`repro.obs.report.metric_kind`):
``rtol_time`` is the relative band for wall-clock metrics (noisy),
``rtol_value`` for deterministic counters and simulated/model costs
(tight -- for a reproduction, a drifting ``ops`` counter means the
semantics changed, so drift in *either* direction regresses), and
``atol_error`` is the absolute band for model-divergence growth.

``repro report compare --baseline <file> --fail-on-regress`` turns the
classification into a CI exit code.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import sys
import time

from repro.obs import report as _report
from repro.obs.records import git_revision, json_default

__all__ = [
    "Baseline",
    "DEFAULT_BASELINES_DIR",
    "Delta",
    "build_baseline",
    "compare",
    "format_deltas",
    "has_regressions",
    "load_baseline",
    "save_baseline",
    "summarize_deltas",
]

DEFAULT_BASELINES_DIR = pathlib.Path("benchmarks") / "baselines"

#: Default relative band for wall-clock metrics (25% slower = regressed).
RTOL_TIME_DEFAULT = 0.25

#: Default relative band for deterministic counters / cost values.
RTOL_VALUE_DEFAULT = 1e-6

#: Default absolute band for |model error| growth (5 percentage points).
ATOL_ERROR_DEFAULT = 0.05

CLASSIFICATIONS = ("improved", "unchanged", "regressed", "added",
                   "missing")


@dataclasses.dataclass
class Baseline:
    """Frozen aggregated cells: ``{name: {cell: {metric: summary}}}``."""

    cells: dict
    meta: dict = dataclasses.field(default_factory=dict)

    def names(self) -> list[str]:
        """Sorted bench names the baseline covers."""
        return sorted(self.cells)


@dataclasses.dataclass
class Delta:
    """One (bench, cell, metric) comparison outcome."""

    name: str
    cell: str
    metric: str
    kind: str
    classification: str
    baseline: float | None = None
    current: float | None = None
    rel_delta: float | None = None

    @property
    def is_regression(self) -> bool:
        return self.classification == "regressed"


def build_baseline(records, label: str | None = None) -> Baseline:
    """Aggregate records (median + MAD across repeats) into a baseline."""
    cells = _report.aggregate(records)
    return Baseline(
        cells=cells,
        meta={
            "label": label,
            "git_rev": git_revision(),
            "created_unix": time.time(),
            "python": sys.version.split()[0],
            "n_records": len(list(records)),
            "benches": sorted(cells),
        },
    )


def save_baseline(baseline: Baseline, path) -> pathlib.Path:
    """Write a baseline JSON file (parent dirs created on demand)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"meta": baseline.meta, "cells": baseline.cells}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True,
                               default=json_default) + "\n",
                    encoding="utf-8")
    return path


def load_baseline(path) -> Baseline:
    """Parse a baseline JSON file back into a :class:`Baseline`."""
    data = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    return Baseline(cells=data.get("cells", {}),
                    meta=data.get("meta", {}))


def _median_of(summary) -> float | None:
    if isinstance(summary, dict):
        value = summary.get("median")
        return None if value is None else float(value)
    return float(summary)


def _classify(kind: str, base: float, cur: float, rtol_time: float,
              rtol_value: float, atol_error: float) -> tuple[str, float]:
    """Classification + signed relative (or absolute) delta."""
    if kind == "error":
        delta = abs(cur) - abs(base)
        if delta > atol_error:
            return "regressed", delta
        if delta < -atol_error:
            return "improved", delta
        return "unchanged", delta
    if base == 0.0:
        rel = 0.0 if cur == 0.0 else float("inf")
    else:
        rel = cur / base - 1.0
    if kind == "time":
        if rel > rtol_time:
            return "regressed", rel
        if rel < -rtol_time:
            return "improved", rel
        return "unchanged", rel
    # deterministic value: drift in either direction is a change
    if abs(rel) > rtol_value:
        return "regressed", rel
    return "unchanged", rel


def compare(current_records, baseline: Baseline,
            rtol_time: float = RTOL_TIME_DEFAULT,
            rtol_value: float = RTOL_VALUE_DEFAULT,
            atol_error: float = ATOL_ERROR_DEFAULT,
            include_time: bool = True) -> list[Delta]:
    """Classify the current run history against a baseline.

    ``current_records`` is a list of :class:`~repro.obs.records.
    RunRecord` (repeats are aggregated by median first). Only benches
    the baseline knows are compared -- extra benches in the history are
    ignored, extra *cells* within a known bench are reported as
    ``added``. With ``include_time=False`` wall-clock metrics are
    skipped entirely (the cross-machine CI mode: only deterministic
    counters and model divergence gate the build).
    """
    current = _report.aggregate(
        [r for r in current_records if r.name in baseline.cells])
    deltas: list[Delta] = []
    for name, base_cells in sorted(baseline.cells.items()):
        cur_cells = current.get(name, {})
        cell_keys = sorted(set(base_cells) | set(cur_cells))
        for cell in cell_keys:
            base_metrics = base_cells.get(cell)
            cur_metrics = cur_cells.get(cell)
            if base_metrics is None or cur_metrics is None:
                classification = ("added" if base_metrics is None
                                  else "missing")
                probe = base_metrics or cur_metrics or {}
                for metric in sorted(probe):
                    kind = _report.metric_kind(metric)
                    if kind == "time" and not include_time:
                        continue
                    deltas.append(Delta(
                        name=name, cell=cell, metric=metric, kind=kind,
                        classification=classification,
                        baseline=_median_of(base_metrics.get(metric))
                        if base_metrics else None,
                        current=_median_of(cur_metrics.get(metric))
                        if cur_metrics else None))
                continue
            for metric in sorted(set(base_metrics) | set(cur_metrics)):
                kind = _report.metric_kind(metric)
                if kind == "time" and not include_time:
                    continue
                base = _median_of(base_metrics.get(metric))
                cur = _median_of(cur_metrics.get(metric))
                if base is None or cur is None:
                    deltas.append(Delta(
                        name=name, cell=cell, metric=metric, kind=kind,
                        classification=("added" if base is None
                                        else "missing"),
                        baseline=base, current=cur))
                    continue
                classification, rel = _classify(
                    kind, base, cur, rtol_time, rtol_value, atol_error)
                deltas.append(Delta(
                    name=name, cell=cell, metric=metric, kind=kind,
                    classification=classification, baseline=base,
                    current=cur, rel_delta=rel))
    return deltas


def has_regressions(deltas) -> bool:
    """Whether any delta classified as ``regressed``."""
    return any(d.is_regression for d in deltas)


def summarize_deltas(deltas) -> dict[str, int]:
    """Count of deltas per classification (zero-filled)."""
    counts = {c: 0 for c in CLASSIFICATIONS}
    for delta in deltas:
        counts[delta.classification] += 1
    return counts


def format_deltas(deltas, show: str = "changed",
                  baseline_meta: dict | None = None) -> str:
    """Render a comparison as text.

    ``show="changed"`` prints only non-``unchanged`` rows (plus the
    summary line); ``show="all"`` prints every cell.
    """
    lines = []
    if baseline_meta:
        label = baseline_meta.get("label") or "baseline"
        lines.append(
            f"baseline: {label} @ {baseline_meta.get('git_rev', '?')} "
            f"({baseline_meta.get('n_records', '?')} records)")
    visible = [d for d in deltas
               if show == "all" or d.classification != "unchanged"]
    if visible:
        lines.append(f"{'class':<10} {'bench':<24} {'cell':<28} "
                     f"{'metric':<26} {'baseline':>12} {'current':>12} "
                     f"{'delta':>9}")
        for d in visible:
            base = "--" if d.baseline is None else f"{d.baseline:.4g}"
            cur = "--" if d.current is None else f"{d.current:.4g}"
            if d.rel_delta is None:
                rel = "--"
            elif d.kind == "error":
                rel = f"{100 * d.rel_delta:+.1f}pp"
            else:
                rel = f"{100 * d.rel_delta:+.1f}%"
            lines.append(f"{d.classification:<10} {d.name:<24} "
                         f"{d.cell:<28} {d.metric:<26} {base:>12} "
                         f"{cur:>12} {rel:>9}")
    counts = summarize_deltas(deltas)
    lines.append("summary: " + "  ".join(
        f"{c}={counts[c]}" for c in CLASSIFICATIONS))
    return "\n".join(lines)
