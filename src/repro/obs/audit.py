"""Model-conformance audit layer: predicted vs. actual, per decision.

The planner (PR 8) routes ``method="auto"`` calls through the paper's
cost model, but nothing checked whether the model's predictions *hold*
on real runs -- a drifting speed ratio or a graph outside the Pareto
regimes silently degrades every pick. This module closes the loop:

* every auto-routed :func:`repro.listing.api.list_triangles` /
  :func:`repro.pipeline.run_pipeline` call (and every regret-harness
  case) appends one **audit record** to a JSONL log alongside
  ``runs.jsonl`` -- the full ranked candidate table with predicted
  ops/time, the chosen entry and confidence, then the post-run actual
  ops / wall time and the **realized regret** of the pick against the
  cheapest candidate that could be re-priced exactly (same definition
  as :mod:`repro.planner.regret`: ``exact_time(pick) /
  exact_time(best) - 1``);
* a **conformance analyzer** aggregates the log into per-(method,
  ordering, graph-class) calibration error and prediction-ratio
  distributions, plus a misplan list with structured diagnoses
  (:func:`diagnose`: model divergence vs. speed-ratio drift vs.
  tie margin too thin);
* misplans and calibration drift publish ``planner.misplan`` /
  ``planner.drift`` events on the live bus so ``repro top`` surfaces
  bad picks while a run is still going.

Auditing is **off by default** and the disabled path is one
module-global check (:func:`is_enabled`): auto-routed runs are
bit-identical with ``REPRO_AUDIT=0`` and perform no audit I/O. Turn it
on with ``REPRO_AUDIT=1`` (the log lands at ``REPRO_AUDIT_FILE`` or
``benchmarks/results/audit.jsonl``) or programmatically via
:func:`enable`. Read it back with ``repro audit
summary|misplans|calibration`` or the dashboard's audit panel.
"""

from __future__ import annotations

import json
import logging
import math
import os
import pathlib
import time

from repro.obs import bus as _bus
from repro.obs import metrics as _metrics
from repro.obs import records as _records

__all__ = [
    "AUDIT_ENV",
    "AUDIT_FILE_ENV",
    "AUDIT_SCHEMA_VERSION",
    "DEFAULT_AUDIT_PATH",
    "DRIFT_FACTOR",
    "MISPLAN_REGRET",
    "MODEL_RTOL",
    "THIN_MARGIN",
    "audit_path",
    "audit_summary",
    "conformance_rows",
    "diagnose",
    "disable",
    "enable",
    "format_conformance",
    "format_misplans",
    "format_summary",
    "graph_class",
    "is_enabled",
    "load_audit",
    "misplan_rows",
    "open_record",
    "finish_record",
    "prediction_ratio",
    "realized_regret",
    "record_auto_route",
    "validate_audit_file",
    "validate_audit_record",
    "write_audit_record",
]

#: Bumped when the record layout changes incompatibly.
AUDIT_SCHEMA_VERSION = 1

#: Environment switch: truthy values turn auditing on process-wide.
AUDIT_ENV = "REPRO_AUDIT"

#: Environment override for the audit JSONL sink.
AUDIT_FILE_ENV = "REPRO_AUDIT_FILE"

#: Default sink, next to ``runs.jsonl``.
DEFAULT_AUDIT_PATH = pathlib.Path("benchmarks") / "results" / "audit.jsonl"

#: Realized regret above which a pick is classified as a misplan.
MISPLAN_REGRET = 0.10

#: Winner confidence below which a misplan is diagnosed as a thin tie.
THIN_MARGIN = 0.05

#: Predicted/exact ops ratio outside ``[1/r, r]`` flags model divergence.
MODEL_RTOL = 1.25

#: Assumed-vs-calibrated speed-ratio factor beyond which drift is flagged.
DRIFT_FACTOR = 2.0

_TRUTHY = {"1", "true", "yes", "on"}

#: ``None`` = not yet resolved from the environment (first
#: :func:`is_enabled` call reads ``REPRO_AUDIT`` exactly once).
_enabled: bool | None = None


def enable() -> None:
    """Turn auditing on for this process."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn auditing off (the default)."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    """Whether auto-routed calls append audit records.

    Resolves ``REPRO_AUDIT`` lazily on first call so any entry point
    (CLI, benchmarks, plain library use in a subprocess) honors the
    environment without explicit wiring; after that it is one global
    check -- the zero-overhead-off guarantee of the rest of
    :mod:`repro.obs`.
    """
    global _enabled
    if _enabled is None:
        _enabled = (os.environ.get(AUDIT_ENV, "").strip().lower()
                    in _TRUTHY)
    return _enabled


def audit_path(path=None) -> pathlib.Path:
    """Resolve the audit sink: explicit arg > env > default."""
    if path is not None:
        return pathlib.Path(path)
    env = os.environ.get(AUDIT_FILE_ENV, "").strip()
    return pathlib.Path(env) if env else DEFAULT_AUDIT_PATH


# ------------------------------------------------------------ record build

def graph_class(n, m, max_degree=None) -> str:
    """Coarse deterministic graph-class label for aggregation.

    ``sparse``/``dense`` splits at average degree ``sqrt(n)`` (the
    paper's dense regime where E-family costs explode); a ``-heavy`` /
    ``-light`` suffix marks whether the maximum degree exceeds 8x the
    average (the heavy-tail territory the Pareto regimes live in).
    Unknown inputs degrade gracefully to ``"unknown"``/``"empty"``.
    """
    if n is None or m is None:
        return "unknown"
    n, m = int(n), int(m)
    if n <= 0 or m <= 0:
        return "empty"
    avg = 2.0 * m / n
    density = "dense" if avg > math.sqrt(n) else "sparse"
    if max_degree is None:
        return density
    tail = "heavy" if float(max_degree) > 8.0 * max(avg, 1.0) else "light"
    return f"{density}-{tail}"


def open_record(plan, route: str, *, n=None, m=None, max_degree=None,
                label: str | None = None) -> dict:
    """Start an audit record from a routing plan (pre-run fields).

    ``plan`` is the :class:`~repro.planner.plan.Plan` the router used;
    the record captures its full ranked table, the pick, and the
    confidence. Post-run fields are folded in by :func:`finish_record`.
    """
    if n is None:
        n = plan.n
    if m is None:
        meta_m = plan.meta.get("m")
        m = int(meta_m) if isinstance(meta_m, (int, float)) else None
    best = plan.best
    record = {
        "schema": AUDIT_SCHEMA_VERSION,
        "ts": time.time(),
        "pid": os.getpid(),
        "route": route,
        "source": plan.source,
        "speed_ratio": float(plan.speed_ratio),
        "n": int(n) if n is not None else None,
        "m": int(m) if m is not None else None,
        "graph_class": graph_class(n, m, max_degree),
        "picked": {
            "method": best.method,
            "ordering": best.ordering,
            "family": best.family,
            "predicted_cost": float(best.predicted_cost),
            "predicted_time": float(best.predicted_time),
        },
        "confidence": float(plan.confidence),
        "entries": plan.to_rows(),
    }
    if label is not None:
        record["label"] = label
    return record


def realized_regret(picked: dict, exact_plan) -> dict | None:
    """Re-price the pick on an exactly-priced plan; harness semantics.

    ``exact_plan`` is the cheapest table whose candidates could be
    re-priced exactly (for auto routes, the routing plan itself; for
    the regret harness, the :func:`~repro.planner.plan.plan_for_graph`
    oracle). Returns ``None`` when the pick is not in the table;
    otherwise the same ``actual / best - 1`` definition as
    :func:`repro.planner.regret` -- including the zero-cost guards.
    """
    try:
        entry = exact_plan.entry(picked["method"], picked["ordering"])
    except KeyError:
        return None
    actual = float(entry.predicted_time)
    best = float(exact_plan.best.predicted_time)
    if best > 0.0:
        regret = actual / best - 1.0
    else:
        regret = 0.0 if actual <= 0.0 else math.inf
    return {
        "oracle": exact_plan.best.key,
        "oracle_time": best,
        "picked_time": actual,
        "regret": float(regret),
    }


def _rerank_winner(entries: list[dict], speed_ratio: float) -> str | None:
    """Re-rank recorded plan rows under a different speed ratio.

    Rows carry the raw modeled cost and the family, so the §2.4
    weighting can be replayed with any ratio; returns the winner's
    ``METHOD+ordering`` key (canonical tie-break, like the planner).
    """
    weighted = []
    for row in entries:
        if not isinstance(row, dict):
            continue
        cost = row.get("cost")
        if not isinstance(cost, (int, float)):
            continue
        t = (cost / speed_ratio if row.get("family") == "sei"
             else float(cost))
        weighted.append((t, str(row.get("method")),
                         str(row.get("ordering"))))
    if not weighted:
        return None
    t, method, ordering = min(weighted)
    return f"{method}+{ordering}"


def diagnose(record: dict, stored_ratio: float | None = None) -> dict:
    """Structured misplan diagnosis for one finished audit record.

    ``{"kind": ..., "detail": ...}`` with kinds:

    * ``ok`` -- no realized regret, or regret within
      :data:`MISPLAN_REGRET`;
    * ``model_divergence`` -- the model's predicted ops for the pick
      are off by more than :data:`MODEL_RTOL` against the exact
      re-pricing (the cost model, not the ranking, is wrong);
    * ``speed_ratio_drift`` -- re-ranking the recorded table under the
      calibration store's measured ratio changes the winner and the
      stored ratio differs from the assumed one by more than
      :data:`DRIFT_FACTOR`;
    * ``tie_margin`` -- the winner's confidence was below
      :data:`THIN_MARGIN` (a coin-flip pick lost the toss);
    * ``unexplained`` -- none of the above pattern-matched.
    """
    realized = record.get("realized") or {}
    regret = realized.get("regret")
    if regret is None or (isinstance(regret, (int, float))
                          and regret <= MISPLAN_REGRET):
        return {"kind": "ok", "detail": ""}
    ratios = record.get("ratios") or {}
    model_ratio = ratios.get("model_ops")
    if isinstance(model_ratio, (int, float)) and model_ratio > 0 and \
            not (1.0 / MODEL_RTOL <= model_ratio <= MODEL_RTOL):
        return {"kind": "model_divergence",
                "detail": f"predicted/exact ops ratio "
                          f"{model_ratio:.3g} outside "
                          f"[{1 / MODEL_RTOL:.2f}, {MODEL_RTOL:.2f}]"}
    assumed = record.get("speed_ratio")
    if stored_ratio is not None and isinstance(assumed, (int, float)) \
            and assumed > 0 and stored_ratio > 0:
        factor = max(assumed / stored_ratio, stored_ratio / assumed)
        if factor > DRIFT_FACTOR:
            rewinner = _rerank_winner(record.get("entries") or [],
                                      stored_ratio)
            picked = record.get("picked") or {}
            picked_key = (f"{picked.get('method')}+"
                          f"{picked.get('ordering')}")
            if rewinner is not None and rewinner != picked_key:
                return {"kind": "speed_ratio_drift",
                        "detail": f"assumed {assumed:.3g}x vs "
                                  f"calibrated {stored_ratio:.3g}x "
                                  f"({factor:.1f}x apart) re-ranks "
                                  f"winner to {rewinner}"}
    confidence = record.get("confidence")
    if isinstance(confidence, (int, float)) and confidence < THIN_MARGIN:
        return {"kind": "tie_margin",
                "detail": f"winner confidence {confidence:.3g} below "
                          f"{THIN_MARGIN}"}
    return {"kind": "unexplained",
            "detail": "regret above threshold but no single cause "
                      "pattern-matched"}


def finish_record(record: dict, *, result=None, wall_s=None,
                  exact_plan=None,
                  stored_ratio: float | None = None) -> dict:
    """Fold post-run observations into an open audit record.

    ``result`` is the :class:`~repro.listing.base.ListingResult` of
    the executed pick (``None`` for pure-pricing routes like the
    regret harness); ``exact_plan`` is the table the realized regret
    is re-priced on. Prediction ratios:

    * ``ops``        -- predicted per-node cost / measured per-node
      cost (model vs. the engine's actual operation count);
    * ``model_ops``  -- predicted per-node cost / exactly re-priced
      per-node cost of the same candidate (model vs. formula -- the
      pure model-divergence signal, available without running);
    * ``time_unit_ns`` -- measured wall nanoseconds per predicted time
      unit (the empirical scale that turns the model's hash-op units
      into seconds on this host).
    """
    picked = record["picked"]
    actual = None
    ratios: dict[str, float] = {}
    if result is not None:
        n = record.get("n") or getattr(result, "n", 0) or 0
        ops = int(result.ops)
        per_node = ops / n if n else 0.0
        actual = {
            "ops": ops,
            "triangles": int(result.count),
            "per_node_cost": per_node,
            "wall_s": float(wall_s) if wall_s is not None else None,
            "engine": ("native" if result.extra.get("native")
                       else result.extra.get("engine")),
        }
        if per_node > 0 and picked["predicted_cost"] >= 0:
            ratios["ops"] = picked["predicted_cost"] / per_node
        if wall_s is not None and wall_s > 0 and \
                picked["predicted_time"] > 0 and \
                math.isfinite(picked["predicted_time"]):
            ratios["time_unit_ns"] = \
                wall_s * 1e9 / (picked["predicted_time"] * max(n, 1))
    record["actual"] = actual
    realized = None
    if exact_plan is not None:
        realized = realized_regret(picked, exact_plan)
        if realized is not None:
            try:
                entry = exact_plan.entry(picked["method"],
                                         picked["ordering"])
                if entry.predicted_cost > 0 and \
                        picked["predicted_cost"] >= 0:
                    ratios["model_ops"] = (picked["predicted_cost"]
                                           / entry.predicted_cost)
            except KeyError:  # pragma: no cover - guarded above
                pass
    record["realized"] = realized
    record["ratios"] = ratios
    if stored_ratio is None:
        stored_ratio = _stored_ratio_or_none()
    if stored_ratio is not None:
        assumed = record.get("speed_ratio") or 0.0
        if assumed > 0 and stored_ratio > 0:
            factor = max(assumed / stored_ratio, stored_ratio / assumed)
            record["drift"] = {"assumed": float(assumed),
                               "calibrated": float(stored_ratio),
                               "factor": float(factor)}
    record["diagnosis"] = diagnose(record, stored_ratio)
    return record


def _stored_ratio_or_none() -> float | None:
    """The calibration store's ratio for this host, if any (cheap)."""
    try:
        from repro.engine.benchmark import stored_speed_ratio
        return stored_speed_ratio()
    except Exception:  # pragma: no cover - never break an audited run
        return None


def write_audit_record(record: dict, path=None,
                       fsync: bool | None = None) -> pathlib.Path:
    """Append one record to the audit JSONL sink (atomic line append)."""
    sink = audit_path(path)
    line = json.dumps(record, default=_records.json_default)
    return _records.append_jsonl_line(sink, line, fsync=fsync)


def _publish(record: dict) -> None:
    """Metrics + live-bus events for one finished record."""
    _metrics.inc("audit.records")
    picked = record.get("picked") or {}
    picked_key = f"{picked.get('method')}+{picked.get('ordering')}"
    realized = record.get("realized") or {}
    regret = realized.get("regret")
    fields = {"route": record.get("route", "?"), "picked": picked_key,
              "confidence": float(record.get("confidence") or 0.0)}
    if isinstance(regret, (int, float)):
        fields["regret"] = float(regret)
    _bus.emit("planner.decision", **fields)
    drift = record.get("drift")
    if drift and drift.get("factor", 0.0) > DRIFT_FACTOR:
        _metrics.inc("planner.drift")
        _bus.emit("planner.drift", assumed=drift["assumed"],
                  calibrated=drift["calibrated"],
                  factor=drift["factor"])
    kind = (record.get("diagnosis") or {}).get("kind", "ok")
    if kind != "ok":
        _metrics.inc("planner.misplans")
        _bus.emit("planner.misplan", route=record.get("route", "?"),
                  picked=picked_key,
                  oracle=str(realized.get("oracle", "?")),
                  regret=float(regret) if isinstance(
                      regret, (int, float)) else math.inf,
                  kind=kind)


def record_auto_route(plan, route: str, *, result=None, wall_s=None,
                      exact_plan=None, n=None, m=None, max_degree=None,
                      label: str | None = None, path=None) -> dict | None:
    """One-call audit of an auto-routed decision (the hook surface).

    Assembles, finishes, persists, and publishes one audit record;
    returns it, or ``None`` when auditing is disabled. Failures are
    contained: an audit-layer bug logs one structured WARNING and
    increments ``audit.errors`` instead of killing the routed run.
    """
    if not is_enabled():
        return None
    try:
        record = open_record(plan, route, n=n, m=m,
                             max_degree=max_degree, label=label)
        finish_record(record, result=result, wall_s=wall_s,
                      exact_plan=exact_plan)
        write_audit_record(record, path)
        _publish(record)
        return record
    except Exception as exc:  # pragma: no cover - defensive guard
        _metrics.inc("audit.errors")
        from repro.obs.logging import get_logger, log_event
        log_event(get_logger(__name__), logging.WARNING,
                  "audit record failed", route=route, error=str(exc))
        return None


# ------------------------------------------------------------- validation

#: Required top-level fields and their accepted types.
_REQUIRED_FIELDS = {
    "schema": (int,),
    "ts": (int, float),
    "pid": (int,),
    "route": (str,),
    "source": (str,),
    "speed_ratio": (int, float),
    "graph_class": (str,),
    "confidence": (int, float),
}

#: Required fields of the ``picked`` object.
_PICKED_FIELDS = {
    "method": (str,),
    "ordering": (str,),
    "family": (str,),
    "predicted_cost": (int, float),
    "predicted_time": (int, float),
}


def _check(errors, obj, field, kinds, where) -> None:
    value = obj.get(field)
    if not isinstance(value, kinds) or isinstance(value, bool):
        errors.append(f"{where}: field {field!r} should be "
                      f"{'/'.join(k.__name__ for k in kinds)}, "
                      f"got {value!r}")


def validate_audit_record(record) -> list[str]:
    """Schema errors of one audit record (empty list = valid)."""
    if not isinstance(record, dict):
        return [f"record is not an object: {record!r}"]
    errors: list[str] = []
    for field, kinds in _REQUIRED_FIELDS.items():
        _check(errors, record, field, kinds, "record")
    picked = record.get("picked")
    if not isinstance(picked, dict):
        errors.append(f"record: 'picked' should be an object, "
                      f"got {picked!r}")
    else:
        for field, kinds in _PICKED_FIELDS.items():
            _check(errors, picked, field, kinds, "picked")
    entries = record.get("entries")
    if not isinstance(entries, list) or not entries:
        errors.append("record: 'entries' should be a non-empty list")
    else:
        for i, row in enumerate(entries):
            if not isinstance(row, dict):
                errors.append(f"entries[{i}]: not an object")
                continue
            for field, kinds in (("method", (str,)),
                                 ("ordering", (str,)),
                                 ("cost", (int, float)),
                                 ("time", (int, float)),
                                 ("rank", (int,))):
                _check(errors, row, field, kinds, f"entries[{i}]")
    actual = record.get("actual")
    if actual is not None:
        if not isinstance(actual, dict):
            errors.append("record: 'actual' should be an object or null")
        else:
            for field in ("ops", "triangles"):
                _check(errors, actual, field, (int,), "actual")
    realized = record.get("realized")
    if realized is not None:
        if not isinstance(realized, dict):
            errors.append("record: 'realized' should be an object or "
                          "null")
        else:
            for field in ("regret", "oracle_time", "picked_time"):
                _check(errors, realized, field, (int, float), "realized")
            _check(errors, realized, "oracle", (str,), "realized")
    diagnosis = record.get("diagnosis")
    if not isinstance(diagnosis, dict) or \
            not isinstance(diagnosis.get("kind"), str):
        errors.append("record: 'diagnosis' should be an object with a "
                      "string 'kind'")
    return errors


def validate_audit_file(path=None) -> tuple[int, list[str]]:
    """Validate an audit JSONL file; ``(count, errors)``."""
    sink = audit_path(path)
    count = 0
    errors: list[str] = []
    with open(sink, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            count += 1
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"line {lineno}: not JSON ({exc})")
                continue
            errors.extend(f"line {lineno}: {e}"
                          for e in validate_audit_record(record))
    return count, errors


# -------------------------------------------------- conformance analyzer

def load_audit(path=None) -> list[dict]:
    """Parse every audit record (missing file = empty list).

    Mirrors :func:`repro.obs.records.load_records`: corrupted lines
    are skipped and counted, one structured WARNING summarizes them.
    """
    sink = audit_path(path)
    if not sink.exists():
        return []
    out: list[dict] = []
    skipped = 0
    first_bad: tuple[int, str] | None = None
    for lineno, line in enumerate(
            sink.read_text(encoding="utf-8").splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            data = str(exc)
        if not isinstance(data, dict):
            skipped += 1
            if first_bad is None:
                first_bad = (lineno, str(data))
            continue
        out.append(data)
    if skipped:
        _metrics.inc("audit.corrupted", skipped)
        from repro.obs.logging import get_logger, log_event
        log_event(get_logger(__name__), logging.WARNING,
                  "skipped corrupted audit lines", path=str(sink),
                  skipped=skipped, first_bad_line=first_bad[0],
                  detail=first_bad[1])
    return out


def prediction_ratio(record: dict) -> float | None:
    """The record's headline predicted/actual ops ratio.

    Prefers the measured ``ops`` ratio (model vs. the engine's real
    operation count); falls back to ``model_ops`` (model vs. exact
    re-pricing) for pure-pricing routes that never ran.
    """
    ratios = record.get("ratios") or {}
    for key in ("ops", "model_ops"):
        value = ratios.get(key)
        if isinstance(value, (int, float)) and value > 0 and \
                math.isfinite(value):
            return float(value)
    return None


def _percentile_or_none(values, q) -> float | None:
    if not values:
        return None
    return _metrics.percentile(sorted(values), q)


def conformance_rows(records) -> list[dict]:
    """Aggregate audit records per (method, ordering, graph class).

    Each row carries the sample count, the prediction-ratio
    distribution (median / p95 of predicted-over-actual ops), the
    calibration error (median ``|ratio - 1|`` -- 0 means the model
    prices this group perfectly), the time-unit scale, realized-regret
    stats, and the misplan count.
    """
    groups: dict[tuple, dict] = {}
    for rec in records:
        picked = rec.get("picked") or {}
        key = (str(picked.get("method")), str(picked.get("ordering")),
               str(rec.get("graph_class", "unknown")))
        g = groups.setdefault(key, {"count": 0, "misplans": 0,
                                    "ratios": [], "units": [],
                                    "regrets": []})
        g["count"] += 1
        ratio = prediction_ratio(rec)
        if ratio is not None:
            g["ratios"].append(ratio)
        unit = (rec.get("ratios") or {}).get("time_unit_ns")
        if isinstance(unit, (int, float)) and math.isfinite(unit):
            g["units"].append(float(unit))
        regret = (rec.get("realized") or {}).get("regret")
        if isinstance(regret, (int, float)) and math.isfinite(regret):
            g["regrets"].append(float(regret))
        if (rec.get("diagnosis") or {}).get("kind", "ok") != "ok":
            g["misplans"] += 1
    rows = []
    for (method, ordering, cls), g in groups.items():
        ratios = g["ratios"]
        rows.append({
            "method": method,
            "ordering": ordering,
            "graph_class": cls,
            "count": g["count"],
            "misplans": g["misplans"],
            "ratio_median": _percentile_or_none(ratios, 50),
            "ratio_p95": _percentile_or_none(ratios, 95),
            "calibration_error": _percentile_or_none(
                [abs(r - 1.0) for r in ratios], 50),
            "time_unit_ns": _percentile_or_none(g["units"], 50),
            "regret_median": _percentile_or_none(g["regrets"], 50),
            "regret_max": max(g["regrets"]) if g["regrets"] else None,
        })
    rows.sort(key=lambda r: (-r["count"], r["method"], r["ordering"],
                             r["graph_class"]))
    return rows


def misplan_rows(records,
                 threshold: float = MISPLAN_REGRET) -> list[dict]:
    """Every record whose pick misplanned, with its diagnosis.

    A record counts when its stored diagnosis is not ``ok`` or its
    realized regret exceeds ``threshold`` (callers can tighten or
    loosen the committed :data:`MISPLAN_REGRET` per query).
    """
    out = []
    for rec in records:
        realized = rec.get("realized") or {}
        regret = realized.get("regret")
        diagnosis = rec.get("diagnosis") or {}
        over = (isinstance(regret, (int, float))
                and regret > threshold)
        if diagnosis.get("kind", "ok") == "ok" and not over:
            continue
        picked = rec.get("picked") or {}
        out.append({
            "ts": rec.get("ts"),
            "route": rec.get("route"),
            "label": rec.get("label"),
            "graph_class": rec.get("graph_class"),
            "picked": f"{picked.get('method')}+{picked.get('ordering')}",
            "oracle": realized.get("oracle"),
            "regret": regret,
            "confidence": rec.get("confidence"),
            "kind": diagnosis.get("kind", "over_threshold"),
            "detail": diagnosis.get("detail", ""),
        })
    out.sort(key=lambda r: -(r["regret"]
                             if isinstance(r["regret"], (int, float))
                             and math.isfinite(r["regret"])
                             else math.inf if r["regret"] else 0.0))
    return out


def audit_summary(records) -> dict:
    """Headline numbers over an audit history."""
    regrets = [r.get("realized", {}).get("regret") for r in records
               if isinstance(r.get("realized"), dict)]
    finite = [float(r) for r in regrets
              if isinstance(r, (int, float)) and math.isfinite(r)]
    has_inf = any(isinstance(r, (int, float)) and math.isinf(r)
                  for r in regrets)
    ratios = [prediction_ratio(r) for r in records]
    ratios = [r for r in ratios if r is not None]
    misplans = sum(1 for r in records
                   if (r.get("diagnosis") or {}).get("kind", "ok")
                   != "ok")
    routes: dict[str, int] = {}
    for rec in records:
        route = str(rec.get("route", "?"))
        routes[route] = routes.get(route, 0) + 1
    return {
        "records": len(records),
        "routes": routes,
        "misplans": misplans,
        "median_regret": _percentile_or_none(finite, 50),
        "worst_regret": (math.inf if has_inf
                         else max(finite) if finite else None),
        "median_ratio": _percentile_or_none(ratios, 50),
        "calibration_error": _percentile_or_none(
            [abs(r - 1.0) for r in ratios], 50),
    }


# -------------------------------------------------------------- rendering

def _pct(value) -> str:
    if not isinstance(value, (int, float)):
        return "--"
    if math.isinf(value):
        return "inf"
    return f"{100 * value:.2f}%"


def _num(value, fmt="{:.3g}") -> str:
    if not isinstance(value, (int, float)):
        return "--"
    return fmt.format(value)


def format_summary(records) -> str:
    """Render :func:`audit_summary` + :func:`conformance_rows`."""
    summary = audit_summary(records)
    routes = ", ".join(f"{k}={v}"
                       for k, v in sorted(summary["routes"].items()))
    lines = [
        f"audit: {summary['records']} record(s) ({routes or 'none'}), "
        f"{summary['misplans']} misplan(s)",
        f"  realized regret: median {_pct(summary['median_regret'])}  "
        f"worst {_pct(summary['worst_regret'])}",
        f"  prediction ratio (predicted/actual ops): median "
        f"{_num(summary['median_ratio'])}  calibration error "
        f"{_pct(summary['calibration_error'])}",
        "",
        f"{'method':>7} {'ordering':>11} {'class':>12} {'n':>5} "
        f"{'ratio med':>10} {'ratio p95':>10} {'cal err':>8} "
        f"{'regret med':>11} {'misplans':>9}",
    ]
    for row in format_rows_limit(conformance_rows(records)):
        lines.append(
            f"{row['method']:>7} {row['ordering']:>11} "
            f"{row['graph_class']:>12} {row['count']:>5} "
            f"{_num(row['ratio_median']):>10} "
            f"{_num(row['ratio_p95']):>10} "
            f"{_pct(row['calibration_error']):>8} "
            f"{_pct(row['regret_median']):>11} {row['misplans']:>9}")
    return "\n".join(lines)


def format_rows_limit(rows, top: int = 40) -> list[dict]:
    """The top-``top`` conformance rows (summary table cap)."""
    return rows[:top]


def format_conformance(rows) -> str:
    """Render conformance rows alone (the ``--json``-less table)."""
    if not rows:
        return "no audit records"
    lines = [f"{'method':>7} {'ordering':>11} {'class':>12} {'n':>5} "
             f"{'ratio med':>10} {'cal err':>8} {'regret med':>11} "
             f"{'misplans':>9}"]
    for row in rows:
        lines.append(
            f"{row['method']:>7} {row['ordering']:>11} "
            f"{row['graph_class']:>12} {row['count']:>5} "
            f"{_num(row['ratio_median']):>10} "
            f"{_pct(row['calibration_error']):>8} "
            f"{_pct(row['regret_median']):>11} {row['misplans']:>9}")
    return "\n".join(lines)


def format_misplans(rows) -> str:
    """Render :func:`misplan_rows` as the aligned misplan table."""
    if not rows:
        return "no misplans recorded"
    lines = [f"{'route':>13} {'label':>12} {'picked':>16} "
             f"{'oracle':>16} {'regret':>8} {'conf':>6} "
             f"{'diagnosis':<18} detail"]
    for row in rows:
        lines.append(
            f"{str(row['route']):>13} {str(row['label'] or '--'):>12} "
            f"{row['picked']:>16} {str(row['oracle'] or '--'):>16} "
            f"{_pct(row['regret']):>8} "
            f"{_num(row['confidence'], '{:.2f}'):>6} "
            f"{row['kind']:<18} {row['detail']}")
    return "\n".join(lines)
