"""Memory observability: array ledger, footprint model, RAM budget.

The paper's cost metric *is* memory references (the AMRC model of
Definition 1), yet process RSS alone cannot say which arrays own the
bytes or whether a run's footprint matches what the CSR layout implies.
This module closes that gap with four pieces, all in the style of the
other :mod:`repro.obs` layers -- off by default, one module-global
check when disabled, and bit-identical results either way:

* an **array ledger**: large allocations (the ``OrientedGraph`` CSR
  blocks, the engine's uint32 mirrors and Bloom table, native kernel
  buffers, out-of-core partitions, compressed blobs) check in and out
  with a tag, dtype, byte count and owning span, giving exact current
  / peak attributed bytes per tag and per phase plus a ``mem.*``
  gauge/counter family;
* a **footprint conformance model**: predicted bytes for a ``(n, m,
  method, engine)`` from the dtype layout rules, compared audit-style
  against the ledger's actuals with a tolerance verdict
  (:func:`predict_footprint` / :func:`conformance_report`);
* **per-span allocation attribution**: the ``REPRO_TRACEMALLOC=K``
  knob (resolved by :func:`tracemalloc_top_k_from_env`, mirroring
  ``REPRO_PROFILE``) makes every top-level span close with its top-K
  allocation sites attached as ``span.alloc`` -- the hook itself lives
  in :mod:`repro.obs.spans`;
* a **RAM-budget watchdog**: ``REPRO_MEM_BUDGET=512M`` arms a
  :class:`BudgetWatchdog` inside the live resource sampler; it
  publishes ``mem.pressure`` / ``mem.breach`` bus events, warns once
  per breach, and (with ``REPRO_MEM_BUDGET_ABORT=1``) raises a flag
  the chunked engine and out-of-core drivers check so a run over
  budget stops gracefully with :class:`MemoryBudgetExceeded`.

The ledger switch resolves ``REPRO_MEM_LEDGER`` lazily on first use
(like ``REPRO_AUDIT``), so every entry point -- CLI, benchmarks, pool
workers under ``spawn`` -- honors the environment without wiring.
Read it back with ``repro mem summary|ledger|conformance``, the
dashboard's memory panel, the Chrome-trace memory counter track, or
``repro top``.
"""

from __future__ import annotations

import logging
import math
import os
import threading
import weakref

from repro.obs import bus as _bus
from repro.obs import metrics as _metrics
from repro.obs import spans as _spans

__all__ = [
    "BLOOM_BYTES",
    "BudgetWatchdog",
    "DEFAULT_ALLOC_TOP_K",
    "DEFAULT_TOLERANCE",
    "MEM_BUDGET_ABORT_ENV",
    "MEM_BUDGET_ENV",
    "MEM_LEDGER_ENV",
    "MemoryBudgetExceeded",
    "TRACEMALLOC_ENV",
    "abort_on_breach",
    "abort_requested",
    "attributed_bytes",
    "budget_bytes_from_env",
    "check_budget",
    "check_in",
    "check_out",
    "clear_abort",
    "conformance_report",
    "disable",
    "enable",
    "format_conformance",
    "format_ledger",
    "format_summary",
    "is_enabled",
    "ledger_rows",
    "ledger_summary",
    "parse_bytes",
    "peak_bytes",
    "predict_footprint",
    "request_abort",
    "reset",
    "top_allocations",
    "tracemalloc_top_k_from_env",
    "track",
]

#: Environment switch: truthy values turn the array ledger on.
MEM_LEDGER_ENV = "REPRO_MEM_LEDGER"

#: RAM budget for the watchdog (bytes; ``K``/``M``/``G`` suffixes ok).
MEM_BUDGET_ENV = "REPRO_MEM_BUDGET"

#: Truthy: a budget breach also raises the graceful-abort flag.
MEM_BUDGET_ABORT_ENV = "REPRO_MEM_BUDGET_ABORT"

#: Top-K allocation sites attached per top-level span (0 = off).
TRACEMALLOC_ENV = "REPRO_TRACEMALLOC"

#: Relative tolerance of the footprint conformance verdict.
DEFAULT_TOLERANCE = 0.10

#: ``REPRO_TRACEMALLOC=1`` means "on with the default top-K".
DEFAULT_ALLOC_TOP_K = 20

#: Engine Bloom table size; must equal
#: ``repro.engine.kernels._BLOOM_BYTES`` (pinned by tests -- this
#: module cannot import the engine without a cycle).
BLOOM_BYTES = 1 << 21

_TRUTHY = {"1", "true", "yes", "on"}
_FALSY = {"", "0", "false", "no", "off"}

#: ``None`` = not yet resolved from the environment (first
#: :func:`is_enabled` call reads ``REPRO_MEM_LEDGER`` exactly once).
_enabled: bool | None = None

_lock = threading.Lock()
_next_token = 0
_live: dict[int, dict] = {}
_by_tag: dict[str, dict] = {}
_by_span: dict[str, dict] = {}
_current_bytes = 0
_peak_bytes = 0

_abort_flag = False
_abort_reason = ""
_breaches = 0


class MemoryBudgetExceeded(RuntimeError):
    """A run crossed ``REPRO_MEM_BUDGET`` and graceful abort is armed."""


def enable() -> None:
    """Turn the array ledger on for this process."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn the array ledger off (the default)."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    """Whether allocations are being attributed.

    Resolves ``REPRO_MEM_LEDGER`` lazily on first call so any entry
    point honors the environment without explicit wiring; after that
    it is one global check -- the zero-overhead-off guarantee of the
    rest of :mod:`repro.obs`.
    """
    global _enabled
    if _enabled is None:
        _enabled = (os.environ.get(MEM_LEDGER_ENV, "").strip().lower()
                    in _TRUTHY)
    return _enabled


def reset() -> None:
    """Drop all ledger state and the breach/abort flags."""
    global _next_token, _current_bytes, _peak_bytes, _breaches
    global _abort_flag, _abort_reason
    with _lock:
        _next_token = 0
        _live.clear()
        _by_tag.clear()
        _by_span.clear()
        _current_bytes = 0
        _peak_bytes = 0
    _breaches = 0
    _abort_flag = False
    _abort_reason = ""


# -------------------------------------------------------------- the ledger

def _sizeof(obj) -> tuple[int, str | None]:
    """``(nbytes, dtype)`` of a ledger-able object."""
    nbytes = getattr(obj, "nbytes", None)
    if nbytes is not None:
        return int(nbytes), str(getattr(obj, "dtype", None) or "")
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj), "bytes"
    raise TypeError(f"cannot size {type(obj).__name__!r}; "
                    f"pass nbytes= explicitly")


def check_in(tag: str, obj=None, *, nbytes: int | None = None,
             dtype: str | None = None,
             span: str | None = None) -> int | None:
    """Register one allocation under ``tag``; returns a ledger token.

    ``obj`` may be a numpy array (nbytes/dtype derived) or any
    bytes-like; alternatively pass ``nbytes`` directly. The owning
    span is the innermost open span of this thread unless ``span``
    overrides it. Returns ``None`` (and does nothing) while the
    ledger is disabled -- the instrumented sites pay one global check.
    """
    global _next_token, _current_bytes, _peak_bytes
    if not is_enabled():
        return None
    if obj is not None and nbytes is None:
        nbytes, obj_dtype = _sizeof(obj)
        if dtype is None:
            dtype = obj_dtype
    nbytes = int(nbytes or 0)
    if span is None:
        open_span = _spans.current_span()
        span = open_span.name if open_span is not None else None
    owner = span or "-"
    with _lock:
        _next_token += 1
        token = _next_token
        _live[token] = {"tag": tag, "dtype": dtype or "",
                        "nbytes": nbytes, "span": owner}
        t = _by_tag.setdefault(tag, {"live_bytes": 0, "peak_bytes": 0,
                                     "total_bytes": 0, "checkins": 0,
                                     "checkouts": 0, "dtypes": set()})
        t["live_bytes"] += nbytes
        t["peak_bytes"] = max(t["peak_bytes"], t["live_bytes"])
        t["total_bytes"] += nbytes
        t["checkins"] += 1
        if dtype:
            t["dtypes"].add(dtype)
        p = _by_span.setdefault(owner, {"live_bytes": 0, "peak_bytes": 0})
        p["live_bytes"] += nbytes
        p["peak_bytes"] = max(p["peak_bytes"], p["live_bytes"])
        _current_bytes += nbytes
        _peak_bytes = max(_peak_bytes, _current_bytes)
        current, peak = _current_bytes, _peak_bytes
    _metrics.inc("mem.ledger.checkins")
    _metrics.set_gauge("mem.attributed_bytes", float(current))
    _metrics.set_gauge("mem.attributed_peak_bytes", float(peak))
    return token


def check_out(token: int | None) -> None:
    """Release a prior :func:`check_in`; ``None`` tokens are ignored."""
    global _current_bytes
    if token is None:
        return
    with _lock:
        entry = _live.pop(token, None)
        if entry is None:
            return
        nbytes = entry["nbytes"]
        t = _by_tag.get(entry["tag"])
        if t is not None:
            t["live_bytes"] -= nbytes
            t["checkouts"] += 1
        p = _by_span.get(entry["span"])
        if p is not None:
            p["live_bytes"] -= nbytes
        _current_bytes -= nbytes
        current = _current_bytes
    _metrics.inc("mem.ledger.checkouts")
    _metrics.set_gauge("mem.attributed_bytes", float(current))


def _release_tokens(tokens: tuple) -> None:
    for token in tokens:
        check_out(token)


def track(owner, tag: str, arrays, *,
          span: str | None = None) -> tuple:
    """Check several arrays in under one tag, tied to ``owner``'s life.

    The returned tokens are checked out automatically when ``owner``
    is garbage-collected (a ``weakref.finalize``), so long-lived
    holders -- graphs, engine caches -- need no explicit release.
    Disabled: one :func:`is_enabled` check, nothing else.
    """
    if not is_enabled():
        return ()
    tokens = tuple(t for t in (check_in(tag, a, span=span)
                               for a in arrays) if t is not None)
    if tokens and owner is not None:
        try:
            weakref.finalize(owner, _release_tokens, tokens)
        except TypeError:  # pragma: no cover - non-weakrefable owner
            pass
    return tokens


def attributed_bytes() -> int:
    """Bytes currently checked in across all tags."""
    return _current_bytes


def peak_bytes() -> int:
    """Highest attributed total observed since the last reset."""
    return _peak_bytes


def ledger_rows() -> list[dict]:
    """Per-tag ledger table, largest peak first."""
    with _lock:
        rows = [{"tag": tag,
                 "live_bytes": t["live_bytes"],
                 "peak_bytes": t["peak_bytes"],
                 "total_bytes": t["total_bytes"],
                 "checkins": t["checkins"],
                 "checkouts": t["checkouts"],
                 "dtypes": ",".join(sorted(t["dtypes"]))}
                for tag, t in _by_tag.items()]
    rows.sort(key=lambda r: (-r["peak_bytes"], r["tag"]))
    return rows


def ledger_summary() -> dict:
    """JSON-ready snapshot of the whole ledger (rides run records)."""
    with _lock:
        spans = {name: dict(p) for name, p in _by_span.items()}
    return {
        "enabled": is_enabled(),
        "current_bytes": _current_bytes,
        "peak_bytes": _peak_bytes,
        "live_entries": len(_live),
        "tags": ledger_rows(),
        "spans": spans,
        "budget_bytes": budget_bytes_from_env(),
        "breaches": _breaches,
        "abort_requested": _abort_flag,
    }


# ------------------------------------------------- footprint conformance

#: Methods whose candidate windows force the lazy in-key array
#: (``in_lt`` / ``in_gt`` in ``repro.engine.kernels._KERNELS``).
_IN_KEY_METHODS = frozenset({"E4", "E5", "L4", "L5"})


def predict_footprint(n: int, m: int, *, method: str | None = None,
                      engine: str = "numpy") -> dict:
    """Predicted bytes per ledger tag from the dtype layout rules.

    The rules transcribe the actual allocations:

    * ``graph.csr`` -- two int64 index arrays (``m`` each) plus two
      int64 indptr arrays (``n + 1`` each);
    * ``graph.degrees`` -- three int64 degree arrays (out/in/total);
    * ``graph.keys`` -- the lazy sorted edge-key arrays: the out-keys
      always materialize under the numpy engine (the Bloom confirm
      pass binary-searches them); the in-keys only for methods with
      ``searchsorted``-bounded in-windows (E4/E5/L4/L5);
    * ``engine.cache`` -- four uint32 CSR mirrors (``m`` each);
    * ``engine.bloom`` -- the fixed :data:`BLOOM_BYTES` bit table.

    ``engine="python"`` predicts only the graph-side tags (the pure
    loops allocate no engine arrays).
    """
    n = int(n)
    m = int(m)
    components = {
        "graph.csr": 8 * (2 * m + 2 * (n + 1)),
        "graph.degrees": 8 * 3 * n,
    }
    if engine == "numpy":
        keys = 8 * m
        if method is not None and method.upper() in _IN_KEY_METHODS:
            keys += 8 * m
        components["graph.keys"] = keys
        components["engine.cache"] = 4 * 4 * m
        components["engine.bloom"] = BLOOM_BYTES
    return {"n": n, "m": m, "method": method, "engine": engine,
            "components": components,
            "total_bytes": sum(components.values())}


def conformance_report(n: int, m: int, *, method: str | None = None,
                       engine: str = "numpy",
                       tolerance: float = DEFAULT_TOLERANCE,
                       rows: list[dict] | None = None) -> dict:
    """Audit-style predicted-vs-attributed verdict over the ledger.

    ``rows`` defaults to the live :func:`ledger_rows`. Every predicted
    tag contributes (missing actuals count as 0 -- an unobserved
    component is a conformance failure, not a free pass); ledger tags
    the model does not price are listed under ``unmodeled`` and never
    gate the verdict. The verdict passes when the attributed total is
    within ``tolerance`` of the predicted total.
    """
    predicted = predict_footprint(n, m, method=method, engine=engine)
    if rows is None:
        rows = ledger_rows()
    actual_by_tag = {r["tag"]: r for r in rows}
    table = []
    predicted_total = 0
    actual_total = 0
    for tag, pred in sorted(predicted["components"].items()):
        actual = int(actual_by_tag.get(tag, {}).get("peak_bytes", 0))
        predicted_total += pred
        actual_total += actual
        ratio = actual / pred if pred else math.inf
        table.append({"tag": tag, "predicted_bytes": pred,
                      "actual_bytes": actual, "ratio": ratio,
                      "within": abs(ratio - 1.0) <= tolerance})
    unmodeled = [{"tag": r["tag"], "peak_bytes": r["peak_bytes"]}
                 for r in rows
                 if r["tag"] not in predicted["components"]]
    ratio = (actual_total / predicted_total if predicted_total
             else math.inf)
    return {
        "n": predicted["n"], "m": predicted["m"],
        "method": method, "engine": engine,
        "tolerance": float(tolerance),
        "predicted_bytes": predicted_total,
        "actual_bytes": actual_total,
        "ratio": ratio,
        "verdict": ("pass" if abs(ratio - 1.0) <= tolerance
                    else "fail"),
        "components": table,
        "unmodeled": unmodeled,
    }


# ------------------------------------------------------ budget watchdog

def parse_bytes(text: str) -> int:
    """Parse ``"512M"`` / ``"2G"`` / ``"1048576"`` into bytes.

    Decimal suffixes ``K``/``M``/``G``/``T`` are binary multiples
    (KiB, MiB, ...), optionally with a trailing ``B``/``iB``; empty,
    falsy or unparsable input is 0 (budget off).
    """
    raw = (text or "").strip().lower()
    if raw in _FALSY:
        return 0
    for tail in ("ib", "b"):
        if raw.endswith(tail) and not raw[:-len(tail)][-1:].isdigit():
            raw = raw[:-len(tail)]
            break
        if raw.endswith("b") and raw[:-1][-1:].isdigit():
            raw = raw[:-1]
            break
    scale = 1
    if raw[-1:] in "kmgt":
        scale = 1024 ** (1 + "kmgt".index(raw[-1]))
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError:
        return 0
    return max(0, int(value * scale))


def budget_bytes_from_env() -> int:
    """The ``REPRO_MEM_BUDGET`` budget in bytes (0 = disarmed)."""
    return parse_bytes(os.environ.get(MEM_BUDGET_ENV, ""))


def abort_on_breach() -> bool:
    """Whether a breach should raise the graceful-abort flag."""
    return (os.environ.get(MEM_BUDGET_ABORT_ENV, "").strip().lower()
            in _TRUTHY)


def request_abort(reason: str) -> None:
    """Raise the abort flag the chunked drivers poll."""
    global _abort_flag, _abort_reason
    _abort_reason = reason
    _abort_flag = True


def clear_abort() -> None:
    """Lower the abort flag (after a handled breach)."""
    global _abort_flag, _abort_reason
    _abort_flag = False
    _abort_reason = ""


def abort_requested() -> bool:
    """Whether a graceful abort has been requested."""
    return _abort_flag


def check_budget(context: str = "") -> None:
    """Raise :class:`MemoryBudgetExceeded` if an abort is pending.

    The poll the chunked engine loop and the out-of-core partition
    loops run between batches: one module-global check when nothing
    is armed, a clean typed exception (instead of the OOM killer)
    when the watchdog tripped.
    """
    if _abort_flag:
        where = f" in {context}" if context else ""
        raise MemoryBudgetExceeded(
            f"memory budget exceeded{where}: {_abort_reason}")


class BudgetWatchdog:
    """RAM-budget state machine fed by resource samples.

    ``observe(rss_bytes)`` publishes a ``mem.pressure`` event per
    sample while armed; the first sample over budget additionally
    publishes ``mem.breach``, logs one structured WARNING, bumps the
    ``mem.breaches`` counter and -- when :func:`abort_on_breach` --
    raises the graceful-abort flag. The breach latch re-arms once RSS
    falls back under 95% of the budget, so a run oscillating around
    the limit warns once per excursion, not once per sample.
    """

    def __init__(self, budget_bytes: int | None = None):
        self.budget_bytes = (budget_bytes if budget_bytes is not None
                             else budget_bytes_from_env())
        self._breached = False

    @property
    def armed(self) -> bool:
        return self.budget_bytes > 0

    def observe(self, rss_bytes: int) -> None:
        """Feed one RSS sample through the pressure/breach machine."""
        global _breaches
        budget = self.budget_bytes
        if budget <= 0:
            return
        rss_bytes = int(rss_bytes)
        frac = rss_bytes / budget
        _metrics.set_gauge("mem.budget_bytes", float(budget))
        _metrics.set_gauge("mem.pressure", frac)
        fields = {"rss_bytes": rss_bytes, "budget_bytes": budget,
                  "frac": frac}
        if is_enabled():
            fields["attributed_bytes"] = attributed_bytes()
        _bus.emit("mem.pressure", **fields)
        if rss_bytes > budget:
            if not self._breached:
                self._breached = True
                _breaches += 1
                _metrics.inc("mem.breaches")
                action = "abort" if abort_on_breach() else "warn"
                _bus.emit("mem.breach", rss_bytes=rss_bytes,
                          budget_bytes=budget,
                          overshoot_bytes=rss_bytes - budget,
                          action=action)
                from repro.obs.logging import get_logger, log_event
                log_event(get_logger(__name__), logging.WARNING,
                          "memory budget breached",
                          rss_bytes=rss_bytes, budget_bytes=budget,
                          overshoot_bytes=rss_bytes - budget,
                          action=action)
                if action == "abort":
                    request_abort(
                        f"rss {rss_bytes} > budget {budget} bytes")
        elif rss_bytes <= 0.95 * budget:
            self._breached = False


# ------------------------------------------- per-span alloc attribution

def tracemalloc_top_k_from_env() -> int:
    """Resolve ``REPRO_TRACEMALLOC`` into a top-K site count.

    Mirrors :func:`repro.obs.profiling.profile_top_k_from_env`:
    unset/falsy -> 0 (off), a bare truthy word -> the default top-K,
    an integer -> that K, unparsable -> 0.
    """
    raw = os.environ.get(TRACEMALLOC_ENV, "").strip().lower()
    if raw in _FALSY:
        return 0
    if raw in _TRUTHY:
        return DEFAULT_ALLOC_TOP_K
    try:
        return max(0, int(raw))
    except ValueError:
        return 0


def top_allocations(before, after, top_k: int) -> list[dict]:
    """Top-K net-allocating source lines between two snapshots.

    ``before``/``after`` are :func:`tracemalloc.take_snapshot`
    results; the diff is by ``lineno`` and ordered by net size
    descending (sites that freed more than they allocated rank last
    and are dropped once K positive sites exist).
    """
    stats = after.compare_to(before, "lineno")
    stats.sort(key=lambda s: -s.size_diff)
    out = []
    for stat in stats[:max(0, int(top_k))]:
        frame = stat.traceback[0] if len(stat.traceback) else None
        out.append({
            "file": frame.filename if frame else "?",
            "line": frame.lineno if frame else 0,
            "size_bytes": int(stat.size_diff),
            "count": int(stat.count_diff),
        })
    return out


# -------------------------------------------------------------- rendering

def _fmt_bytes(value) -> str:
    if not isinstance(value, (int, float)):
        return "--"
    value = float(value)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            return (f"{value:.0f} {unit}" if unit == "B"
                    else f"{value:.1f} {unit}")
        value /= 1024.0
    return "--"  # pragma: no cover - unreachable


def format_ledger(rows: list[dict]) -> str:
    """Render :func:`ledger_rows` as an aligned per-tag table."""
    if not rows:
        return "ledger empty (is REPRO_MEM_LEDGER=1 set?)"
    lines = [f"{'tag':<18} {'live':>10} {'peak':>10} {'total':>10} "
             f"{'in':>4} {'out':>4} dtypes"]
    for row in rows:
        lines.append(
            f"{row['tag']:<18} {_fmt_bytes(row['live_bytes']):>10} "
            f"{_fmt_bytes(row['peak_bytes']):>10} "
            f"{_fmt_bytes(row['total_bytes']):>10} "
            f"{row['checkins']:>4} {row['checkouts']:>4} "
            f"{row['dtypes']}")
    return "\n".join(lines)


def format_conformance(report: dict) -> str:
    """Render :func:`conformance_report` as the verdict table."""
    head = (f"footprint conformance: {report['verdict'].upper()}  "
            f"(n={report['n']} m={report['m']} "
            f"method={report['method'] or '-'} "
            f"engine={report['engine']})")
    lines = [
        head,
        f"  predicted {_fmt_bytes(report['predicted_bytes'])}  "
        f"attributed {_fmt_bytes(report['actual_bytes'])}  "
        f"ratio {report['ratio']:.3f}  "
        f"tolerance ±{100 * report['tolerance']:.0f}%",
        "",
        f"{'tag':<18} {'predicted':>12} {'attributed':>12} "
        f"{'ratio':>7} within",
    ]
    for row in report["components"]:
        ratio = (f"{row['ratio']:.3f}"
                 if math.isfinite(row["ratio"]) else "inf")
        lines.append(
            f"{row['tag']:<18} "
            f"{_fmt_bytes(row['predicted_bytes']):>12} "
            f"{_fmt_bytes(row['actual_bytes']):>12} "
            f"{ratio:>7} {'yes' if row['within'] else 'NO'}")
    for row in report["unmodeled"]:
        lines.append(f"{row['tag']:<18} {'--':>12} "
                     f"{_fmt_bytes(row['peak_bytes']):>12} "
                     f"{'--':>7} unmodeled")
    return "\n".join(lines)


def format_summary(summary: dict, report: dict | None = None) -> str:
    """Headline memory text: attributed totals, budget, verdict."""
    budget = summary.get("budget_bytes") or 0
    budget_text = (f"{_fmt_bytes(budget)} "
                   f"({summary.get('breaches', 0)} breach(es))"
                   if budget else "off")
    lines = [
        f"memory: attributed {_fmt_bytes(summary['current_bytes'])} "
        f"live / {_fmt_bytes(summary['peak_bytes'])} peak across "
        f"{len(summary['tags'])} tag(s), budget {budget_text}",
    ]
    for row in summary["tags"][:8]:
        lines.append(f"  {row['tag']:<18} peak "
                     f"{_fmt_bytes(row['peak_bytes']):>10}  "
                     f"live {_fmt_bytes(row['live_bytes']):>10}")
    if report is not None:
        lines.append(
            f"  conformance: {report['verdict']} "
            f"(ratio {report['ratio']:.3f}, "
            f"±{100 * report['tolerance']:.0f}%)")
    return "\n".join(lines)
