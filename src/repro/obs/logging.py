"""Structured stdlib-logging setup with the ``REPRO_LOG`` env knob.

The library logs under the ``repro`` logger hierarchy. Nothing is
printed unless the embedding application configures logging *or* the
environment variable ``REPRO_LOG`` names a level (``debug``, ``info``,
``warning``, ``error``, ``critical``) -- then :func:`setup` attaches a
stderr handler with a structured ``key=value`` formatter.

Emit structured events with :func:`log_event`::

    log_event(logger, logging.WARNING, "model-simulation divergence",
              method="T1", n=10_000, relative_error=0.31)

which renders as::

    12:00:01 WARNING repro.experiments.harness: model-simulation \
divergence method=T1 n=10000 relative_error=0.31
"""

from __future__ import annotations

import logging
import os
import sys

__all__ = [
    "ROOT_LOGGER",
    "StructuredFormatter",
    "get_logger",
    "log_event",
    "setup",
]

ROOT_LOGGER = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "warn": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}

_configured = False


class StructuredFormatter(logging.Formatter):
    """``time LEVEL logger: message key=value ...`` single-line records."""

    def format(self, record: logging.LogRecord) -> str:
        """Render the record, appending ``record.fields`` as key=value."""
        base = (f"{self.formatTime(record, '%H:%M:%S')} "
                f"{record.levelname:<7} {record.name}: "
                f"{record.getMessage()}")
        fields = getattr(record, "fields", None)
        if fields:
            base += " " + " ".join(
                f"{key}={_format_value(value)}"
                for key, value in fields.items())
        if record.exc_info:
            base += "\n" + self.formatException(record.exc_info)
        return base


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    return repr(text) if " " in text else text


def setup(level: int | str | None = None, stream=None,
          force: bool = False) -> logging.Logger:
    """Configure the ``repro`` logger once; returns it.

    ``level`` overrides the ``REPRO_LOG`` environment variable; with
    neither present the level is WARNING (so the harness divergence
    warnings surface by default while progress logs stay silent).
    Re-invoking is a no-op unless ``force=True``.
    """
    global _configured
    logger = logging.getLogger(ROOT_LOGGER)
    if _configured and not force:
        return logger
    if level is None:
        env = os.environ.get("REPRO_LOG", "").strip().lower()
        level = _LEVELS.get(env, logging.WARNING)
    elif isinstance(level, str):
        level = _LEVELS.get(level.strip().lower(), logging.WARNING)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(StructuredFormatter())
    handler.set_name("repro-obs")
    logger.handlers = [h for h in logger.handlers
                       if h.get_name() != "repro-obs"]
    logger.addHandler(handler)
    logger.setLevel(level)
    _configured = True
    return logger


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy, configuring it lazily."""
    setup()
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if not name.startswith(ROOT_LOGGER):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


def log_event(logger: logging.Logger, level: int, event: str,
              **fields) -> None:
    """Log ``event`` with structured ``key=value`` fields attached."""
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={"fields": fields})
