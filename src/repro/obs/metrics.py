"""Process-local registry of named counters, gauges, and histograms.

The instrumented listers, orienter, generators, and harness *publish*
into this registry (``lister.ops``, ``orient.edges_flipped``,
``generator.rejections``, ...) in addition to returning their counters
via :class:`~repro.listing.base.ListingResult` -- so a whole benchmark
run can be summarized without threading result objects through every
layer.

Like :mod:`repro.obs.spans`, publication is disabled by default and the
disabled path is one module-global check (:func:`inc` & friends return
immediately), keeping the hot paths bit-identical in behavior and
essentially free of overhead. All registry operations are thread-safe.
"""

from __future__ import annotations

import random
import threading

__all__ = [
    "Histogram",
    "MAX_SAMPLES",
    "RESERVOIR_SEED",
    "MetricsRegistry",
    "percentile",
    "counter",
    "disable",
    "enable",
    "inc",
    "is_enabled",
    "merge_counters",
    "observe",
    "prometheus",
    "registry",
    "reset",
    "set_gauge",
    "snapshot",
]

_enabled = False


#: Per-histogram sample cap: beyond this, percentiles come from a
#: uniform reservoir of MAX_SAMPLES observations (count/sum/min/max
#: stay exact).
MAX_SAMPLES = 8192

#: Deterministic seed of every histogram's reservoir RNG: identical
#: observation streams yield identical p50/p95/p99 in trend rows and
#: audit aggregates, run after run.
RESERVOIR_SEED = 2017


def percentile(ordered, q: float) -> float:
    """Linear-interpolated percentile of an already-sorted sequence."""
    if not ordered:
        raise ValueError("percentile of empty sequence")
    if len(ordered) == 1:
        return float(ordered[0])
    pos = (len(ordered) - 1) * (q / 100.0)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return float(ordered[lo]) * (1.0 - frac) + float(ordered[hi]) * frac


class Histogram:
    """Summary of observed values: count/sum/min/max/mean + percentiles.

    Keeps a uniform random sample of the observations (up to
    :data:`MAX_SAMPLES`, Vitter's Algorithm R) so the snapshot can
    report p50/p95/p99 that remain representative past the cap -- a
    first-N sample would freeze the percentiles on the warm-up phase
    of a long run. The reservoir RNG is seeded deterministically
    (:data:`RESERVOIR_SEED`), so identical observation streams produce
    identical percentiles; ``count``/``sum``/``min``/``max`` are exact
    streaming fields regardless.
    """

    __slots__ = ("count", "total", "min", "max", "samples", "_rng")

    def __init__(self, seed: int = RESERVOIR_SEED):
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.samples: list[float] = []
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        """Fold one observation into the streaming summary."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self.samples) < MAX_SAMPLES:
            self.samples.append(value)
        else:
            # Algorithm R: observation i replaces a reservoir slot
            # with probability MAX_SAMPLES / i, keeping the sample
            # uniform over everything seen so far.
            j = self._rng.randrange(self.count)
            if j < MAX_SAMPLES:
                self.samples[j] = value

    def summary(self) -> dict:
        """JSON-ready summary; empty histograms report ``count = 0``."""
        if self.count == 0:
            return {"count": 0}
        out = {"count": self.count, "sum": self.total,
               "min": self.min, "max": self.max,
               "mean": self.total / self.count}
        ordered = sorted(self.samples)
        if ordered:
            out["p50"] = percentile(ordered, 50)
            out["p95"] = percentile(ordered, 95)
            out["p99"] = percentile(ordered, 99)
        return out


class MetricsRegistry:
    """Thread-safe map of counters, gauges, and histograms."""

    def __init__(self):
        self._lock = threading.RLock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest ``value``."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the histogram ``name``."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    def counter(self, name: str) -> float:
        """Current value of a counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def merge_counters(self, counters: dict) -> None:
        """Fold a ``{name: value}`` mapping into the counters.

        This is how worker-process metric snapshots are aggregated
        back into the parent registry after a parallel fan-out.
        """
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + value

    def snapshot(self) -> dict:
        """JSON-ready snapshot of every metric."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {name: h.summary()
                               for name, h in self._histograms.items()},
            }

    def reset(self) -> None:
        """Drop every metric."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry instance."""
    return _registry


def enable() -> None:
    """Turn metric publication on."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn metric publication off (existing values are kept)."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    """Whether :func:`inc`/:func:`set_gauge`/:func:`observe` publish."""
    return _enabled


def inc(name: str, value: float = 1) -> None:
    """Increment a counter -- no-op while publication is disabled."""
    if not _enabled:
        return
    _registry.inc(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge -- no-op while publication is disabled."""
    if not _enabled:
        return
    _registry.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Observe into a histogram -- no-op while publication is disabled."""
    if not _enabled:
        return
    _registry.observe(name, value)


def merge_counters(counters: dict) -> None:
    """Merge worker counters -- no-op while publication is disabled."""
    if not _enabled:
        return
    _registry.merge_counters(counters)


def counter(name: str) -> float:
    """Current value of a counter (works regardless of the flag)."""
    return _registry.counter(name)


def snapshot() -> dict:
    """Snapshot the registry (works regardless of the enabled flag)."""
    return _registry.snapshot()


def prometheus() -> str:
    """Registry snapshot in Prometheus text exposition format.

    The scrape surface of ``repro serve-metrics``; rendering lives in
    :func:`repro.obs.live.render_prometheus` (lazy import -- the
    registry stays dependency-free).
    """
    from repro.obs.live import render_prometheus
    return render_prometheus(snapshot())


def reset() -> None:
    """Clear the registry (works regardless of the enabled flag)."""
    _registry.reset()
