"""Query and aggregation over the JSONL run history.

:mod:`repro.obs.records` made every benchmark append one JSON line to
``runs.jsonl``; this module is the read side. It turns a list of
:class:`~repro.obs.records.RunRecord` objects into *measurement cells*
-- per-phase wall-clock totals, metric counters/gauges, and the
sim-vs-model rows the simulation tables embed in their config -- and
aggregates repeated runs of the same benchmark with robust statistics
(median + MAD, not mean, so one noisy repeat cannot shift a baseline).

Cell keys are strings that name what was measured within one record::

    phase:list                 wall-clock total of the ``list`` spans
    counters                   the metric-counter snapshot
    gauges                     the metric-gauge snapshot
    cell:T1+D/n=1000           one sim-vs-model table cell
    method:E1/engine=numpy     one engine-throughput bench cell

and each cell holds ``{metric_name: value}``. Metric *kind* is inferred
from the name (:func:`metric_kind`): wall-clock metrics tolerate noise,
counter/value metrics are expected to be deterministic for a fixed
seed, and ``error`` metrics compare by absolute model-vs-simulation
divergence. :mod:`repro.obs.baselines` builds on these cells to
classify runs as improved / unchanged / regressed.
"""

from __future__ import annotations

import fnmatch
import math

__all__ = [
    "aggregate",
    "divergence_rows",
    "filter_records",
    "format_divergence",
    "format_trends",
    "mad",
    "median",
    "metric_kind",
    "record_cells",
    "record_wall_ms",
    "summarize_values",
    "trend_rows",
]

#: Metric-name suffixes that mark a wall-clock (noisy) measurement.
_TIME_SUFFIXES = ("wall_ms", "_ms", "_ns", "ns_per_edge", "_seconds")


def median(values) -> float:
    """Median of a non-empty sequence (no numpy needed)."""
    ordered = sorted(float(v) for v in values)
    if not ordered:
        raise ValueError("median of empty sequence")
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values, center: float | None = None) -> float:
    """Median absolute deviation around ``center`` (default: median)."""
    values = [float(v) for v in values]
    if center is None:
        center = median(values)
    return median(abs(v - center) for v in values)


def summarize_values(values) -> dict:
    """Robust summary of repeated measurements of one metric."""
    values = [float(v) for v in values]
    med = median(values)
    return {"median": med, "mad": mad(values, med), "count": len(values),
            "min": min(values), "max": max(values)}


def metric_kind(name: str) -> str:
    """``"time"``, ``"error"`` or ``"value"`` -- how to compare it.

    * ``time``   -- wall-clock; noisy, compared with a relative band.
    * ``error``  -- model-vs-simulation relative error; compared by
      absolute magnitude (drifting toward 0 is an improvement).
    * ``value``  -- everything else (counters, gauges, sim/model
      costs); deterministic for a fixed seed, so *any* drift beyond a
      tiny tolerance is a semantic change.
    """
    if name.endswith(_TIME_SUFFIXES) or name == "time":
        return "time"
    if name == "error" or name.endswith((".error", "_error")):
        return "error"
    if name == "regret" or name.endswith((".regret", "_regret")):
        # planner-vs-oracle regret: like model error, compared by
        # absolute magnitude -- drifting toward 0 is an improvement
        return "error"
    return "value"


def record_wall_ms(record) -> float:
    """Total wall-clock of a record's root spans, in milliseconds."""
    return sum(int(s.get("duration_ns", 0)) for s in record.spans) / 1e6


def record_cells(record) -> dict[str, dict[str, float]]:
    """Extract every measurement cell of one run record.

    Returns ``{cell_key: {metric: value}}`` (see the module docstring
    for the key grammar). Non-numeric values are dropped.
    """
    cells: dict[str, dict[str, float]] = {}
    for phase, ns in record.phase_totals().items():
        cells[f"phase:{phase}"] = {"wall_ms": ns / 1e6}
    counters = _numeric(record.metrics.get("counters"))
    if counters:
        cells["counters"] = counters
    gauges = _numeric(record.metrics.get("gauges"))
    if gauges:
        cells["gauges"] = gauges
    for row in record.config.get("rows") or ():
        if not isinstance(row, dict) or not isinstance(
                row.get("n"), (int, float)):
            continue  # the table's n="inf" limit row carries no sim
        key = f"cell:{row.get('label', '?')}/n={int(row['n'])}"
        cells[key] = _numeric({k: row.get(k)
                               for k in ("sim", "model", "error")})
    for row in record.config.get("regret_rows") or ():
        if not isinstance(row, dict) or "label" not in row:
            continue
        # planner-vs-oracle rows (repro.planner.regret): the oracle
        # time and pick-agreement are deterministic values, the regret
        # compares like a model error. Infinite regret (the oracle
        # found a zero-cost candidate) is dropped by _numeric, which
        # is right: only the finite cells can regress meaningfully.
        cells[f"case:{row['label']}"] = _numeric(
            {k: row.get(k)
             for k in ("planner_time", "oracle_time", "regret",
                       "agree")})
    methods = record.config.get("methods")
    if isinstance(methods, dict):
        for name, vals in methods.items():
            if isinstance(vals, dict):
                # "speedup" is a derived higher-is-better ratio of the
                # two ns/edge metrics already tracked; comparing it
                # with either polarity convention would misclassify.
                metrics = _numeric({k: v for k, v in vals.items()
                                    if "speedup" not in k})
                if metrics:
                    cells[f"method:{name}"] = metrics
    return cells


def _numeric(mapping) -> dict[str, float]:
    out = {}
    for key, value in (mapping or {}).items():
        if isinstance(value, bool):
            out[str(key)] = float(value)
        elif isinstance(value, (int, float)) and math.isfinite(value):
            out[str(key)] = float(value)
    return out


def filter_records(records, names=None, git_rev: str | None = None,
                   config: dict | None = None,
                   last: int | None = None) -> list:
    """Select records by name pattern, git revision, and config values.

    ``names`` is a list of ``fnmatch`` patterns (``table*``); ``config``
    matches ``str(record.config[key]) == str(value)`` per entry;
    ``last`` keeps only the most recent ``last`` records *per name*
    (file order, which is append order).
    """
    out = []
    for rec in records:
        if names and not any(fnmatch.fnmatch(rec.name, p)
                             for p in names):
            continue
        if git_rev and rec.meta.get("git_rev") != git_rev:
            continue
        if config and any(str(rec.config.get(k)) != str(v)
                          for k, v in config.items()):
            continue
        out.append(rec)
    if last is not None and last > 0:
        keep: dict[str, list] = {}
        for rec in out:
            keep.setdefault(rec.name, []).append(rec)
        chosen = {id(r) for tail in keep.values() for r in tail[-last:]}
        out = [r for r in out if id(r) in chosen]
    return out


def aggregate(records) -> dict[str, dict[str, dict[str, dict]]]:
    """Aggregate repeats: ``{name: {cell: {metric: summary}}}``.

    Records sharing a ``name`` are treated as repeats of the same
    benchmark; every (cell, metric) they report is summarized with
    :func:`summarize_values` (median + MAD).
    """
    samples: dict[str, dict[str, dict[str, list]]] = {}
    for rec in records:
        by_cell = samples.setdefault(rec.name, {})
        for cell, metrics in record_cells(rec).items():
            by_metric = by_cell.setdefault(cell, {})
            for metric, value in metrics.items():
                by_metric.setdefault(metric, []).append(value)
    return {
        name: {cell: {metric: summarize_values(vals)
                      for metric, vals in metrics.items()}
               for cell, metrics in cells.items()}
        for name, cells in samples.items()
    }


# ---------------------------------------------------------------- trends

#: Headline counters shown by the trends table when present.
_TREND_COUNTERS = ("lister.ops", "lister.triangles", "harness.instances",
                   "harness.divergent_cells")

#: Histograms whose tail percentiles ride along in trend rows (the
#: worker task-time distribution is the scheduler-health headline).
_TREND_HISTOGRAMS = ("parallel.task_ms",)

#: Percentile keys surfaced from histogram snapshots.
_TREND_QUANTILES = ("p50", "p95", "p99")


def trend_rows(records) -> list[dict]:
    """Per (name, git_rev) trajectory rows, chronological per name.

    Each row summarizes the repeats of one benchmark at one revision:
    median/MAD total wall-clock plus the headline counters.
    """
    groups: dict[tuple, dict] = {}
    for rec in records:
        key = (rec.name, rec.meta.get("git_rev") or "?")
        group = groups.setdefault(key, {"records": [], "first_ts": None})
        group["records"].append(rec)
        ts = rec.meta.get("timestamp_unix")
        if isinstance(ts, (int, float)) and (
                group["first_ts"] is None or ts < group["first_ts"]):
            group["first_ts"] = ts
    rows = []
    for (name, rev), group in groups.items():
        recs = group["records"]
        walls = [record_wall_ms(r) for r in recs]
        hosts = sorted({label for label in (
            _host_label(r.meta.get("host")) for r in recs) if label})
        counters: dict[str, float] = {}
        for metric in _TREND_COUNTERS:
            vals = [r.metrics.get("counters", {}).get(metric)
                    for r in recs]
            vals = [float(v) for v in vals if v is not None]
            if vals:
                counters[metric] = median(vals)
        quantiles: dict[str, dict[str, float]] = {}
        for metric in _TREND_HISTOGRAMS:
            per_q: dict[str, list] = {}
            for rec in recs:
                summary = (rec.metrics.get("histograms", {})
                           .get(metric) or {})
                for q in _TREND_QUANTILES:
                    if isinstance(summary.get(q), (int, float)):
                        per_q.setdefault(q, []).append(summary[q])
            if per_q:
                quantiles[metric] = {q: median(vals)
                                     for q, vals in per_q.items()}
        auto_method, auto_routes, auto_confidence = _auto_summary(recs)
        rows.append({
            "name": name, "git_rev": rev, "runs": len(recs),
            "first_ts": group["first_ts"],
            "wall_ms": summarize_values(walls),
            "counters": counters,
            "quantiles": quantiles,
            "host": "+".join(hosts) if hosts else None,
            "auto_method": auto_method,
            "auto_routes": auto_routes,
            "auto_confidence": auto_confidence,
        })
    rows.sort(key=lambda r: (r["name"], r["first_ts"] or 0.0))
    return rows


def _auto_summary(recs) -> tuple[str | None, float, float | None]:
    """The planner's auto-routing footprint across a group of repeats.

    ``(dominant method, total routes, median confidence)``. Pulled
    from two places so both old and new histories answer: the
    ``planner.auto.<METHOD>`` per-pick counters plus the
    ``planner.auto_confidence`` gauge the router publishes, and -- for
    records whose producers stashed a result's
    ``extra["auto_method"]``/``extra["auto_confidence"]`` into the run
    config -- those keys as a fallback.
    """
    picks: dict[str, float] = {}
    routes = 0.0
    confidences: list[float] = []
    for rec in recs:
        counters = rec.metrics.get("counters", {}) or {}
        for name, value in counters.items():
            if name.startswith("planner.auto.") and \
                    isinstance(value, (int, float)):
                method = name[len("planner.auto."):]
                picks[method] = picks.get(method, 0.0) + float(value)
        total = counters.get("planner.auto_routes")
        if isinstance(total, (int, float)):
            routes += float(total)
        gauge = (rec.metrics.get("gauges", {}) or {}).get(
            "planner.auto_confidence")
        if isinstance(gauge, (int, float)):
            confidences.append(float(gauge))
        config = rec.config or {}
        extra = config.get("extra") if isinstance(
            config.get("extra"), dict) else {}
        method = config.get("auto_method") or extra.get("auto_method")
        if isinstance(method, str) and method:
            picks[method] = picks.get(method, 0.0) + 1.0
            routes += 1.0
        conf = (config.get("auto_confidence")
                if config.get("auto_confidence") is not None
                else extra.get("auto_confidence"))
        if isinstance(conf, (int, float)):
            confidences.append(float(conf))
    dominant = (max(sorted(picks), key=picks.get) if picks else None)
    confidence = median(confidences) if confidences else None
    return dominant, routes, confidence


def _host_label(host) -> str | None:
    """Compact ``host`` column value from a record's host metadata.

    ``<cpus>c/<machine>[/native]`` -- enough to spot that two trend
    rows came from different hardware (or toolchains) before comparing
    their wall clocks. Records written before host metadata existed
    yield ``None``.
    """
    if not isinstance(host, dict):
        return None
    cpus = host.get("cpu_count")
    machine = host.get("machine") or "?"
    label = f"{cpus}c/{machine}" if cpus else str(machine)
    if host.get("native"):
        label += "/native"
    return label


def format_trends(rows) -> str:
    """Render :func:`trend_rows` as an aligned text table."""
    if not rows:
        return "run history is empty"
    lines = [f"{'bench':<28} {'git_rev':>9} {'runs':>5} "
             f"{'wall ms (med+/-MAD)':>21} {'lister.ops':>12} "
             f"{'triangles':>10} {'instances':>10} {'divergent':>10} "
             f"{'task ms p50/p95/p99':>22} {'auto':>9} {'conf':>5} "
             f"{'host':>14}"]
    for row in rows:
        wall = row["wall_ms"]
        counters = row["counters"]

        def fmt(metric):
            value = counters.get(metric)
            return "--" if value is None else f"{value:.0f}"

        task = (row.get("quantiles") or {}).get("parallel.task_ms")
        task_col = ("--" if not task else "/".join(
            f"{task[q]:.1f}" for q in _TREND_QUANTILES if q in task))
        auto = row.get("auto_method")
        routes = row.get("auto_routes") or 0
        auto_col = f"{auto}x{routes:.0f}" if auto else "--"
        conf = row.get("auto_confidence")
        conf_col = "--" if conf is None else f"{conf:.2f}"
        lines.append(
            f"{row['name']:<28} {row['git_rev']:>9} {row['runs']:>5} "
            f"{wall['median']:>12.2f} +/- {wall['mad']:>5.2f} "
            f"{fmt('lister.ops'):>12} {fmt('lister.triangles'):>10} "
            f"{fmt('harness.instances'):>10} "
            f"{fmt('harness.divergent_cells'):>10} "
            f"{task_col:>22} {auto_col:>9} {conf_col:>5} "
            f"{row.get('host') or '--':>14}")
    return "\n".join(lines)


# ------------------------------------------------------------ divergence

def divergence_rows(records) -> list[dict]:
    """Model-vs-simulation error table across the run history.

    Collects every ``cell:<label>/n=<n>`` cell (the sim-vs-model rows
    the simulation benches embed in their run-record config) and
    summarizes the relative error per (bench, label, n) with median +
    MAD across repeats.
    """
    agg = aggregate(records)
    rows = []
    for name, cells in sorted(agg.items()):
        for cell, metrics in sorted(cells.items()):
            if not cell.startswith("cell:") or "error" not in metrics:
                continue
            label, _, n_part = cell[len("cell:"):].partition("/n=")
            rows.append({
                "name": name, "label": label,
                "n": int(n_part) if n_part.isdigit() else n_part,
                "sim": metrics.get("sim", {}).get("median"),
                "model": metrics.get("model", {}).get("median"),
                "error": metrics["error"]["median"],
                "error_mad": metrics["error"]["mad"],
                "runs": metrics["error"]["count"],
            })
    rows.sort(key=lambda r: (r["name"], r["label"],
                             r["n"] if isinstance(r["n"], int) else 0))
    return rows


def format_divergence(rows) -> str:
    """Render :func:`divergence_rows` as an aligned text table."""
    if not rows:
        return ("no sim-vs-model cells in the run history "
                "(run a simulation bench first)")
    lines = [f"{'bench':<24} {'cell':<12} {'n':>8} {'sim':>10} "
             f"{'model':>10} {'error (med+/-MAD)':>19} {'runs':>5}"]
    for row in rows:
        sim = "--" if row["sim"] is None else f"{row['sim']:.2f}"
        model = "--" if row["model"] is None else f"{row['model']:.2f}"
        lines.append(
            f"{row['name']:<24} {row['label']:<12} {row['n']:>8} "
            f"{sim:>10} {model:>10} "
            f"{100 * row['error']:>+9.1f}% +/- {100 * row['error_mad']:>4.1f}% "
            f"{row['runs']:>5}")
    return "\n".join(lines)
