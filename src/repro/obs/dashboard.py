"""Self-contained static HTML dashboard over the run history.

:func:`render_dashboard` turns a list of
:class:`~repro.obs.records.RunRecord` (plus an optional baseline
comparison) into **one** HTML file with inline CSS and inline SVG --
no scripts, no external fetches, nothing to install -- so the CI
perf-gate can upload it as a browsable artifact and `repro report
html` can hand it to anyone.

Sections:

* headline stat tiles (records, benches, latest revision, worst
  model divergence, Bloom-filter hit rate, pool imbalance);
* per-bench wall-clock trend columns across git revisions;
* per-bench phase breakdown (stacked relabel/orient/list/... bars);
* sim-vs-model divergence curves over ``n`` per table cell;
* baseline-comparison verdicts (improved/unchanged/regressed...);
* worker task-time percentiles (p50/p95/p99 of ``parallel.task_ms``).

Every chart ships a ``<details>`` table view of the same numbers, a
legend whenever more than one series is on screen, and native SVG
``<title>`` tooltips; colors come from a CVD-validated palette with a
selected dark mode (``prefers-color-scheme`` + ``data-theme``).
"""

from __future__ import annotations

import html
import math
import time

from repro.obs import report as _report

__all__ = ["render_dashboard", "write_dashboard"]

#: Categorical palette (validated order; light/dark are selected steps
#: of the same hues, not an automatic flip).
_SERIES_LIGHT = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100",
                 "#e87ba4", "#008300", "#4a3aa7", "#e34948")
_SERIES_DARK = ("#3987e5", "#d95926", "#199e70", "#c98500",
                "#d55181", "#008300", "#9085e9", "#e66767")

#: Status palette (fixed, never reused for series).
_STATUS = {"improved": "good", "unchanged": "neutral",
           "regressed": "critical", "added": "warning",
           "missing": "warning"}
_STATUS_ICON = {"improved": "&#9650;", "unchanged": "&#8211;",
                "regressed": "&#9660;", "added": "+", "missing": "?"}

_CHART_W = 560
_CHART_H = 220
_PAD = {"left": 64, "right": 16, "top": 12, "bottom": 30}


def _esc(value) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value, digits: int = 2) -> str:
    """Compact human number (1,284 / 12.9K / 4.2M)."""
    if value is None:
        return "--"
    try:
        value = float(value)
    except (TypeError, ValueError):
        return _esc(value)
    if not math.isfinite(value):
        return "inf"
    mag = abs(value)
    for cut, suffix in ((1e9, "B"), (1e6, "M"), (1e3, "K")):
        if mag >= cut:
            return f"{value / cut:.1f}{suffix}"
    if mag >= 100 or value == int(value):
        return f"{value:,.0f}"
    return f"{value:.{digits}f}"


def _ticks(lo: float, hi: float, count: int = 4) -> list[float]:
    """Clean-number axis ticks covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / max(count, 1)
    mag = 10 ** math.floor(math.log10(raw)) if raw > 0 else 1.0
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * mag
        if step >= raw:
            break
    first = math.floor(lo / step) * step
    ticks = []
    t = first
    while t <= hi + step * 0.5:
        ticks.append(round(t, 10))
        t += step
    return ticks


def _grid_and_yaxis(ticks, y_of, fmt=lambda v: _fmt(v)) -> list[str]:
    parts = []
    x0, x1 = _PAD["left"], _CHART_W - _PAD["right"]
    for t in ticks:
        y = y_of(t)
        parts.append(f'<line class="grid" x1="{x0}" y1="{y:.1f}" '
                     f'x2="{x1}" y2="{y:.1f}"/>')
        parts.append(f'<text class="tick" x="{x0 - 6}" y="{y + 3:.1f}" '
                     f'text-anchor="end">{_esc(fmt(t))}</text>')
    return parts


def _svg(body: list[str], height: int = _CHART_H,
         label: str = "") -> str:
    return (f'<svg viewBox="0 0 {_CHART_W} {height}" role="img" '
            f'aria-label="{_esc(label)}" '
            f'preserveAspectRatio="xMinYMin meet">'
            + "".join(body) + "</svg>")


def _column_chart(points, unit: str = "ms", label: str = "") -> str:
    """Single-series columns: (x label, value, tooltip) triples.

    One series -> slot 1, no legend (the section title names it);
    4px-rounded data end, square baseline, <=24px thick columns.
    """
    if not points:
        return ""
    top = max(v for _, v, _ in points)
    ticks = _ticks(0.0, top)
    y_lo, y_hi = _CHART_H - _PAD["bottom"], _PAD["top"]
    span = ticks[-1] if ticks[-1] > 0 else 1.0

    def y_of(v):
        return y_lo - (v / span) * (y_lo - y_hi)

    body = _grid_and_yaxis(ticks, y_of)
    x0, x1 = _PAD["left"], _CHART_W - _PAD["right"]
    band = (x1 - x0) / len(points)
    width = min(24.0, band * 0.6)
    for i, (name, value, tip) in enumerate(points):
        cx = x0 + band * (i + 0.5)
        x = cx - width / 2
        y = y_of(value)
        h = max(y_lo - y, 0.0)
        r = min(4.0, width / 2, h)
        body.append(
            f'<path class="mark" fill="var(--series-1)" d="M{x:.1f} '
            f'{y_lo:.1f} V{y + r:.1f} Q{x:.1f} {y:.1f} {x + r:.1f} '
            f'{y:.1f} H{x + width - r:.1f} Q{x + width:.1f} {y:.1f} '
            f'{x + width:.1f} {y + r:.1f} V{y_lo:.1f} Z">'
            f'<title>{_esc(tip)}</title></path>')
        body.append(f'<text class="tick" x="{cx:.1f}" '
                    f'y="{y_lo + 14}" text-anchor="middle">'
                    f'{_esc(name)}</text>')
    body.append(f'<line class="axis" x1="{x0}" y1="{y_lo}" '
                f'x2="{x1}" y2="{y_lo}"/>')
    body.append(f'<text class="tick" x="{x0 - 6}" y="{_PAD["top"]}" '
                f'text-anchor="end">{_esc(unit)}</text>')
    return _svg(body, label=label)


def _stacked_hbar(rows, series, unit: str = "ms",
                  label: str = "") -> str:
    """Horizontal stacked bars: rows = (name, {series: value}).

    Series colors follow the fixed categorical order; touching
    segments separate with a 2px surface gap, never a stroke.
    """
    if not rows or not series:
        return ""
    totals = [sum(vals.get(s, 0.0) for s in series)
              for _, vals in rows]
    span = max(max(totals), 1e-9)
    ticks = _ticks(0.0, span)
    span = ticks[-1]
    row_h, gap_y = 26, 10
    height = _PAD["top"] + len(rows) * (row_h + gap_y) + 24
    x0, x1 = _PAD["left"] + 40, _CHART_W - _PAD["right"]

    def x_of(v):
        return x0 + (v / span) * (x1 - x0)

    body = []
    for t in ticks:
        x = x_of(t)
        body.append(f'<line class="grid" x1="{x:.1f}" '
                    f'y1="{_PAD["top"]}" x2="{x:.1f}" '
                    f'y2="{height - 22}"/>')
        body.append(f'<text class="tick" x="{x:.1f}" y="{height - 8}" '
                    f'text-anchor="middle">{_esc(_fmt(t))}</text>')
    for i, (name, vals) in enumerate(rows):
        y = _PAD["top"] + i * (row_h + gap_y)
        body.append(f'<text class="tick" x="{x0 - 8}" '
                    f'y="{y + row_h / 2 + 3:.1f}" text-anchor="end">'
                    f'{_esc(name)}</text>')
        cx = x0
        for k, s in enumerate(series):
            value = vals.get(s, 0.0)
            if value <= 0:
                continue
            w = (value / span) * (x1 - x0)
            body.append(
                f'<rect class="mark" x="{cx + 1:.1f}" y="{y}" '
                f'width="{max(w - 2, 0.5):.1f}" height="{row_h - 8}" '
                f'fill="var(--series-{k % 8 + 1})">'
                f'<title>{_esc(name)} &#183; {_esc(s)}: '
                f'{_fmt(value)} {unit}</title></rect>')
            cx += w
    body.append(f'<line class="axis" x1="{x0}" y1="{_PAD["top"]}" '
                f'x2="{x0}" y2="{height - 22}"/>')
    return _svg(body, height=height, label=label)


def _line_chart(series, unit: str = "%", label: str = "",
                log_x: bool = True) -> str:
    """Multi-series lines: ``{name: [(x, y), ...]}`` (x ascending).

    2px round-capped lines, >=8px end markers with a 2px surface
    ring, direct end labels when few series (the legend rides in
    HTML below the chart either way).
    """
    series = {k: v for k, v in series.items() if v}
    if not series:
        return ""
    xs = sorted({x for pts in series.values() for x, _ in pts})
    ys = [y for pts in series.values() for _, y in pts]
    ticks = _ticks(min(min(ys), 0.0), max(max(ys), 0.0))
    y_lo, y_hi = _CHART_H - _PAD["bottom"], _PAD["top"]
    t0, t1 = ticks[0], ticks[-1]

    def y_of(v):
        return y_lo - ((v - t0) / (t1 - t0 or 1.0)) * (y_lo - y_hi)

    def x_pos(x):
        if log_x and min(xs) > 0:
            lo, hi = math.log10(min(xs)), math.log10(max(xs))
            frac = ((math.log10(x) - lo) / (hi - lo)) if hi > lo \
                else 0.5
        else:
            lo, hi = min(xs), max(xs)
            frac = ((x - lo) / (hi - lo)) if hi > lo else 0.5
        return _PAD["left"] + frac * (_CHART_W - _PAD["left"]
                                      - _PAD["right"] - 40)

    body = _grid_and_yaxis(ticks, y_of,
                           fmt=lambda v: f"{_fmt(v)}{unit}")
    for x in xs:
        body.append(f'<text class="tick" x="{x_pos(x):.1f}" '
                    f'y="{y_lo + 14}" text-anchor="middle">'
                    f'n={_fmt(x)}</text>')
    if t0 < 0 < t1:
        body.append(f'<line class="axis" x1="{_PAD["left"]}" '
                    f'y1="{y_of(0):.1f}" '
                    f'x2="{_CHART_W - _PAD["right"]}" '
                    f'y2="{y_of(0):.1f}"/>')
    for k, (name, pts) in enumerate(series.items()):
        color = f"var(--series-{k % 8 + 1})"
        coords = [(x_pos(x), y_of(y)) for x, y in pts]
        d = "M" + " L".join(f"{x:.1f} {y:.1f}" for x, y in coords)
        body.append(f'<path class="line" d="{d}" stroke="{color}"/>')
        for (x, y), (xv, yv) in zip(coords, pts):
            body.append(
                f'<circle class="dot" cx="{x:.1f}" cy="{y:.1f}" '
                f'r="4" fill="{color}"><title>{_esc(name)} &#183; '
                f'n={_fmt(xv)}: {yv:+.2f}{unit}</title></circle>')
        if len(series) <= 4 and coords:
            ex, ey = coords[-1]
            body.append(f'<text class="endlabel" x="{ex + 8:.1f}" '
                        f'y="{ey + 3:.1f}">{_esc(name)}</text>')
    return _svg(body, label=label)


def _legend(names) -> str:
    if len(names) < 2:
        return ""
    items = "".join(
        f'<span class="key"><span class="swatch" '
        f'style="background:var(--series-{k % 8 + 1})"></span>'
        f'{_esc(name)}</span>'
        for k, name in enumerate(names))
    return f'<div class="legend">{items}</div>'


def _table(headers, rows) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(c)}</td>" for c in row) + "</tr>"
        for row in rows)
    return (f'<details><summary>table view</summary>'
            f'<table><thead><tr>{head}</tr></thead>'
            f'<tbody>{body}</tbody></table></details>')


def _tile(label: str, value: str, note: str = "") -> str:
    note_html = f'<div class="note">{_esc(note)}</div>' if note else ""
    return (f'<div class="tile"><div class="label">{_esc(label)}</div>'
            f'<div class="value">{value}</div>{note_html}</div>')


def _section(title: str, body: str, note: str = "") -> str:
    note_html = f'<p class="note">{_esc(note)}</p>' if note else ""
    return (f'<section><h2>{_esc(title)}</h2>{note_html}{body}'
            f'</section>')


# ----------------------------------------------------------- sections

def _headline_tiles(records, div_rows) -> str:
    revs = [r.meta.get("git_rev") for r in records
            if r.meta.get("git_rev")]
    worst = max((abs(r["error"]) for r in div_rows), default=None)
    latest = None
    for rec in records:  # newest metrics snapshot that has counters
        if (rec.metrics or {}).get("counters"):
            latest = rec
    tiles = [
        _tile("Run records", _fmt(len(records))),
        _tile("Benches", _fmt(len({r.name for r in records}))),
        _tile("Latest revision", _esc(revs[-1]) if revs else "--"),
        _tile("Worst |sim-model| error",
              "--" if worst is None else f"{100 * worst:.1f}%",
              note="median across repeats"),
    ]
    if latest is not None:
        counters = latest.metrics.get("counters", {})
        probes = counters.get("engine.bloom_probes")
        hits = counters.get("engine.bloom_hits")
        if probes:
            tiles.append(_tile("Bloom hit rate",
                               f"{100 * hits / probes:.1f}%",
                               note=f"{_fmt(probes)} probes"))
        gauges = latest.metrics.get("gauges", {})
        imb = gauges.get("parallel.imbalance_ratio")
        if imb is not None:
            tiles.append(_tile("Pool imbalance", f"{imb:.2f}x",
                               note="busiest / mean worker"))
    return '<div class="tiles">' + "".join(tiles) + "</div>"


def _trends_section(records) -> str:
    rows = _report.trend_rows(records)
    if not rows:
        return ""
    blocks = []
    by_name: dict[str, list] = {}
    for row in rows:
        by_name.setdefault(row["name"], []).append(row)
    for name, seq in sorted(by_name.items()):
        points = [(row["git_rev"], row["wall_ms"]["median"],
                   f"{row['git_rev']}: "
                   f"{row['wall_ms']['median']:.2f} ms median "
                   f"(+/- {row['wall_ms']['mad']:.2f} MAD, "
                   f"{row['runs']} runs)")
                  for row in seq]
        chart = _column_chart(points, unit="wall ms",
                              label=f"{name} wall clock by revision")
        table = _table(
            ("git rev", "runs", "wall ms median", "MAD"),
            [(row["git_rev"], row["runs"],
              f"{row['wall_ms']['median']:.2f}",
              f"{row['wall_ms']['mad']:.2f}") for row in seq])
        blocks.append(f'<figure><figcaption>{_esc(name)}'
                      f'</figcaption>{chart}{table}</figure>')
    return _section("Wall clock per bench across revisions",
                    '<div class="grid">' + "".join(blocks) + "</div>",
                    note="median of repeats per git revision; "
                         "MAD in the table view")


def _phases_section(records) -> str:
    agg = _report.aggregate(records)
    per_bench: dict[str, dict[str, float]] = {}
    phase_totals: dict[str, float] = {}
    for name, cells in agg.items():
        phases = {}
        for cell, metrics in cells.items():
            if cell.startswith("phase:") and "wall_ms" in metrics:
                phase = cell[len("phase:"):]
                value = metrics["wall_ms"]["median"]
                phases[phase] = value
                phase_totals[phase] = phase_totals.get(phase, 0.0) \
                    + value
        if phases:
            per_bench[name] = phases
    if not per_bench:
        return ""
    # Fixed series order (color follows the phase, never its rank);
    # everything past 7 phases folds into "other".
    order = sorted(phase_totals, key=lambda p: -phase_totals[p])
    series = order[:7] + (["other"] if len(order) > 7 else [])
    rows = []
    for name in sorted(per_bench):
        vals = dict(per_bench[name])
        if len(order) > 7:
            vals["other"] = sum(vals.pop(p, 0.0) for p in order[7:])
        rows.append((name, vals))
    chart = _stacked_hbar(rows, series, unit="ms",
                          label="phase wall-clock per bench")
    table = _table(
        ["bench"] + list(series),
        [(name, *(f"{vals.get(s, 0.0):.2f}" for s in series))
         for name, vals in rows])
    return _section("Phase breakdown (median wall ms)",
                    _legend(series) + chart + table)


def _divergence_section(div_rows) -> str:
    if not div_rows:
        return ""
    blocks = []
    by_bench: dict[str, dict[str, list]] = {}
    for row in div_rows:
        if not isinstance(row["n"], int):
            continue
        series = by_bench.setdefault(row["name"], {})
        series.setdefault(row["label"], []).append(
            (row["n"], 100.0 * row["error"]))
    for bench, series in sorted(by_bench.items()):
        capped = dict(sorted(
            series.items(),
            key=lambda kv: -max(abs(y) for _, y in kv[1]))[:8])
        dropped = len(series) - len(capped)
        for pts in capped.values():
            pts.sort()
        chart = _line_chart(capped, unit="%",
                            label=f"{bench} sim-vs-model error")
        note = (f"showing the {len(capped)} cells with the largest "
                f"|error|; {dropped} more in the table" if dropped
                else "")
        table = _table(
            ("cell", "n", "sim", "model", "error", "runs"),
            [(r["label"], r["n"],
              "--" if r["sim"] is None else f"{r['sim']:.2f}",
              "--" if r["model"] is None else f"{r['model']:.2f}",
              f"{100 * r['error']:+.1f}%", r["runs"])
             for r in div_rows if r["name"] == bench])
        note_html = f'<p class="note">{_esc(note)}</p>' if note else ""
        blocks.append(f'<figure><figcaption>{_esc(bench)}'
                      f'</figcaption>{_legend(list(capped))}{chart}'
                      f'{note_html}{table}</figure>')
    return _section("Sim-vs-model divergence over n",
                    '<div class="grid">' + "".join(blocks) + "</div>",
                    note="relative error of the measured cost against "
                         "the paper's model, per table cell; 0% = "
                         "perfect agreement")


def _verdicts_section(deltas, baseline_meta) -> str:
    if deltas is None:
        return ""
    from repro.obs import baselines as _baselines
    counts = _baselines.summarize_deltas(deltas)
    badges = "".join(
        f'<span class="badge {_STATUS[c]}">'
        f'{_STATUS_ICON[c]} {c}: {counts[c]}</span>'
        for c in _baselines.CLASSIFICATIONS)
    changed = [d for d in deltas if d.classification != "unchanged"]
    rows = [(d.classification, d.name, d.cell, d.metric,
             "--" if d.baseline is None else f"{d.baseline:.4g}",
             "--" if d.current is None else f"{d.current:.4g}",
             "--" if d.rel_delta is None
             else f"{100 * d.rel_delta:+.1f}%")
            for d in changed[:200]]
    table = _table(("class", "bench", "cell", "metric", "baseline",
                    "current", "delta"), rows) if rows else \
        '<p class="note">every compared cell is unchanged</p>'
    meta = ""
    if baseline_meta:
        meta = (f'<p class="note">baseline '
                f'{_esc(baseline_meta.get("label") or "?")} @ '
                f'{_esc(baseline_meta.get("git_rev") or "?")}</p>')
    return _section("Baseline verdicts", meta + badges + table)


def _workers_section(records) -> str:
    latest = None
    for rec in records:
        hist = (rec.metrics or {}).get("histograms", {})
        if hist.get("parallel.task_ms", {}).get("count"):
            latest = hist["parallel.task_ms"]
    if latest is None:
        return ""
    points = [(q, latest[q],
               f"{q} task time: {latest[q]:.2f} ms")
              for q in ("p50", "p95", "p99") if q in latest]
    if not points:
        points = [("mean", latest["mean"],
                   f"mean task time: {latest['mean']:.2f} ms")]
    chart = _column_chart(points, unit="task ms",
                          label="worker task-time percentiles")
    table = _table(("statistic", "ms"),
                   [(k, f"{v:.3f}") for k, v in sorted(latest.items())
                    if isinstance(v, (int, float))])
    return _section("Worker task-time distribution", chart + table,
                    note=f"parallel.task_ms over {latest['count']} "
                         f"tasks (latest recorded run)")


def _fmt_mem(value) -> str:
    if not isinstance(value, (int, float)):
        return "--"
    value = float(value)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            return (f"{value:.0f} {unit}" if unit == "B"
                    else f"{value:.1f} {unit}")
        value /= 1024.0
    return "--"  # pragma: no cover - unreachable


def _memory_section(records) -> str:
    """Memory panel: per-tag attributed bytes from the array ledger."""
    latest = None
    for rec in records:
        summary = (rec.metrics or {}).get("memory")
        if isinstance(summary, dict) and summary.get("tags"):
            latest = summary
    if latest is None:
        return ""
    tags = latest.get("tags") or []
    points = [(row["tag"], row.get("peak_bytes", 0) / (1024 * 1024),
               f"{row['tag']}: peak {_fmt_mem(row.get('peak_bytes'))}")
              for row in tags[:12]]
    chart = _column_chart(points, unit="MB",
                          label="peak attributed bytes per ledger tag")
    table = _table(
        ("tag", "peak", "live", "total", "check-ins", "dtypes"),
        [(row["tag"], _fmt_mem(row.get("peak_bytes")),
          _fmt_mem(row.get("live_bytes")),
          _fmt_mem(row.get("total_bytes")),
          str(row.get("checkins", 0)), str(row.get("dtypes", "")))
         for row in tags])
    budget = latest.get("budget_bytes") or 0
    budget_text = (f"budget {_fmt_mem(budget)} · "
                   f"{latest.get('breaches', 0)} breach(es)"
                   if budget else "no RAM budget armed")
    note = (f"peak attributed {_fmt_mem(latest.get('peak_bytes'))} · "
            f"{len(tags)} tag(s) · {budget_text} "
            f"(latest recorded run with REPRO_MEM_LEDGER=1)")
    return _section("Memory footprint", chart + table, note=note)


def _audit_section(audit_records) -> str:
    """Planner audit panel: prediction-ratio trend + misplan table."""
    if not audit_records:
        return ""
    from repro.obs import audit as _audit
    tail = list(audit_records)[-40:]
    points = []
    for i, rec in enumerate(tail):
        ratio = _audit.prediction_ratio(rec)
        if ratio is None:
            continue
        picked = rec.get("picked") or {}
        label = f"#{len(audit_records) - len(tail) + i + 1}"
        points.append((label, ratio,
                       f"{picked.get('method')}+{picked.get('ordering')}"
                       f" on {rec.get('graph_class', '?')}: "
                       f"predicted/actual ops {ratio:.3g}"))
    chart = ""
    if points:
        chart = _column_chart(points, unit="pred/actual",
                              label="prediction ratio per decision "
                                    "(1.0 = perfectly calibrated)")
    summary = _audit.audit_summary(audit_records)
    misplans = _audit.misplan_rows(audit_records)

    def _fmt_pct(value):
        if not isinstance(value, (int, float)):
            return "--"
        if math.isinf(value):
            return "inf"
        return f"{100 * value:.2f}%"

    rows = [(str(m.get("route") or "--"), str(m.get("label") or "--"),
             str(m.get("picked") or "--"), str(m.get("oracle") or "--"),
             _fmt_pct(m.get("regret")), str(m.get("kind") or "--"),
             str(m.get("detail") or ""))
            for m in misplans[:40]]
    table = ""
    if rows:
        table = _table(("route", "case", "picked", "oracle", "regret",
                        "diagnosis", "detail"), rows)
    note = (f"{summary['records']} audited decision(s) · "
            f"{summary['misplans']} misplan(s) · median regret "
            f"{_fmt_pct(summary['median_regret'])} · median "
            f"prediction ratio "
            f"{summary['median_ratio']:.3g}"
            if isinstance(summary.get("median_ratio"), (int, float))
            else f"{summary['records']} audited decision(s) · "
                 f"{summary['misplans']} misplan(s)")
    return _section("Planner audit", chart + table, note=note)


_CSS = """
:root { color-scheme: light; }
body {
  margin: 0; padding: 24px;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--text-primary);
}
.viz-root {
  --page: #f9f9f7; --surface-1: #fcfcfb;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --muted: #898781; --grid: #e1e0d9; --axisline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --series-4: #eda100; --series-5: #e87ba4; --series-6: #008300;
  --series-7: #4a3aa7; --series-8: #e34948;
  --good: #0ca30c; --warning: #fab219; --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --page: #0d0d0d; --surface-1: #1a1a19;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --grid: #2c2c2a; --axisline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --series-4: #c98500; --series-5: #d55181; --series-6: #008300;
    --series-7: #9085e9; --series-8: #e66767;
  }
}
h1 { font-size: 22px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 0 0 8px; }
.note { color: var(--muted); font-size: 12px; margin: 2px 0 10px; }
header .note { margin-bottom: 20px; }
section {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 18px; margin: 0 0 18px;
}
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 0 0 18px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 130px;
}
.tile .label { color: var(--text-secondary); font-size: 12px; }
.tile .value { font-size: 26px; font-weight: 600; margin-top: 2px; }
.tile .note { margin: 2px 0 0; }
.grid { display: flex; flex-wrap: wrap; gap: 18px; }
figure { margin: 0; max-width: 580px; }
figcaption { font-size: 13px; color: var(--text-secondary);
             margin-bottom: 4px; }
svg { width: 100%; height: auto; display: block; }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg .axis { stroke: var(--axisline); stroke-width: 1; }
svg .tick, svg .endlabel { fill: var(--muted); font-size: 10px;
  font-variant-numeric: tabular-nums; }
svg .endlabel { fill: var(--text-secondary); font-size: 11px; }
svg .line { fill: none; stroke-width: 2; stroke-linecap: round;
  stroke-linejoin: round; }
svg .dot { stroke: var(--surface-1); stroke-width: 2; }
svg .mark:hover, svg .dot:hover { opacity: 0.8; }
.legend { display: flex; flex-wrap: wrap; gap: 10px;
  font-size: 12px; color: var(--text-secondary); margin: 0 0 6px; }
.legend .swatch { display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 4px; }
.badge { display: inline-block; font-size: 12px; border-radius: 10px;
  padding: 2px 10px; margin: 0 6px 10px 0;
  border: 1px solid var(--border); color: var(--text-secondary); }
.badge.good { border-color: var(--good); color: var(--good); }
.badge.critical { border-color: var(--critical);
  color: var(--critical); }
.badge.warning { border-color: var(--warning); }
details { margin-top: 6px; }
summary { cursor: pointer; color: var(--muted); font-size: 12px; }
table { border-collapse: collapse; font-size: 12px; margin-top: 6px; }
th, td { text-align: left; padding: 3px 10px 3px 0;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums; }
th { color: var(--text-secondary); font-weight: 600; }
"""


def render_dashboard(records, deltas=None, baseline_meta=None,
                     title: str = "repro run history",
                     audit_records=None) -> str:
    """Render the run history into one self-contained HTML page.

    ``records`` is a list of :class:`~repro.obs.records.RunRecord`;
    ``deltas`` (optional) is the output of
    :func:`repro.obs.baselines.compare` for the verdicts section;
    ``audit_records`` (optional) is a list of planner audit dicts
    (:func:`repro.obs.audit.load_audit`) for the audit panel.
    """
    records = list(records)
    div_rows = _report.divergence_rows(records)
    generated = time.strftime("%Y-%m-%d %H:%M:%S",
                              time.gmtime())
    sections = [
        _headline_tiles(records, div_rows),
        _verdicts_section(deltas, baseline_meta),
        _trends_section(records),
        _phases_section(records),
        _divergence_section(div_rows),
        _workers_section(records),
        _memory_section(records),
        _audit_section(audit_records or []),
    ]
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, '
        'initial-scale=1">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style></head>\n"
        '<body class="viz-root"><header>'
        f"<h1>{_esc(title)}</h1>"
        f'<p class="note">generated {generated} UTC &#183; '
        f"{len(records)} run record(s) &#183; triangle-listing "
        "cost reproduction</p></header>\n"
        + "\n".join(s for s in sections if s)
        + "\n</body></html>\n")


def write_dashboard(records, path, deltas=None, baseline_meta=None,
                    title: str = "repro run history",
                    audit_records=None):
    """Write :func:`render_dashboard` output to ``path``."""
    import pathlib
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_dashboard(records, deltas=deltas,
                                     baseline_meta=baseline_meta,
                                     title=title,
                                     audit_records=audit_records),
                    encoding="utf-8")
    return path
