"""Tool-readable exports of the run-record trail.

Two export formats over the spans/metrics/records stack, both consumed
by standard viewers rather than bespoke scripts:

* **Chrome trace-event JSON** (:func:`records_to_trace`) -- one
  complete (``"ph": "X"``) event per span, metric counters and gauges
  as counter (``"ph": "C"``) events, span attributes and attached
  profile stats as event ``args``. The output loads in Perfetto
  (https://ui.perfetto.dev) and ``chrome://tracing``.
* **Collapsed stacks** (:func:`collapsed_stacks`) -- the
  ``flamegraph.pl`` / speedscope text format, one ``stack weight``
  line per unique path. ``source="spans"`` weights each span path by
  its *self* time; ``source="profile"`` expands the per-span
  :mod:`cProfile` attribution (``REPRO_PROFILE=1``) into function
  leaves weighted by additive ``tottime``.

Timeline reconstruction: spans serialize their raw
``perf_counter_ns`` open timestamps, which are only meaningful within
one clock domain. The exporter keeps a child on the real timeline when
its window fits inside its parent's and otherwise falls back to
packing siblings sequentially -- so span trees merged across a process
boundary (the parallel sweep reattaching worker trees under the
parent ``cell``) still render with correct durations and hierarchy.
Worker-run spans carry a ``worker_pid`` attribute and are laid out on
their own trace *thread* rows, which is what makes pool imbalance
visible in the viewer.
"""

from __future__ import annotations

import json
import pathlib

__all__ = [
    "collapsed_stacks",
    "record_to_events",
    "records_to_trace",
    "span_tree_to_events",
    "validate_trace",
    "write_collapsed",
    "write_trace",
]

#: Main-thread trace id; worker spans use their ``worker_pid`` attr.
MAIN_TID = 1

#: Slack allowed when deciding whether a child's timestamps fit inside
#: its parent's window (clock jitter at span open/close), in microsec.
_FIT_SLACK_US = 50.0


def _as_dict(span) -> dict:
    return span.to_dict() if hasattr(span, "to_dict") else span


def _dur_us(node: dict) -> float:
    return int(node.get("duration_ns", 0)) / 1e3


def span_tree_to_events(root, pid: int = 1, tid: int = MAIN_TID,
                        base_us: float = 0.0) -> list[dict]:
    """Flatten one span tree into complete (``ph:"X"``) trace events.

    ``base_us`` is the absolute timeline position of the root. Returns
    the events in depth-first order; the caller owns pid assignment
    and metadata events.
    """
    events: list[dict] = []
    _emit_span(_as_dict(root), pid, tid, base_us, events)
    return events


def _emit_span(node: dict, pid: int, tid: int, abs_us: float,
               events: list[dict]) -> None:
    attrs = node.get("attrs") or {}
    worker_pid = attrs.get("worker_pid")
    if isinstance(worker_pid, (int, float)):
        tid = int(worker_pid)
    args = {str(k): v for k, v in attrs.items()}
    for key in ("mem_delta_bytes", "mem_peak_bytes"):
        if key in node:
            args[key] = node[key]
    if node.get("profile"):
        args["profile"] = node["profile"]
    dur = _dur_us(node)
    events.append({
        "name": str(node.get("name", "?")),
        "cat": "span",
        "ph": "X",
        "pid": pid,
        "tid": tid,
        "ts": round(abs_us, 3),
        "dur": round(dur, 3),
        "args": args,
    })
    start_ns = int(node.get("start_ns", 0))
    cursor = abs_us
    for child in node.get("children", ()):
        child = _as_dict(child)
        child_dur = _dur_us(child)
        child_start_ns = int(child.get("start_ns", 0))
        offset_us = (child_start_ns - start_ns) / 1e3
        fits = (start_ns > 0 and child_start_ns > 0
                and offset_us >= -_FIT_SLACK_US
                and offset_us + child_dur <= dur + _FIT_SLACK_US)
        child_abs = abs_us + max(offset_us, 0.0) if fits else cursor
        _emit_span(child, pid, tid, child_abs, events)
        cursor = max(cursor, child_abs + child_dur)


def record_to_events(record, pid: int = 1) -> list[dict]:
    """All trace events of one run record: spans, counters, metadata.

    Root spans lay out on one relative timeline starting at 0 (real
    offsets when their clocks agree, sequential packing otherwise);
    the metric snapshot lands as counter events at the trace end.
    """
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": MAIN_TID,
        "args": {"name": record.name or "run"},
    }]
    roots = [_as_dict(s) for s in record.spans]
    first_start = next((int(r.get("start_ns", 0)) for r in roots
                        if int(r.get("start_ns", 0)) > 0), 0)
    cursor = 0.0
    for root in roots:
        start_ns = int(root.get("start_ns", 0))
        offset_us = (start_ns - first_start) / 1e3
        fits = first_start > 0 and start_ns > 0 and \
            offset_us >= cursor - _FIT_SLACK_US
        base = max(offset_us, cursor) if fits else cursor
        events.extend(span_tree_to_events(root, pid=pid, base_us=base))
        cursor = base + _dur_us(root)
    tids = {e["tid"] for e in events if e["ph"] == "X"}
    for tid in sorted(tids):
        label = "main" if tid == MAIN_TID else f"worker {tid}"
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"name": label}})
    metrics = record.metrics or {}
    samples = dict(metrics.get("counters") or {})
    samples.update(metrics.get("gauges") or {})
    for name in sorted(samples):
        value = samples[name]
        if not isinstance(value, (int, float)):
            continue
        events.append({
            "name": name, "cat": "metric", "ph": "C", "pid": pid,
            "tid": MAIN_TID, "ts": round(cursor, 3),
            "args": {"value": value},
        })
    events.extend(_memory_counter_events(metrics, pid, cursor))
    return events


def _memory_counter_events(metrics: dict, pid: int,
                           cursor_us: float) -> list[dict]:
    """Memory counter track: RSS series + ledger attributed bytes.

    The resource sampler's ring (``metrics["resources"]``, attached
    while the live runtime was on) becomes a ``mem.rss_bytes`` /
    ``mem.rss_peak_bytes`` counter series laid out by wall-clock
    offset from the first sample; the array ledger summary
    (``metrics["memory"]``, attached while ``REPRO_MEM_LEDGER`` was
    on) lands as attributed-bytes counters at the trace end.
    """
    events: list[dict] = []
    t0 = None
    for sample in metrics.get("resources") or ():
        ts = sample.get("ts") if isinstance(sample, dict) else None
        if not isinstance(ts, (int, float)):
            continue
        if t0 is None:
            t0 = ts
        offset_us = (ts - t0) * 1e6
        for key in ("rss_bytes", "rss_peak_bytes"):
            value = sample.get(key)
            if isinstance(value, (int, float)):
                events.append({
                    "name": f"mem.{key}", "cat": "memory", "ph": "C",
                    "pid": pid, "tid": MAIN_TID,
                    "ts": round(offset_us, 3),
                    "args": {"value": value},
                })
    ledger = metrics.get("memory") or {}
    for key in ("current_bytes", "peak_bytes"):
        value = ledger.get(key) if isinstance(ledger, dict) else None
        if isinstance(value, (int, float)):
            events.append({
                "name": f"mem.attributed_{key}", "cat": "memory",
                "ph": "C", "pid": pid, "tid": MAIN_TID,
                "ts": round(cursor_us, 3),
                "args": {"value": value},
            })
    return events


def records_to_trace(records) -> dict:
    """Assemble records into one trace-event JSON document.

    Each record becomes its own trace *process* (pid 1..N, named after
    the bench), so a whole run history opens as parallel process
    tracks in Perfetto.
    """
    events: list[dict] = []
    meta: dict = {"generator": "repro export trace", "records": []}
    for pid, record in enumerate(records, start=1):
        events.extend(record_to_events(record, pid=pid))
        meta["records"].append({
            "pid": pid, "name": record.name,
            "git_rev": (record.meta or {}).get("git_rev"),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": meta}


def validate_trace(trace: dict) -> int:
    """Sanity-check a trace document; returns the event count.

    Raises :class:`ValueError` on a malformed document -- used by
    tests and the CI artifact step as a cheap schema gate.
    """
    if not isinstance(trace, dict) or \
            not isinstance(trace.get("traceEvents"), list):
        raise ValueError("trace must be a dict with a traceEvents list")
    events = trace["traceEvents"]
    if not events:
        raise ValueError("trace has no events")
    for event in events:
        ph = event.get("ph")
        if ph not in ("X", "C", "M"):
            raise ValueError(f"unexpected event phase {ph!r}")
        if not isinstance(event.get("pid"), int) or \
                not isinstance(event.get("tid"), int):
            raise ValueError("event missing integer pid/tid")
        if ph == "X" and (not isinstance(event.get("ts"), (int, float))
                          or not isinstance(event.get("dur"),
                                            (int, float))):
            raise ValueError("complete event missing ts/dur")
        if ph == "C":
            args = event.get("args") or {}
            if "value" not in args:
                raise ValueError("counter event missing args.value")
            if event.get("cat") == "memory":
                value = args["value"]
                if not isinstance(value, (int, float)) or \
                        isinstance(value, bool) or value < 0:
                    raise ValueError(
                        f"memory counter {event.get('name')!r} needs "
                        f"a non-negative numeric args.value, got "
                        f"{value!r}")
                if not isinstance(event.get("ts"), (int, float)):
                    raise ValueError("memory counter missing ts")
    return len(events)


def write_trace(records, path) -> pathlib.Path:
    """Serialize :func:`records_to_trace` to ``path``."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(records_to_trace(records)) + "\n",
                    encoding="utf-8")
    return path


# ------------------------------------------------------- collapsed stacks

def collapsed_stacks(records, source: str = "spans") -> list[str]:
    """``flamegraph.pl``-format lines over a set of run records.

    ``source="spans"``: one frame per span name along the tree path,
    weighted by integer microseconds of *self* time (duration minus
    children), so the flame graph totals match the wall clock.
    ``source="profile"``: spans that carry ``REPRO_PROFILE``
    attribution expand into ``<span path>;<func (file:line)>`` leaves
    weighted by ``tottime`` microseconds (additive, no double count).
    """
    if source not in ("spans", "profile"):
        raise ValueError(f"unknown flame source {source!r}")
    weights: dict[str, int] = {}

    def add(stack: str, weight_us: float) -> None:
        weight = int(round(weight_us))
        if weight > 0:
            weights[stack] = weights.get(stack, 0) + weight

    def walk(node: dict, prefix: str) -> None:
        name = str(node.get("name", "?"))
        path = f"{prefix};{name}" if prefix else name
        children = [_as_dict(c) for c in node.get("children", ())]
        if source == "spans":
            child_us = sum(_dur_us(c) for c in children)
            add(path, _dur_us(node) - child_us)
        else:
            for entry in node.get("profile") or ():
                filename = pathlib.Path(
                    str(entry.get("file", "?"))).name
                frame = (f"{entry.get('func', '?')} "
                         f"({filename}:{entry.get('line', 0)})")
                add(f"{path};{frame}",
                    float(entry.get("tottime", 0.0)) * 1e6)
        for child in children:
            walk(child, path)

    for record in records:
        for root in record.spans:
            walk(_as_dict(root), str(record.name or "run"))
    return [f"{stack} {weight}"
            for stack, weight in sorted(weights.items())]


def write_collapsed(records, path, source: str = "spans"
                    ) -> pathlib.Path:
    """Write :func:`collapsed_stacks` lines to ``path``."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = collapsed_stacks(records, source=source)
    path.write_text("\n".join(lines) + ("\n" if lines else ""),
                    encoding="utf-8")
    return path
