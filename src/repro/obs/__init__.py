"""Observability: spans, metrics, run records, and structured logging.

The paper is a *cost model* -- this subpackage makes the reproduction's
actual costs observable. Four small layers, all off by default and
near-free when disabled:

* :mod:`repro.obs.spans` -- hierarchical wall-clock timers
  (``with span("orient"): ...``) with optional tracemalloc peaks.
* :mod:`repro.obs.metrics` -- process-local named counters / gauges /
  histograms the instrumented code publishes into (``lister.ops``,
  ``orient.edges_flipped``, ``generator.rejections``, ...).
* :mod:`repro.obs.records` -- JSONL run records bundling span trees,
  metric snapshots, run config, and git/python metadata.
* :mod:`repro.obs.logging` -- structured stdlib logging with the
  ``REPRO_LOG`` env knob.
* :mod:`repro.obs.bus` + :mod:`repro.obs.live` -- the live-telemetry
  runtime (``REPRO_LIVE=1``): a pub/sub event bus, a background
  resource sampler, model-ops progress/ETA events, worker heartbeats
  with a stall watchdog, and the ``repro top`` /
  ``repro serve-metrics`` read surface.
* :mod:`repro.obs.audit` -- the model-conformance audit layer
  (``REPRO_AUDIT=1``): per-decision predicted-vs-actual records for
  every auto-routed planner pick, realized regret, misplan diagnosis,
  and the ``repro audit`` read surface.
* :mod:`repro.obs.memory` -- the memory observability layer
  (``REPRO_MEM_LEDGER=1``): an array ledger attributing bytes to
  tagged allocations and owning spans, a footprint conformance model
  (predicted vs attributed bytes), per-span allocation attribution
  (``REPRO_TRACEMALLOC=K``), a RAM-budget watchdog
  (``REPRO_MEM_BUDGET``), and the ``repro mem`` read surface.

Two read-side layers analyze that history (``repro report`` on the
command line):

* :mod:`repro.obs.report` -- query/aggregation over the JSONL run
  history (median + MAD across repeats, trend and divergence tables).
* :mod:`repro.obs.baselines` -- baseline store + comparison engine
  classifying each cell as improved / unchanged / regressed (the CI
  perf-regression gate).

And three export layers turn it into artifacts for standard viewers:

* :mod:`repro.obs.export` -- Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``) and collapsed-stack flame-graph text
  (``repro export trace|flame``).
* :mod:`repro.obs.profiling` -- per-top-level-span :mod:`cProfile`
  attribution behind the ``REPRO_PROFILE`` knob.
* :mod:`repro.obs.dashboard` -- self-contained static HTML run-history
  dashboard (``repro report html``).

Typical use::

    from repro import obs

    obs.enable()                  # or REPRO_TRACE=1 + enable_from_env()
    ...run the pipeline...
    for root in obs.pop_finished():
        print(obs.format_span_tree(root))
    obs.record_run("my-run", config={"seed": 7})
    obs.disable()
"""

from __future__ import annotations

import os

from repro.obs import audit, baselines, bus, dashboard, export, live
from repro.obs import logging as obs_logging
from repro.obs import memory, metrics, profiling, records, report, spans
from repro.obs.baselines import (Baseline, build_baseline, compare,
                                 has_regressions, load_baseline,
                                 save_baseline)
from repro.obs.dashboard import render_dashboard, write_dashboard
from repro.obs.export import (collapsed_stacks, records_to_trace,
                              validate_trace, write_collapsed,
                              write_trace)
from repro.obs.logging import get_logger, log_event, setup as setup_logging
from repro.obs.records import (RunRecord, collect, git_revision,
                               listing_result_from_dict,
                               listing_result_to_dict, load_records,
                               record_run, write_record)
from repro.obs.spans import (Span, current_span, format_span_tree,
                             pop_finished, span)

__all__ = [
    "Baseline",
    "RunRecord",
    "Span",
    "audit",
    "baselines",
    "build_baseline",
    "bus",
    "collapsed_stacks",
    "collect",
    "compare",
    "dashboard",
    "export",
    "live",
    "has_regressions",
    "load_baseline",
    "report",
    "save_baseline",
    "current_span",
    "disable",
    "enable",
    "enable_from_env",
    "format_span_tree",
    "get_logger",
    "git_revision",
    "is_enabled",
    "listing_result_from_dict",
    "listing_result_to_dict",
    "load_records",
    "log_event",
    "memory",
    "metrics",
    "metrics_snapshot",
    "obs_logging",
    "pop_finished",
    "profiling",
    "record_run",
    "records",
    "records_to_trace",
    "render_dashboard",
    "reset",
    "reset_metrics",
    "setup_logging",
    "span",
    "spans",
    "validate_trace",
    "write_collapsed",
    "write_dashboard",
    "write_record",
    "write_trace",
]

_TRUTHY = {"1", "true", "yes", "on"}


def enable(memory: bool = False, profile: int | None = None,
           alloc: int | None = None) -> None:
    """Enable span collection and metric publication together.

    ``profile`` forwards to :func:`repro.obs.spans.enable`: top-K
    cProfile attribution per top-level span (``None`` consults the
    ``REPRO_PROFILE`` environment knob). ``alloc`` likewise: top-K
    tracemalloc allocation attribution (``None`` consults
    ``REPRO_TRACEMALLOC``).
    """
    spans.enable(memory=memory, profile=profile, alloc=alloc)
    metrics.enable()


def disable() -> None:
    """Disable span collection and metric publication."""
    spans.disable()
    metrics.disable()


def is_enabled() -> bool:
    """Whether the observability layer is currently recording."""
    return spans.is_enabled() or metrics.is_enabled()


def enable_from_env() -> bool:
    """Enable when ``REPRO_TRACE`` is truthy; returns the decision.

    ``REPRO_TRACE_MEMORY=1`` additionally turns on tracemalloc peaks.
    """
    if os.environ.get("REPRO_TRACE", "").strip().lower() in _TRUTHY:
        memory = (os.environ.get("REPRO_TRACE_MEMORY", "")
                  .strip().lower() in _TRUTHY)
        enable(memory=memory)
        return True
    return False


def reset() -> None:
    """Clear finished spans, the open stack, and every metric."""
    spans.reset()
    metrics.reset()


def metrics_snapshot() -> dict:
    """Shortcut for :func:`repro.obs.metrics.snapshot`."""
    return metrics.snapshot()


def reset_metrics() -> None:
    """Shortcut for :func:`repro.obs.metrics.reset`."""
    metrics.reset()
