"""Command-line interface: the paper's pipeline from a shell.

Subcommands::

    repro generate   sample a degree sequence and realize a random graph
    repro triangles  relabel/orient an edge list and list triangles
    repro model      evaluate the discrete cost model (50) / Algorithm 2
    repro limit      the n -> inf cost limit of a (method, permutation)
    repro decide     the SEI-vs-hash decision rule (section 2.4)
    repro plan       rank every (method, ordering) candidate by modeled
                     cost (graph / degree-law / sketch / limit backends)
    repro regimes    finiteness classification across tail indices
    repro sweep      parallel Monte-Carlo sim-vs-model sweep over n
    repro profile    phase-time breakdown over a method/order grid
    repro bench      engine micro-benchmarks (--native-compare)
    repro report     run-history analytics & the perf-regression gate
                     (trends | baseline | compare | divergence | html)
    repro audit      planner model-conformance audit over audit.jsonl
                     (summary | misplans | validate | calibration)
    repro mem        memory observability: array ledger + footprint
                     conformance (summary | ledger | conformance)
    repro export     recorded runs -> Chrome trace JSON / flame stacks
                     (trace | flame)
    repro top        live terminal view of a telemetry event stream
    repro serve-metrics  Prometheus-text scrape endpoint

Every subcommand accepts ``--trace`` (print the span tree and metric
counters after the run; add ``--trace-memory`` for tracemalloc peaks).
``REPRO_PROFILE=1`` additionally attaches top-K cProfile stats to every
top-level span while tracing. ``REPRO_LIVE=1`` starts the live
telemetry runtime (resource sampler, progress/ETA events, worker
heartbeats -- see docs/OBSERVABILITY.md) for the dispatched
subcommand. ``repro --version`` prints the package version.

Examples::

    python -m repro.cli generate --n 10000 --alpha 1.7 --out g.txt
    python -m repro.cli triangles --graph g.txt --method E1 \
        --order descending
    python -m repro.cli model --alpha 1.5 --n 1000000 --method T1 \
        --map descending
    python -m repro.cli limit --alpha 1.7 --method T2 --map rr
"""

from __future__ import annotations

import argparse
import math
import sys
import time

import numpy as np

from repro import obs
from repro.core.decision import decide_in_limit, decide_on_graph
from repro.core.fastmodel import fast_cost_model
from repro.core.limits import limit_cost
from repro.core.model import discrete_cost_model
from repro.distributions.pareto import DiscretePareto
from repro.distributions.sampling import sample_degree_sequence
from repro.distributions.truncation import (linear_truncation,
                                            root_truncation)
from repro.experiments.regimes import format_regime_table, sweep_regimes
from repro.graphs.generators import generate_graph
from repro.graphs.io import load_edge_list, save_edge_list
from repro.listing.api import list_triangles
from repro.orientations.degenerate import DegenerateOrder
from repro.orientations.permutations import (
    AscendingDegree,
    ComplementaryRoundRobin,
    DescendingDegree,
    RoundRobin,
    UniformRandom,
)
from repro.orientations.relabel import orient

_ORDERS = {
    "ascending": AscendingDegree,
    "descending": DescendingDegree,
    "rr": RoundRobin,
    "crr": ComplementaryRoundRobin,
    "uniform": UniformRandom,
    "degenerate": DegenerateOrder,
}

#: Maps each CLI order to the matching analytical limit map.
_ORDER_TO_MAP = {
    "ascending": "ascending",
    "descending": "descending",
    "rr": "rr",
    "crr": "crr",
    "uniform": "uniform",
}


def _dist_from_args(args) -> DiscretePareto:
    beta = args.beta if args.beta is not None else 30.0 * (args.alpha - 1)
    if beta <= 0:
        raise SystemExit(
            "beta must be positive; pass --beta explicitly for alpha <= 1")
    return DiscretePareto(args.alpha, beta)


def _add_dist_args(parser):
    parser.add_argument("--alpha", type=float, required=True,
                        help="Pareto tail index")
    parser.add_argument("--beta", type=float, default=None,
                        help="Pareto scale (default: 30 (alpha - 1))")


def cmd_generate(args) -> int:
    """``repro generate``: sample, realize, and save a graph."""
    rng = np.random.default_rng(args.seed)
    dist = _dist_from_args(args)
    trunc = (root_truncation if args.truncation == "root"
             else linear_truncation)
    dist_n = dist.truncate(trunc(args.n))
    degrees = sample_degree_sequence(dist_n, args.n, rng)
    graph = generate_graph(degrees, rng, method=args.generator)
    save_edge_list(graph, args.out)
    print(f"wrote {graph.m} edges over {graph.n} nodes to {args.out} "
          f"(max degree {graph.degrees.max()})")
    return 0


def cmd_triangles(args) -> int:
    """``repro triangles``: orient an edge list and list/count."""
    graph = load_edge_list(args.graph)
    rng = np.random.default_rng(args.seed)
    perm = _ORDERS[args.order]()
    oriented = orient(graph, perm, rng=rng)
    result = list_triangles(oriented, args.method, collect=False)
    method = result.extra.get("auto_method", args.method)
    print(f"graph: n={graph.n} m={graph.m}")
    if "auto_method" in result.extra:
        print(f"planner picked {method} (confidence "
              f"{result.extra['auto_confidence']:.2f})")
    print(f"method {method} under {args.order}: "
          f"{result.count} triangles, {result.ops} operations, "
          f"c_n = {result.per_node_cost:.3f}")
    return 0


def cmd_model(args) -> int:
    """``repro model``: evaluate (50) or Algorithm 2 at one n."""
    dist = _dist_from_args(args)
    trunc = (root_truncation if args.truncation == "root"
             else linear_truncation)
    dist_n = dist.truncate(trunc(args.n))
    if args.fast or args.n > 10**7:
        value = fast_cost_model(dist_n, args.method, args.map,
                                eps=args.eps)
        how = f"Algorithm 2 (eps={args.eps})"
    else:
        value = discrete_cost_model(dist_n, args.method, args.map)
        how = "exact model (50)"
    print(f"E[c_n({args.method}, {args.map})] at n={args.n}, "
          f"{args.truncation} truncation: {value:.4f}   [{how}]")
    return 0


def cmd_limit(args) -> int:
    """``repro limit``: the n -> inf cost of a (method, map)."""
    dist = _dist_from_args(args)
    value = limit_cost(dist, args.method, args.map, eps=1e-4)
    text = "infinite" if math.isinf(value) else f"{value:.4f}"
    print(f"lim n->inf E[c_n({args.method}, {args.map})] = {text}")
    return 0


def cmd_decide(args) -> int:
    """``repro decide``: SEI vs hash, on a graph or in the limit."""
    if args.graph:
        graph = load_edge_list(args.graph)
        oriented = orient(graph, DescendingDegree())
        decision = decide_on_graph(oriented, args.speed_ratio)
        print(f"on {args.graph} (descending orientation):")
    else:
        dist = _dist_from_args(args)
        decision = decide_in_limit(dist, args.speed_ratio)
        print(f"in the limit for Pareto(alpha={args.alpha}):")
    ratio = ("inf" if math.isinf(decision.cost_ratio)
             else f"{decision.cost_ratio:.2f}")
    print(f"  best hash method: {decision.best_hash_method} "
          f"(cost {decision.best_hash_cost:.4g})")
    print(f"  best SEI method:  {decision.best_sei_method} "
          f"(cost {decision.best_sei_cost:.4g})")
    print(f"  cost ratio w = {ratio}, speed ratio = "
          f"{decision.speed_ratio:.1f}")
    print(f"  winner: {decision.winner}")
    return 0


def cmd_plan(args) -> int:
    """``repro plan``: the full ranked candidate table.

    Backends: ``--graph`` prices every candidate exactly on the loaded
    graph (incl. the degenerate ordering); ``--graph --sketch K``
    plans from ``K`` sampled degrees; ``--alpha [--n]`` plans from a
    Pareto law through Algorithm 2; ``--alpha --limit`` ranks the
    ``n -> inf`` limits. ``--speed-ratio`` accepts a number,
    ``paper``, or ``calibrated`` (measure this host once).
    """
    from repro.planner import (format_plan, plan_for_distribution,
                               plan_for_graph, plan_for_sketch,
                               plan_in_limit)

    kwargs: dict = {"speed_ratio": args.speed_ratio}
    if args.methods:
        kwargs["methods"] = [m.strip().upper()
                             for m in args.methods.split(",")
                             if m.strip()]
    if args.orders:
        kwargs["orderings"] = tuple(
            o.strip().lower() for o in args.orders.split(",")
            if o.strip())
    if args.graph:
        if args.limit:
            raise SystemExit("--limit needs --alpha, not --graph")
        graph = load_edge_list(args.graph)
        if args.sketch:
            rng = np.random.default_rng(args.seed)
            plan = plan_for_sketch(graph, args.sketch, rng, **kwargs)
        else:
            plan = plan_for_graph(graph, **kwargs)
        source = args.graph
    elif args.alpha is not None:
        dist = _dist_from_args(args)
        if args.limit:
            plan = plan_in_limit(dist, **kwargs)
            source = f"Pareto(alpha={args.alpha}) limit"
        else:
            plan = plan_for_distribution(dist, n=args.n, **kwargs)
            source = f"Pareto(alpha={args.alpha}), n={args.n}"
    else:
        raise SystemExit("pass --graph PATH or --alpha A")
    if args.json:
        import json as _json
        print(_json.dumps({
            "source": plan.source, "n": plan.n,
            "speed_ratio": plan.speed_ratio,
            "confidence": plan.confidence, "winner": plan.winner,
            "entries": plan.to_rows()}, indent=2))
    else:
        print(f"source: {source}")
        print(format_plan(plan, top=args.top))
    if args.record:
        from repro.obs import records as obs_records
        was_enabled = obs.is_enabled()
        if not was_enabled:
            obs.enable()
        record = obs_records.collect(
            "plan",
            config={"source": plan.source, "input": source,
                    "speed_ratio": plan.speed_ratio,
                    "winner": plan.winner,
                    "confidence": plan.confidence,
                    "plan_rows": plan.to_rows()})
        path = obs_records.write_record(record, args.record)
        print(f"run record appended to {path}")
        if not was_enabled:
            obs.disable()
    return 0


def cmd_regimes(args) -> int:
    """``repro regimes``: finiteness classification per alpha."""
    alphas = [float(a) for a in args.alphas]
    print(format_regime_table(sweep_regimes(alphas)))
    return 0


def cmd_table(args) -> int:
    """``repro table``: regenerate the paper's evaluation tables."""
    from repro.experiments.reproduce import reproduce_all
    reproduce_all(args.out, full=args.full, tables=args.names or None)
    return 0


def cmd_predict(args) -> int:
    """``repro predict``: predict + measure cost from a graph file.

    The section 7.5 workflow: fit the empirical degree histogram, run
    the model (50) for each fundamental method under its optimal
    ordering, and compare against the measured cost of the same graph.
    """
    from repro.distributions.base import EmpiricalDegreeDistribution
    from repro.experiments.comparison import (compare_methods,
                                              format_comparison)
    from repro.pipeline import optimal_order_for
    graph = load_edge_list(args.graph)
    positive = graph.degrees[graph.degrees > 0]
    if positive.size == 0:
        raise SystemExit("graph has no edges; nothing to predict")
    empirical = EmpiricalDegreeDistribution(positive)
    order_to_map = dict(_ORDER_TO_MAP)
    print(f"graph: n={graph.n} m={graph.m}  (histogram support "
          f"[{int(positive.min())}, {int(positive.max())}])\n")
    print(f"{'method':>7} {'order':>11} {'model c_n':>10}")
    for method in ("T1", "T2", "E1", "E4"):
        order = optimal_order_for(method)
        predicted = discrete_cost_model(empirical, method,
                                        order_to_map[order])
        print(f"{method:>7} {order:>11} {predicted:>10.2f}")
    print("\nmeasured (each method under its optimal ordering):")
    print(format_comparison(compare_methods(graph)))
    return 0


def cmd_sweep(args) -> int:
    """``repro sweep``: Monte-Carlo sim-vs-model across graph sizes.

    Fans degree sequences over a process pool
    (:func:`repro.experiments.parallel.sweep_n_parallel`). The RNG
    streams derive from ``--seed`` via ``SeedSequence.spawn``, so the
    rows are bit-for-bit identical for any ``--workers`` /
    ``--chunksize`` setting.

    ``--record PATH`` appends the full run record (span trees with the
    merged worker subtrees, metric snapshot, sim-vs-model rows) to a
    JSONL file -- the input ``repro export`` and ``repro report``
    consume.
    """
    from repro.experiments.harness import SimulationSpec
    from repro.experiments.parallel import (resolve_workers,
                                            sweep_n_parallel)
    from repro.obs import records as obs_records

    dist = _dist_from_args(args)
    trunc = (root_truncation if args.truncation == "root"
             else linear_truncation)
    ns = [int(float(x)) for x in args.ns.split(",") if x.strip()]
    if not ns:
        raise SystemExit("--ns must list at least one graph size")
    spec = SimulationSpec(
        base_dist=dist, truncation=trunc, method=args.method.upper(),
        permutation=_ORDERS[args.order](),
        limit_map=_ORDER_TO_MAP[args.order],
        n_sequences=args.sequences, n_graphs=args.graphs,
        generator=args.generator)
    workers = resolve_workers(args.workers, args.sequences)
    recording = bool(args.record)
    was_enabled = obs.is_enabled()
    if recording:
        obs.enable(memory=getattr(args, "trace_memory", False))
        obs.spans.pop_finished()
    rows = sweep_n_parallel(spec, ns, seed=args.seed,
                            max_workers=args.workers,
                            chunksize=args.chunksize,
                            mp_start=args.mp_start)
    print(f"sweep: {spec.method} under {args.order}, "
          f"alpha={args.alpha}, {args.truncation} truncation, "
          f"{args.sequences}x{args.graphs} instances per n, "
          f"{workers} worker(s), seed={args.seed}")
    print(f"{'n':>9} {'sim c_n':>12} {'model c_n':>12} {'error':>8}")
    for row in rows:
        print(f"{row['n']:>9} {row['sim']:>12.4f} "
              f"{row['model']:>12.4f} {100 * row['error']:>7.1f}%")
    if recording:
        label = f"{spec.method}+{args.order}"
        record = obs_records.collect(
            "sweep",
            config={"method": spec.method, "order": args.order,
                    "alpha": args.alpha, "truncation": args.truncation,
                    "sequences": args.sequences, "graphs": args.graphs,
                    "workers": workers, "seed": args.seed,
                    "rows": [{"label": label, **row} for row in rows]})
        path = obs_records.write_record(record, args.record)
        print(f"\nrun record appended to {path}")
        if not was_enabled:
            obs.disable()
    return 0


def cmd_profile(args) -> int:
    """``repro profile``: run a method/order grid, report phase times.

    Relabel + orient + list each (method, order) combination with the
    observability layer enabled and print a per-phase wall-clock
    breakdown built from the recorded span trees -- the same data the
    JSONL run records carry. ``--record PATH`` appends the full record;
    ``--trace-out`` / ``--flame-out`` export the same spans straight to
    Chrome trace-event JSON / collapsed flame stacks (with
    ``REPRO_PROFILE=1``, per-span cProfile attribution rides along).
    """
    from repro.distributions.sampling import sample_degree_sequence
    from repro.obs import records as obs_records

    methods = [m.strip().upper() for m in args.methods.split(",")
               if m.strip()]
    orders = [o.strip().lower() for o in args.orders.split(",")
              if o.strip()]
    unknown = sorted(set(orders) - set(_ORDERS))
    if unknown:
        raise SystemExit(f"unknown order(s) {unknown}; choose from "
                         f"{sorted(_ORDERS)}")
    if args.graph:
        graph = load_edge_list(args.graph)
        source = args.graph
    else:
        rng = np.random.default_rng(args.seed)
        dist_n = _dist_from_args(args).truncate(root_truncation(args.n))
        degrees = sample_degree_sequence(dist_n, args.n, rng)
        graph = generate_graph(degrees, rng)
        source = f"synthetic Pareto(alpha={args.alpha}, seed={args.seed})"
    was_enabled = obs.is_enabled()
    obs.enable(memory=getattr(args, "trace_memory", False))
    obs.spans.pop_finished()
    rows = []
    roots = []
    for order in orders:
        for method in methods:
            rng = np.random.default_rng(args.seed)
            with obs.span("profile", method=method, order=order):
                oriented = orient(graph, _ORDERS[order](), rng=rng)
                result = list_triangles(oriented, method, collect=False)
            root = obs.pop_finished()[-1]
            roots.append(root)
            totals = root.phase_totals()
            rows.append((method, order,
                         totals.get("relabel", 0) / 1e6,
                         totals.get("orient", 0) / 1e6,
                         totals.get("list", 0) / 1e6,
                         root.duration_ns / 1e6,
                         result.ops, result.count))
    if not was_enabled:
        obs.disable()
    print(f"phase breakdown on {source} (n={graph.n}, m={graph.m})")
    print(f"{'method':>7} {'order':>11} {'relabel ms':>11} "
          f"{'orient ms':>10} {'list ms':>10} {'total ms':>10} "
          f"{'ops':>12} {'triangles':>10}")
    for method, order, relabel, orient_ms, list_ms, total, ops, tri in rows:
        print(f"{method:>7} {order:>11} {relabel:>11.3f} "
              f"{orient_ms:>10.3f} {list_ms:>10.3f} {total:>10.3f} "
              f"{ops:>12} {tri:>10}")
    if args.record or args.trace_out or args.flame_out:
        record = obs_records.collect(
            "profile",
            config={"source": source, "n": graph.n, "m": graph.m,
                    "seed": args.seed, "methods": methods,
                    "orders": orders},
            spans=roots)
        if args.record:
            path = obs_records.write_record(record, args.record)
            print(f"\nrun record appended to {path}")
        if args.trace_out:
            path = obs.write_trace([record], args.trace_out)
            print(f"trace-event JSON written to {path} "
                  f"(open in https://ui.perfetto.dev)")
        if args.flame_out:
            source_kind = ("profile" if any(r.profile for r in roots)
                           else "spans")
            path = obs.write_collapsed([record], args.flame_out,
                                       source=source_kind)
            print(f"collapsed {source_kind} stacks written to {path} "
                  f"(flamegraph.pl / speedscope)")
    return 0


def _report_records(args):
    """Load + filter the run history for ``report`` / ``export``.

    An empty or missing history is a usage error for every consumer:
    exits non-zero with a clear message (no traceback) naming the sink
    that was read and, when filters ate everything, what they dropped.
    """
    from repro.obs import records as obs_records
    from repro.obs import report as obs_report
    sink = obs_records.runs_path(args.runs)
    records = obs_records.load_records(args.runs)
    if not records:
        raise SystemExit(
            f"no run records in {sink}; produce some first (repro "
            f"sweep/profile --record, or the benchmarks) or point "
            f"--runs/REPRO_RUNS_FILE at an existing history")
    filtered = obs_report.filter_records(
        records, names=args.name or None,
        git_rev=getattr(args, "git_rev", None),
        last=getattr(args, "last", None))
    if not filtered:
        raise SystemExit(
            f"no run records matched the filters in {sink} "
            f"({len(records)} record(s) total); loosen --name/"
            f"--git-rev/--last")
    return filtered


def cmd_bench(args) -> int:
    """``repro bench``: engine micro-benchmarks from the CLI.

    ``--native-compare`` renders the side-by-side python / pure-NumPy
    / native ns-per-edge table of :mod:`repro.engine.benchmark` on a
    synthetic (or loaded) graph, and ``--json`` persists the
    machine-readable sidecar (with host metadata, incl. compiler
    version and native thread count) for offline diffing.
    """
    from repro.engine.benchmark import native_compare
    from repro.obs import records as obs_records
    if not args.native_compare:
        raise SystemExit("nothing to do: pass --native-compare")
    rng = np.random.default_rng(args.seed)
    if args.graph:
        graph = load_edge_list(args.graph)
    else:
        dist = _dist_from_args(args)
        dist_n = dist.truncate(root_truncation(args.n))
        degrees = sample_degree_sequence(dist_n, args.n, rng)
        graph = generate_graph(degrees, rng)
    oriented = orient(graph, _ORDERS[args.order](), rng=rng)
    oriented.edge_key_set()  # warm the python engine's membership set
    methods = [m.strip().upper() for m in args.methods.split(",")
               if m.strip()]
    text, data = native_compare(oriented, methods=methods,
                                threads=args.threads,
                                repeats=args.repeats)
    print(text)
    if args.json:
        import json as _json
        data["host"] = obs_records.host_meta()
        with open(args.json, "w") as fh:
            _json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


def cmd_report(args) -> int:
    """``repro report``: analytics over the JSONL run history.

    ``trends`` summarizes per-bench wall clock and headline counters
    by git revision; ``divergence`` tabulates the model-vs-simulation
    error cells; ``baseline`` freezes the aggregated history to a JSON
    file; ``compare`` classifies the history against such a baseline
    and (with ``--fail-on-regress``) exits non-zero on regressions --
    the CI perf gate; ``html`` renders the whole history (plus an
    optional baseline comparison) into one self-contained dashboard.
    ``--json`` switches trends/divergence/compare to machine-readable
    output.
    """
    import dataclasses
    import json

    from repro.obs import baselines as obs_baselines
    from repro.obs import report as obs_report

    records = _report_records(args)
    if args.report_command == "trends":
        rows = obs_report.trend_rows(records)
        if args.json:
            print(json.dumps(rows, indent=2))
        else:
            print(obs_report.format_trends(rows))
        return 0
    if args.report_command == "divergence":
        rows = obs_report.divergence_rows(records)
        if args.json:
            print(json.dumps(rows, indent=2))
        else:
            print(obs_report.format_divergence(rows))
        if args.fail_over is not None:
            worst = max((abs(r["error"]) for r in rows), default=0.0)
            if worst > args.fail_over:
                print(f"FAIL: worst |error| {100 * worst:.1f}% exceeds "
                      f"--fail-over {100 * args.fail_over:.1f}%",
                      file=sys.stderr)
                return 1
        return 0
    if args.report_command == "baseline":
        baseline = obs_baselines.build_baseline(records,
                                                label=args.label)
        path = obs_baselines.save_baseline(baseline, args.out)
        print(f"baseline over {len(records)} record(s) / "
              f"{len(baseline.names())} bench(es) written to {path}")
        return 0
    if args.report_command == "html":
        deltas = baseline_meta = None
        if args.baseline:
            baseline = obs_baselines.load_baseline(args.baseline)
            deltas = obs_baselines.compare(records, baseline)
            baseline_meta = baseline.meta
        audit_records = None
        if args.audit:
            from repro.obs import audit as obs_audit
            audit_records = obs_audit.load_audit(args.audit)
            if not audit_records:
                print(f"note: no audit records in "
                      f"{obs_audit.audit_path(args.audit)}; the audit "
                      f"panel is omitted", file=sys.stderr)
        from repro.obs import dashboard as obs_dashboard
        path = obs_dashboard.write_dashboard(
            records, args.out, deltas=deltas,
            baseline_meta=baseline_meta, title=args.title,
            audit_records=audit_records)
        print(f"dashboard over {len(records)} record(s) written to "
              f"{path}")
        return 0
    # compare
    baseline = obs_baselines.load_baseline(args.baseline)
    deltas = obs_baselines.compare(
        records, baseline, rtol_time=args.rtol_time,
        rtol_value=args.rtol_value, atol_error=args.atol_error,
        include_time=not args.no_time)
    regressed = obs_baselines.has_regressions(deltas)
    if args.json:
        print(json.dumps({
            "baseline": dict(baseline.meta),
            "summary": obs_baselines.summarize_deltas(deltas),
            "regressed": regressed,
            "deltas": [dataclasses.asdict(d) for d in deltas],
        }, indent=2))
    else:
        print(obs_baselines.format_deltas(deltas, show=args.show,
                                          baseline_meta=baseline.meta))
    if regressed:
        if args.fail_on_regress:
            print(f"FAIL: regressions detected against {args.baseline}",
                  file=sys.stderr)
            return 1
        if not args.json:
            print("WARNING: regressions detected (pass "
                  "--fail-on-regress to gate on them)")
    return 0


def _audit_records(args):
    """Load the audit log for ``repro audit``; cold history exits
    non-zero with a clear message (no traceback), like the run-history
    consumers."""
    from repro.obs import audit as obs_audit
    sink = obs_audit.audit_path(args.file)
    records = obs_audit.load_audit(args.file)
    if not records:
        raise SystemExit(
            f"no audit records in {sink}; run auto-routed calls "
            f"(method='auto') with REPRO_AUDIT=1 first, or point "
            f"--file/REPRO_AUDIT_FILE at an existing audit log")
    return records


def cmd_audit(args) -> int:
    """``repro audit``: the model-conformance audit read surface.

    ``summary`` aggregates the audit log into headline regret /
    prediction-ratio numbers plus the per-(method, ordering,
    graph-class) conformance table (``--fail-over R`` exits non-zero
    when the median realized regret exceeds ``R`` -- the CI gate);
    ``misplans`` lists every diagnosed bad pick; ``validate``
    schema-checks the log; ``calibration`` inspects (and with
    ``--measure --record`` feeds) the rolling speed-ratio store behind
    ``speed_ratio="calibrated"``.
    """
    import json

    from repro.obs import audit as obs_audit

    if args.audit_command == "calibration":
        from repro.engine import benchmark as bench
        path = bench.calibration_path(args.store)
        host = bench.host_fingerprint()
        if args.measure:
            ratio = bench.measure_speed_ratio(engine=args.engine)
            print(f"measured speed ratio: {ratio:.4g}x "
                  f"(engine={args.engine}, host={host})")
            if args.record:
                bench.store_calibration(ratio, engine=args.engine,
                                        path=args.store)
                print(f"recorded to {path}")
        store = bench.load_calibration_store(args.store)
        entries = store["entries"]
        if not entries:
            raise SystemExit(
                f"no calibration entries in {path}; measure one with "
                f"`repro audit calibration --measure --record`, or "
                f"run with REPRO_CALIBRATION_WRITE=1 and "
                f"speed_ratio='calibrated'")
        stored = bench.stored_speed_ratio(args.engine, args.store)
        if args.json:
            print(json.dumps({"path": str(path), "host": host,
                              "engine": args.engine,
                              "stored_ratio": stored,
                              "entries": entries}, indent=2))
            return 0
        print(f"calibration store {path} ({len(entries)} entries, "
              f"host {host})")
        lines = [f"{'engine':>8} {'ratio':>9} {'age':>10} {'host':>24}"]
        now = time.time()
        for entry in entries:
            age_s = now - float(entry.get("ts", 0.0))
            age = (f"{age_s / 86400:.1f}d" if age_s >= 86400
                   else f"{age_s:.0f}s")
            mark = "" if entry.get("host") == host else "  (other host)"
            lines.append(f"{str(entry.get('engine')):>8} "
                         f"{entry.get('ratio', 0.0):>8.3g}x {age:>10} "
                         f"{str(entry.get('host')):>24}{mark}")
        print("\n".join(lines))
        if stored is not None:
            print(f"current answer for engine={args.engine}: "
                  f"{stored:.4g}x (median of fresh host-matching "
                  f"entries)")
        else:
            print(f"no fresh host-matching entries for "
                  f"engine={args.engine}: speed_ratio='calibrated' "
                  f"will fall back to a fresh measurement")
        return 0

    if args.audit_command == "validate":
        sink = obs_audit.audit_path(args.file)
        try:
            count, errors = obs_audit.validate_audit_file(args.file)
        except OSError as exc:
            raise SystemExit(f"cannot read {sink}: {exc}")
        if errors:
            print(f"{len(errors)} schema error(s) in {sink}:",
                  file=sys.stderr)
            for error in errors[:20]:
                print(f"  {error}", file=sys.stderr)
            return 1
        print(f"{count} audit record(s) OK in {sink}")
        return 0

    records = _audit_records(args)
    if args.audit_command == "misplans":
        threshold = (args.threshold if args.threshold is not None
                     else obs_audit.MISPLAN_REGRET)
        rows = obs_audit.misplan_rows(records, threshold=threshold)
        if args.json:
            print(json.dumps(rows, indent=2))
        else:
            print(obs_audit.format_misplans(rows))
        return 0

    # summary
    summary = obs_audit.audit_summary(records)
    conformance = obs_audit.conformance_rows(records)
    if args.json:
        print(json.dumps({"summary": summary,
                          "conformance": conformance,
                          "misplans": obs_audit.misplan_rows(records)},
                         indent=2))
    else:
        print(obs_audit.format_summary(records))
    if args.fail_over is not None:
        median_regret = summary.get("median_regret")
        if median_regret is not None and (
                math.isinf(median_regret)
                or median_regret > args.fail_over):
            shown = ("inf" if math.isinf(median_regret)
                     else f"{100 * median_regret:.1f}%")
            print(f"FAIL: median realized regret {shown} exceeds "
                  f"--fail-over {100 * args.fail_over:.1f}%",
                  file=sys.stderr)
            return 1
    return 0


def _mem_pipeline(args):
    """Build a graph and run one ledger-attributed listing pass.

    The array ledger is reset and force-enabled for the run, and the
    compiled kernels are bypassed: the footprint model prices the
    numpy engine's arrays, which the native fast path never
    allocates. The pass drives *exactly* the named method's kernel
    shape (:func:`repro.engine.run_method_kernel`) so every array the
    method genuinely requires materializes -- ``run_numpy``'s
    count-only shortcut would route through the cheapest base shape
    and skip the method's own windows. Returns ``(oriented, count)``.
    """
    from repro.engine import run_method_kernel
    from repro.obs import memory as obs_memory

    obs_memory.reset()
    obs_memory.enable()
    rng = np.random.default_rng(args.seed)
    if args.graph:
        graph = load_edge_list(args.graph)
    else:
        dist = _dist_from_args(args)
        dist_n = dist.truncate(root_truncation(args.n))
        degrees = sample_degree_sequence(dist_n, args.n, rng)
        graph = generate_graph(degrees, rng)
    perm = _ORDERS[args.order]()
    oriented = orient(graph, perm, rng=rng)
    count = run_method_kernel(oriented, args.method)
    return oriented, count


def cmd_mem(args) -> int:
    """``repro mem``: the memory observability read surface.

    Runs one numpy listing pass (synthetic graph, or ``--graph``) with
    the array ledger on, then reads it back: ``summary`` prints the
    headline attribution plus the conformance verdict; ``ledger`` the
    per-tag table; ``conformance`` the full predicted-vs-attributed
    verdict, exiting non-zero on ``fail`` (the CI mem-smoke gate).
    """
    import json

    from repro.obs import memory as obs_memory

    oriented, count = _mem_pipeline(args)
    tolerance = (args.tolerance if args.tolerance is not None
                 else obs_memory.DEFAULT_TOLERANCE)
    report = obs_memory.conformance_report(
        oriented.n, oriented.m, method=args.method,
        tolerance=tolerance)
    if args.mem_command == "ledger":
        rows = obs_memory.ledger_rows()
        if args.json:
            print(json.dumps(rows, indent=2))
        else:
            print(obs_memory.format_ledger(rows))
        return 0
    if args.mem_command == "conformance":
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            print(obs_memory.format_conformance(report))
        return 0 if report["verdict"] == "pass" else 1
    # summary
    summary = obs_memory.ledger_summary()
    if args.json:
        print(json.dumps({"summary": summary, "conformance": report},
                         indent=2))
    else:
        print(f"graph: n={oriented.n} m={oriented.m} "
              f"method={args.method} triangles={count}")
        print(obs_memory.format_summary(summary, report))
    return 0


def cmd_export(args) -> int:
    """``repro export``: recorded runs -> standard viewer formats.

    ``trace`` emits Chrome trace-event JSON (validated before writing;
    open in Perfetto or ``chrome://tracing``); ``flame`` emits
    collapsed stacks for ``flamegraph.pl`` / speedscope, weighted by
    span self-time (``--source spans``) or attached ``REPRO_PROFILE``
    cProfile stats (``--source profile``).
    """
    from repro.obs import export as obs_export

    records = _report_records(args)
    if args.export_command == "trace":
        trace = obs_export.records_to_trace(records)
        n_events = obs_export.validate_trace(trace)
        path = obs_export.write_trace(records, args.out)
        print(f"{n_events} trace event(s) over {len(records)} "
              f"record(s) written to {path} "
              f"(open in https://ui.perfetto.dev)")
        return 0
    # flame
    lines = obs_export.collapsed_stacks(records, source=args.source)
    if not lines:
        raise SystemExit(
            f"no {args.source} stacks in the selected records"
            + ("" if args.source == "spans"
               else " (record with REPRO_PROFILE=1 to attach "
                    "cProfile attribution)"))
    path = obs_export.write_collapsed(records, args.out,
                                      source=args.source)
    print(f"{len(lines)} collapsed stack(s) written to {path} "
          f"(flamegraph.pl / speedscope)")
    return 0


def cmd_top(args) -> int:
    """``repro top``: terminal view over a live-telemetry event stream.

    Follows the JSONL stream a run writes under
    ``REPRO_LIVE_EVENTS=PATH`` and refreshes a status block in place:
    current phase, progress %, model-ops ETA, RSS/CPU, per-worker
    liveness, and memory pressure. ``--once`` renders the current
    state and exits (add ``--json`` for a machine-readable dump);
    ``--validate`` schema-checks the stream instead (the CI gate) and
    exits non-zero on any malformed event.
    """
    import json

    from repro.obs import bus as obs_bus
    from repro.obs import live as obs_live
    if args.validate:
        try:
            count, errors = obs_bus.validate_events_file(args.events)
        except OSError as exc:
            raise SystemExit(f"cannot read {args.events}: {exc}")
        if errors:
            print(f"{len(errors)} schema error(s) in {args.events}:",
                  file=sys.stderr)
            for error in errors[:20]:
                print(f"  {error}", file=sys.stderr)
            return 1
        print(f"{count} event(s) OK in {args.events}")
        return 0
    state = obs_live.LiveState()
    offset = 0
    try:
        while True:
            try:
                events, offset = obs_live.read_events(args.events,
                                                      offset)
            except OSError:
                events = []
            state.update_many(events)
            if args.once:
                if args.json:
                    print(json.dumps(state.to_dict(), indent=2))
                else:
                    print(obs_live.render_status(state))
                return 0
            text = obs_live.render_status(state)
            sys.stdout.write("\x1b[H\x1b[2J" + text + "\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


def cmd_serve_metrics(args) -> int:
    """``repro serve-metrics``: Prometheus-text scrape endpoint.

    Serves ``GET /metrics`` in text exposition format. By default the
    gauges/counters come from this process's registry (useful when
    embedding); with ``--events PATH`` every scrape re-reads the live
    event stream another process is writing, so the endpoint can sit
    next to a running sweep. ``--once`` serves exactly one request and
    exits (the CI smoke mode).
    """
    from repro.obs import live as obs_live
    render = None
    if args.events:
        events_path = args.events

        def render():
            state = obs_live.LiveState()
            try:
                events, __ = obs_live.read_events(events_path, 0)
            except OSError:
                events = []
            state.update_many(events)
            return obs_live.render_prometheus(
                extra_gauges=state.to_gauges())

    server = obs_live.MetricsServer(port=args.port, host=args.host,
                                    render=render)
    if args.once:
        port = server.bind_plain()
        print(f"serving one scrape on http://{args.host}:{port}/metrics",
              flush=True)
        server.handle_one_request()
        server.stop()
        return 0
    port = server.start()
    print(f"serving Prometheus metrics on "
          f"http://{args.host}:{port}/metrics (Ctrl-C to stop)",
          flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    server.stop()
    return 0


def _package_version() -> str:
    """Installed package version, falling back to the module constant."""
    try:
        from importlib.metadata import version
        return version("repro")
    except Exception:
        import repro
        return getattr(repro, "__version__", "unknown")


def _print_trace() -> None:
    """Print collected span trees and counters after a traced run."""
    roots = obs.pop_finished()
    if roots:
        print("\n-- trace " + "-" * 31)
        for root in roots:
            print(obs.format_span_tree(root))
    counters = obs.metrics_snapshot().get("counters", {})
    if counters:
        print("-- metrics " + "-" * 29)
        for name in sorted(counters):
            print(f"  {name} = {counters[name]}")


def build_parser() -> argparse.ArgumentParser:
    """Assemble the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Triangle-listing cost analysis (PODS 2017 "
                    "reproduction)")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {_package_version()}")
    trace_parent = argparse.ArgumentParser(add_help=False)
    trace_parent.add_argument(
        "--trace", action="store_true",
        help="record spans/metrics and print them after the run "
             "(also enabled by REPRO_TRACE=1)")
    trace_parent.add_argument(
        "--trace-memory", action="store_true",
        help="with --trace: track peak memory via tracemalloc")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_parser(name, **kwargs):
        return sub.add_parser(name, parents=[trace_parent], **kwargs)

    p = add_parser("generate", help="sample and realize a random graph")
    _add_dist_args(p)
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--truncation", choices=("linear", "root"),
                   default="root")
    p.add_argument("--generator", choices=("residual", "configuration"),
                   default="residual")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True, help="edge-list output path")
    p.set_defaults(func=cmd_generate)

    p = add_parser("triangles", help="orient and list triangles")
    p.add_argument("--graph", required=True, help="edge-list path")
    p.add_argument("--method", default="E1",
                   help="T1-T6, E1-E6, L1-L6, or 'auto' (cost-model "
                        "planner picks the cheapest method for the "
                        "chosen order)")
    p.add_argument("--order", choices=sorted(_ORDERS),
                   default="descending")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_triangles)

    p = add_parser("model", help="evaluate the discrete model (50)")
    _add_dist_args(p)
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--method", default="T1")
    p.add_argument("--map", default="descending",
                   choices=sorted(_ORDER_TO_MAP.values()))
    p.add_argument("--truncation", choices=("linear", "root"),
                   default="linear")
    p.add_argument("--fast", action="store_true",
                   help="force Algorithm 2 (automatic for n > 1e7)")
    p.add_argument("--eps", type=float, default=1e-5)
    p.set_defaults(func=cmd_model)

    p = add_parser("limit", help="the n -> inf cost limit")
    _add_dist_args(p)
    p.add_argument("--method", default="T1")
    p.add_argument("--map", default="descending",
                   choices=sorted(_ORDER_TO_MAP.values()))
    p.set_defaults(func=cmd_limit)

    p = add_parser("decide", help="SEI vs hash decision rule")
    p.add_argument("--graph", default=None,
                   help="edge-list path (omit to decide in the limit)")
    p.add_argument("--alpha", type=float, default=1.7)
    p.add_argument("--beta", type=float, default=None)
    p.add_argument("--speed-ratio", default=None,
                   help="SEI-to-hash per-op speed ratio: a number, "
                        "'paper' (94.8), or 'calibrated' (measure "
                        "this host); default: REPRO_SPEED_RATIO or "
                        "the paper's 94.8")
    p.set_defaults(func=cmd_decide)

    p = add_parser("plan",
                   help="rank every (method, ordering) candidate by "
                        "modeled cost")
    p.add_argument("--graph", default=None,
                   help="edge-list path (exact backend; omit for a "
                        "Pareto law)")
    p.add_argument("--sketch", type=int, default=None, metavar="K",
                   help="with --graph: plan from K sampled degrees "
                        "instead of the exact costs")
    p.add_argument("--alpha", type=float, default=None,
                   help="Pareto tail index (model backend)")
    p.add_argument("--beta", type=float, default=None,
                   help="Pareto scale (default: 30 (alpha - 1))")
    p.add_argument("--n", type=int, default=None,
                   help="with --alpha: graph size (root truncation)")
    p.add_argument("--limit", action="store_true",
                   help="with --alpha: rank the n -> inf limit costs")
    p.add_argument("--speed-ratio", default=None,
                   help="a number, 'paper', or 'calibrated' (default: "
                        "REPRO_SPEED_RATIO or the paper's 94.8)")
    p.add_argument("--methods", default=None,
                   help="comma-separated subset (default: all 18; "
                        "--limit defaults to T1,T2,E1,E4)")
    p.add_argument("--orders", default=None,
                   help="comma-separated subset of "
                        "ascending,descending,rr,crr,opt,degenerate "
                        "(degenerate needs --graph without --sketch)")
    p.add_argument("--top", type=int, default=10,
                   help="rows to print (default 10)")
    p.add_argument("--seed", type=int, default=0,
                   help="rng seed for --sketch sampling")
    p.add_argument("--json", action="store_true",
                   help="also print the full plan as JSON")
    p.add_argument("--record", default=None, metavar="PATH",
                   help="append a run record with the plan table to "
                        "this JSONL file")
    p.set_defaults(func=cmd_plan)

    p = add_parser("regimes", help="finiteness regimes over alpha")
    p.add_argument("alphas", nargs="+",
                   help="tail indices to classify, e.g. 1.3 1.4 1.6 2.1")
    p.set_defaults(func=cmd_regimes)

    p = add_parser("predict",
                       help="predict + measure per-method cost from an "
                            "edge list")
    p.add_argument("--graph", required=True, help="edge-list path")
    p.set_defaults(func=cmd_predict)

    p = add_parser("table",
                       help="regenerate the paper's evaluation tables")
    p.add_argument("names", nargs="*",
                   help="subset, e.g. table05 table12 (default: all)")
    p.add_argument("--out", default="reproduction")
    p.add_argument("--full", action="store_true")
    p.set_defaults(func=cmd_table)

    p = add_parser("sweep",
                   help="parallel Monte-Carlo sweep: sim vs model "
                        "across n")
    _add_dist_args(p)
    p.add_argument("--method", default="T1",
                   help="T1-T6, E1-E6, or L1-L6")
    p.add_argument("--order", choices=sorted(_ORDER_TO_MAP),
                   default="descending")
    p.add_argument("--ns", default="1000,3000,10000",
                   help="comma-separated graph sizes (floats ok, e.g. "
                        "1e4)")
    p.add_argument("--sequences", type=int, default=4,
                   help="degree sequences per n")
    p.add_argument("--graphs", type=int, default=4,
                   help="graph realizations per sequence")
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool size (default: REPRO_MAX_WORKERS "
                        "or cpu count)")
    p.add_argument("--chunksize", type=int, default=None,
                   help="tasks per worker dispatch (default: "
                        "~4 chunks/worker)")
    p.add_argument("--mp-start", default=None,
                   choices=("fork", "spawn", "forkserver"),
                   help="multiprocessing start method (default: "
                        "REPRO_MP_START or the platform default)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--truncation", choices=("linear", "root"),
                   default="root")
    p.add_argument("--generator", choices=("residual", "configuration"),
                   default="residual")
    p.add_argument("--record", default=None, metavar="PATH",
                   help="append the full run record (spans incl. "
                        "worker trees, metrics, sim-vs-model rows) to "
                        "this JSONL file")
    p.set_defaults(func=cmd_sweep)

    p = add_parser("report",
                   help="run-history analytics & perf-regression gate")
    rsub = p.add_subparsers(dest="report_command", required=True)

    def add_report_parser(name, **kwargs):
        rp = rsub.add_parser(name, **kwargs)
        rp.add_argument("--runs", "--runs-file", dest="runs",
                        default=None, metavar="PATH",
                        help="runs.jsonl to read (default: "
                             "REPRO_RUNS_FILE or "
                             "benchmarks/results/runs.jsonl)")
        rp.add_argument("--name", action="append", default=None,
                        metavar="PATTERN",
                        help="only benches matching this fnmatch "
                             "pattern (repeatable)")
        rp.add_argument("--last", type=int, default=None, metavar="K",
                        help="only the most recent K records per bench")
        rp.set_defaults(func=cmd_report)
        return rp

    rp = add_report_parser(
        "trends", help="wall-clock & counter trajectory per git rev")
    rp.add_argument("--git-rev", default=None,
                    help="restrict to one git revision")
    rp.add_argument("--json", action="store_true",
                    help="print the trend rows as JSON")

    rp = add_report_parser(
        "baseline", help="freeze the aggregated history to a JSON file")
    rp.add_argument("--out", required=True, metavar="FILE",
                    help="baseline file to write (convention: "
                         "benchmarks/baselines/<name>.json)")
    rp.add_argument("--label", default=None,
                    help="free-form label stored in the baseline meta")
    rp.add_argument("--git-rev", default=None,
                    help="restrict to records of one git revision")

    rp = add_report_parser(
        "compare",
        help="classify the history against a baseline "
             "(improved/unchanged/regressed)")
    rp.add_argument("--baseline", required=True, metavar="FILE",
                    help="baseline JSON produced by `repro report "
                         "baseline`")
    rp.add_argument("--rtol-time", type=float, default=0.25,
                    help="relative tolerance for wall-clock metrics "
                         "(default 0.25)")
    rp.add_argument("--rtol-value", type=float, default=1e-6,
                    help="relative tolerance for deterministic "
                         "counters/costs (default 1e-6)")
    rp.add_argument("--atol-error", type=float, default=0.05,
                    help="absolute tolerance for |model error| growth "
                         "(default 0.05)")
    rp.add_argument("--no-time", action="store_true",
                    help="ignore wall-clock metrics (cross-machine CI "
                         "mode: gate on deterministic cells only)")
    rp.add_argument("--fail-on-regress", action="store_true",
                    help="exit non-zero when any cell regressed")
    rp.add_argument("--show", choices=("changed", "all"),
                    default="changed",
                    help="print only changed cells (default) or all")
    rp.add_argument("--git-rev", default=None,
                    help="restrict to records of one git revision")
    rp.add_argument("--json", action="store_true",
                    help="print summary + every delta as JSON")

    rp = add_report_parser(
        "divergence", help="model-vs-simulation error table")
    rp.add_argument("--fail-over", type=float, default=None,
                    metavar="ERR",
                    help="exit non-zero if any cell's median |error| "
                         "exceeds this fraction")
    rp.add_argument("--json", action="store_true",
                    help="print the divergence rows as JSON")

    rp = add_report_parser(
        "html", help="self-contained HTML dashboard over the history")
    rp.add_argument("--out", required=True, metavar="FILE",
                    help="dashboard HTML file to write")
    rp.add_argument("--baseline", default=None, metavar="FILE",
                    help="also compare against this baseline and show "
                         "the verdicts")
    rp.add_argument("--audit", default=None, metavar="PATH",
                    help="also render the planner-audit panel from "
                         "this audit.jsonl (see `repro audit`)")
    rp.add_argument("--title", default="repro run history",
                    help="page title")
    rp.add_argument("--git-rev", default=None,
                    help="restrict to records of one git revision")

    p = add_parser("audit",
                   help="planner model-conformance audit "
                        "(predicted vs actual)")
    asub = p.add_subparsers(dest="audit_command", required=True)

    def add_audit_parser(name, **kwargs):
        ap = asub.add_parser(name, **kwargs)
        ap.add_argument("--file", default=None, metavar="PATH",
                        help="audit.jsonl to read (default: "
                             "REPRO_AUDIT_FILE or "
                             "benchmarks/results/audit.jsonl)")
        ap.set_defaults(func=cmd_audit)
        return ap

    ap = add_audit_parser(
        "summary",
        help="headline regret/calibration numbers + conformance table")
    ap.add_argument("--json", action="store_true",
                    help="print summary, conformance rows, and "
                         "misplans as JSON")
    ap.add_argument("--fail-over", type=float, default=None,
                    metavar="REGRET",
                    help="exit non-zero if the median realized regret "
                         "exceeds this fraction (the CI gate)")

    ap = add_audit_parser(
        "misplans", help="diagnosed bad picks, worst regret first")
    ap.add_argument("--threshold", type=float, default=None,
                    metavar="REGRET",
                    help="realized-regret threshold (default: the "
                         "committed 10%% misplan threshold)")
    ap.add_argument("--json", action="store_true",
                    help="print the misplan rows as JSON")

    ap = add_audit_parser(
        "validate",
        help="schema-check the audit log; exit non-zero on errors")

    ap = add_audit_parser(
        "calibration",
        help="inspect/feed the rolling speed-ratio store")
    ap.add_argument("--store", default=None, metavar="PATH",
                    help="store file (default: REPRO_CALIBRATION_FILE "
                         "or benchmarks/baselines/speed_ratio.json)")
    ap.add_argument("--engine", default="numpy",
                    help="engine whose ratio to resolve "
                         "(default numpy)")
    ap.add_argument("--measure", action="store_true",
                    help="measure a fresh ratio on this host first")
    ap.add_argument("--record", action="store_true",
                    help="with --measure: append the measurement to "
                         "the store")
    ap.add_argument("--json", action="store_true",
                    help="print the store and resolved ratio as JSON")

    p = add_parser("mem",
                   help="memory observability: array ledger + "
                        "footprint conformance")
    msub = p.add_subparsers(dest="mem_command", required=True)

    def add_mem_parser(name, **kwargs):
        mp = msub.add_parser(name, **kwargs)
        mp.add_argument("--graph", default=None, metavar="PATH",
                        help="edge-list to attribute (omit for a "
                             "synthetic Pareto graph)")
        mp.add_argument("--n", type=int, default=100_000,
                        help="synthetic graph size (default 100000)")
        mp.add_argument("--alpha", type=float, default=1.7,
                        help="synthetic Pareto tail index "
                             "(default 1.7)")
        mp.add_argument("--beta", type=float, default=None,
                        help="Pareto scale (default: 30 (alpha - 1))")
        mp.add_argument("--seed", type=int, default=7,
                        help="RNG seed (default 7)")
        mp.add_argument("--method", default="E1",
                        help="listing method to run (default E1)")
        mp.add_argument("--order", choices=sorted(_ORDERS),
                        default="descending",
                        help="vertex ordering (default descending)")
        mp.add_argument("--tolerance", type=float,
                        default=None, metavar="FRAC",
                        help="conformance tolerance as a fraction "
                             "(default 0.10)")
        mp.add_argument("--json", action="store_true",
                        help="print the result as JSON")
        mp.set_defaults(func=cmd_mem)
        return mp

    add_mem_parser("summary",
                   help="headline attributed bytes + conformance "
                        "verdict")
    add_mem_parser("ledger", help="the per-tag attribution table")
    add_mem_parser("conformance",
                   help="predicted-vs-attributed footprint verdict; "
                        "exit non-zero on fail (the CI gate)")

    p = add_parser("export",
                   help="recorded runs -> Chrome trace JSON / flame "
                        "stacks")
    esub = p.add_subparsers(dest="export_command", required=True)

    def add_export_parser(name, **kwargs):
        ep = esub.add_parser(name, **kwargs)
        ep.add_argument("--runs", "--runs-file", dest="runs",
                        default=None, metavar="PATH",
                        help="runs.jsonl to read (default: "
                             "REPRO_RUNS_FILE or "
                             "benchmarks/results/runs.jsonl)")
        ep.add_argument("--name", action="append", default=None,
                        metavar="PATTERN",
                        help="only benches matching this fnmatch "
                             "pattern (repeatable)")
        ep.add_argument("--last", type=int, default=None, metavar="K",
                        help="only the most recent K records per bench")
        ep.add_argument("--out", required=True, metavar="FILE",
                        help="output file to write")
        ep.set_defaults(func=cmd_export)
        return ep

    add_export_parser(
        "trace",
        help="Chrome trace-event JSON (Perfetto / chrome://tracing)")
    ep = add_export_parser(
        "flame",
        help="collapsed stacks (flamegraph.pl / speedscope)")
    ep.add_argument("--source", choices=("spans", "profile"),
                    default="spans",
                    help="weight by span self-time (default) or "
                         "attached REPRO_PROFILE cProfile stats")

    p = add_parser("top",
                   help="live terminal view over a telemetry event "
                        "stream")
    p.add_argument("--events", required=True, metavar="PATH",
                   help="JSONL event stream a run writes under "
                        "REPRO_LIVE_EVENTS=PATH")
    p.add_argument("--interval", type=float, default=1.0,
                   help="refresh period in seconds (default 1.0)")
    p.add_argument("--once", action="store_true",
                   help="render the current state once and exit")
    p.add_argument("--json", action="store_true",
                   help="with --once: print the state as JSON instead "
                        "of the status block")
    p.add_argument("--validate", action="store_true",
                   help="schema-check the stream instead of rendering; "
                        "exit non-zero on malformed events")
    p.set_defaults(func=cmd_top)

    p = add_parser("serve-metrics",
                   help="Prometheus-text scrape endpoint "
                        "(GET /metrics)")
    p.add_argument("--port", type=int, default=9464,
                   help="port to bind (0 = ephemeral; default 9464)")
    p.add_argument("--host", default="127.0.0.1",
                   help="address to bind (default 127.0.0.1)")
    p.add_argument("--events", default=None, metavar="PATH",
                   help="derive gauges from this live event stream "
                        "(default: this process's metric registry)")
    p.add_argument("--once", action="store_true",
                   help="serve exactly one request and exit (CI smoke "
                        "mode)")
    p.set_defaults(func=cmd_serve_metrics)

    p = add_parser("profile",
                   help="phase-time breakdown over a method/order grid")
    p.add_argument("--graph", default=None,
                   help="edge-list path (omit to profile a synthetic "
                        "graph)")
    p.add_argument("--n", type=int, default=3000,
                   help="synthetic graph size (ignored with --graph)")
    p.add_argument("--alpha", type=float, default=1.7,
                   help="synthetic Pareto tail index")
    p.add_argument("--beta", type=float, default=None,
                   help="Pareto scale (default: 30 (alpha - 1))")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--methods", default="T1,T2,E1,E4,L1,L3",
                   help="comma-separated listing methods")
    p.add_argument("--orders", default="descending",
                   help="comma-separated orderings "
                        f"({', '.join(sorted(_ORDERS))})")
    p.add_argument("--record", default=None, metavar="PATH",
                   help="also append the full run record to this JSONL "
                        "file")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="also write Chrome trace-event JSON of the "
                        "profiled spans")
    p.add_argument("--flame-out", default=None, metavar="FILE",
                   help="also write collapsed flame stacks of the "
                        "profiled spans")
    p.set_defaults(func=cmd_profile)

    p = add_parser("bench",
                   help="engine micro-benchmarks "
                        "(--native-compare: py/numpy/native ns/edge)")
    p.add_argument("--native-compare", action="store_true",
                   help="compare python / pure-NumPy / native engines")
    p.add_argument("--graph", default=None,
                   help="edge-list path (omit to bench a synthetic "
                        "graph)")
    p.add_argument("--n", type=int, default=3000,
                   help="synthetic graph size (ignored with --graph)")
    p.add_argument("--alpha", type=float, default=1.7,
                   help="synthetic Pareto tail index")
    p.add_argument("--beta", type=float, default=None,
                   help="Pareto scale (default: 30 (alpha - 1))")
    p.add_argument("--seed", type=int, default=3)
    p.add_argument("--order", default="descending",
                   choices=sorted(_ORDERS))
    p.add_argument("--methods", default=",".join(
        ("T1", "T2", "E1", "E4", "L1", "L3")),
        help="comma-separated listing methods")
    p.add_argument("--threads", type=int, default=None,
                   help="native thread count (default: "
                        "REPRO_NATIVE_THREADS / cpu count)")
    p.add_argument("--repeats", type=int, default=3,
                   help="timing repeats per cell (best is kept)")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="also write the machine-readable comparison")
    p.set_defaults(func=cmd_bench)
    return parser


def main(argv=None) -> int:
    """Entry point: parse arguments and dispatch.

    ``--trace`` (or ``REPRO_TRACE=1``) enables the observability layer
    for the dispatched subcommand and prints the recorded span trees
    and metric counters afterwards.
    """
    args = build_parser().parse_args(argv)
    trace = getattr(args, "trace", False)
    if trace:
        obs.enable(memory=getattr(args, "trace_memory", False))
        obs.spans.pop_finished()
    else:
        trace = obs.enable_from_env()
    # REPRO_LIVE=1 starts the live runtime (sampler, event bus sinks,
    # span phase hook, optional metrics endpoint) around the command.
    live_on = (args.func not in (cmd_top, cmd_serve_metrics)
               and obs.live.enable_from_env())
    try:
        rc = args.func(args)
    finally:
        if live_on:
            obs.live.disable()
    if trace:
        _print_trace()
        obs.disable()
    return rc


if __name__ == "__main__":
    sys.exit(main())
