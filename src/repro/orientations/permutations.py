"""The permutation zoo: ascending, descending, RR, CRR, uniform, OPT.

Conventions (paper section 2.1 / section 4, shifted to 0-based indexing):

* A :class:`Permutation` produces an array ``theta`` of length ``n`` with
  ``theta[j]`` the *label* assigned to the node of ascending-degree rank
  ``j`` (rank 0 = smallest degree). ``theta`` is a bijection on
  ``{0, ..., n-1}``.
* The ascending permutation is the identity, the descending one is
  ``theta[j] = n - 1 - j``.
* Round-Robin, eq. (32) (1-based): ``theta(i) = ceil((n+i)/2)`` for odd
  ``i`` and ``floor((n-i)/2) + 1`` for even ``i`` -- it alternately deals
  ranks outward so the largest degrees land at both ends of ``[1, n]``.
* Complementary Round-Robin applies RR starting from the *descending*
  order: ``theta''(i) = theta(n - i + 1)``, pushing large degrees toward
  the middle.
* :class:`OptPermutation` is Algorithm 1: sort the key vector
  ``(h(1/n), ..., h(1))`` against the monotonicity of
  ``r(x) = g(J^{-1}(x)) / w(J^{-1}(x))`` and read off the label order.
"""

from __future__ import annotations

import abc
from typing import Callable

import numpy as np


class Permutation(abc.ABC):
    """Abstract rank-to-label permutation ``theta_n``.

    Subclasses implement :meth:`rank_to_label`. Degree-*independent*
    orientations (the degenerate order of [29]) instead override
    :meth:`labels_for`, which receives the graph.
    """

    #: Whether the permutation itself is random (uniform orientation).
    is_random: bool = False

    @abc.abstractmethod
    def rank_to_label(self, n: int,
                      rng: np.random.Generator | None = None) -> np.ndarray:
        """Return ``theta`` with ``theta[j]`` = label of ascending rank ``j``."""

    def labels_for(self, graph, rng: np.random.Generator | None = None,
                   tie_break: str = "stable") -> np.ndarray:
        """Per-vertex labels for ``graph`` under this permutation.

        Vertices are first sorted ascending by degree; ``tie_break``
        decides the order within equal degrees: ``"stable"`` keeps vertex
        ID order (deterministic), ``"random"`` shuffles ties (requires
        ``rng``), mirroring the paper's "ties are broken arbitrarily".
        """
        from repro.orientations.relabel import labels_from_rank_map
        theta = self.rank_to_label(graph.n, rng)
        return labels_from_rank_map(graph.degrees, theta, rng=rng,
                                    tie_break=tie_break)

    @property
    def name(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class AscendingDegree(Permutation):
    """``theta_A``: identity on ranks -- small degrees get small labels."""

    def rank_to_label(self, n, rng=None):
        return np.arange(n, dtype=np.int64)


class DescendingDegree(Permutation):
    """``theta_D``: rank reversal -- large degrees get small labels.

    Optimal for T1 and E1 (Corollary 1): the largest degrees become
    mostly in-degree, keeping out-degrees (and hence ``X(X-1)/2``) small.
    """

    def rank_to_label(self, n, rng=None):
        return np.arange(n - 1, -1, -1, dtype=np.int64)


class RoundRobin(Permutation):
    """``theta_RR`` of eq. (32): deals large degrees to both ends.

    Optimal for T2 (Corollary 2), whose ``h(x) = x (1 - x)`` is smallest
    at the boundary of ``[0, 1]``.
    """

    def rank_to_label(self, n, rng=None):
        theta = np.empty(n, dtype=np.int64)
        i = np.arange(1, n + 1)  # paper's 1-based rank
        odd = i % 2 == 1
        labels = np.where(odd, np.ceil((n + i) / 2.0),
                          np.floor((n - i) / 2.0) + 1.0)
        theta[:] = labels.astype(np.int64) - 1  # back to 0-based labels
        return theta


class ComplementaryRoundRobin(Permutation):
    """``theta_CRR = theta_RR''``: RR applied from the descending order.

    Places large degrees toward the middle of ``[1, n]``; optimal for E4
    (Corollary 2), whose ``h(x) = (x^2 + (1-x)^2)/2`` dips at ``x = 1/2``.
    """

    def rank_to_label(self, n, rng=None):
        return RoundRobin().rank_to_label(n, rng)[::-1].copy()


class UniformRandom(Permutation):
    """``theta_U``: a uniformly random bijection (hash-based IDs, [14]).

    Its limiting map ``xi_U(u)`` is uniform on ``[0, 1]`` regardless of
    ``u``; the cost becomes ``E[g(D)] E[h(U)]`` (eq. (31)), a 3x saving
    over no orientation for every method.
    """

    is_random = True

    def rank_to_label(self, n, rng=None):
        if rng is None:
            raise ValueError("UniformRandom requires an rng")
        return rng.permutation(n).astype(np.int64)


class ExplicitPermutation(Permutation):
    """Wrap a user-supplied rank-to-label array."""

    def __init__(self, theta):
        theta = np.asarray(theta, dtype=np.int64)
        n = theta.size
        if np.unique(theta).size != n or (
                n and (theta.min() != 0 or theta.max() != n - 1)):
            raise ValueError("theta must be a permutation of 0..n-1")
        self._theta = theta

    def rank_to_label(self, n, rng=None):
        if n != self._theta.size:
            raise ValueError(
                f"permutation built for n={self._theta.size}, asked for {n}")
        return self._theta.copy()


class OptPermutation(Permutation):
    """Algorithm 1: the cost-minimizing permutation for monotonic r(x).

    Builds the key vector ``z = (h(1/n), ..., h(1))``, sorts it
    *descending* when ``r`` is increasing (ascending otherwise), and
    assigns ``theta[j] = i_j`` -- the rank-``j`` node receives the label
    whose ``h`` value sits at sorted position ``j``. Theorem 3 proves
    this minimizes the cost functional (37).

    Parameters
    ----------
    h:
        The method's ``h`` function (Table 4), vectorized over arrays.
    r_increasing:
        Monotonicity of ``r(x) = g(J^{-1}(x)) / w(J^{-1}(x))``. For
        triangle listing with ``w(x) = min(x, a)`` this is increasing
        (section 6.1), which is the default.
    """

    def __init__(self, h: Callable[[np.ndarray], np.ndarray],
                 r_increasing: bool = True):
        self.h = h
        self.r_increasing = r_increasing

    def rank_to_label(self, n, rng=None):
        positions = np.arange(1, n + 1, dtype=float)
        keys = np.asarray(self.h(positions / n), dtype=float)
        if keys.shape != (n,):
            raise ValueError("h must map an (n,) array to an (n,) array")
        # stable sort so ties keep a deterministic order
        order = np.argsort(keys, kind="stable")
        if self.r_increasing:
            order = order[::-1]
        return order.astype(np.int64)

    def __repr__(self) -> str:
        return (f"OptPermutation(h={getattr(self.h, '__name__', self.h)!r}, "
                f"r_increasing={self.r_increasing})")


class _ReversedPermutation(Permutation):
    """``theta'(j) = n - 1 - theta(j)`` (Proposition 1 / 7)."""

    def __init__(self, base: Permutation):
        self.base = base
        self.is_random = base.is_random

    def rank_to_label(self, n, rng=None):
        return (n - 1) - self.base.rank_to_label(n, rng)

    def __repr__(self) -> str:
        return f"reverse({self.base!r})"


class _ComplementedPermutation(Permutation):
    """``theta''(j) = theta(n - 1 - j)`` (section 5.3 / Proposition 7)."""

    def __init__(self, base: Permutation):
        self.base = base
        self.is_random = base.is_random

    def rank_to_label(self, n, rng=None):
        return self.base.rank_to_label(n, rng)[::-1].copy()

    def __repr__(self) -> str:
        return f"complement({self.base!r})"


def reverse_permutation(perm: Permutation) -> Permutation:
    """The reverse ``theta'``: swaps the roles of out- and in-degree.

    Proposition 1: reversing the permutation swaps ``X_i`` with ``Y_i``
    in every overhead function, which is what makes T1/T3 (and E1/E3)
    equivalence classes.
    """
    return _ReversedPermutation(perm)


def complement_permutation(perm: Permutation) -> Permutation:
    """The complement ``theta''``: applies theta from the descending order.

    Corollary 3: a map is optimal for a method iff its complement is the
    worst, so this is also the "pessimal permutation" constructor.
    """
    return _ComplementedPermutation(perm)
