"""Degenerate (smallest-last) orientation of Matula and Beck [29].

Section 1.1 and 7.5: the *degenerate* orientation minimizes the largest
out-degree, ``min_theta max_i X_i(theta)``, achieving out-degrees bounded
by the graph's degeneracy. It is computable in ``O(n + m)`` with the
smallest-last ordering: repeatedly delete a minimum-degree vertex; the
reverse deletion order is the ordering.

To express it in the paper's label framework we give the *first deleted*
vertex the *largest* label: when a vertex is deleted, its still-present
neighbors are deleted later and therefore receive smaller labels, so they
are exactly its out-neighbors -- making each out-degree equal to the
vertex's degree at deletion time, which is at most the degeneracy.
"""

from __future__ import annotations

import numpy as np

from repro.orientations.permutations import Permutation


def smallest_last_order(graph) -> tuple[np.ndarray, int]:
    """Return ``(deletion_order, degeneracy)`` via a bucket queue.

    ``deletion_order[k]`` is the vertex removed at step ``k`` (a
    minimum-degree vertex of the residual graph). Runs in ``O(n + m)``.
    """
    n = graph.n
    degree = graph.degrees.copy()
    max_deg = int(degree.max()) if n else 0
    # bucket queue: doubly indexed by current degree
    buckets: list[list[int]] = [[] for __ in range(max_deg + 1)]
    position = np.empty(n, dtype=np.int64)
    for v in range(n):
        d = int(degree[v])
        position[v] = len(buckets[d])
        buckets[d].append(v)
    removed = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    degeneracy = 0
    current = 0
    for step in range(n):
        # find the lowest non-empty bucket; `current` can only have
        # decreased by 1 per removal, so this scan is amortized O(n + m)
        current = max(current - 1, 0)
        while current <= max_deg and not buckets[current]:
            current += 1
        v = buckets[current].pop()
        removed[v] = True
        order[step] = v
        degeneracy = max(degeneracy, current)
        for u in graph.neighbors(v):
            u = int(u)
            if removed[u]:
                continue
            d = int(degree[u])
            # move u from bucket d to bucket d-1 (swap-with-last delete)
            bucket = buckets[d]
            pos = int(position[u])
            last = bucket[-1]
            bucket[pos] = last
            position[last] = pos
            bucket.pop()
            degree[u] = d - 1
            position[u] = len(buckets[d - 1])
            buckets[d - 1].append(u)
    return order, degeneracy


class DegenerateOrder(Permutation):
    """``theta_degen``: labels from the smallest-last ordering [29].

    Unlike the degree-based permutations this one needs the full edge
    structure, so it overrides :meth:`labels_for`; asking it for a bare
    rank-to-label map raises.
    """

    def rank_to_label(self, n, rng=None):
        raise TypeError(
            "DegenerateOrder depends on the graph structure; use "
            "labels_for(graph) / orient(graph, DegenerateOrder())")

    def labels_for(self, graph, rng=None, tie_break="stable"):
        order, __ = smallest_last_order(graph)
        labels = np.empty(graph.n, dtype=np.int64)
        # first deleted -> largest label
        labels[order] = np.arange(graph.n - 1, -1, -1, dtype=np.int64)
        return labels
