"""Steps 1 + 2 of the paper's three-step framework: relabel and orient.

Section 2.1: (1) sort the nodes by the global order O and assign IDs
sequentially; (2) split each adjacency list into out-neighbors (smaller
new IDs) and in-neighbors (larger new IDs). Step 3 (listing) lives in
``repro.listing``.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.digraph import OrientedGraph
from repro.obs import metrics as _metrics
from repro.obs.spans import span
from repro.orientations.permutations import Permutation


def labels_from_rank_map(degrees, theta,
                         rng: np.random.Generator | None = None,
                         tie_break: str = "stable") -> np.ndarray:
    """Compose ascending-degree ranking with a rank-to-label map.

    ``theta[j]`` is the label given to the vertex of ascending-degree
    rank ``j``; the returned array maps *vertex ID* to label. Ties in
    degree are broken by vertex ID (``tie_break="stable"``) or uniformly
    at random (``tie_break="random"``, needs ``rng``) -- the paper leaves
    tie-breaking arbitrary.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    theta = np.asarray(theta, dtype=np.int64)
    n = degrees.size
    if theta.shape != (n,):
        raise ValueError(f"theta must have shape ({n},), got {theta.shape}")
    if tie_break == "stable":
        ranking = np.argsort(degrees, kind="stable")
    elif tie_break == "random":
        if rng is None:
            raise ValueError("tie_break='random' requires an rng")
        jitter = rng.random(n)
        ranking = np.lexsort((jitter, degrees))
    else:
        raise ValueError(
            f"unknown tie_break {tie_break!r}; use 'stable' or 'random'")
    labels = np.empty(n, dtype=np.int64)
    labels[ranking] = theta
    return labels


def orient(graph, permutation: Permutation,
           rng: np.random.Generator | None = None,
           tie_break: str = "stable") -> OrientedGraph:
    """Relabel ``graph`` by ``permutation`` and orient every edge.

    Returns the :class:`~repro.graphs.digraph.OrientedGraph`
    ``G(theta_n)`` in which node IDs are the new labels and each edge
    points from the larger label to the smaller. Random permutations
    (``UniformRandom``) and random tie-breaking require ``rng``.
    """
    with span("relabel", permutation=type(permutation).__name__,
              n=graph.n):
        labels = permutation.labels_for(graph, rng=rng,
                                        tie_break=tie_break)
    with span("orient", n=graph.n, m=graph.m):
        oriented = OrientedGraph(graph, labels)
        if _metrics.is_enabled():
            edges = graph.edges
            # an edge (u, v) with u < v is "flipped" when the smaller
            # vertex ID receives the larger label, i.e. the orientation
            # reverses the ID order
            flipped = (int(np.count_nonzero(
                labels[edges[:, 0]] > labels[edges[:, 1]]))
                if graph.m else 0)
            _metrics.inc("orient.runs")
            _metrics.inc("orient.edges", graph.m)
            _metrics.inc("orient.edges_flipped", flipped)
    return oriented
