"""Permutation sequences converging to a prescribed kernel.

Section 5.1 observes that admissibility works both ways: every
admissible permutation sequence has a measure-preserving limit kernel,
and "the opposite is true as well -- any such kernel has some sequence
of permutations that converges to it". This module implements that
inverse construction:

For each rank ``j`` draw a target position ``v_j ~ xi(j/n)`` from the
kernel, then assign labels by the *rank* of ``v_j`` among all draws.
Measure preservation makes the empirical law of the draws uniform, so
the rank of ``v_j`` concentrates at ``n v_j`` and the windowed kernel
estimate (27) of the resulting permutation converges to ``K(v; u)``.
Deterministic kernels reproduce their permutation exactly (ascending,
descending); random kernels (uniform, RR, CRR) reproduce theirs in
distribution.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import LimitMap
from repro.orientations.permutations import Permutation


class KernelPermutation(Permutation):
    """Realize an arbitrary measure-preserving limit map as ``theta_n``.

    Parameters
    ----------
    limit_map:
        Any :class:`~repro.core.kernels.LimitMap`; its ``sample`` drives
        the construction, so custom maps only need that method.

    Notes
    -----
    The construction is randomized whenever the kernel is non-degenerate,
    so an ``rng`` is required unless the map is deterministic (in which
    case any rng-free call still works because ``sample`` ignores it).
    """

    def __init__(self, limit_map: LimitMap):
        self.limit_map = limit_map
        self.is_random = True

    def rank_to_label(self, n, rng=None):
        if rng is None:
            rng = np.random.default_rng()
        us = (np.arange(n, dtype=float) + 0.5) / n
        targets = np.asarray(self.limit_map.sample(us, rng), dtype=float)
        if targets.shape != (n,):
            raise ValueError(
                "limit map sample() must return one target per rank")
        # label = rank of the target among all targets; random jitter
        # breaks ties (atoms of discrete kernels) without bias
        jitter = rng.random(n) * 1e-9
        order = np.argsort(targets + jitter, kind="stable")
        theta = np.empty(n, dtype=np.int64)
        theta[order] = np.arange(n, dtype=np.int64)
        return theta

    def __repr__(self) -> str:
        return f"KernelPermutation({self.limit_map!r})"
