"""Relabeling permutations and acyclic orientation (sections 2.1, 5, 7.5).

A permutation ``theta_n`` maps the *ascending-degree rank* of a node to
its new label (section 2.1: theta "always starts with ascending-degree
order and maps each node in position i to a label theta_n(i)"). The five
permutations studied in the paper, plus the degenerate (smallest-last)
orientation of [29] and the OPT construction of Algorithm 1, are all
:class:`Permutation` objects consumed by :func:`orient`.
"""

from repro.orientations.permutations import (
    Permutation,
    AscendingDegree,
    DescendingDegree,
    RoundRobin,
    ComplementaryRoundRobin,
    UniformRandom,
    ExplicitPermutation,
    OptPermutation,
    reverse_permutation,
    complement_permutation,
)
from repro.orientations.degenerate import DegenerateOrder, smallest_last_order
from repro.orientations.kernel_permutation import KernelPermutation
from repro.orientations.relabel import orient, labels_from_rank_map

__all__ = [
    "Permutation",
    "AscendingDegree",
    "DescendingDegree",
    "RoundRobin",
    "ComplementaryRoundRobin",
    "UniformRandom",
    "ExplicitPermutation",
    "OptPermutation",
    "reverse_permutation",
    "complement_permutation",
    "DegenerateOrder",
    "smallest_last_order",
    "KernelPermutation",
    "orient",
    "labels_from_rank_map",
]
