"""Planner-vs-oracle regret harness.

The planner prices candidates from the *degree distribution* (the
information a query optimizer realistically has); the oracle prices the
same graph *exactly* under every admissible orientation -- including
the structure-dependent degenerate ordering the model cannot see. The
regret of a case is how much more the planner's pick actually costs
than the oracle's best:

    regret = exact_time(planner pick) / exact_time(oracle best) - 1

with both sides priced by the paper's operation counts weighted by the
section 2.4 speed ratio (``oracle_mode="ops"``, fully deterministic --
what CI gates on), or optionally by measured wall clock of real
listing runs (``oracle_mode="wall"``).

The default suite sweeps the regimes of section 6.3 -- Pareto shapes
on both sides of the ``alpha = 2`` crossover and inside the
``(4/3, 3/2]`` infinite-SEI window -- plus an Erdős–Rényi control and
the adversarial edge cases (star, complete, ring) where orderings
degenerate or tie.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.distributions.pareto import DiscretePareto
from repro.distributions.sampling import sample_degree_sequence
from repro.distributions.truncation import root_truncation
from repro.graphs.generators import generate_graph
from repro.graphs.graph import Graph
from repro.listing.api import ALL_METHODS, list_triangles
from repro.obs import metrics as _metrics
from repro.obs.spans import span
from repro.orientations.relabel import orient
from repro.planner.candidates import GRAPH_ORDERINGS, Candidate
from repro.planner.plan import plan_for_degrees, plan_for_graph


@dataclass(frozen=True)
class RegretCase:
    """One named graph family instance in the regret suite."""

    label: str
    family: str                      # "pareto" | "er" | "edge"
    make: Callable[[np.random.Generator], Graph]
    meta: dict = field(default_factory=dict)


def _pareto_case(alpha: float, beta: float, n: int) -> RegretCase:
    def make(rng: np.random.Generator) -> Graph:
        dist = DiscretePareto(alpha, beta).truncate(root_truncation(n))
        return generate_graph(sample_degree_sequence(dist, n, rng), rng)
    return RegretCase(f"pareto_a{alpha:g}", "pareto", make,
                      {"alpha": alpha, "beta": beta, "n": n})


def _er_case(n: int, avg_degree: float) -> RegretCase:
    def make(rng: np.random.Generator) -> Graph:
        # G(n, m)-style: a fixed edge budget, loops/multi-edges dropped
        m = int(n * avg_degree / 2)
        pairs = rng.integers(0, n, size=(int(m * 1.5), 2))
        pairs = pairs[pairs[:, 0] != pairs[:, 1]]
        keys = (np.minimum(pairs[:, 0], pairs[:, 1]) * np.int64(n)
                + np.maximum(pairs[:, 0], pairs[:, 1]))
        __, first = np.unique(keys, return_index=True)
        return Graph.from_edge_list(pairs[np.sort(first)][:m], n=n)
    return RegretCase(f"er_d{avg_degree:g}", "er", make,
                      {"n": n, "avg_degree": avg_degree})


def _star_case(n: int) -> RegretCase:
    def make(rng: np.random.Generator) -> Graph:
        hub = np.zeros(n - 1, dtype=np.int64)
        edges = np.column_stack([hub, np.arange(1, n, dtype=np.int64)])
        return Graph.from_edge_list(edges, n=n)
    return RegretCase("star", "edge", make, {"n": n})


def _complete_case(k: int) -> RegretCase:
    def make(rng: np.random.Generator) -> Graph:
        idx = np.arange(k)
        a, b = np.meshgrid(idx, idx)
        mask = a < b
        edges = np.column_stack([a[mask], b[mask]])
        return Graph.from_edge_list(edges, n=k)
    return RegretCase("complete", "edge", make, {"n": k})


def _ring_case(n: int) -> RegretCase:
    def make(rng: np.random.Generator) -> Graph:
        idx = np.arange(n, dtype=np.int64)
        edges = np.column_stack([idx, (idx + 1) % n])
        return Graph.from_edge_list(edges, n=n)
    return RegretCase("ring", "edge", make, {"n": n})


def default_suite(n: int = 400) -> list[RegretCase]:
    """The committed CI suite (deterministic given the seed).

    Pareto shapes bracket the paper's regimes: 1.4 sits in the
    ``(4/3, 3/2]`` infinite-SEI window, 1.6/1.8 below the crossover,
    2.2/2.6 above it; one sparse Erdős–Rényi control; star, complete
    and ring stress zero-cost and all-tie rankings.
    """
    return [
        _pareto_case(1.4, 10.0, n),
        _pareto_case(1.6, 12.0, n),
        _pareto_case(1.8, 21.0, n),
        _pareto_case(2.2, 21.0, n),
        _pareto_case(2.6, 30.0, n),
        _er_case(n, 8.0),
        _star_case(max(n // 4, 8)),
        _complete_case(min(max(n // 10, 8), 40)),
        _ring_case(max(n // 4, 8)),
    ]


def _regret(actual: float, best: float) -> float:
    if best > 0.0:
        return actual / best - 1.0
    return 0.0 if actual <= 0.0 else math.inf


def _wall_time(graph, cand: Candidate, rng) -> float:
    """Median-of-3 wall clock of one full listing run under ``cand``."""
    oriented = orient(graph, cand.permutation(), rng=rng)
    timings = []
    for _ in range(3):
        start = time.perf_counter()
        list_triangles(oriented, cand.method, collect=False)
        timings.append(time.perf_counter() - start)
    return sorted(timings)[1]


def evaluate_case(case: RegretCase, rng: np.random.Generator,
                  methods=ALL_METHODS,
                  speed_ratio: float | str | None = None,
                  oracle_mode: str = "ops") -> dict:
    """Run planner and oracle on one case; return the regret row."""
    if oracle_mode not in ("ops", "wall"):
        raise ValueError(f"oracle_mode must be 'ops' or 'wall', "
                         f"got {oracle_mode!r}")
    graph = case.make(rng)
    with span("planner.regret_case", label=case.label, n=graph.n,
              m=graph.m):
        oracle = plan_for_graph(graph, methods=methods,
                                orderings=GRAPH_ORDERINGS,
                                speed_ratio=speed_ratio)
        planner = plan_for_degrees(graph.degrees, n=graph.n,
                                   methods=methods,
                                   speed_ratio=speed_ratio)
        pick = planner.best
        # the planner's pick, priced at its *actual* exact cost on this
        # graph (the model predicted it; the oracle table knows it)
        actual = oracle.entry(pick.method, pick.ordering).predicted_time
        best = oracle.best.predicted_time
        regret = _regret(actual, best)
        if oracle_mode == "wall":
            pick_cand = Candidate(pick.method, pick.ordering)
            best_cand = Candidate(oracle.best.method,
                                  oracle.best.ordering)
            actual = _wall_time(graph, pick_cand, rng)
            best = _wall_time(graph, best_cand, rng)
            regret = _regret(actual, best)
    if _metrics.is_enabled():
        _metrics.inc("planner.regret_cases")
    if oracle_mode == "ops":
        # Audit the planner pick against the exact oracle table: the
        # realized-regret arithmetic in repro.obs.audit is this row's
        # _regret(actual, best), so audit records written here match
        # the harness definition bit-for-bit. No-op unless REPRO_AUDIT.
        from repro.obs import audit as _audit
        if _audit.is_enabled():
            _audit.record_auto_route(
                planner, "regret_case", exact_plan=oracle,
                n=graph.n, m=graph.m,
                max_degree=int(graph.degrees.max()) if graph.n else 0,
                label=case.label)
    # "agree" means the planner picked *an* optimum: the exact key, or
    # a tie (many candidates are isomorphic -- e.g. E3+ascending is
    # E1+descending read backwards -- and orderings coincide on
    # regular graphs, so key equality alone would be noise)
    agree = (pick.key == oracle.best.key
             or (math.isfinite(regret) and regret <= 1e-9))
    return {
        "label": case.label,
        "family": case.family,
        "n": int(graph.n),
        "m": int(graph.m),
        "planner": pick.key,
        "oracle": oracle.best.key,
        "planner_time": float(actual),
        "oracle_time": float(best),
        "regret": float(regret),
        "agree": agree,
        "confidence": float(planner.confidence),
    }


def run_regret_suite(cases: list[RegretCase] | None = None,
                     seed: int = 0, methods=ALL_METHODS,
                     speed_ratio: float | str | None = None,
                     oracle_mode: str = "ops") -> list[dict]:
    """Evaluate every case with a per-case child seed (order-stable)."""
    if cases is None:
        cases = default_suite()
    root = np.random.SeedSequence(seed)
    rows = []
    with span("planner.regret_suite", cases=len(cases),
              oracle_mode=oracle_mode):
        for case, child in zip(cases, root.spawn(len(cases))):
            rows.append(evaluate_case(
                case, np.random.default_rng(child), methods=methods,
                speed_ratio=speed_ratio, oracle_mode=oracle_mode))
    return rows


def regret_summary(rows: list[dict]) -> dict:
    """Aggregate statistics the CI gate and the bench table report."""
    regrets = sorted(r["regret"] for r in rows)
    finite = [r for r in regrets if math.isfinite(r)]
    if not regrets:
        return {"cases": 0, "median_regret": 0.0, "max_regret": 0.0,
                "mean_regret": 0.0, "agreement": 1.0}
    mid = len(regrets) // 2
    median = (regrets[mid] if len(regrets) % 2
              else (regrets[mid - 1] + regrets[mid]) / 2.0)
    return {
        "cases": len(rows),
        "median_regret": float(median),
        "max_regret": float(regrets[-1]),
        "mean_regret": (float(np.mean(finite)) if finite
                        else math.inf),
        "agreement": sum(r["agree"] for r in rows) / len(rows),
    }


def format_regret_table(rows: list[dict]) -> str:
    """Render regret rows as the aligned table the bench prints."""
    summary = regret_summary(rows)
    lines = [f"{'case':>12} {'n':>6} {'m':>7} {'planner':>16} "
             f"{'oracle':>16} {'regret':>8} {'agree':>6}"]
    for r in rows:
        regret = ("inf" if math.isinf(r["regret"])
                  else f"{r['regret'] * 100:.2f}%")
        lines.append(f"{r['label']:>12} {r['n']:>6} {r['m']:>7} "
                     f"{r['planner']:>16} {r['oracle']:>16} "
                     f"{regret:>8} {str(r['agree']):>6}")
    lines.append(
        f"median {summary['median_regret'] * 100:.2f}%  "
        f"max {summary['max_regret'] * 100:.2f}%  "
        f"agreement {summary['agreement'] * 100:.0f}% "
        f"({summary['cases']} cases)")
    return "\n".join(lines)
