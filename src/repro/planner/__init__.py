"""Cost-model query planner: rank (method, ordering) candidates.

Public surface:

* :mod:`repro.planner.candidates` -- the candidate table;
* :mod:`repro.planner.plan` -- the four pricing backends and the
  :class:`Plan` the argmin routing consumes;
* :mod:`repro.planner.regret` -- the planner-vs-oracle harness CI
  gates on.
"""

from repro.planner.candidates import (
    GRAPH_ORDERINGS,
    MODEL_ORDERINGS,
    Candidate,
    iter_candidates,
    oriented_degrees,
)
from repro.planner.plan import (
    Plan,
    PlanEntry,
    choose_method,
    format_plan,
    plan_for_degrees,
    plan_for_distribution,
    plan_for_graph,
    plan_for_sketch,
    plan_in_limit,
    sketch_degrees,
)
from repro.planner.regret import (
    RegretCase,
    default_suite,
    evaluate_case,
    format_regret_table,
    regret_summary,
    run_regret_suite,
)

__all__ = [
    "GRAPH_ORDERINGS",
    "MODEL_ORDERINGS",
    "Candidate",
    "iter_candidates",
    "oriented_degrees",
    "Plan",
    "PlanEntry",
    "choose_method",
    "format_plan",
    "plan_for_degrees",
    "plan_for_distribution",
    "plan_for_graph",
    "plan_for_sketch",
    "plan_in_limit",
    "sketch_degrees",
    "RegretCase",
    "default_suite",
    "evaluate_case",
    "format_regret_table",
    "regret_summary",
    "run_regret_suite",
]
