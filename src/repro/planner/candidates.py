"""The planner's candidate table: method × ordering pairs.

The paper's decision space is the cross product of the 18 listing
methods (T1-T6, E1-E6, L1-L6) with the relabeling orderings --
ascending, descending, Round-Robin, Complementary Round-Robin, the OPT
construction of Algorithm 1, and the degenerate (smallest-last)
orientation of [29]. A :class:`Candidate` names one such pair and knows
how to resolve its two execution-side artifacts:

* a concrete :class:`~repro.orientations.permutations.Permutation`
  (for orienting a real graph), and
* the limiting map ``xi(u)`` entering the cost model (for pricing the
  candidate from a degree distribution alone).

The degenerate ordering is the one candidate the *model* cannot price:
it depends on the edge structure, not just the degree law, so it is
only admissible for exact (graph-backed) evaluation -- the planner's
oracle ranks it, the distribution-backed planner does not. That gap is
precisely what the regret harness measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering

import numpy as np

from repro.core.kernels import LimitMap, get_map
from repro.core.methods import METHODS, Method, get_method
from repro.core.optimality import optimal_map
from repro.orientations.degenerate import DegenerateOrder
from repro.orientations.permutations import (
    AscendingDegree,
    ComplementaryRoundRobin,
    DescendingDegree,
    OptPermutation,
    Permutation,
    RoundRobin,
)

#: Orderings a concrete graph can be relabeled with (the oracle's set).
GRAPH_ORDERINGS: tuple[str, ...] = (
    "ascending", "descending", "rr", "crr", "opt", "degenerate")

#: Orderings the cost model can price from a degree law alone --
#: everything except the structure-dependent degenerate orientation.
MODEL_ORDERINGS: tuple[str, ...] = (
    "ascending", "descending", "rr", "crr", "opt")

_NAMED_PERMUTATIONS = {
    "ascending": AscendingDegree,
    "descending": DescendingDegree,
    "rr": RoundRobin,
    "crr": ComplementaryRoundRobin,
    "degenerate": DegenerateOrder,
}

#: Per-op weight classes of section 2.4 / Table 3: scanning edge
#: iterators (SEI) execute their sequential comparisons up to
#: ``speed_ratio`` times faster than the hash-based vertex and lookup
#: iterators execute theirs.
HASH_FAMILIES = ("vertex", "lei")


@total_ordering
@dataclass(frozen=True)
class Candidate:
    """One (method, ordering) pair the planner can rank."""

    method: str
    ordering: str

    def __post_init__(self):
        get_method(self.method)  # validate eagerly
        if self.ordering not in GRAPH_ORDERINGS:
            raise ValueError(
                f"unknown ordering {self.ordering!r}; choose from "
                f"{GRAPH_ORDERINGS}")

    @property
    def key(self) -> str:
        """Stable display/identity key, e.g. ``"E1+descending"``."""
        return f"{self.method}+{self.ordering}"

    @property
    def spec(self) -> Method:
        return METHODS[self.method]

    @property
    def family(self) -> str:
        """``"vertex"``, ``"sei"``, or ``"lei"``."""
        return self.spec.family

    @property
    def is_sei(self) -> bool:
        return self.family == "sei"

    def permutation(self) -> Permutation:
        """The concrete relabeling permutation of this ordering.

        For ``"opt"`` this is Algorithm 1 keyed by the *method's own*
        ``h`` function, so two candidates with different ``h`` shapes
        resolve to different OPT permutations.
        """
        if self.ordering == "opt":
            return OptPermutation(self.spec.h)
        return _NAMED_PERMUTATIONS[self.ordering]()

    def limit_map(self) -> LimitMap:
        """The limiting map pricing this candidate in the model.

        Raises ``ValueError`` for the degenerate ordering, whose cost
        is not a functional of the degree distribution.
        """
        if self.ordering == "degenerate":
            raise ValueError(
                "the degenerate ordering depends on the edge structure; "
                "the cost model cannot price it from a degree law "
                "(use an exact, graph-backed plan)")
        if self.ordering == "opt":
            # Theorem 3 + Corollaries 1-2: for triangle listing (r
            # increasing) OPT's limiting map is the method's optimal
            # named map.
            return optimal_map(self.method)
        return get_map(self.ordering)

    def orientation_key(self) -> str:
        """Candidates sharing this key share one relabeled graph.

        Named orderings are method-independent; OPT depends on the
        method only through its ``h`` shape, so e.g. T1/T4/L2/L6 (all
        ``h(x) = x^2/2``) share a single OPT orientation.
        """
        if self.ordering == "opt":
            return f"opt:{self.spec.h.__name__}"
        return self.ordering

    def _sort_key(self):
        return (self.method, GRAPH_ORDERINGS.index(self.ordering))

    def __lt__(self, other: "Candidate") -> bool:
        return self._sort_key() < other._sort_key()

    def __str__(self) -> str:
        return self.key


def iter_candidates(methods, orderings) -> list[Candidate]:
    """The cross product as validated :class:`Candidate` objects."""
    out = []
    for method in methods:
        name = method.upper() if isinstance(method, str) else method.name
        for ordering in orderings:
            out.append(Candidate(name, str(ordering).lower()))
    if len({c.key for c in out}) != len(out):
        raise ValueError("duplicate (method, ordering) candidates")
    return out


def oriented_degrees(graph, labels) -> tuple[np.ndarray, np.ndarray]:
    """``(X, Y)`` -- out/in-degrees of ``G(theta)`` without the CSR.

    The planner's exact backend only needs the directed degrees (the
    cost formulas (7)-(9) are functionals of ``X`` and ``Y``), so it
    skips :class:`~repro.graphs.digraph.OrientedGraph`'s index
    construction: two bincounts over the relabeled edge list.
    """
    labels = np.asarray(labels, dtype=np.int64)
    n = labels.size
    edges = graph.edges
    if graph.m == 0:
        zero = np.zeros(n, dtype=np.int64)
        return zero, zero.copy()
    a = labels[edges[:, 0]]
    b = labels[edges[:, 1]]
    src = np.maximum(a, b)   # larger label: the edge's tail
    dst = np.minimum(a, b)
    out_deg = np.bincount(src, minlength=n).astype(np.int64)
    in_deg = np.bincount(dst, minlength=n).astype(np.int64)
    return out_deg, in_deg
