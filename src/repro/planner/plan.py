"""Rank every candidate and route to the argmin.

The paper's §2.4 message is that the cheapest (method, ordering) pair
is predictable from the degree distribution alone. This module turns
that into a planner: price every candidate of
:mod:`repro.planner.candidates` with one of four backends --

* ``exact``  -- a concrete graph, relabeled under each ordering and
  priced through the exact cost formulas (7)-(9);
* ``model``  -- a (truncated) degree law through Algorithm 2
  (:func:`repro.core.fastmodel.fast_cost_model_many`);
* ``sketch`` -- a uniformly sampled degree sketch of a graph, fitted
  to an empirical law and priced like ``model``;
* ``limit``  -- the ``n -> inf`` limit costs (Theorem 2), where the
  §6.3 finiteness regimes decide (infinite SEI costs rank last);

-- then convert modeled *operation counts* into *time units* with the
§2.4 speed-ratio correction (one hash op = 1 unit, one SEI op =
``1/speed_ratio`` units, Table 3) and rank. The argmin is what
``list_triangles(..., method="auto")`` and ``repro plan`` execute.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.costs import per_node_cost_many
from repro.core.decision import resolve_speed_ratio
from repro.core.fastmodel import fast_cost_model_many
from repro.core.limits import limit_cost
from repro.distributions.base import (DegreeDistribution,
                                      EmpiricalDegreeDistribution)
from repro.distributions.truncation import root_truncation
from repro.listing.api import ALL_METHODS
from repro.obs import metrics as _metrics
from repro.obs.spans import span
from repro.planner.candidates import (
    GRAPH_ORDERINGS,
    MODEL_ORDERINGS,
    Candidate,
    iter_candidates,
    oriented_degrees,
)

#: Relative margin below which two predicted times count as a tie.
_TIE_RTOL = 1e-9


@dataclass(frozen=True)
class PlanEntry:
    """One ranked candidate: predicted ops and speed-corrected time."""

    method: str
    ordering: str
    family: str
    predicted_cost: float   # modeled per-node operation count c_n
    predicted_time: float   # cost x family op-weight (hash-op units)
    rank: int

    @property
    def key(self) -> str:
        return f"{self.method}+{self.ordering}"

    @property
    def is_sei(self) -> bool:
        return self.family == "sei"


@dataclass
class Plan:
    """A ranked candidate table with the argmin up front.

    ``entries`` are sorted by speed-corrected predicted time
    (deterministic canonical tie-break, so the ranking is invariant
    under any reordering of the input candidate list). ``confidence``
    is the relative margin between the winner and the best *strictly
    worse* candidate: 0 means a dead heat (or an empty cost surface),
    values near 1 mean the winner dominates.
    """

    entries: list[PlanEntry]
    source: str               # "exact" | "model" | "sketch" | "limit"
    speed_ratio: float
    n: int | None = None
    confidence: float = 0.0
    meta: dict = field(default_factory=dict)

    @property
    def best(self) -> PlanEntry:
        if not self.entries:
            raise ValueError("empty plan")
        return self.entries[0]

    @property
    def winner(self) -> str:
        return self.best.key

    def entry(self, method: str, ordering: str) -> PlanEntry:
        """Look up one candidate's entry (KeyError when absent)."""
        key = f"{method.upper()}+{str(ordering).lower()}"
        for entry in self.entries:
            if entry.key == key:
                return entry
        raise KeyError(f"candidate {key!r} not in plan")

    def to_rows(self) -> list[dict]:
        """JSON-ready rows (run records, ``repro plan --json``)."""
        return [{"rank": e.rank, "method": e.method,
                 "ordering": e.ordering, "family": e.family,
                 "cost": e.predicted_cost, "time": e.predicted_time}
                for e in self.entries]


def _confidence(entries: list[PlanEntry]) -> float:
    """Margin between the winner and the best strictly-worse entry.

    0 for a dead heat (or an infinite/empty cost surface); 1 when the
    only alternatives are infinitely worse.
    """
    if not entries or not math.isfinite(entries[0].predicted_time):
        return 0.0
    best = entries[0].predicted_time
    for entry in entries[1:]:
        if entry.predicted_time > best * (1.0 + _TIE_RTOL):
            if math.isinf(entry.predicted_time):
                return 1.0
            if entry.predicted_time > 0.0:
                return 1.0 - best / entry.predicted_time
            break
    return 0.0


def _rank(costs: dict[Candidate, float], source: str,
          speed_ratio: float, n: int | None, meta: dict) -> Plan:
    """Weight, sort, and wrap a cost surface into a :class:`Plan`."""
    weighted = []
    for cand in costs:
        cost = float(costs[cand])
        if cost < 0.0 and cost > -1e-9:
            cost = 0.0  # guard float underflow in the model
        time_units = (cost / speed_ratio if cand.is_sei else cost)
        weighted.append((cand, cost, time_units))
    # canonical tie-break by (method, ordering), independent of the
    # caller's candidate order -- the argmin must be reorder-stable
    weighted.sort(key=lambda w: (w[2], w[0]))
    entries = [PlanEntry(c.method, c.ordering, c.family, cost, t,
                         rank=i + 1)
               for i, (c, cost, t) in enumerate(weighted)]
    plan = Plan(entries=entries, source=source, speed_ratio=speed_ratio,
                n=n, confidence=_confidence(entries), meta=meta)
    if _metrics.is_enabled():
        _metrics.inc("planner.plans")
        _metrics.inc("planner.candidates", len(entries))
    return plan


def plan_for_graph(graph, methods=ALL_METHODS,
                   orderings=GRAPH_ORDERINGS,
                   speed_ratio: float | str | None = None) -> Plan:
    """Exact plan for a concrete graph -- the planner's oracle.

    Relabels the graph once per distinct orientation (named orderings,
    one OPT per ``h`` shape, degenerate) and prices every method on the
    resulting directed degrees through the exact formulas (7)-(9); no
    listing runs. This ranks candidates by the paper's *operation*
    metric exactly, which is also what the regret harness uses as the
    ground truth.
    """
    speed_ratio = resolve_speed_ratio(speed_ratio)
    candidates = iter_candidates(methods, orderings)
    with span("planner.plan", source="exact", n=graph.n,
              candidates=len(candidates)):
        by_orientation: dict[str, list[Candidate]] = {}
        for cand in candidates:
            by_orientation.setdefault(cand.orientation_key(),
                                      []).append(cand)
        costs: dict[Candidate, float] = {}
        for group in by_orientation.values():
            labels = group[0].permutation().labels_for(graph)
            x, y = oriented_degrees(graph, labels)
            per_method = per_node_cost_many(
                sorted({c.method for c in group}), x, y)
            for cand in group:
                costs[cand] = per_method[cand.method]
        return _rank(costs, "exact", speed_ratio, graph.n,
                     {"m": graph.m})


def plan_for_distribution(dist: DegreeDistribution, n: int | None = None,
                          methods=ALL_METHODS,
                          orderings=MODEL_ORDERINGS,
                          speed_ratio: float | str | None = None,
                          eps: float = 1e-5) -> Plan:
    """Model plan for a degree law (Algorithm 2 per candidate).

    ``dist`` must be truncated (finite support); an untruncated law is
    truncated at ``root_truncation(n)`` when ``n`` is given. The
    degenerate ordering is structure-dependent and cannot appear here
    (see :meth:`Candidate.limit_map`); request an exact plan instead.
    """
    speed_ratio = resolve_speed_ratio(speed_ratio)
    if not math.isfinite(dist.support_max):
        if n is None:
            raise ValueError(
                "untruncated distribution: pass n (truncates at "
                "root_truncation(n)) or truncate it first")
        dist = dist.truncate(root_truncation(n))
    candidates = iter_candidates(methods, orderings)
    with span("planner.plan", source="model",
              t=int(dist.support_max), candidates=len(candidates)):
        pairs = [(cand.method, cand.limit_map()) for cand in candidates]
        values = fast_cost_model_many(dist, pairs, eps=eps)
        costs = dict(zip(candidates, values))
        return _rank(costs, "model", speed_ratio, n,
                     {"support_max": dist.support_max, "eps": eps})


def plan_for_degrees(degrees, n: int | None = None,
                     methods=ALL_METHODS, orderings=MODEL_ORDERINGS,
                     speed_ratio: float | str | None = None,
                     eps: float = 1e-5) -> Plan:
    """Model plan from an observed degree sequence (§7.5 workflow).

    Fits :class:`EmpiricalDegreeDistribution` to the positive degrees
    and delegates to :func:`plan_for_distribution`. The plan is
    invariant under any permutation of ``degrees`` (only the histogram
    enters the model).
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    positive = degrees[degrees > 0]
    if positive.size == 0:
        raise ValueError("no positive degrees; nothing to plan")
    dist = EmpiricalDegreeDistribution(positive)
    plan = plan_for_distribution(dist, n=n, methods=methods,
                                 orderings=orderings,
                                 speed_ratio=speed_ratio, eps=eps)
    plan.meta["degrees"] = int(positive.size)
    return plan


def sketch_degrees(graph, sample_size: int,
                   rng: np.random.Generator) -> np.ndarray:
    """A uniform without-replacement degree sample of the graph.

    ``sample_size >= n`` degenerates to the full (positive) degree
    sequence, so sketch-based plans converge to the exact-degree plan
    as the sample grows -- a property the test suite pins.
    """
    degrees = graph.degrees[graph.degrees > 0]
    if degrees.size == 0:
        raise ValueError("no positive degrees to sketch")
    if sample_size <= 0:
        raise ValueError(f"sample_size must be positive, got {sample_size}")
    if sample_size >= degrees.size:
        return degrees.copy()
    return rng.choice(degrees, size=sample_size, replace=False)


def plan_for_sketch(graph, sample_size: int, rng: np.random.Generator,
                    methods=ALL_METHODS, orderings=MODEL_ORDERINGS,
                    speed_ratio: float | str | None = None,
                    eps: float = 1e-5) -> Plan:
    """Model plan from a sampled degree sketch of ``graph``.

    The cheap mode for graphs too large to histogram: ``sample_size``
    uniformly sampled degrees stand in for the full sequence.
    """
    sample = sketch_degrees(graph, sample_size, rng)
    plan = plan_for_degrees(sample, n=graph.n, methods=methods,
                            orderings=orderings,
                            speed_ratio=speed_ratio, eps=eps)
    plan.source = "sketch"
    plan.meta["sample_size"] = int(sample.size)
    return plan


def plan_in_limit(base_dist: DegreeDistribution,
                  methods=("T1", "T2", "E1", "E4"),
                  orderings=MODEL_ORDERINGS,
                  speed_ratio: float | str | None = None,
                  **limit_kwargs) -> Plan:
    """Asymptotic plan: rank candidates by their ``n -> inf`` limits.

    In the §6.3 regimes where a family's limit diverges (e.g. every
    SEI candidate for Pareto ``alpha in (4/3, 1.5]``) the infinite
    entries rank last no matter the speed ratio -- reproducing the
    paper's "no matter how these algorithms are implemented" call.
    Defaults to the four fundamental methods; limit evaluations are
    cached per ``(h, map)`` signature, so the full 18-method table
    costs no more than the distinct-shape one.
    """
    speed_ratio = resolve_speed_ratio(speed_ratio)
    limit_kwargs.setdefault("eps", 1e-4)
    candidates = iter_candidates(methods, orderings)
    with span("planner.plan", source="limit",
              candidates=len(candidates)):
        cache: dict[tuple[int, int], float] = {}
        costs: dict[Candidate, float] = {}
        for cand in candidates:
            limit_map = cand.limit_map()
            sig = (id(cand.spec.h), id(limit_map))
            if sig not in cache:
                cache[sig] = limit_cost(base_dist, cand.method,
                                        limit_map, **limit_kwargs)
            costs[cand] = cache[sig]
        return _rank(costs, "limit", speed_ratio, None,
                     {"limit_kwargs": dict(limit_kwargs)})


def choose_method(oriented, methods=ALL_METHODS,
                  speed_ratio: float | str | None = None) -> Plan:
    """Rank the methods on an *already oriented* graph.

    The ordering is fixed by the given orientation, so the candidate
    axis collapses to the 18 methods: exact per-method costs from the
    directed degrees, speed-ratio weighted. This is the
    ``method="auto"`` backend of
    :func:`repro.listing.api.list_triangles`.
    """
    speed_ratio = resolve_speed_ratio(speed_ratio)
    methods = [m.upper() for m in methods]
    with span("planner.plan", source="oriented", n=oriented.n,
              candidates=len(methods)):
        per_method = per_node_cost_many(methods, oriented.out_degrees,
                                        oriented.in_degrees)
        from repro.core.methods import METHODS as _METHODS
        weighted = sorted(
            ((per_method[m] / speed_ratio
              if _METHODS[m].family == "sei" else per_method[m]),
             m) for m in methods)
        entries = [PlanEntry(m, "given", _METHODS[m].family,
                             per_method[m], t, rank=i + 1)
                   for i, (t, m) in enumerate(weighted)]
        plan = Plan(entries=entries, source="oriented",
                    speed_ratio=speed_ratio, n=oriented.n,
                    confidence=_confidence(entries),
                    meta={"m": oriented.m})
        if _metrics.is_enabled():
            _metrics.inc("planner.plans")
            _metrics.inc("planner.candidates", len(entries))
        return plan


def format_plan(plan: Plan, top: int | None = 10) -> str:
    """Render a plan as the aligned table ``repro plan`` prints."""
    shown = plan.entries if top is None else plan.entries[:top]
    lines = [f"plan ({plan.source} backend, speed ratio "
             f"{plan.speed_ratio:.1f}x, {len(plan.entries)} "
             f"candidate(s), confidence {plan.confidence:.2f})",
             f"{'rank':>4} {'method':>7} {'ordering':>11} "
             f"{'family':>7} {'model c_n':>12} {'time units':>12}"]
    for e in shown:
        cost = "inf" if math.isinf(e.predicted_cost) \
            else f"{e.predicted_cost:.4g}"
        t = "inf" if math.isinf(e.predicted_time) \
            else f"{e.predicted_time:.4g}"
        lines.append(f"{e.rank:>4} {e.method:>7} {e.ordering:>11} "
                     f"{e.family:>7} {cost:>12} {t:>12}")
    if top is not None and len(plan.entries) > top:
        lines.append(f"  ... {len(plan.entries) - top} more")
    return "\n".join(lines)
