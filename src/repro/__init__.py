"""Reproduction of "On Asymptotic Cost of Triangle Listing in Random Graphs".

Di Xiao, Yi Cui, Daren B.H. Cline, and Dmitri Loguinov, PODS 2017.

This package implements the paper end to end:

* ``repro.distributions`` -- degree laws (discrete Pareto and friends),
  truncation schemes, and i.i.d. degree-sequence sampling (paper section 1.2
  and 3.1).
* ``repro.graphs`` -- undirected graphs with sorted adjacency lists, acyclic
  orientations ``G(theta)``, and random-graph generators that realize a
  prescribed degree sequence exactly (section 7.2).
* ``repro.orientations`` -- the relabeling permutations ``theta``: ascending,
  descending, uniform, Round-Robin, Complementary Round-Robin, degenerate
  (smallest-last), and the OPT construction of Algorithm 1.
* ``repro.listing`` -- all 18 triangle-listing search patterns (T1-T6,
  E1-E6, L1-L6) with instruction-accurate operation counters, plus classical
  baselines (brute force, Chiba-Nishizeki, Forward / Compact-Forward).
* ``repro.core`` -- the analytical machinery: cost formulas (7)-(9), the
  unified model (14), the spread distribution ``J(x)``, the discrete cost
  model (50), the continuous model (49), Algorithm 2, limit maps ``xi(u)``,
  asymptotic limits (20)-(45), finiteness thresholds, and scaling rates
  (46)-(48).
* ``repro.experiments`` -- the simulation harness and the table
  reproductions of section 7.
* ``repro.obs`` -- observability: hierarchical spans, metric counters,
  JSONL run records, and structured logging (all off by default; see
  docs/OBSERVABILITY.md).

Quickstart::

    import numpy as np
    from repro import (DiscretePareto, sample_degree_sequence,
                       generate_graph, orient, DescendingDegree,
                       list_triangles)

    rng = np.random.default_rng(7)
    dist = DiscretePareto(alpha=1.5, beta=15.0).truncate(100)
    degrees = sample_degree_sequence(dist, n=2_000, rng=rng)
    graph = generate_graph(degrees, rng=rng)
    oriented = orient(graph, DescendingDegree())
    triangles = list_triangles(oriented, method="E1")
"""

from repro.distributions import (
    DegreeDistribution,
    DiscretePareto,
    ContinuousPareto,
    TruncatedDistribution,
    EmpiricalDegreeDistribution,
    GeometricDegree,
    ZipfDegree,
    linear_truncation,
    root_truncation,
    sample_degree_sequence,
)
from repro.graphs import (
    Graph,
    OrientedGraph,
    FenwickTree,
    configuration_model,
    residual_degree_model,
    generate_graph,
    erdos_gallai_graphical,
    degeneracy,
    arboricity_bounds,
    save_edge_list,
    load_edge_list,
)
from repro.orientations import (
    Permutation,
    AscendingDegree,
    DescendingDegree,
    RoundRobin,
    ComplementaryRoundRobin,
    UniformRandom,
    DegenerateOrder,
    OptPermutation,
    ExplicitPermutation,
    KernelPermutation,
    orient,
    reverse_permutation,
    complement_permutation,
)
from repro.listing import (
    list_triangles,
    count_triangles,
    ListingResult,
    VERTEX_ITERATORS,
    SCANNING_EDGE_ITERATORS,
    LOOKUP_EDGE_ITERATORS,
    ALL_METHODS,
    brute_force_triangles,
    adjacency_matrix_triangles,
    chiba_nishizeki_triangles,
    forward_triangles,
    compact_forward_triangles,
)
from repro.core import (
    Method,
    METHODS,
    FUNDAMENTAL_METHODS,
    method_cost,
    per_node_cost,
    SpreadDistribution,
    pareto_spread_cdf,
    LimitMap,
    AscendingMap,
    DescendingMap,
    UniformMap,
    RoundRobinMap,
    ComplementaryRoundRobinMap,
    discrete_cost_model,
    continuous_cost_model,
    fast_cost_model,
    limit_cost,
    finiteness_threshold,
    is_cost_finite,
    t1_scaling_rate,
    e1_scaling_rate,
    optimal_map,
    worst_map,
    opt_permutation_ranks,
    identity_weight,
    capped_weight,
    decide_on_graph,
    decide_in_limit,
    cost_ratio_w,
)
from repro.pipeline import run_pipeline, optimal_order_for, PipelineReport
from repro import obs

__version__ = "1.0.0"

__all__ = [
    # observability
    "obs",
    # distributions
    "DegreeDistribution",
    "DiscretePareto",
    "ContinuousPareto",
    "TruncatedDistribution",
    "EmpiricalDegreeDistribution",
    "GeometricDegree",
    "ZipfDegree",
    "linear_truncation",
    "root_truncation",
    "sample_degree_sequence",
    # graphs
    "Graph",
    "OrientedGraph",
    "FenwickTree",
    "configuration_model",
    "residual_degree_model",
    "generate_graph",
    "erdos_gallai_graphical",
    "degeneracy",
    "arboricity_bounds",
    "save_edge_list",
    "load_edge_list",
    # orientations
    "Permutation",
    "AscendingDegree",
    "DescendingDegree",
    "RoundRobin",
    "ComplementaryRoundRobin",
    "UniformRandom",
    "DegenerateOrder",
    "OptPermutation",
    "ExplicitPermutation",
    "KernelPermutation",
    "orient",
    "reverse_permutation",
    "complement_permutation",
    # listing
    "list_triangles",
    "count_triangles",
    "ListingResult",
    "VERTEX_ITERATORS",
    "SCANNING_EDGE_ITERATORS",
    "LOOKUP_EDGE_ITERATORS",
    "ALL_METHODS",
    "brute_force_triangles",
    "adjacency_matrix_triangles",
    "chiba_nishizeki_triangles",
    "forward_triangles",
    "compact_forward_triangles",
    # core
    "Method",
    "METHODS",
    "FUNDAMENTAL_METHODS",
    "method_cost",
    "per_node_cost",
    "SpreadDistribution",
    "pareto_spread_cdf",
    "LimitMap",
    "AscendingMap",
    "DescendingMap",
    "UniformMap",
    "RoundRobinMap",
    "ComplementaryRoundRobinMap",
    "discrete_cost_model",
    "continuous_cost_model",
    "fast_cost_model",
    "limit_cost",
    "finiteness_threshold",
    "is_cost_finite",
    "t1_scaling_rate",
    "e1_scaling_rate",
    "optimal_map",
    "worst_map",
    "opt_permutation_ranks",
    "identity_weight",
    "capped_weight",
    "decide_on_graph",
    "decide_in_limit",
    "cost_ratio_w",
    "run_pipeline",
    "optimal_order_for",
    "PipelineReport",
]
