"""Label-range partitioning of an oriented graph for out-of-core runs.

The oriented graph's labels are split into ``k`` contiguous ranges.
Each :class:`Partition` materializes the out-lists of its own label
range as a standalone CSR block that can be "loaded" and "evicted"
independently -- the unit of I/O for the out-of-core lister.

Balancing: ranges are chosen so each partition carries roughly equal
*edge* mass (out-degree sum), not equal node counts -- with descending
orientation the low labels are hubs and would otherwise overload the
first partition.
"""

from __future__ import annotations

import numpy as np

from repro.obs import memory as _memory


class Partition:
    """One label range ``[lo, hi)`` with its out-lists in CSR form."""

    def __init__(self, lo: int, hi: int, indptr: np.ndarray,
                 indices: np.ndarray):
        self.lo = int(lo)
        self.hi = int(hi)
        self._indptr = indptr
        self._indices = indices
        self._ledger_token: int | None = None

    @property
    def num_nodes(self) -> int:
        return self.hi - self.lo

    @property
    def num_edges(self) -> int:
        return int(self._indices.size)

    def out_neighbors(self, label: int) -> np.ndarray:
        """Sorted out-list of a label inside this range."""
        if not self.lo <= label < self.hi:
            raise IndexError(
                f"label {label} outside partition [{self.lo}, {self.hi})")
        local = label - self.lo
        return self._indices[self._indptr[local]:self._indptr[local + 1]]

    def byte_size(self, width: int = 8) -> int:
        """Payload size when loaded: CSR indices + offsets."""
        return width * (self._indices.size + self._indptr.size)

    def __repr__(self) -> str:
        return (f"Partition([{self.lo}, {self.hi}), "
                f"edges={self.num_edges})")


class LabelRangePartitioner:
    """Split an oriented graph into ``k`` edge-balanced label ranges."""

    def __init__(self, oriented, k: int):
        if k < 1:
            raise ValueError(f"need at least one partition, got {k}")
        if k > max(oriented.n, 1):
            raise ValueError(
                f"more partitions ({k}) than nodes ({oriented.n})")
        self.oriented = oriented
        self.k = int(k)
        self.boundaries = self._balance_boundaries()
        self._partitions: dict[int, Partition] = {}

    def _balance_boundaries(self) -> np.ndarray:
        """Boundaries so each range holds ~ m/k out-edges."""
        out = self.oriented.out_degrees.astype(np.float64)
        cumulative = np.concatenate([[0.0], np.cumsum(out)])
        total = cumulative[-1]
        targets = total * np.arange(1, self.k) / self.k
        cuts = np.searchsorted(cumulative, targets, side="left")
        cuts = np.clip(cuts, 1, self.oriented.n - 1) if self.oriented.n \
            else cuts
        boundaries = np.concatenate([[0], np.unique(cuts),
                                     [self.oriented.n]])
        return boundaries.astype(np.int64)

    @property
    def num_partitions(self) -> int:
        """Actual count (may be below ``k`` after deduplication)."""
        return self.boundaries.size - 1

    def partition_of(self, label: int) -> int:
        """Index of the partition containing ``label``."""
        if not 0 <= label < self.oriented.n:
            raise IndexError(f"label {label} out of range")
        return int(np.searchsorted(self.boundaries, label,
                                   side="right")) - 1

    def load(self, index: int) -> Partition:
        """Materialize (and cache) partition ``index``."""
        if not 0 <= index < self.num_partitions:
            raise IndexError(f"partition {index} out of range")
        cached = self._partitions.get(index)
        if cached is not None:
            return cached
        lo = int(self.boundaries[index])
        hi = int(self.boundaries[index + 1])
        lists = [self.oriented.out_neighbors(label)
                 for label in range(lo, hi)]
        sizes = np.array([arr.size for arr in lists], dtype=np.int64)
        indptr = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
        indices = (np.concatenate(lists) if lists
                   else np.empty(0, dtype=np.int64))
        partition = Partition(lo, hi, indptr, indices)
        if _memory.is_enabled():
            partition._ledger_token = _memory.check_in(
                "ooc.partition", nbytes=partition.byte_size(),
                dtype="int64")
        self._partitions[index] = partition
        return partition

    def evict(self, index: int) -> None:
        """Drop a cached partition (simulating memory pressure)."""
        partition = self._partitions.pop(index, None)
        if partition is not None:
            _memory.check_out(partition._ledger_token)


def plan_partitions(oriented, memory_bytes: int,
                    id_width: int = 8) -> int:
    """Smallest ``k`` so two co-resident partitions fit the budget.

    The out-of-core listers hold one source and one candidate partition
    at a time; with edge-balanced ranges each carries about ``m / k``
    out-edges plus its offsets, so the constraint is roughly
    ``2 (m/k + n/k + 1) * id_width <= memory_bytes``. Raises when even
    ``k = n`` cannot fit (budget below two single-node partitions).
    """
    if memory_bytes <= 0:
        raise ValueError("memory budget must be positive")
    per_pair = 2 * id_width
    for k in range(1, max(oriented.n, 1) + 1):
        payload = per_pair * (oriented.m / k + oriented.n / k + 1)
        if payload <= memory_bytes:
            return k
    raise ValueError(
        f"budget of {memory_bytes} bytes cannot hold two partitions "
        f"even at k = n")
